"""Adiak: per-run metadata annotation (LLNL's Adiak library surface).

RAJAPerf uses Adiak to record run metadata — programming model, variant,
tuning, problem size, machine — which Caliper folds into the profile's
globals and Thicket surfaces as its metadata table. The Python surface
mirrors ``adiak::init``, ``adiak::value``, ``adiak::collect_all``,
``adiak::fini``.
"""

from __future__ import annotations

import getpass
import platform
import sys
import time
from typing import Any

_store: dict[str, Any] | None = None


class AdiakError(RuntimeError):
    """Raised when the Adiak API is used out of order."""


def init() -> None:
    """Start a metadata collection epoch (``adiak::init``)."""
    global _store
    _store = {}


def value(name: str, val: Any) -> None:
    """Record one name/value pair (``adiak::value``)."""
    if _store is None:
        raise AdiakError("adiak.value() before adiak.init()")
    if not name:
        raise ValueError("metadata name must be non-empty")
    _store[name] = val


def collect_all() -> None:
    """Record the standard environment set (``adiak::collect_all``)."""
    if _store is None:
        raise AdiakError("adiak.collect_all() before adiak.init()")
    _store.setdefault("user", _safe_user())
    _store.setdefault("launchdate", int(time.time()))
    _store.setdefault("executable", sys.argv[0] if sys.argv else "python")
    _store.setdefault("platform", platform.platform())
    _store.setdefault("python_version", platform.python_version())


def get() -> dict[str, Any]:
    """Snapshot of the currently collected metadata."""
    if _store is None:
        raise AdiakError("adiak.get() before adiak.init()")
    return dict(_store)


def fini() -> dict[str, Any]:
    """Finish the epoch and return the collected metadata."""
    global _store
    if _store is None:
        raise AdiakError("adiak.fini() before adiak.init()")
    out, _store = dict(_store), None
    return out


def is_active() -> bool:
    return _store is not None


def _safe_user() -> str:
    try:
        return getpass.getuser()
    except (KeyError, OSError):  # pragma: no cover - depends on environment
        return "unknown"
