"""Command-line interface (the ``rajaperf-sim`` executable)."""

from repro.cli.main import build_parser, main

__all__ = ["main", "build_parser"]
