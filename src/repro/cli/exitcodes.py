"""The CLI's exit-code contract, in one place.

Scripts and CI drive ``rajaperf-sim`` and branch on its exit status, so
the codes are API. Every subcommand maps its outcome to one of these
constants; ``tests/test_exit_codes.py`` provokes each one for real, so
the table cannot drift from behavior.

====  =========================================================
code  meaning
====  =========================================================
0     success
1     unclean run (kernel failures recorded, campaign finished)
2     usage error (argparse, invalid fault spec, bad arguments)
3     campaign directory locked by a live campaign
4     degraded (analysis lost sources, or shard-status found an
      expired lease / inconsistent shard map)
5     chaos invariant violation (or self-test failed to detect)
6     job rejected by admission control (quota or queue bound)
7     job id unknown to the campaign service job store
73    worker crash sentinel (a supervised worker died mid-cell)
74    shard orphaned (a shard supervisor lost its coordinator)
75    job orphaned (a service job runner lost its scheduler)
77    chaos kill (internal to the chaos harness's child runs)
130   interrupted (SIGINT; 128 + signal number)
====  =========================================================
"""

from __future__ import annotations

OK = 0
UNCLEAN_RUN = 1
USAGE = 2
CAMPAIGN_LOCKED = 3
DEGRADED_ANALYSIS = 4
INVARIANT_VIOLATION = 5
JOB_REJECTED = 6
JOB_NOT_FOUND = 7
WORKER_CRASH = 73
SHARD_ORPHANED = 74
JOB_ORPHANED = 75
CHAOS_KILL = 77
INTERRUPTED = 130
