"""``rajaperf-sim``: RAJAPerf-style command line for the reproduction.

Subcommands mirror how the paper's pipeline is driven:

``run``
    Run the suite (model predictions; optionally real NumPy execution)
    and write one ``.cali`` profile per (machine, variant, tuning) —
    RAJAPerf's run + Caliper integration.
``analyze``
    Read ``.cali`` profiles into Thicket and print the region tree or a
    metric matrix — the Thicket EDA step.
``experiment``
    Regenerate a paper artifact by id (T1-T4, F1-F10) or everything.
``cluster``
    Run the Section IV similarity analysis and print Figs. 6-8.
``scaling``
    Predict strong/weak scaling of a kernel on a CPU machine.
``export``
    Write every figure's underlying data as plot-ready CSV files.
``report``
    Caliper-style runtime report of a ``.cali`` profile.
``pack`` / ``unpack``
    Convert a campaign between loose ``.cali`` files and a packed
    ``.calipack`` archive (``pack`` also primes the ingest cache).
``list``
    Enumerate kernels, groups, variants, or machines (RAJAPerf's
    ``--print-kernels`` etc.).
``shard-status``
    Progress of a sharded campaign (``run --shards N``): per-shard
    ok/failed/pending counts, liveness leases, merge state.
``chaos``
    Crash-consistency chaos trials: kill the pipeline at every durable
    write boundary and machine-check that fsck + resume + analyze
    converge (see docs/architecture.md).

Exit codes are standardized in :mod:`repro.cli.exitcodes`.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.cli import exitcodes
from repro.machines.registry import MACHINES, list_machines
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.registry import all_kernel_classes
from repro.suite.run_params import RunParams
from repro.suite.variants import VARIANTS
from repro.util.units import parse_size


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rajaperf-sim",
        description="RAJA Performance Suite reproduction (SC'24 paper pipeline).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run the suite and emit .cali profiles")
    run.add_argument("--size", default="32M", help="problem size per node (e.g. 32M)")
    run.add_argument("--reps", type=int, default=1, help="repetitions per kernel")
    run.add_argument(
        "--variants",
        nargs="+",
        default=["RAJA_Seq", "RAJA_CUDA", "RAJA_HIP"],
        choices=sorted(VARIANTS),
        metavar="VARIANT",
    )
    run.add_argument(
        "--machines", nargs="+", default=list(MACHINES), choices=list(MACHINES),
        metavar="MACHINE",
    )
    run.add_argument("--groups", nargs="+", default=[], metavar="GROUP",
                     choices=[g.value for g in Group])
    run.add_argument("--kernels", nargs="+", default=[], metavar="KERNEL")
    run.add_argument("--features", nargs="+", default=[], metavar="FEATURE",
                     choices=[f.value for f in Feature])
    run.add_argument("--gpu-block-sizes", nargs="+", type=int, default=[256])
    run.add_argument("--execute", action="store_true",
                     help="really execute the NumPy kernels (capped size)")
    run.add_argument("--no-state-pool", action="store_true",
                     help="disable the kernel-state pool: allocate and set "
                          "up a fresh kernel instance per executed cell "
                          "instead of restoring a pooled snapshot")
    run.add_argument("--trials", type=int, default=1,
                     help="repeated measurements (applies the noise model)")
    run.add_argument("--csv", action="store_true",
                     help="also write RAJAPerf-style per-run CSV files")
    run.add_argument("--pack", action="store_true",
                     help="write profiles into a packed campaign.calipack "
                          "archive instead of loose .cali files")
    run.add_argument("--output-dir", default=".", help="where to write .cali files")
    run.add_argument("--paper", action="store_true",
                     help="use exactly the paper's Table III configuration")
    run.add_argument("--resume", action="store_true",
                     help="skip cells the campaign manifest marks complete")
    run.add_argument("--fail-fast", action="store_true",
                     help="abort on the first kernel error (no retry/isolation)")
    run.add_argument("--max-attempts", type=int, default=3,
                     help="attempts per kernel before it is marked failed")
    run.add_argument("--kernel-timeout", type=float, default=None, metavar="SECONDS",
                     help="per-kernel watchdog deadline")
    run.add_argument("--inject-faults", default=None, metavar="JSON",
                     help="fault-injection spec (JSON list; see repro.faults); "
                          "$REPRO_FAULTS is honored when this is unset")
    run.add_argument("--workers", type=int, default=1, metavar="N",
                     help="worker processes; N > 1 runs the campaign under "
                          "the crash-tolerant supervisor")
    run.add_argument("--heartbeat-timeout", type=float, default=30.0,
                     metavar="SECONDS",
                     help="kill and requeue a worker whose heartbeats stop "
                          "for this long (supervised mode)")
    run.add_argument("--shards", type=int, default=0, metavar="N",
                     help="partition the campaign across N self-healing "
                          "shard supervisors and merge their archives "
                          "(implies --pack; each shard runs --workers "
                          "processes)")
    run.add_argument("--shard-lease-timeout", type=float, default=30.0,
                     metavar="SECONDS",
                     help="declare a shard wedged when its lease goes "
                          "unrefreshed for this long (sharded mode)")

    analyze = sub.add_parser("analyze", help="Thicket EDA over .cali profiles")
    analyze.add_argument("files", nargs="+",
                         help=".cali files, .calipack archives, or "
                              "archive::entry member refs to compose")
    analyze.add_argument("--metric", default="Avg time/rank")
    analyze.add_argument("--tree", action="store_true", help="print region trees")
    analyze.add_argument("--strict", action="store_true",
                         help="fail on unreadable .cali files instead of "
                              "warning and analyzing the survivors")
    analyze.add_argument("--workers", type=int, default=1, metavar="N",
                         help="parallel ingest processes (sources split by "
                              "index ranges; result identical to serial)")
    analyze.add_argument("--no-cache", action="store_true",
                         help="skip the content-addressed ingest cache "
                              "(.ingest_cache/ beside the first source)")
    analyze.add_argument("--json", action="store_true",
                         help="emit a machine-readable JSON report (metric "
                              "matrix + load_errors ledger) instead of text")

    pack = sub.add_parser(
        "pack",
        help="pack a campaign's .cali files into one .calipack archive",
        description="Collapse every loose .cali in a campaign directory "
                    "into an append-only campaign.calipack (entries stored "
                    "verbatim, CRC32-indexed), rewrite manifest file refs, "
                    "and prime the ingest cache.",
    )
    pack.add_argument("directory", help="campaign output directory")
    pack.add_argument("--keep", action="store_true",
                      help="keep the loose .cali files (archive is a copy)")
    pack.add_argument("--no-cache", action="store_true",
                      help="do not prime the ingest cache after packing")

    unpack = sub.add_parser(
        "unpack",
        help="restore a .calipack archive back to loose .cali files",
    )
    unpack.add_argument("archive", help="the .calipack to unpack")
    unpack.add_argument("--dir", default=None,
                        help="where to write the files (default: beside "
                             "the archive)")
    unpack.add_argument("--keep", action="store_true",
                        help="keep the archive after unpacking")

    exp = sub.add_parser("experiment", help="regenerate paper artifacts")
    exp.add_argument("ids", nargs="*", default=[],
                     help="experiment ids (T1..T4, F1..F10); empty = all")
    exp.add_argument("--output-dir", default=None,
                     help="also write artifacts as .txt files here")

    cluster = sub.add_parser("cluster", help="Section IV similarity analysis")
    cluster.add_argument("--threshold", type=float, default=1.4)
    cluster.add_argument("--method", default="ward",
                         choices=["ward", "single", "complete", "average"])
    cluster.add_argument("--dendrogram", action="store_true")

    scaling = sub.add_parser("scaling", help="strong/weak scaling prediction")
    scaling.add_argument("kernel")
    scaling.add_argument("--machine", default="SPR-DDR",
                         choices=["SPR-DDR", "SPR-HBM"])
    scaling.add_argument("--mode", default="strong", choices=["strong", "weak"])
    scaling.add_argument("--size", default="32M")

    export = sub.add_parser("export", help="write figure data as CSV")
    export.add_argument("output_dir")

    report = sub.add_parser("report", help="runtime report of a .cali profile")
    report.add_argument("file")
    report.add_argument("--metric", default="Avg time/rank")
    report.add_argument("--top", type=int, default=0,
                        help="also print the N hottest regions")

    lst = sub.add_parser("list", help="enumerate kernels/variants/machines")
    lst.add_argument("what", choices=["kernels", "groups", "variants", "machines"])

    shard_status = sub.add_parser(
        "shard-status",
        help="progress of a sharded campaign's shards",
        description="Read the shard map, each shard's manifest and "
                    "liveness lease, and report per-shard ok/failed/"
                    "pending counts plus whether the merged campaign "
                    "archive exists yet.",
    )
    shard_status.add_argument("directory", help="campaign output directory")

    fsck = sub.add_parser(
        "fsck",
        help="verify .cali integrity footers in a campaign directory",
        description="Classify every .cali profile (ok/unsealed/truncated/"
                    "corrupt/orphaned), quarantine damaged and orphaned "
                    "files, and mark damaged cells for re-run so "
                    "'run --resume' heals the campaign.",
    )
    fsck.add_argument("directory", help="campaign output directory")
    fsck.add_argument("--dry-run", action="store_true",
                      help="report only: no quarantine, no manifest changes")
    fsck.add_argument("--no-rerun", action="store_true",
                      help="quarantine damaged files but leave the manifest "
                           "alone (resume will NOT re-produce them)")

    chaos = sub.add_parser(
        "chaos",
        help="deterministic crash-consistency trials over every kill point",
        description="For every registered crash point, run a small "
                    "campaign, kill it mid-write (os._exit, optionally "
                    "with a torn tmp file), then fsck + run --resume + "
                    "analyze, and machine-check that no sealed data is "
                    "lost and the recovered Thicket frames equal an "
                    "uncrashed golden run. Trials replay from --seed.",
    )
    chaos.add_argument("--seed", type=int, default=0,
                       help="seeds every trial's strike plan and torn-write "
                            "prefix (same seed = same trials)")
    chaos.add_argument("--trials-per-point", type=int, default=1,
                       help="strike plans per (point, mode); later trials "
                            "hit deeper occurrences / torn variants")
    chaos.add_argument("--points", nargs="+", default=None, metavar="POINT",
                       help="restrict to these crash points (default: all; "
                            "see 'list' of points in the JSON report)")
    chaos.add_argument("--modes", nargs="+", default=None,
                       choices=["serial", "supervised", "sharded"],
                       help="campaign modes to trial (default: all)")
    chaos.add_argument("--report", default=None, metavar="FILE",
                       help="also write the JSON invariant report here")
    chaos.add_argument("--workdir", default=None,
                       help="where trial campaigns live (default: a "
                            "temporary directory)")
    chaos.add_argument("--keep", action="store_true",
                       help="keep trial directories for post-mortem")
    chaos.add_argument("--self-test", action="store_true",
                       help="instead of trials, suppress one repair on "
                            "purpose and assert the invariant checker "
                            "catches the loss")

    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    from contextlib import nullcontext

    from repro.faults import FaultInjector
    from repro.suite.errors import CampaignLockedError
    from repro.suite.executor import SuiteExecutor

    try:
        params = RunParams(
            problem_size=parse_size(args.size),
            reps=args.reps,
            variants=tuple(args.variants),
            machines=tuple(args.machines),
            groups=tuple(Group(g) for g in args.groups),
            kernels=tuple(args.kernels),
            features=tuple(Feature(f) for f in args.features),
            gpu_block_sizes=tuple(args.gpu_block_sizes),
            execute=args.execute,
            state_pool=not args.no_state_pool,
            trials=args.trials,
            write_csv=args.csv,
            # The merge tree combines per-shard archives, so sharded
            # campaigns are always packed.
            pack=args.pack or args.shards > 0,
            output_dir=args.output_dir,
            resume=args.resume,
            fail_fast=args.fail_fast,
            max_attempts=args.max_attempts,
            kernel_deadline_s=args.kernel_timeout,
            workers=args.workers,
            heartbeat_timeout=args.heartbeat_timeout,
            shards=args.shards,
            shard_lease_timeout=args.shard_lease_timeout,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exitcodes.USAGE
    try:
        if args.inject_faults:
            injector = FaultInjector.from_config(args.inject_faults)
        else:
            injector = FaultInjector.from_env()
    except ValueError as exc:
        print(f"error: invalid fault-injection spec: {exc}", file=sys.stderr)
        return exitcodes.USAGE
    executor = SuiteExecutor(params)
    try:
        with injector if injector is not None else nullcontext():
            if args.paper:
                result = executor.run_paper_configuration(write_files=True)
            else:
                result = executor.run(write_files=True)
    except CampaignLockedError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exitcodes.CAMPAIGN_LOCKED
    for path in result.cali_paths:
        print(f"wrote {path}")
    print(f"{len(result.profiles)} profiles, "
          f"{len(executor.selected_kernels())} kernels each")
    print(result.report.summary())
    if result.report.interrupted:
        return exitcodes.INTERRUPTED
    return exitcodes.OK if result.report.clean else exitcodes.UNCLEAN_RUN


def _cmd_analyze(args: argparse.Namespace) -> int:
    import json as _json
    import warnings as _warnings

    from repro.thicket import ProfileLoadWarning, Thicket
    from repro.thicket.ingest_cache import default_cache_dir

    cache = None if args.no_cache else default_cache_dir(args.files[0])
    with _warnings.catch_warnings(record=True) as caught:
        _warnings.simplefilter("always", ProfileLoadWarning)
        thicket = Thicket.from_caliperreader(
            args.files,
            on_error="raise" if args.strict else "warn",
            workers=args.workers,
            cache=cache,
        )
    if not args.json:
        for warning in caught:
            print(f"warning: {warning.message}", file=sys.stderr)
    # Degraded composition: some sources failed to load and the frames
    # cover only the survivors. Scripted pipelines read it from the JSON
    # ledger and from the distinct exit code.
    degraded = bool(thicket.load_errors)
    exit_code = exitcodes.DEGRADED_ANALYSIS if degraded else exitcodes.OK
    if args.json:
        regions, profiles, matrix = thicket.metric_matrix(
            args.metric, region_filter=lambda s: "_" in s
        )
        print(_json.dumps(
            {
                "profiles": [str(p) for p in thicket.profiles],
                "metric": args.metric,
                "regions": list(regions),
                "columns": [str(p) for p in profiles],
                "matrix": [[float(v) for v in row] for row in matrix],
                "degraded": degraded,
                "load_errors": {
                    "count": len(thicket.load_errors),
                    "sources": [
                        {"source": src, "reason": reason}
                        for src, reason in thicket.load_errors
                    ],
                },
            },
            indent=1,
        ))
        return exit_code
    print(thicket)
    if args.tree:
        for profile in thicket.profiles:
            print()
            print(thicket.tree(metric=args.metric, profile=profile))
        return exit_code
    regions, profiles, matrix = thicket.metric_matrix(
        args.metric, region_filter=lambda s: "_" in s
    )
    header = f"{'Kernel':28s} " + " ".join(f"{str(p):>26s}" for p in profiles)
    print(header)
    for i, region in enumerate(regions):
        cells = " ".join(f"{v:>26.6g}" for v in matrix[i])
        print(f"{region:28s} {cells}")
    if degraded:
        print(
            f"analysis degraded: {len(thicket.load_errors)} source(s) "
            "failed to load (see warnings)",
            file=sys.stderr,
        )
    return exit_code


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.reporting import DESCRIPTIONS, run_all_experiments, run_experiment

    if not args.ids:
        results = run_all_experiments(output_dir=args.output_dir)
        for key, text in results.items():
            print(f"===== {key}: {DESCRIPTIONS[key]} =====")
            print(text)
            print()
        return 0
    for exp_id in args.ids:
        print(run_experiment(exp_id))
        print()
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    from repro.analysis import run_similarity_analysis
    from repro.reporting import fig6, fig7, fig8

    result = run_similarity_analysis(threshold=args.threshold, method=args.method)
    print(f"{len(result.kernel_names)} kernels, {result.num_clusters} clusters "
          f"({args.method} @ {args.threshold})\n")
    print(fig7(result))
    print()
    print(fig8(result))
    if args.dendrogram:
        print()
        print(fig6(result))
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    from repro.analysis import render_curve, strong_scaling, weak_scaling
    from repro.machines.registry import get_machine
    from repro.suite.registry import get_kernel_class, make_kernel

    machine = get_machine(args.machine)
    if args.mode == "strong":
        kernel = make_kernel(args.kernel, problem_size=parse_size(args.size))
        curve = strong_scaling(kernel, machine)
    else:
        curve = weak_scaling(get_kernel_class(args.kernel), machine)
    print(render_curve(curve))
    print(f"parallel efficiency drops below 50% at {curve.saturation_cores()} cores")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.reporting import export_all

    for path in export_all(args.output_dir):
        print(f"wrote {path}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.caliper import hot_regions, read_cali, runtime_report

    profile = read_cali(args.file)
    print(runtime_report(profile, metric=args.metric))
    if args.top:
        print(f"\nTop {args.top} regions by exclusive {args.metric}:")
        for name, value in hot_regions(profile, metric=args.metric, top=args.top):
            print(f"  {value:>14.6g}  {name}")
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    if args.what == "kernels":
        for cls in all_kernel_classes():
            print(f"{cls.class_full_name():30s} {cls.COMPLEXITY.value:8s} "
                  f"{','.join(sorted(f.value for f in cls.FEATURES))}")
    elif args.what == "groups":
        for group in Group:
            print(f"{group.value:12s} {group.description}")
    elif args.what == "variants":
        for name in sorted(VARIANTS):
            print(name)
    else:
        for machine in list_machines():
            print(machine)
    return 0


def _cmd_pack(args: argparse.Namespace) -> int:
    from repro.caliper.calipack import CalipackError, pack_directory
    from repro.thicket import Thicket
    from repro.thicket.ingest_cache import CACHE_DIR_NAME

    try:
        archive, entries = pack_directory(args.directory, remove=not args.keep)
    except (CalipackError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"packed {len(entries)} profile(s) into {archive}")
    if not args.no_cache and entries:
        # Packing read every payload anyway: compose once now so the next
        # analyze over the archive is a pure cache load.
        import warnings as _warnings

        from pathlib import Path

        with _warnings.catch_warnings():
            _warnings.simplefilter("ignore")
            try:
                Thicket.from_caliperreader(
                    str(archive),
                    on_error="warn",
                    cache=Path(args.directory) / CACHE_DIR_NAME,
                )
            except ValueError:
                pass  # nothing readable: pack succeeded, cache stays cold
        print(f"primed ingest cache in {Path(args.directory) / CACHE_DIR_NAME}")
    return 0


def _cmd_unpack(args: argparse.Namespace) -> int:
    from repro.caliper.calipack import CalipackError, unpack_archive

    try:
        written = unpack_archive(
            args.archive, directory=args.dir, remove=not args.keep
        )
    except (CalipackError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    for path in written:
        print(f"wrote {path}")
    return 0


def _cmd_shard_status(args: argparse.Namespace) -> int:
    from repro.suite.coordinator import MAP_NAME, shard_status

    from pathlib import Path

    print(shard_status(args.directory))
    # A readable shard map is the contract; anything else (not sharded,
    # or a map fsck must repair) is reported but exits unclean.
    return (
        exitcodes.OK
        if (Path(args.directory) / MAP_NAME).exists()
        else exitcodes.UNCLEAN_RUN
    )


def _cmd_fsck(args: argparse.Namespace) -> int:
    from repro.suite.fsck import fsck_directory

    report = fsck_directory(
        args.directory,
        quarantine=not args.dry_run,
        mark_rerun=not (args.dry_run or args.no_rerun),
    )
    print(report.summary())
    return exitcodes.OK if report.clean else exitcodes.UNCLEAN_RUN


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path

    from repro.chaos.runner import ChaosRunner

    try:
        runner = ChaosRunner(
            seed=args.seed,
            trials_per_point=args.trials_per_point,
            points=args.points,
            modes=args.modes,
            workdir=args.workdir,
            keep=args.keep,
            progress=lambda msg: print(msg, file=sys.stderr),
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exitcodes.USAGE

    if args.self_test:
        result = runner.self_test()
        print(_json.dumps(result, indent=1))
        if not result["ok"]:
            print(
                "chaos self-test FAILED: a suppressed repair went "
                "undetected — the invariant checker is broken",
                file=sys.stderr,
            )
            return exitcodes.INVARIANT_VIOLATION
        return exitcodes.OK

    report = runner.run()
    out = report.to_json()
    print(out)
    if args.report:
        Path(args.report).write_text(out + "\n")
    if not report.ok:
        print(
            f"chaos: {len(report.violations)} trial(s) violated "
            f"invariants, {len(report.uncovered_points())} point(s) "
            "never struck",
            file=sys.stderr,
        )
        return exitcodes.INVARIANT_VIOLATION
    return exitcodes.OK


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "analyze": _cmd_analyze,
        "experiment": _cmd_experiment,
        "cluster": _cmd_cluster,
        "scaling": _cmd_scaling,
        "export": _cmd_export,
        "report": _cmd_report,
        "list": _cmd_list,
        "shard-status": _cmd_shard_status,
        "fsck": _cmd_fsck,
        "pack": _cmd_pack,
        "unpack": _cmd_unpack,
        "chaos": _cmd_chaos,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
