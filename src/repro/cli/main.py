"""``rajaperf-sim``: RAJAPerf-style command line for the reproduction.

Subcommands mirror how the paper's pipeline is driven:

``run``
    Run the suite (model predictions; optionally real NumPy execution)
    and write one ``.cali`` profile per (machine, variant, tuning) —
    RAJAPerf's run + Caliper integration.
``analyze``
    Read ``.cali`` profiles into Thicket and print the region tree or a
    metric matrix — the Thicket EDA step.
``experiment``
    Regenerate a paper artifact by id (T1-T4, F1-F10) or everything.
``cluster``
    Run the Section IV similarity analysis and print Figs. 6-8.
``scaling``
    Predict strong/weak scaling of a kernel on a CPU machine.
``export``
    Write every figure's underlying data as plot-ready CSV files.
``report``
    Caliper-style runtime report of a ``.cali`` profile.
``pack`` / ``unpack``
    Convert a campaign between loose ``.cali`` files and a packed
    ``.calipack`` archive (``pack`` also primes the ingest cache).
``list``
    Enumerate kernels, groups, variants, or machines (RAJAPerf's
    ``--print-kernels`` etc.).
``shard-status``
    Progress of a sharded campaign (``run --shards N``): per-shard
    ok/failed/pending counts, liveness leases, merge state.
``chaos``
    Crash-consistency chaos trials: kill the pipeline at every durable
    write boundary and machine-check that fsck + resume + analyze
    converge (see docs/architecture.md).
``serve`` / ``submit`` / ``jobs`` / ``cancel``
    The durable campaign job service: a crash-safe job queue with a
    lease-based scheduler and admission control, served over a local
    HTTP/JSON API (see docs/architecture.md, "Campaign service").
``gc``
    Crash-safe retention over a service root: tombstoned GC of terminal
    jobs by age/count/tenant-bytes policy, archive compaction, pin and
    unpin (see docs/architecture.md, "Retention, compaction & disk
    health").

Exit codes are standardized in :mod:`repro.cli.exitcodes`.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.cli import exitcodes
from repro.machines.registry import MACHINES, list_machines
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.registry import all_kernel_classes
from repro.suite.run_params import RunParams
from repro.suite.variants import VARIANTS
from repro.util.units import parse_size


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rajaperf-sim",
        description="RAJA Performance Suite reproduction (SC'24 paper pipeline).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run the suite and emit .cali profiles")
    run.add_argument("--size", default="32M", help="problem size per node (e.g. 32M)")
    run.add_argument("--reps", type=int, default=1, help="repetitions per kernel")
    run.add_argument(
        "--variants",
        nargs="+",
        default=["RAJA_Seq", "RAJA_CUDA", "RAJA_HIP"],
        choices=sorted(VARIANTS),
        metavar="VARIANT",
    )
    run.add_argument(
        "--machines", nargs="+", default=list(MACHINES), choices=list(MACHINES),
        metavar="MACHINE",
    )
    run.add_argument("--groups", nargs="+", default=[], metavar="GROUP",
                     choices=[g.value for g in Group])
    run.add_argument("--kernels", nargs="+", default=[], metavar="KERNEL")
    run.add_argument("--features", nargs="+", default=[], metavar="FEATURE",
                     choices=[f.value for f in Feature])
    run.add_argument("--gpu-block-sizes", nargs="+", type=int, default=[256])
    run.add_argument("--execute", action="store_true",
                     help="really execute the NumPy kernels (capped size)")
    run.add_argument("--no-state-pool", action="store_true",
                     help="disable the kernel-state pool: allocate and set "
                          "up a fresh kernel instance per executed cell "
                          "instead of restoring a pooled snapshot")
    run.add_argument("--trials", type=int, default=1,
                     help="repeated measurements (applies the noise model)")
    run.add_argument("--csv", action="store_true",
                     help="also write RAJAPerf-style per-run CSV files")
    run.add_argument("--pack", action="store_true",
                     help="write profiles into a packed campaign.calipack "
                          "archive instead of loose .cali files")
    run.add_argument("--output-dir", default=".", help="where to write .cali files")
    run.add_argument("--paper", action="store_true",
                     help="use exactly the paper's Table III configuration")
    run.add_argument("--resume", action="store_true",
                     help="skip cells the campaign manifest marks complete")
    run.add_argument("--fail-fast", action="store_true",
                     help="abort on the first kernel error (no retry/isolation)")
    run.add_argument("--max-attempts", type=int, default=3,
                     help="attempts per kernel before it is marked failed")
    run.add_argument("--kernel-timeout", type=float, default=None, metavar="SECONDS",
                     help="per-kernel watchdog deadline")
    run.add_argument("--inject-faults", default=None, metavar="JSON",
                     help="fault-injection spec (JSON list; see repro.faults); "
                          "$REPRO_FAULTS is honored when this is unset")
    run.add_argument("--workers", type=int, default=1, metavar="N",
                     help="worker processes; N > 1 runs the campaign under "
                          "the crash-tolerant supervisor")
    run.add_argument("--heartbeat-timeout", type=float, default=30.0,
                     metavar="SECONDS",
                     help="kill and requeue a worker whose heartbeats stop "
                          "for this long (supervised mode)")
    run.add_argument("--shards", type=int, default=0, metavar="N",
                     help="partition the campaign across N self-healing "
                          "shard supervisors and merge their archives "
                          "(implies --pack; each shard runs --workers "
                          "processes)")
    run.add_argument("--shard-lease-timeout", type=float, default=30.0,
                     metavar="SECONDS",
                     help="declare a shard wedged when its lease goes "
                          "unrefreshed for this long (sharded mode)")
    run.add_argument("--schedule", choices=["lpt", "fifo"], default="lpt",
                     help="cell dispatch order: 'lpt' sorts and shards "
                          "cells by estimated cost (longest first), "
                          "'fifo' keeps the seed sweep order")
    run.add_argument("--batch-cells", default="auto", metavar="N",
                     help="group up to N cheap cells into one dispatch "
                          "message ('auto' sizes batches from the cost "
                          "model; 1 disables batching)")
    run.add_argument("--no-shm", action="store_true",
                     help="disable the shared-memory result transport "
                          "and send profiles over the result queue")
    run.add_argument("--cost-from", default=None, metavar="MANIFEST",
                     help="override the analytic cost model with measured "
                          "cell times from a prior campaign's manifest")

    analyze = sub.add_parser("analyze", help="Thicket EDA over .cali profiles")
    analyze.add_argument("files", nargs="+",
                         help=".cali files, .calipack archives, or "
                              "archive::entry member refs to compose")
    analyze.add_argument("--metric", default="Avg time/rank")
    analyze.add_argument("--tree", action="store_true", help="print region trees")
    analyze.add_argument("--strict", action="store_true",
                         help="fail on unreadable .cali files instead of "
                              "warning and analyzing the survivors")
    analyze.add_argument("--workers", type=int, default=1, metavar="N",
                         help="parallel ingest processes (sources split by "
                              "index ranges; result identical to serial)")
    analyze.add_argument("--no-cache", action="store_true",
                         help="skip the content-addressed ingest cache "
                              "(.ingest_cache/ beside the first source)")
    analyze.add_argument("--json", action="store_true",
                         help="emit a machine-readable JSON report (metric "
                              "matrix + load_errors ledger) instead of text")
    analyze.add_argument("--where", default=None, metavar="EXPR",
                         help="metadata filter expression, pushed down into "
                              "the archive index so rejected entries are "
                              "never parsed (e.g. \"variant == 'RAJA_CUDA' "
                              "and machine != 'lassen'\")")
    analyze.add_argument("--incremental", action="store_true",
                         help="reuse the longest cached prefix of the "
                              "source set and compose only newly appended "
                              "segments (requires the ingest cache)")

    pack = sub.add_parser(
        "pack",
        help="pack a campaign's .cali files into one .calipack archive",
        description="Collapse every loose .cali in a campaign directory "
                    "into an append-only campaign.calipack (entries stored "
                    "verbatim, CRC32-indexed), rewrite manifest file refs, "
                    "and prime the ingest cache.",
    )
    pack.add_argument("directory", help="campaign output directory")
    pack.add_argument("--keep", action="store_true",
                      help="keep the loose .cali files (archive is a copy)")
    pack.add_argument("--no-cache", action="store_true",
                      help="do not prime the ingest cache after packing")

    unpack = sub.add_parser(
        "unpack",
        help="restore a .calipack archive back to loose .cali files",
    )
    unpack.add_argument("archive", help="the .calipack to unpack")
    unpack.add_argument("--dir", default=None,
                        help="where to write the files (default: beside "
                             "the archive)")
    unpack.add_argument("--keep", action="store_true",
                        help="keep the archive after unpacking")

    exp = sub.add_parser("experiment", help="regenerate paper artifacts")
    exp.add_argument("ids", nargs="*", default=[],
                     help="experiment ids (T1..T4, F1..F10); empty = all")
    exp.add_argument("--output-dir", default=None,
                     help="also write artifacts as .txt files here")

    cluster = sub.add_parser("cluster", help="Section IV similarity analysis")
    cluster.add_argument("--threshold", type=float, default=1.4)
    cluster.add_argument("--method", default="ward",
                         choices=["ward", "single", "complete", "average"])
    cluster.add_argument("--dendrogram", action="store_true")

    scaling = sub.add_parser("scaling", help="strong/weak scaling prediction")
    scaling.add_argument("kernel")
    scaling.add_argument("--machine", default="SPR-DDR",
                         choices=["SPR-DDR", "SPR-HBM"])
    scaling.add_argument("--mode", default="strong", choices=["strong", "weak"])
    scaling.add_argument("--size", default="32M")

    export = sub.add_parser("export", help="write figure data as CSV")
    export.add_argument("output_dir")

    report = sub.add_parser("report", help="runtime report of a .cali profile")
    report.add_argument("file")
    report.add_argument("--metric", default="Avg time/rank")
    report.add_argument("--top", type=int, default=0,
                        help="also print the N hottest regions")

    lst = sub.add_parser("list", help="enumerate kernels/variants/machines")
    lst.add_argument("what", choices=["kernels", "groups", "variants", "machines"])

    shard_status = sub.add_parser(
        "shard-status",
        help="progress of a sharded campaign's shards",
        description="Read the shard map, each shard's manifest and "
                    "liveness lease, and report per-shard ok/failed/"
                    "pending counts plus whether the merged campaign "
                    "archive exists yet.",
    )
    shard_status.add_argument("directory", help="campaign output directory")
    shard_status.add_argument(
        "--lease-timeout", type=float, default=30.0,
        help="seconds after which an unrefreshed shard lease counts as "
             "expired (exit 4 when the shard still has pending cells)",
    )

    fsck = sub.add_parser(
        "fsck",
        help="verify .cali integrity footers in a campaign directory",
        description="Classify every .cali profile (ok/unsealed/truncated/"
                    "corrupt/orphaned), quarantine damaged and orphaned "
                    "files, and mark damaged cells for re-run so "
                    "'run --resume' heals the campaign.",
    )
    fsck.add_argument("directory", help="campaign output directory")
    fsck.add_argument("--dry-run", action="store_true",
                      help="report only: no quarantine, no manifest changes")
    fsck.add_argument("--no-rerun", action="store_true",
                      help="quarantine damaged files but leave the manifest "
                           "alone (resume will NOT re-produce them)")

    chaos = sub.add_parser(
        "chaos",
        help="deterministic crash-consistency trials over every kill point",
        description="For every registered crash point, run a small "
                    "campaign, kill it mid-write (os._exit, optionally "
                    "with a torn tmp file), then fsck + run --resume + "
                    "analyze, and machine-check that no sealed data is "
                    "lost and the recovered Thicket frames equal an "
                    "uncrashed golden run. Trials replay from --seed.",
    )
    chaos.add_argument("--seed", type=int, default=0,
                       help="seeds every trial's strike plan and torn-write "
                            "prefix (same seed = same trials)")
    chaos.add_argument("--trials-per-point", type=int, default=1,
                       help="strike plans per (point, mode); later trials "
                            "hit deeper occurrences / torn variants")
    chaos.add_argument("--points", nargs="+", default=None, metavar="POINT",
                       help="restrict to these crash points (default: all; "
                            "see 'list' of points in the JSON report)")
    chaos.add_argument("--modes", nargs="+", default=None,
                       choices=["serial", "supervised", "sharded", "service"],
                       help="campaign modes to trial (default: all)")
    chaos.add_argument("--report", default=None, metavar="FILE",
                       help="also write the JSON invariant report here")
    chaos.add_argument("--workdir", default=None,
                       help="where trial campaigns live (default: a "
                            "temporary directory)")
    chaos.add_argument("--keep", action="store_true",
                       help="keep trial directories for post-mortem")
    chaos.add_argument("--self-test", action="store_true",
                       help="instead of trials, suppress one repair on "
                            "purpose and assert the invariant checker "
                            "catches the loss")

    serve = sub.add_parser(
        "serve",
        help="run the durable campaign job service daemon",
        description="Serve the job store under ROOT over a local "
                    "HTTP/JSON API and run queued jobs as campaigns in "
                    "campaigns/<job-id>/. SIGTERM drains gracefully "
                    "(running jobs requeue with --resume); after a hard "
                    "kill, the next start recovers every job with no "
                    "lost or duplicated work.",
    )
    serve.add_argument("root", help="service root directory (jobs/ + campaigns/)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642,
                       help="TCP port (0 picks a free one and prints it)")
    serve.add_argument("--max-parallel", type=int, default=1,
                       help="jobs run concurrently by this daemon")
    serve.add_argument("--max-job-attempts", type=int, default=3,
                       help="RUNNING attempts before a job parks as ORPHANED")
    serve.add_argument("--max-queue-depth", type=int, default=64,
                       help="active jobs service-wide before admission "
                            "rejects (0 = reject everything)")
    serve.add_argument("--max-queued-per-tenant", type=int, default=16,
                       help="active jobs per tenant before admission rejects")
    serve.add_argument("--max-tenant-bytes", type=int, default=None,
                       help="campaign bytes a tenant may hold on disk "
                            "(default: unlimited)")
    serve.add_argument("--soft-free-bytes", type=int, default=None,
                       help="soft disk watermark: admission rejects every "
                            "submission and GC runs immediately when the "
                            "filesystem's free bytes fall to this "
                            "($REPRO_DISK_SOFT_BYTES when unset)")
    serve.add_argument("--hard-free-bytes", type=int, default=None,
                       help="hard disk watermark: additionally pause "
                            "claiming new jobs until space is reclaimed "
                            "($REPRO_DISK_HARD_BYTES when unset)")
    serve.add_argument("--retention-max-age", type=float, default=None,
                       metavar="SECONDS",
                       help="GC terminal jobs older than this")
    serve.add_argument("--retention-keep", type=int, default=None,
                       metavar="N",
                       help="GC oldest terminal jobs beyond the newest N "
                            "(pinned jobs are never collected)")
    serve.add_argument("--retention-tenant-bytes", type=int, default=None,
                       help="GC a tenant's oldest terminal jobs until its "
                            "campaign bytes fit this budget")
    serve.add_argument("--retention-interval", type=float, default=60.0,
                       metavar="SECONDS",
                       help="cadence of background GC passes (GC also runs "
                            "immediately under disk pressure)")
    serve.add_argument("--scrub-interval", type=float, default=None,
                       metavar="SECONDS",
                       help="run the background scrubber at this cadence, "
                            "re-verifying every CRC seal under the root "
                            "(default: no scrubbing)")

    gc_cmd = sub.add_parser(
        "gc",
        help="crash-safe retention GC over a service root",
        description="Finish any interrupted reclamation a sealed "
                    "tombstone proves, then collect terminal jobs the "
                    "policy condemns via two-phase tombstone deletes — a "
                    "crash at any byte leaves every job fully live or "
                    "provably condemned, never half-deleted. Non-terminal "
                    "and pinned jobs are never collected. --compact also "
                    "rewrites surviving sealed archives without "
                    "superseded duplicate frames or damaged entries.",
    )
    gc_cmd.add_argument("root", help="service root directory (jobs/ + campaigns/)")
    gc_cmd.add_argument("--dry-run", action="store_true",
                        help="report what would be collected; write nothing")
    gc_cmd.add_argument("--max-age", type=float, default=None,
                        metavar="SECONDS",
                        help="collect terminal jobs older than this")
    gc_cmd.add_argument("--keep", type=int, default=None, metavar="N",
                        help="collect oldest terminal jobs beyond the "
                             "newest N")
    gc_cmd.add_argument("--max-tenant-bytes", type=int, default=None,
                        help="collect a tenant's oldest terminal jobs "
                             "until its campaign bytes fit this budget")
    gc_cmd.add_argument("--compact", action="store_true",
                        help="also compact surviving terminal jobs' "
                             "campaign archives")
    gc_cmd.add_argument("--pin", nargs="+", default=[], metavar="JOB_ID",
                        help="exempt these jobs from GC before the pass")
    gc_cmd.add_argument("--unpin", nargs="+", default=[], metavar="JOB_ID",
                        help="clear these jobs' GC exemption before the pass")
    gc_cmd.add_argument("--json", action="store_true",
                        help="emit the machine-readable GC report")

    submit = sub.add_parser(
        "submit",
        help="submit a campaign job to the service",
        description="Queue one campaign job, either against a running "
                    "daemon (--url) or straight into a service root "
                    "(--root; admission rules still apply). A rejected "
                    "submission exits 6 with the reason on stderr.",
    )
    _service_target(submit)
    submit.add_argument("--tenant", default="default")
    submit.add_argument("--job-id", default=None,
                        help="caller-chosen id (makes submission "
                             "idempotent across retries)")
    submit.add_argument("--size", default="32M", help="problem size (e.g. 1K)")
    submit.add_argument("--reps", type=int, default=1)
    submit.add_argument("--variants", nargs="+",
                        default=["Base_Seq", "RAJA_Seq"],
                        choices=sorted(VARIANTS), metavar="VARIANT")
    submit.add_argument("--machines", nargs="+", default=["SPR-DDR"],
                        choices=list(MACHINES), metavar="MACHINE")
    submit.add_argument("--kernels", nargs="+", default=[], metavar="KERNEL")
    submit.add_argument("--trials", type=int, default=1)
    submit.add_argument("--workers", type=int, default=1)
    submit.add_argument("--shards", type=int, default=0)
    submit.add_argument("--pack", action="store_true")
    submit.add_argument("--execute", action="store_true")
    submit.add_argument("--max-attempts", type=int, default=3,
                        help="per-kernel retry budget inside the campaign")
    submit.add_argument("--wait", action="store_true",
                        help="block until the job is terminal; exit "
                             "reflects its final state")
    submit.add_argument("--timeout", type=float, default=600.0,
                        help="--wait deadline in seconds")
    _service_admission_flags(submit)

    jobs = sub.add_parser(
        "jobs",
        help="list jobs, show one job, or fetch its analyze result",
        description="Query the job store (--url for a daemon, --root "
                    "for the directory). --job narrows to one id; "
                    "--result prints its analyze JSON, byte-equal to "
                    "'analyze --json' on the campaign directory, exit 4 "
                    "when degraded. Unknown job ids exit 7.",
    )
    _service_target(jobs)
    jobs.add_argument("--tenant", default=None, help="filter by tenant")
    jobs.add_argument("--state", default=None, help="filter by state")
    jobs.add_argument("--job", default=None, metavar="JOB_ID",
                      help="show a single job instead of the list")
    jobs.add_argument("--result", action="store_true",
                      help="print the job's analyze JSON (requires --job)")
    jobs.add_argument("--metric", default="Avg time/rank")
    jobs.add_argument("--wait", action="store_true",
                      help="with --job: block until the job is terminal")
    jobs.add_argument("--timeout", type=float, default=600.0,
                      help="--wait deadline in seconds")

    cancel = sub.add_parser(
        "cancel",
        help="request cancellation of a service job",
        description="Drop the job's cancel marker; the scheduler stops "
                    "it on its next tick. Unknown job ids exit 7.",
    )
    _service_target(cancel)
    cancel.add_argument("job_id", help="id of the job to cancel")

    return parser


def _service_target(parser: argparse.ArgumentParser) -> None:
    target = parser.add_mutually_exclusive_group(required=True)
    target.add_argument("--url", default=None,
                        help="base URL of a running daemon "
                             "(e.g. http://127.0.0.1:8642)")
    target.add_argument("--root", default=None,
                        help="operate directly on a service root directory")


def _service_admission_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--max-queue-depth", type=int, default=64,
                        help=argparse.SUPPRESS)
    parser.add_argument("--max-queued-per-tenant", type=int, default=16,
                        help=argparse.SUPPRESS)
    parser.add_argument("--max-tenant-bytes", type=int, default=None,
                        help=argparse.SUPPRESS)


def _cmd_run(args: argparse.Namespace) -> int:
    from contextlib import nullcontext

    from repro.faults import FaultInjector
    from repro.suite.errors import CampaignLockedError
    from repro.suite.executor import SuiteExecutor

    try:
        params = RunParams(
            problem_size=parse_size(args.size),
            reps=args.reps,
            variants=tuple(args.variants),
            machines=tuple(args.machines),
            groups=tuple(Group(g) for g in args.groups),
            kernels=tuple(args.kernels),
            features=tuple(Feature(f) for f in args.features),
            gpu_block_sizes=tuple(args.gpu_block_sizes),
            execute=args.execute,
            state_pool=not args.no_state_pool,
            trials=args.trials,
            write_csv=args.csv,
            # The merge tree combines per-shard archives, so sharded
            # campaigns are always packed.
            pack=args.pack or args.shards > 0,
            output_dir=args.output_dir,
            resume=args.resume,
            fail_fast=args.fail_fast,
            max_attempts=args.max_attempts,
            kernel_deadline_s=args.kernel_timeout,
            workers=args.workers,
            heartbeat_timeout=args.heartbeat_timeout,
            shards=args.shards,
            shard_lease_timeout=args.shard_lease_timeout,
            schedule=args.schedule,
            batch_cells=args.batch_cells,
            shm=not args.no_shm,
            cost_from=args.cost_from,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exitcodes.USAGE
    try:
        if args.inject_faults:
            injector = FaultInjector.from_config(args.inject_faults)
        else:
            injector = FaultInjector.from_env()
    except ValueError as exc:
        print(f"error: invalid fault-injection spec: {exc}", file=sys.stderr)
        return exitcodes.USAGE
    executor = SuiteExecutor(params)
    try:
        with injector if injector is not None else nullcontext():
            if args.paper:
                result = executor.run_paper_configuration(write_files=True)
            else:
                result = executor.run(write_files=True)
    except CampaignLockedError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exitcodes.CAMPAIGN_LOCKED
    for path in result.cali_paths:
        print(f"wrote {path}")
    print(f"{len(result.profiles)} profiles, "
          f"{len(executor.selected_kernels())} kernels each")
    print(result.report.summary())
    if result.report.interrupted:
        return exitcodes.INTERRUPTED
    return exitcodes.OK if result.report.clean else exitcodes.UNCLEAN_RUN


def _cmd_analyze(args: argparse.Namespace) -> int:
    import json as _json
    import warnings as _warnings

    from repro.dataframe import parse_expr
    from repro.thicket import ProfileLoadWarning, Thicket
    from repro.thicket.ingest_cache import default_cache_dir

    if args.incremental and args.no_cache:
        print("error: --incremental requires the ingest cache "
              "(drop --no-cache)", file=sys.stderr)
        return exitcodes.USAGE
    where = None
    if args.where is not None:
        try:
            where = parse_expr(args.where)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return exitcodes.USAGE
    cache = None if args.no_cache else default_cache_dir(args.files[0])
    with _warnings.catch_warnings(record=True) as caught:
        _warnings.simplefilter("always", ProfileLoadWarning)
        thicket = Thicket.from_caliperreader(
            args.files,
            on_error="raise" if args.strict else "warn",
            workers=args.workers,
            cache=cache,
            where=where,
            incremental=args.incremental,
        )
    if not args.json:
        for warning in caught:
            print(f"warning: {warning.message}", file=sys.stderr)
    # Degraded composition: some sources failed to load and the frames
    # cover only the survivors. Scripted pipelines read it from the JSON
    # ledger and from the distinct exit code.
    degraded = bool(thicket.load_errors)
    exit_code = exitcodes.DEGRADED_ANALYSIS if degraded else exitcodes.OK
    if args.json:
        # The payload shape is shared with the service's result endpoint
        # (repro.service.api), which is what keeps a service job result
        # byte-equal to a direct analyze of its campaign directory.
        from repro.service.api import analysis_payload

        print(_json.dumps(analysis_payload(thicket, args.metric), indent=1))
        return exit_code
    print(thicket)
    if args.tree:
        for profile in thicket.profiles:
            print()
            print(thicket.tree(metric=args.metric, profile=profile))
        return exit_code
    regions, profiles, matrix = thicket.metric_matrix(
        args.metric, region_filter=lambda s: "_" in s
    )
    header = f"{'Kernel':28s} " + " ".join(f"{str(p):>26s}" for p in profiles)
    print(header)
    for i, region in enumerate(regions):
        cells = " ".join(f"{v:>26.6g}" for v in matrix[i])
        print(f"{region:28s} {cells}")
    if degraded:
        print(
            f"analysis degraded: {len(thicket.load_errors)} source(s) "
            "failed to load (see warnings)",
            file=sys.stderr,
        )
    return exit_code


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.reporting import DESCRIPTIONS, run_all_experiments, run_experiment

    if not args.ids:
        results = run_all_experiments(output_dir=args.output_dir)
        for key, text in results.items():
            print(f"===== {key}: {DESCRIPTIONS[key]} =====")
            print(text)
            print()
        return 0
    for exp_id in args.ids:
        print(run_experiment(exp_id))
        print()
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    from repro.analysis import run_similarity_analysis
    from repro.reporting import fig6, fig7, fig8

    result = run_similarity_analysis(threshold=args.threshold, method=args.method)
    print(f"{len(result.kernel_names)} kernels, {result.num_clusters} clusters "
          f"({args.method} @ {args.threshold})\n")
    print(fig7(result))
    print()
    print(fig8(result))
    if args.dendrogram:
        print()
        print(fig6(result))
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    from repro.analysis import render_curve, strong_scaling, weak_scaling
    from repro.machines.registry import get_machine
    from repro.suite.registry import get_kernel_class, make_kernel

    machine = get_machine(args.machine)
    if args.mode == "strong":
        kernel = make_kernel(args.kernel, problem_size=parse_size(args.size))
        curve = strong_scaling(kernel, machine)
    else:
        curve = weak_scaling(get_kernel_class(args.kernel), machine)
    print(render_curve(curve))
    print(f"parallel efficiency drops below 50% at {curve.saturation_cores()} cores")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.reporting import export_all

    for path in export_all(args.output_dir):
        print(f"wrote {path}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.caliper import hot_regions, read_cali, runtime_report

    profile = read_cali(args.file)
    print(runtime_report(profile, metric=args.metric))
    if args.top:
        print(f"\nTop {args.top} regions by exclusive {args.metric}:")
        for name, value in hot_regions(profile, metric=args.metric, top=args.top):
            print(f"  {value:>14.6g}  {name}")
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    if args.what == "kernels":
        for cls in all_kernel_classes():
            print(f"{cls.class_full_name():30s} {cls.COMPLEXITY.value:8s} "
                  f"{','.join(sorted(f.value for f in cls.FEATURES))}")
    elif args.what == "groups":
        for group in Group:
            print(f"{group.value:12s} {group.description}")
    elif args.what == "variants":
        for name in sorted(VARIANTS):
            print(name)
    else:
        for machine in list_machines():
            print(machine)
    return 0


def _cmd_pack(args: argparse.Namespace) -> int:
    from repro.caliper.calipack import CalipackError, pack_directory
    from repro.thicket import Thicket
    from repro.thicket.ingest_cache import CACHE_DIR_NAME

    try:
        archive, entries = pack_directory(args.directory, remove=not args.keep)
    except (CalipackError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"packed {len(entries)} profile(s) into {archive}")
    if not args.no_cache and entries:
        # Packing read every payload anyway: compose once now so the next
        # analyze over the archive is a pure cache load.
        import warnings as _warnings

        from pathlib import Path

        with _warnings.catch_warnings():
            _warnings.simplefilter("ignore")
            try:
                Thicket.from_caliperreader(
                    str(archive),
                    on_error="warn",
                    cache=Path(args.directory) / CACHE_DIR_NAME,
                )
            except ValueError:
                pass  # nothing readable: pack succeeded, cache stays cold
        print(f"primed ingest cache in {Path(args.directory) / CACHE_DIR_NAME}")
    return 0


def _cmd_unpack(args: argparse.Namespace) -> int:
    from repro.caliper.calipack import CalipackError, unpack_archive

    try:
        written = unpack_archive(
            args.archive, directory=args.dir, remove=not args.keep
        )
    except (CalipackError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    for path in written:
        print(f"wrote {path}")
    return 0


def _cmd_shard_status(args: argparse.Namespace) -> int:
    from repro.suite.coordinator import shard_status_report
    from repro.util.diskstat import (
        STATE_HARD,
        disk_free_bytes,
        watermarks_from_env,
    )

    report = shard_status_report(
        args.directory, lease_timeout=args.lease_timeout
    )
    print(report.text())
    # The ambient hard watermark degrades status like an expired lease
    # would: a campaign under it cannot durably make progress.
    disk_reasons = []
    watermarks = watermarks_from_env()
    if (
        watermarks.enabled
        and watermarks.state(args.directory) == STATE_HARD
    ):
        disk_reasons.append(
            f"disk free {disk_free_bytes(args.directory)} byte(s) at or "
            f"below the hard watermark ({watermarks.hard_free_bytes})"
        )
    # A readable shard map is the contract; anything else (not sharded,
    # or a map fsck must repair) is reported but exits unclean. A map
    # whose shards owe cells nobody live is working on — or that is
    # internally inconsistent — is the degraded state monitors key off.
    if not report.map_present:
        return exitcodes.UNCLEAN_RUN
    if report.degraded or disk_reasons:
        for reason in list(report.reasons) + disk_reasons:
            print(f"degraded: {reason}", file=sys.stderr)
        return exitcodes.DEGRADED_ANALYSIS
    return exitcodes.OK


def _cmd_fsck(args: argparse.Namespace) -> int:
    from repro.suite.fsck import fsck_directory

    report = fsck_directory(
        args.directory,
        quarantine=not args.dry_run,
        mark_rerun=not (args.dry_run or args.no_rerun),
    )
    print(report.summary())
    return exitcodes.OK if report.clean else exitcodes.UNCLEAN_RUN


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path

    from repro.chaos.runner import ChaosRunner

    try:
        runner = ChaosRunner(
            seed=args.seed,
            trials_per_point=args.trials_per_point,
            points=args.points,
            modes=args.modes,
            workdir=args.workdir,
            keep=args.keep,
            progress=lambda msg: print(msg, file=sys.stderr),
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exitcodes.USAGE

    if args.self_test:
        result = runner.self_test()
        print(_json.dumps(result, indent=1))
        if not result["ok"]:
            print(
                "chaos self-test FAILED: a suppressed repair went "
                "undetected — the invariant checker is broken",
                file=sys.stderr,
            )
            return exitcodes.INVARIANT_VIOLATION
        return exitcodes.OK

    report = runner.run()
    out = report.to_json()
    print(out)
    if args.report:
        Path(args.report).write_text(out + "\n")
    if not report.ok:
        print(
            f"chaos: {len(report.violations)} trial(s) violated "
            f"invariants, {len(report.uncovered_points())} point(s) "
            "never struck",
            file=sys.stderr,
        )
        return exitcodes.INVARIANT_VIOLATION
    return exitcodes.OK


# ------------------------------------------------------------ service cmds
def _job_exit_code(state: str) -> int:
    """Map a terminal job state onto the process exit-code contract."""
    return {
        "SUCCEEDED": exitcodes.OK,
        "FAILED": exitcodes.UNCLEAN_RUN,
        "CANCELLED": exitcodes.INTERRUPTED,
        "ORPHANED": exitcodes.JOB_ORPHANED,
    }.get(state, exitcodes.UNCLEAN_RUN)


class _ServiceTarget:
    """One call surface over either a daemon URL or a root directory."""

    def __init__(self, args: argparse.Namespace) -> None:
        from repro.service.admission import AdmissionPolicy
        from repro.service.api import ServiceAPI
        from repro.service.jobstore import JobStore
        from repro.util.diskstat import watermarks_from_env

        self.url = getattr(args, "url", None)
        self.api = None
        if self.url is None:
            # Flag-less commands pick the watermarks up from the ambient
            # env ($REPRO_DISK_SOFT_BYTES / $REPRO_DISK_HARD_BYTES), so a
            # direct-root submit honors the same disk backpressure the
            # daemon enforces.
            policy = AdmissionPolicy(
                max_queue_depth=getattr(args, "max_queue_depth", None),
                max_queued_per_tenant=getattr(
                    args, "max_queued_per_tenant", None
                ),
                max_tenant_bytes=getattr(args, "max_tenant_bytes", None),
                watermarks=watermarks_from_env(),
            )
            self.api = ServiceAPI(JobStore(args.root), policy)
        else:
            self.url = self.url.rstrip("/")

    def _call(self, method, route: str, body=None):
        if self.api is None:
            from repro.service.api import http_json

            return http_json(f"{self.url}{route}", payload=body)
        return method()

    def submit(self, spec, tenant, job_id):
        return self._call(
            lambda: self.api.submit(spec, tenant=tenant, job_id=job_id),
            "/api/jobs",
            {"spec": spec, "tenant": tenant, "job_id": job_id},
        )

    def status(self, job_id):
        return self._call(
            lambda: self.api.status(job_id), f"/api/jobs/{job_id}"
        )

    def list_jobs(self, tenant, state):
        query = "&".join(
            f"{k}={v}"
            for k, v in (("tenant", tenant), ("state", state))
            if v
        )
        return self._call(
            lambda: self.api.list_jobs(tenant=tenant, state=state),
            "/api/jobs" + (f"?{query}" if query else ""),
        )

    def cancel(self, job_id):
        return self._call(
            lambda: self.api.cancel(job_id), f"/api/jobs/{job_id}/cancel", {}
        )

    def result(self, job_id, metric):
        from urllib.parse import quote

        return self._call(
            lambda: self.api.result(job_id, metric=metric),
            f"/api/jobs/{job_id}/result?metric={quote(metric)}",
        )

    def wait_terminal(self, job_id: str, timeout: float):
        """Poll until the job is terminal; its final payload or None."""
        import time as _time

        deadline = _time.monotonic() + timeout
        while _time.monotonic() < deadline:
            status, payload = self.status(job_id)
            if status == 200 and payload["job"]["state"] in (
                "SUCCEEDED", "FAILED", "CANCELLED", "ORPHANED",
            ):
                return payload["job"]
            _time.sleep(0.2)
        return None


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.admission import AdmissionPolicy
    from repro.service.daemon import ServiceDaemon
    from repro.service.retention import RetentionPolicy
    from repro.service.scheduler import SchedulerConfig
    from repro.util.diskstat import DiskWatermarks, watermarks_from_env

    if args.soft_free_bytes is not None or args.hard_free_bytes is not None:
        try:
            watermarks = DiskWatermarks(
                soft_free_bytes=args.soft_free_bytes,
                hard_free_bytes=args.hard_free_bytes,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return exitcodes.USAGE
    else:
        watermarks = watermarks_from_env()
    try:
        retention = RetentionPolicy(
            max_age_s=args.retention_max_age,
            max_terminal_jobs=args.retention_keep,
            max_tenant_bytes=args.retention_tenant_bytes,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exitcodes.USAGE
    daemon = ServiceDaemon(
        args.root,
        host=args.host,
        port=args.port,
        policy=AdmissionPolicy(
            max_queue_depth=args.max_queue_depth,
            max_queued_per_tenant=args.max_queued_per_tenant,
            max_tenant_bytes=args.max_tenant_bytes,
            watermarks=watermarks,
        ),
        scheduler_config=SchedulerConfig(
            max_parallel=args.max_parallel,
            max_job_attempts=args.max_job_attempts,
            watermarks=watermarks if watermarks.enabled else None,
        ),
        retention=retention if retention.enabled else None,
        retention_interval=args.retention_interval,
        scrub_interval=args.scrub_interval,
    )
    print(f"serving {args.root} at {daemon.url}", flush=True)
    daemon.serve_forever()
    print("drained; bye", flush=True)
    return exitcodes.OK


def _cmd_gc(args: argparse.Namespace) -> int:
    import json as _json

    from repro.service.jobstore import JobError, JobStore
    from repro.service.retention import RetentionPolicy, gc

    try:
        policy = RetentionPolicy(
            max_age_s=args.max_age,
            max_terminal_jobs=args.keep,
            max_tenant_bytes=args.max_tenant_bytes,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exitcodes.USAGE
    store = JobStore(args.root)
    if not store.jobs_dir.is_dir():
        print(f"error: {args.root} is not a service root (no jobs/)",
              file=sys.stderr)
        return exitcodes.USAGE
    try:
        for job_id in args.pin:
            store.pin(job_id)
        for job_id in args.unpin:
            store.unpin(job_id)
    except JobError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exitcodes.JOB_NOT_FOUND
    report = gc(
        store, policy, dry_run=args.dry_run, compact=args.compact
    )
    if args.json:
        print(_json.dumps(report.to_payload(), indent=1))
    else:
        print(report.summary())
    return exitcodes.OK


def _cmd_submit(args: argparse.Namespace) -> int:
    import json as _json

    try:
        spec = {
            "problem_size": parse_size(args.size),
            "reps": args.reps,
            "variants": list(args.variants),
            "machines": list(args.machines),
            "kernels": list(args.kernels),
            "trials": args.trials,
            "workers": args.workers,
            "shards": args.shards,
            "pack": args.pack or args.shards > 0,
            "execute": args.execute,
            "max_attempts": args.max_attempts,
        }
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exitcodes.USAGE
    target = _ServiceTarget(args)
    status, payload = target.submit(spec, args.tenant, args.job_id)
    if payload.get("rejected"):
        print(f"rejected: {payload.get('reason')}", file=sys.stderr)
        return exitcodes.JOB_REJECTED
    if status != 200:
        print(f"error: {payload.get('error', payload)}", file=sys.stderr)
        return exitcodes.USAGE
    job = payload["job"]
    print(f"job {job['job_id']} {job['state']}")
    if not args.wait:
        return exitcodes.OK
    final = target.wait_terminal(job["job_id"], args.timeout)
    if final is None:
        print(
            f"error: job {job['job_id']} not terminal after "
            f"{args.timeout:.3g}s",
            file=sys.stderr,
        )
        return exitcodes.UNCLEAN_RUN
    print(_json.dumps(final, indent=1))
    return _job_exit_code(final["state"])


def _cmd_jobs(args: argparse.Namespace) -> int:
    import json as _json

    from repro.service.jobstore import ALL_STATES

    if args.state is not None and args.state not in ALL_STATES:
        # The store's list filter silently returns nothing for unknown
        # states; a typo must be a usage error, not an empty listing.
        print(
            f"error: unknown state {args.state!r}; "
            f"one of {', '.join(sorted(ALL_STATES))}",
            file=sys.stderr,
        )
        return exitcodes.USAGE
    target = _ServiceTarget(args)
    if args.result and not args.job:
        print("error: --result requires --job", file=sys.stderr)
        return exitcodes.USAGE
    if args.wait and not args.job:
        print("error: --wait requires --job", file=sys.stderr)
        return exitcodes.USAGE
    if args.job is None:
        status, payload = target.list_jobs(args.tenant, args.state)
        for job in payload.get("jobs", []):
            progress = job.get("progress") or {}
            done = progress.get("ok", 0) + progress.get("failed", 0)
            total = progress.get("total", "?")
            print(
                f"{job['job_id']:24s} {job['tenant']:12s} "
                f"{job['state']:10s} {done}/{total} cells "
                f"attempt {job['attempts']}"
                + (f" [{job['reason']}]" if job.get("reason") else "")
            )
        disk = payload.get("disk") or {}
        if disk.get("state") == "hard":
            print(
                f"degraded: disk free {disk.get('free_bytes')} byte(s) at "
                f"or below the hard watermark "
                f"({disk.get('hard_free_bytes')}); claims are paused",
                file=sys.stderr,
            )
            return exitcodes.DEGRADED_ANALYSIS
        return exitcodes.OK
    if args.wait:
        final = target.wait_terminal(args.job, args.timeout)
        if final is None:
            print(
                f"error: job {args.job} not terminal after "
                f"{args.timeout:.3g}s",
                file=sys.stderr,
            )
            return exitcodes.UNCLEAN_RUN
    status, payload = target.status(args.job)
    if status == 404:
        print(f"error: {payload.get('error')}", file=sys.stderr)
        return exitcodes.JOB_NOT_FOUND
    if not args.result:
        print(_json.dumps(payload["job"], indent=1))
        return exitcodes.OK
    status, payload = target.result(args.job, args.metric)
    if status == 404:
        print(f"error: {payload.get('error')}", file=sys.stderr)
        return exitcodes.JOB_NOT_FOUND
    if status != 200:
        print(f"error: {payload.get('error', payload)}", file=sys.stderr)
        return exitcodes.UNCLEAN_RUN
    result = payload["result"]
    print(_json.dumps(result, indent=1))
    return (
        exitcodes.DEGRADED_ANALYSIS
        if result.get("degraded")
        else exitcodes.OK
    )


def _cmd_cancel(args: argparse.Namespace) -> int:
    target = _ServiceTarget(args)
    status, payload = target.cancel(args.job_id)
    if status == 404:
        print(f"error: {payload.get('error')}", file=sys.stderr)
        return exitcodes.JOB_NOT_FOUND
    print(f"cancel requested for {args.job_id}")
    return exitcodes.OK


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "analyze": _cmd_analyze,
        "experiment": _cmd_experiment,
        "cluster": _cmd_cluster,
        "scaling": _cmd_scaling,
        "export": _cmd_export,
        "report": _cmd_report,
        "list": _cmd_list,
        "shard-status": _cmd_shard_status,
        "fsck": _cmd_fsck,
        "pack": _cmd_pack,
        "unpack": _cmd_unpack,
        "chaos": _cmd_chaos,
        "serve": _cmd_serve,
        "gc": _cmd_gc,
        "submit": _cmd_submit,
        "jobs": _cmd_jobs,
        "cancel": _cmd_cancel,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
