"""Deterministic fault injection for the campaign pipeline.

Long data-collection campaigns (Table III: machines x variants x tunings
x 76 kernels) fail in practice: a kernel throws, a node hangs, a file
write is interrupted, a flipped bit corrupts a checksum. The executor's
fault-tolerance machinery (retry, watchdog, checkpoint/resume, degraded
analysis) must be *testable*, so this module provides a seedable,
deterministic :class:`FaultInjector` that plants faults at chosen
(kernel, variant, trial) sites:

* ``KERNEL_EXCEPTION`` — raise :class:`InjectedKernelFault` when the
  kernel runs (transient when ``times`` is finite, permanent when
  ``times`` is ``None``);
* ``HANG`` — advance the run's :class:`DeadlineClock` by
  ``hang_seconds``, simulating a stuck kernel without real waiting;
* ``CHECKSUM_CORRUPTION`` — perturb the executed checksum so
  cross-variant verification trips;
* ``IO_WRITE_FAILURE`` — make ``write_cali`` fail mid-write (the atomic
  tmp-then-replace protocol must leave no truncated ``.cali`` behind);
* ``WORKER_CRASH`` — a supervised campaign worker ``os._exit``s before
  running its cell (the segfault equivalent); the supervisor must detect
  the dead process, respawn it, and requeue the cell;
* ``STALE_HEARTBEAT`` — a worker stops emitting heartbeats and stalls
  for ``hang_seconds`` real seconds; the supervisor's heartbeat deadline
  must kill and replace it;
* ``FOOTER_CORRUPTION`` — ``write_cali`` seals the profile with a wrong
  CRC32 footer (simulated bit rot); readers and ``fsck`` must flag it.

Worker-level faults carry an ``attempt`` site pattern: budgets
(``times``) are per-process, and a respawned worker starts with a fresh
budget, so matching on the cell's attempt number is what makes a
"crash once, then succeed" scenario deterministic across processes.

The injector is a context manager; entering installs it as the
process-wide active injector that the executor and ``write_cali``
consult. Specs can also come from a config mapping or the
``REPRO_FAULTS`` environment variable (JSON), so real CLI campaigns can
be chaos-tested without code changes.
"""

from __future__ import annotations

import fnmatch
import json
import os
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

ENV_VAR = "REPRO_FAULTS"


class FaultKind(Enum):
    KERNEL_EXCEPTION = "kernel_exception"
    HANG = "hang"
    CHECKSUM_CORRUPTION = "checksum_corruption"
    IO_WRITE_FAILURE = "io_write_failure"
    WORKER_CRASH = "worker_crash"
    STALE_HEARTBEAT = "stale_heartbeat"
    FOOTER_CORRUPTION = "footer_corruption"


class InjectedKernelFault(RuntimeError):
    """The planted transient/permanent kernel exception."""


@dataclass(frozen=True)
class FaultSite:
    """Where in the sweep a fault can fire."""

    kernel: str = "*"
    variant: str = "*"
    trial: int | str = "*"
    machine: str = "*"


@dataclass
class FaultSpec:
    """One planted fault: kind + site pattern + firing budget.

    Site fields are ``fnmatch`` patterns (``"*"`` matches anything);
    ``trial`` may be an int or ``"*"``. ``times`` is how many matching
    occurrences fire before the fault clears — ``None`` means every
    occurrence (a permanent fault). ``path`` is matched against the
    output filename for IO and footer faults. ``attempt`` constrains
    worker-level faults to a specific cell attempt number (budgets are
    per-process; attempt matching is what survives worker respawns).
    """

    kind: FaultKind
    kernel: str = "*"
    variant: str = "*"
    trial: int | str = "*"
    machine: str = "*"
    path: str = "*"
    attempt: int | str = "*"
    times: int | None = 1
    hang_seconds: float = 3600.0
    corruption_delta: float = 0.5
    message: str = ""
    fired: int = field(default=0, init=False)

    def exhausted(self) -> bool:
        return self.times is not None and self.fired >= self.times

    def matches(self, site: FaultSite, attempt: int | None = None) -> bool:
        if not fnmatch.fnmatchcase(site.kernel, self.kernel):
            return False
        if not fnmatch.fnmatchcase(site.variant, self.variant):
            return False
        if not fnmatch.fnmatchcase(site.machine, self.machine):
            return False
        if self.trial != "*" and str(site.trial) != str(self.trial):
            return False
        if self.attempt != "*" and (
            attempt is None or str(attempt) != str(self.attempt)
        ):
            return False
        return True

    def matches_path(self, name: str) -> bool:
        return fnmatch.fnmatchcase(name, self.path)


def _spec_from_dict(data: dict[str, Any]) -> FaultSpec:
    data = dict(data)
    kind = data.pop("kind")
    if not isinstance(kind, FaultKind):
        kind = FaultKind(str(kind))
    known = {
        "kernel", "variant", "trial", "machine", "path", "attempt",
        "times", "hang_seconds", "corruption_delta", "message",
    }
    unknown = set(data) - known
    if unknown:
        raise ValueError(f"unknown fault spec fields: {sorted(unknown)}")
    return FaultSpec(kind=kind, **data)


class DeadlineClock:
    """A monotonic clock whose reading injected hangs can advance.

    The executor's per-kernel watchdog measures elapsed time on this
    clock; a HANG fault calls :meth:`advance` so a "stuck" kernel
    exceeds its deadline without the test suite actually sleeping.
    """

    def __init__(self, time_fn=time.monotonic) -> None:
        self._time_fn = time_fn
        self._offset = 0.0

    def now(self) -> float:
        return self._time_fn() + self._offset

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot advance a clock backwards: {seconds}")
        self._offset += seconds


class FaultInjector:
    """A deterministic set of planted faults, installable as a context.

    Determinism: firing order depends only on the sweep order and each
    spec's ``times`` budget; checksum corruption uses ``corruption_delta``
    directly (no hidden randomness), so two identical runs observe
    identical faults. ``fired_log`` records every fault that fired, for
    assertions.
    """

    def __init__(self, specs: list[FaultSpec] | None = None, seed: int = 0) -> None:
        self.specs = list(specs or [])
        self.seed = seed
        self.fired_log: list[tuple[FaultKind, FaultSite]] = []
        self._previous: FaultInjector | None = None

    # -------------------------------------------------------- construction
    @classmethod
    def from_config(cls, config: Any, seed: int = 0) -> "FaultInjector":
        """Build from a JSON string or a list of spec dicts."""
        if isinstance(config, str):
            config = json.loads(config)
        if isinstance(config, dict):
            config = [config]
        if not isinstance(config, list):
            raise ValueError(f"fault config must be a list of specs, got {config!r}")
        return cls([_spec_from_dict(d) for d in config], seed=seed)

    @classmethod
    def from_env(cls, env_var: str = ENV_VAR) -> "FaultInjector | None":
        """Build from ``$REPRO_FAULTS`` (JSON list); None when unset."""
        raw = os.environ.get(env_var, "").strip()
        if not raw:
            return None
        return cls.from_config(raw)

    # ------------------------------------------------------------ firing
    def _fire(
        self, kind: FaultKind, site: FaultSite, attempt: int | None = None
    ) -> FaultSpec | None:
        for spec in self.specs:
            if (
                spec.kind is kind
                and not spec.exhausted()
                and spec.matches(site, attempt)
            ):
                spec.fired += 1
                self.fired_log.append((kind, site))
                return spec
        return None

    def kernel_fault(self, site: FaultSite) -> None:
        """Raise the planted kernel exception if one matches ``site``."""
        spec = self._fire(FaultKind.KERNEL_EXCEPTION, site)
        if spec is not None:
            raise InjectedKernelFault(
                spec.message
                or f"injected kernel fault at {site.kernel}/{site.variant}"
                f"/trial{site.trial} (firing {spec.fired})"
            )

    def hang_seconds(self, site: FaultSite) -> float:
        """Simulated hang duration for ``site`` (0.0 when none fires)."""
        spec = self._fire(FaultKind.HANG, site)
        return spec.hang_seconds if spec is not None else 0.0

    def corrupt_checksum(self, value: float, site: FaultSite) -> float:
        """Return ``value``, perturbed when a corruption fault fires."""
        spec = self._fire(FaultKind.CHECKSUM_CORRUPTION, site)
        if spec is None:
            return value
        return value * (1.0 + spec.corruption_delta) + spec.corruption_delta

    def io_fault(self, filename: str, site: FaultSite | None = None) -> FaultSpec | None:
        """The IO-failure spec firing for this output file, if any."""
        return self._fire_path(FaultKind.IO_WRITE_FAILURE, filename, site)

    def footer_fault(
        self, filename: str, site: FaultSite | None = None
    ) -> FaultSpec | None:
        """The footer-corruption spec firing for this output file, if any.

        Unlike an IO fault the write *succeeds* — the file lands on disk
        complete but sealed with a wrong CRC32, the way bit rot or a
        partial overwrite would leave it. Only readers and ``fsck`` can
        tell.
        """
        return self._fire_path(FaultKind.FOOTER_CORRUPTION, filename, site)

    def _fire_path(
        self, kind: FaultKind, filename: str, site: FaultSite | None
    ) -> FaultSpec | None:
        probe = site or FaultSite()
        for spec in self.specs:
            if (
                spec.kind is kind
                and not spec.exhausted()
                and spec.matches(probe)
                and spec.matches_path(filename)
            ):
                spec.fired += 1
                self.fired_log.append((kind, probe))
                return spec
        return None

    def worker_crash(self, site: FaultSite, attempt: int) -> FaultSpec | None:
        """The worker-crash spec firing for this cell attempt, if any.

        The *caller* (the campaign worker) performs the ``os._exit`` —
        the injector only decides; this keeps the injector importable
        and testable in-process.
        """
        return self._fire(FaultKind.WORKER_CRASH, site, attempt)

    def stale_seconds(self, site: FaultSite, attempt: int) -> float:
        """Real seconds a worker should stall heartbeat-less (0.0 = none)."""
        spec = self._fire(FaultKind.STALE_HEARTBEAT, site, attempt)
        return spec.hang_seconds if spec is not None else 0.0

    def reset(self) -> None:
        """Clear firing counts and the log (fresh campaign, same plan)."""
        for spec in self.specs:
            spec.fired = 0
        self.fired_log.clear()

    # ------------------------------------------------------------ install
    def __enter__(self) -> "FaultInjector":
        self._previous = install_injector(self)
        return self

    def __exit__(self, *exc_info: object) -> None:
        _set_active(self._previous)
        self._previous = None

    def __repr__(self) -> str:
        return f"FaultInjector({len(self.specs)} specs, {len(self.fired_log)} fired)"


# ------------------------------------------------- process-wide injector
_active: FaultInjector | None = None


def active_injector() -> FaultInjector | None:
    return _active


def install_injector(injector: FaultInjector | None) -> FaultInjector | None:
    """Install the process-wide injector; returns the previous one."""
    return _set_active(injector)


def _set_active(injector: FaultInjector | None) -> FaultInjector | None:
    global _active
    previous = _active
    _active = injector
    return previous
