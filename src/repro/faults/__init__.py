"""Fault injection: deterministic chaos for the campaign pipeline.

See :mod:`repro.faults.injector`. The executor and ``write_cali``
consult :func:`active_injector`; tests and CLI campaigns install one via
the :class:`FaultInjector` context manager or ``$REPRO_FAULTS``.
"""

from repro.faults.injector import (
    ENV_VAR,
    DeadlineClock,
    FaultInjector,
    FaultKind,
    FaultSite,
    FaultSpec,
    InjectedKernelFault,
    active_injector,
    install_injector,
)

__all__ = [
    "ENV_VAR",
    "DeadlineClock",
    "FaultInjector",
    "FaultKind",
    "FaultSite",
    "FaultSpec",
    "InjectedKernelFault",
    "active_injector",
    "install_injector",
]
