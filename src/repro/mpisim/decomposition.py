"""Problem decomposition across MPI ranks.

Section IV of the paper notes that decomposing a fixed 32M node-level
problem across 112 CPU ranks vs 4/8 GPU ranks gives *incomparable* work
for kernels with non-O(n) complexity — the reason 12+ kernels are excluded
from the similarity analysis. These helpers make that arithmetic explicit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.suite.features import Complexity


def decompose_linear(total: int, ranks: int) -> list[int]:
    """Split ``total`` elements across ``ranks`` as evenly as possible."""
    if ranks <= 0:
        raise ValueError(f"ranks must be > 0, got {ranks}")
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    base, rem = divmod(total, ranks)
    return [base + (1 if r < rem else 0) for r in range(ranks)]


@dataclass(frozen=True)
class Decomposition3D:
    """A 3-D block decomposition of an n-element cubic domain."""

    total_elements: int
    ranks: int

    def __post_init__(self) -> None:
        if self.ranks <= 0:
            raise ValueError(f"ranks must be > 0, got {self.ranks}")
        if self.total_elements <= 0:
            raise ValueError(f"total_elements must be > 0, got {self.total_elements}")

    @property
    def elements_per_rank(self) -> int:
        return self.total_elements // self.ranks

    @property
    def local_edge(self) -> float:
        """Edge length of one rank's cubic subdomain."""
        return self.elements_per_rank ** (1.0 / 3.0)

    @property
    def surface_elements_per_rank(self) -> float:
        """Elements on one rank's halo surface (six faces)."""
        return 6.0 * self.local_edge**2

    def grid_dims(self) -> tuple[int, int, int]:
        """A near-cubic rank grid (like ``MPI_Dims_create``)."""
        dims = [1, 1, 1]
        n = self.ranks
        for prime in _prime_factors(n):
            dims[dims.index(min(dims))] *= prime
        dims.sort(reverse=True)
        return (dims[0], dims[1], dims[2])


def _prime_factors(n: int) -> list[int]:
    out: list[int] = []
    d = 2
    while d * d <= n:
        while n % d == 0:
            out.append(d)
            n //= d
        d += 1
    if n > 1:
        out.append(n)
    return sorted(out, reverse=True)


def work_ratio(complexity: Complexity, total: int, ranks_a: int, ranks_b: int) -> float:
    """Ratio of total work under two decompositions of the same problem.

    For O(n) kernels this is 1.0 regardless of rank counts; for anything
    else it deviates — the quantitative form of the paper's exclusion rule.
    """
    per_a = total / ranks_a
    per_b = total / ranks_b
    work_a = ranks_a * complexity.operations(per_a)
    work_b = ranks_b * complexity.operations(per_b)
    if work_b == 0:
        raise ValueError("degenerate decomposition with zero work")
    return work_a / work_b


def is_comparable(complexity: Complexity, ranks_a: int, ranks_b: int, tol: float = 1e-9) -> bool:
    """Whether the decomposition gives comparable work across machines."""
    ratio = work_ratio(complexity, 32_000_000, ranks_a, ranks_b)
    return math.isclose(ratio, 1.0, rel_tol=tol)
