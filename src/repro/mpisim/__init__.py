"""Simulated MPI: decomposition and halo-exchange communication.

The paper runs RAJAPerf under MPI (Table III: 112 ranks on the CPU nodes,
one rank per GPU/GCD on the GPU nodes) and its Comm group exercises halo
packing/exchange patterns. This package provides (a) the problem-size
decomposition used everywhere, (b) a functional in-process communicator so
the Comm kernels actually move bytes between simulated ranks, and (c) the
analytic communication-cost model (latency + bandwidth) the timing model
charges.
"""

from repro.mpisim.decomposition import Decomposition3D, decompose_linear
from repro.mpisim.comm import SimComm, SimRequest
from repro.mpisim.halo import HaloGeometry, halo_surface_elements

__all__ = [
    "Decomposition3D",
    "decompose_linear",
    "SimComm",
    "SimRequest",
    "HaloGeometry",
    "halo_surface_elements",
]
