"""Halo-exchange geometry for the Comm kernel group.

The Comm kernels model ghost-cell exchange on a 3-D structured grid: each
rank packs face/edge/corner data for its 26 neighbors, exchanges
messages, and unpacks. The byte volume scales with the subdomain surface
— O(n^(2/3)) in the per-rank problem size, Table I's complexity for the
HALO kernels.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class HaloGeometry:
    """Halo geometry for one rank's cubic subdomain."""

    local_elements: int
    halo_width: int = 1
    num_vars: int = 3  # variables exchanged per grid point (RAJAPerf default)

    def __post_init__(self) -> None:
        if self.local_elements <= 0:
            raise ValueError(f"local_elements must be > 0, got {self.local_elements}")
        if self.halo_width <= 0:
            raise ValueError(f"halo_width must be > 0, got {self.halo_width}")
        if self.num_vars <= 0:
            raise ValueError(f"num_vars must be > 0, got {self.num_vars}")

    @property
    def edge(self) -> int:
        """Subdomain edge length (elements)."""
        return max(1, round(self.local_elements ** (1.0 / 3.0)))

    @property
    def neighbors(self) -> int:
        """26 neighbors in a full 3-D stencil exchange."""
        return 26

    @property
    def face_elements(self) -> int:
        return self.edge * self.edge * self.halo_width

    @property
    def edge_elements(self) -> int:
        return self.edge * self.halo_width * self.halo_width

    @property
    def corner_elements(self) -> int:
        return self.halo_width**3

    @property
    def exchange_elements(self) -> int:
        """Total grid points exchanged per variable: 6 faces + 12 edges +
        8 corners of the halo shell."""
        return (
            6 * self.face_elements
            + 12 * self.edge_elements
            + 8 * self.corner_elements
        )

    @property
    def exchange_bytes(self) -> int:
        """Total bytes sent per exchange (doubles, all variables)."""
        return self.exchange_elements * self.num_vars * 8

    @property
    def messages(self) -> int:
        """Messages per exchange (send to each neighbor)."""
        return self.neighbors


def halo_surface_elements(total_elements: int, ranks: int, halo_width: int = 1) -> float:
    """Node-level halo elements: ranks x per-rank surface.

    This is the O(n^(2/3))-per-rank quantity that makes halo work
    decomposition-dependent: more ranks = more total surface.
    """
    if ranks <= 0:
        raise ValueError(f"ranks must be > 0, got {ranks}")
    per_rank = total_elements / ranks
    edge = per_rank ** (1.0 / 3.0)
    return ranks * 6.0 * edge * edge * halo_width


def amdahl_comm_fraction(compute_time: float, comm_time: float) -> float:
    """Fraction of a halo kernel's time spent communicating."""
    total = compute_time + comm_time
    if total <= 0:
        raise ValueError("degenerate zero-time halo exchange")
    return comm_time / total


def log2_message_count(ranks: int) -> int:
    """Messages in a tree allreduce (used by reduction cost accounting)."""
    return 2 * max(0, math.ceil(math.log2(max(ranks, 1))))
