"""An in-process simulated MPI communicator.

The Comm kernels need real message-passing semantics (pack -> send ->
recv -> unpack must move the right bytes) without an MPI runtime.
``SimComm`` runs all ranks in one process: each rank owns a mailbox;
``isend`` deposits a copy, ``irecv`` returns a request that completes when
a matching message arrives. The analytic *cost* of communication is
charged by the timing model; this class provides the *functional*
behaviour so checksums validate.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np


@dataclass
class SimRequest:
    """A pending nonblocking operation."""

    kind: str  # "send" or "recv"
    peer: int
    tag: int
    buffer: np.ndarray | None = None
    completed: bool = False
    payload: np.ndarray | None = None

    def test(self) -> bool:
        return self.completed


@dataclass
class _Message:
    source: int
    tag: int
    data: np.ndarray


@dataclass
class SimComm:
    """A communicator over ``size`` simulated ranks."""

    size: int
    _mailboxes: list[deque] = field(default_factory=list)
    bytes_sent: int = 0
    messages_sent: int = 0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"communicator size must be > 0, got {self.size}")
        if not self._mailboxes:
            self._mailboxes = [deque() for _ in range(self.size)]

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range [0, {self.size})")

    # -------------------------------------------------------- point-to-point
    def isend(self, source: int, dest: int, data: np.ndarray, tag: int = 0) -> SimRequest:
        """Nonblocking send: the payload is copied immediately."""
        self._check_rank(source)
        self._check_rank(dest)
        payload = np.array(data, copy=True)
        self._mailboxes[dest].append(_Message(source=source, tag=tag, data=payload))
        self.bytes_sent += payload.nbytes
        self.messages_sent += 1
        return SimRequest(kind="send", peer=dest, tag=tag, completed=True)

    def irecv(self, dest: int, source: int, buffer: np.ndarray, tag: int = 0) -> SimRequest:
        """Nonblocking receive into ``buffer``; complete via :meth:`wait`."""
        self._check_rank(dest)
        self._check_rank(source)
        req = SimRequest(kind="recv", peer=source, tag=tag, buffer=buffer)
        self._try_complete(dest, req)
        if not req.completed:
            req.payload = None
            req._dest = dest  # type: ignore[attr-defined]
        return req

    def _try_complete(self, dest: int, req: SimRequest) -> None:
        box = self._mailboxes[dest]
        for i, msg in enumerate(box):
            if msg.source == req.peer and msg.tag == req.tag:
                if req.buffer is None or msg.data.shape != req.buffer.shape:
                    raise ValueError(
                        f"receive buffer shape {None if req.buffer is None else req.buffer.shape}"
                        f" does not match message shape {msg.data.shape}"
                    )
                req.buffer[:] = msg.data
                del box[i]
                req.completed = True
                return

    def wait(self, dest: int, req: SimRequest) -> None:
        """Complete a pending request (all sends complete eagerly)."""
        if req.completed:
            return
        self._try_complete(dest, req)
        if not req.completed:
            raise RuntimeError(
                f"deadlock: rank {dest} waiting on message from {req.peer} "
                f"tag {req.tag} that was never sent"
            )

    def waitall(self, dest: int, requests: list[SimRequest]) -> None:
        for req in requests:
            self.wait(dest, req)

    # ------------------------------------------------------------ collectives
    def allreduce_sum(self, contributions: list[float]) -> float:
        """Sum across ranks (used by reduction kernels under MPI)."""
        if len(contributions) != self.size:
            raise ValueError(
                f"expected {self.size} contributions, got {len(contributions)}"
            )
        self.messages_sent += 2 * (self.size - 1)
        return float(np.sum(contributions))

    def barrier(self) -> None:
        """No-op in-process barrier (cost handled by the timing model)."""
        self.messages_sent += self.size
