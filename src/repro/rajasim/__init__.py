"""A RAJA-like performance-portability layer in Python.

RAJAPerf's kernels come in *Base* variants (written directly against a
programming model) and *RAJA* variants (written once against RAJA's
``forall``/``kernel``/``View``/reducer abstractions and dispatched to a
backend). This package reproduces that split: kernels written against
:func:`forall`, :class:`View`, :class:`ReduceSum`, etc. are dispatched to a
backend selected by an execution *policy* (sequential, SIMD, OpenMP-style
chunked, CUDA/HIP/SYCL-style block-decomposed). All backends compute the
same result — which the suite verifies with checksums — while exercising
genuinely different execution structure (chunking, block decomposition,
per-thread partial reductions) that the simulators account for.
"""

from repro.rajasim.policies import (
    Backend,
    ExecPolicy,
    cuda_exec,
    hip_exec,
    omp_parallel_for_exec,
    omp_target_exec,
    seq_exec,
    simd_exec,
    sycl_exec,
)
from repro.rajasim.forall import (
    dispatch_mode,
    forall,
    forall_chunks,
    legacy_dispatch,
    slice_capable,
)
from repro.rajasim.kernel import kernel_2d, kernel_3d
from repro.rajasim.views import Layout, View, make_permuted_layout
from repro.rajasim.reducers import (
    ReduceMax,
    ReduceMaxLoc,
    ReduceMin,
    ReduceMinLoc,
    ReduceSum,
    MultiReduceSum,
)
from repro.rajasim.scan import exclusive_scan, inclusive_scan, exclusive_scan_inplace
from repro.rajasim.sort import sort as raja_sort, sort_pairs
from repro.rajasim.atomic import atomic_add, atomic_max, atomic_min
from repro.rajasim.resources import Resource, device_memcpy, device_memset

__all__ = [
    "Backend",
    "ExecPolicy",
    "seq_exec",
    "simd_exec",
    "omp_parallel_for_exec",
    "omp_target_exec",
    "cuda_exec",
    "hip_exec",
    "sycl_exec",
    "forall",
    "forall_chunks",
    "slice_capable",
    "legacy_dispatch",
    "dispatch_mode",
    "kernel_2d",
    "kernel_3d",
    "Layout",
    "View",
    "make_permuted_layout",
    "ReduceSum",
    "ReduceMin",
    "ReduceMax",
    "ReduceMinLoc",
    "ReduceMaxLoc",
    "MultiReduceSum",
    "inclusive_scan",
    "exclusive_scan",
    "exclusive_scan_inplace",
    "raja_sort",
    "sort_pairs",
    "atomic_add",
    "atomic_min",
    "atomic_max",
    "Resource",
    "device_memcpy",
    "device_memset",
]
