"""Execution policies: how a ``forall`` maps onto a backend.

A policy names a *backend* (the programming model it models) plus the
parameters that matter for execution structure: chunk size for CPU
threading, block size for GPU grids. RAJAPerf tunes GPU block sizes per
kernel ("tunings"); the same knob appears here as ``block_size``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace


class Backend(enum.Enum):
    """The programming-model backend a policy dispatches to."""

    SEQUENTIAL = "Seq"
    SIMD = "SIMD"
    OPENMP = "OpenMP"
    OPENMP_TARGET = "OMPTarget"
    CUDA = "CUDA"
    HIP = "HIP"
    SYCL = "SYCL"

    @property
    def is_gpu(self) -> bool:
        return self in (
            Backend.OPENMP_TARGET,
            Backend.CUDA,
            Backend.HIP,
            Backend.SYCL,
        )


@dataclass(frozen=True)
class ExecPolicy:
    """An execution policy: backend + decomposition parameters.

    ``block_size`` is the GPU thread-block (or SYCL work-group) size;
    ``chunk_size`` is the CPU loop chunk handed to each simulated thread;
    ``num_threads`` the simulated OpenMP thread count.
    """

    backend: Backend
    block_size: int = 256
    chunk_size: int = 4096
    num_threads: int = 1

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise ValueError(f"block_size must be > 0, got {self.block_size}")
        if self.chunk_size <= 0:
            raise ValueError(f"chunk_size must be > 0, got {self.chunk_size}")
        if self.num_threads <= 0:
            raise ValueError(f"num_threads must be > 0, got {self.num_threads}")

    @property
    def is_gpu(self) -> bool:
        return self.backend.is_gpu

    def with_block_size(self, block_size: int) -> "ExecPolicy":
        """Return a tuned copy of this policy (RAJAPerf's GPU 'tunings')."""
        return replace(self, block_size=block_size)

    def tuning_name(self) -> str:
        """RAJAPerf-style tuning label, e.g. ``block_256`` or ``default``."""
        return f"block_{self.block_size}" if self.is_gpu else "default"


# Canonical policies. GPU block size 256 matches RAJAPerf's default tuning.
seq_exec = ExecPolicy(Backend.SEQUENTIAL)
simd_exec = ExecPolicy(Backend.SIMD)
omp_parallel_for_exec = ExecPolicy(Backend.OPENMP, num_threads=56)
omp_target_exec = ExecPolicy(Backend.OPENMP_TARGET, block_size=256)
cuda_exec = ExecPolicy(Backend.CUDA, block_size=256)
hip_exec = ExecPolicy(Backend.HIP, block_size=256)
sycl_exec = ExecPolicy(Backend.SYCL, block_size=256)

POLICY_BY_BACKEND: dict[Backend, ExecPolicy] = {
    Backend.SEQUENTIAL: seq_exec,
    Backend.SIMD: simd_exec,
    Backend.OPENMP: omp_parallel_for_exec,
    Backend.OPENMP_TARGET: omp_target_exec,
    Backend.CUDA: cuda_exec,
    Backend.HIP: hip_exec,
    Backend.SYCL: sycl_exec,
}
