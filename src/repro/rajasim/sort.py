"""Sort operations, RAJA-style (``RAJA::sort`` / ``RAJA::sort_pairs``)."""

from __future__ import annotations

import numpy as np


def sort(values: np.ndarray) -> np.ndarray:
    """In-place ascending sort; returns the (same) array for chaining."""
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise ValueError("sort input must be 1-D")
    arr.sort(kind="stable")
    return arr


def sort_pairs(keys: np.ndarray, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """In-place stable key-value sort by key (``RAJA::sort_pairs``)."""
    karr = np.asarray(keys)
    varr = np.asarray(values)
    if karr.shape != varr.shape:
        raise ValueError(
            f"keys and values must match: {karr.shape} vs {varr.shape}"
        )
    if karr.ndim != 1:
        raise ValueError("sort_pairs input must be 1-D")
    order = np.argsort(karr, kind="stable")
    karr[:] = karr[order]
    varr[:] = varr[order]
    return karr, varr
