"""Execution resources and memory operations.

Models RAJA's ``camp::resources``: a *Host* or *Device* resource against
which allocations, ``memcpy``, and ``memset`` are issued. The Algorithm
group's MEMCPY/MEMSET kernels go through these entry points so their byte
traffic is attributable like any other kernel's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Resource:
    """An execution resource (host CPU or a simulated device).

    Tracks cumulative allocation and transfer byte counts so tests can
    assert that kernels move exactly the bytes their analytic formulas
    declare.
    """

    name: str = "host"
    is_device: bool = False
    bytes_allocated: int = 0
    bytes_copied: int = 0
    bytes_set: int = 0
    allocations: list[int] = field(default_factory=list)

    def allocate(self, count: int, dtype: object = np.float64) -> np.ndarray:
        if count < 0:
            raise ValueError(f"negative allocation: {count}")
        arr = np.empty(count, dtype=dtype)
        self.bytes_allocated += arr.nbytes
        self.allocations.append(arr.nbytes)
        return arr

    def memcpy(self, dst: np.ndarray, src: np.ndarray) -> None:
        device_memcpy(dst, src, self)

    def memset(self, dst: np.ndarray, value: int) -> None:
        device_memset(dst, value, self)


def device_memcpy(dst: np.ndarray, src: np.ndarray, resource: Resource | None = None) -> None:
    """Copy ``src`` into ``dst`` (same length), counting bytes on the resource."""
    if dst.shape != src.shape:
        raise ValueError(f"memcpy shape mismatch: {dst.shape} vs {src.shape}")
    np.copyto(dst, src)
    if resource is not None:
        resource.bytes_copied += dst.nbytes


def device_memset(dst: np.ndarray, value: int, resource: Resource | None = None) -> None:
    """Byte-fill ``dst`` with ``value`` (0-255), like ``memset``."""
    if not 0 <= int(value) <= 255:
        raise ValueError(f"memset value must be a byte (0-255), got {value}")
    dst.view(np.uint8)[:] = np.uint8(value)
    if resource is not None:
        resource.bytes_set += dst.nbytes
