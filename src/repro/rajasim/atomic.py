"""Atomic update operations (``RAJA::atomicAdd`` and friends).

The vectorized equivalents use NumPy's unbuffered ``ufunc.at`` so repeated
indices accumulate correctly — the semantic content of atomicity in a
data-parallel loop. The simulators separately charge the *cost* of atomic
contention via the kernel trait vector.
"""

from __future__ import annotations

import numpy as np


def atomic_add(target: np.ndarray, indices: object, values: object) -> None:
    """``target[indices] += values`` with correct duplicate-index handling."""
    np.add.at(target, np.asarray(indices, dtype=np.intp), values)


def atomic_min(target: np.ndarray, indices: object, values: object) -> None:
    np.minimum.at(target, np.asarray(indices, dtype=np.intp), values)


def atomic_max(target: np.ndarray, indices: object, values: object) -> None:
    np.maximum.at(target, np.asarray(indices, dtype=np.intp), values)
