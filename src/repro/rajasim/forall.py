"""``forall``: the core RAJA dispatch primitive.

A kernel body is a callable taking a partition of the iteration space and
performing vectorized work over those indices (reads/writes through
captured arrays or :class:`~repro.rajasim.views.View` objects). ``forall``
partitions the iteration space according to the policy and invokes the
body once per partition:

* sequential / SIMD — one partition covering the whole range (the NumPy
  vectorized execution *is* the SIMD model);
* OpenMP — static contiguous chunks of ~``n/num_threads`` per simulated
  thread, mirroring ``#pragma omp parallel for schedule(static)``;
* GPU backends (CUDA/HIP/SYCL/OMPTarget) — thread blocks of
  ``policy.block_size`` contiguous indices, mirroring a grid launch.

Results are bit-identical across policies for data-parallel bodies
(floating-point reductions are combined in deterministic partition
order).

Zero-copy dispatch
------------------

The campaign hot path runs every kernel once per (variant, tuning,
trial) cell, so per-``forall`` dispatch overhead multiplies across the
whole sweep. Three mechanisms keep it near zero:

* **Partition-plan cache** — the ``(start, stop)`` chunk boundaries for
  a ``(policy, n)`` pair are computed once and LRU-cached
  (:func:`partition_plan`), instead of re-running ``array_split``
  arithmetic on every repetition.
* **Slice fast path** — bodies that only use their index argument for
  *direct* NumPy indexing (``a[i]``) declare it with
  :func:`slice_capable`; contiguous segments then dispatch Python
  ``slice`` partitions. NumPy basic indexing returns views, so the body
  reads and writes the kernel arrays with **zero gather/scatter
  copies** — the Python analogue of the raw-pointer loops RAJAPerf's
  C++ variants compile to. Pure elementwise bodies can further declare
  ``slice_capable(fuse=True)``: partitioning cannot change their
  results, so dispatch runs them once over the whole span (one NumPy
  call instead of one per block) while the launch count still reflects
  the policy's partition plan.
* **Iota cache** — bodies that do index arithmetic (``y[i + 1]``) keep
  receiving real index arrays, but the ``arange`` behind a contiguous
  segment is LRU-cached (read-only) and partitions are basic-slicing
  views of it, so no per-call allocation remains on that path either.

The seed's allocate-and-gather dispatch is preserved verbatim behind
:func:`legacy_dispatch` (or ``REPRO_LEGACY_DISPATCH=1`` for child
processes) so benchmarks and equivalence tests can compare both engines.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from collections.abc import Callable, Iterator
from contextlib import contextmanager

import numpy as np

from repro.rajasim.policies import Backend, ExecPolicy

#: A body receives either an index array or (when slice-capable and the
#: segment is contiguous) a ``slice`` covering the same indices.
IndexBody = Callable[[np.ndarray], None]

# --------------------------------------------------------------- capability
#: Capability values for the per-body index protocol.
ARRAY_INDEX = "array"
SLICE_INDEX = "slice"
FUSED_INDEX = "fuse"

_CAPABILITY_ATTR = "__raja_index_capability__"


def slice_capable(body=None, *, fuse: bool = False):
    """Declare that a ``forall`` body accepts ``slice`` partitions.

    A body qualifies when its index argument is only ever used for
    *direct* NumPy basic indexing (``a[i]``, ``a[i] = ...``, ``px[k, i]``)
    — never for index arithmetic (``y[i + 1]``), ``len(i)``, arithmetic
    on the indices themselves, or as stored index *values*. Dispatch
    then hands such bodies contiguous ``slice`` objects, turning every
    gather copy into a view.

    ``fuse=True`` additionally declares the body *partition-invariant*:
    a pure elementwise map with no reducers, atomics, or any other
    cross-iteration interaction, so splitting the range cannot change a
    single result bit. Dispatch then invokes the body once over the
    whole contiguous span — eliminating per-partition interpreter
    overhead under block-decomposed policies — while still reporting the
    policy's launch count from the partition plan. Bodies that combine
    per-partition (reductions, ``atomic_add`` accumulation) must NOT set
    ``fuse``: their combine order is part of the simulated execution
    structure.
    """

    def mark(fn):
        setattr(fn, _CAPABILITY_ATTR, FUSED_INDEX if fuse else SLICE_INDEX)
        return fn

    if body is None:
        return mark
    return mark(body)


def index_capability(body) -> str:
    """The body's declared index capability (default: index arrays)."""
    return getattr(body, _CAPABILITY_ATTR, ARRAY_INDEX)


# ------------------------------------------------------------ dispatch mode
_LEGACY_ENV = "REPRO_LEGACY_DISPATCH"
_legacy_mode = os.environ.get(_LEGACY_ENV, "") not in ("", "0")


def dispatch_mode() -> str:
    """``"legacy"`` (seed engine) or ``"fast"`` (zero-copy engine)."""
    return "legacy" if _legacy_mode else "fast"


@contextmanager
def legacy_dispatch():
    """Run dispatch through the seed engine: fresh ``arange`` per call,
    ``array_split`` per call, index arrays (gather copies) for every
    body. Exists for benchmarking and equivalence testing. The mode is
    also exported via ``$REPRO_LEGACY_DISPATCH`` so worker processes
    forked/spawned inside the block inherit it.
    """
    global _legacy_mode
    prev, prev_env = _legacy_mode, os.environ.get(_LEGACY_ENV)
    _legacy_mode = True
    os.environ[_LEGACY_ENV] = "1"
    try:
        yield
    finally:
        _legacy_mode = prev
        if prev_env is None:
            os.environ.pop(_LEGACY_ENV, None)
        else:
            os.environ[_LEGACY_ENV] = prev_env


# ---------------------------------------------------------------- segments
def _segment_span(segment: object) -> tuple[int, int] | None:
    """``(begin, end)`` when the segment is a contiguous step-1 range.

    Returns ``None`` for stepped ranges and explicit index arrays (which
    stay on the array path). Validates bounds: iteration counts must be
    non-negative, and ``(begin, end)`` tuples must hold real integers —
    silently truncating floats would iterate a different space than the
    caller wrote.
    """
    if isinstance(segment, bool):
        raise TypeError("segment must not be a bool")
    if isinstance(segment, (int, np.integer)):
        if segment < 0:
            raise ValueError(f"negative iteration count: {segment}")
        return (0, int(segment))
    if isinstance(segment, tuple) and len(segment) == 2:
        begin, end = segment
        for bound in (begin, end):
            if isinstance(bound, bool) or not isinstance(bound, (int, np.integer)):
                raise TypeError(
                    f"segment bounds must be integers, got ({begin!r}, {end!r})"
                )
        if end < begin:
            raise ValueError(f"empty-reversed segment ({begin}, {end})")
        return (int(begin), int(end))
    if isinstance(segment, range) and segment.step == 1:
        return (segment.start, max(segment.start, segment.stop))
    return None


def _normalize_segment(segment: object) -> np.ndarray:
    """Accept an int (range size), a (begin, end) tuple, range, or array.

    Contiguous segments come back as (possibly cached, read-only) iota
    arrays; explicit arrays are passed through as ``intp``.
    """
    span = _segment_span(segment)
    if span is not None:
        begin, end = span
        if _legacy_mode:
            return np.arange(begin, end, dtype=np.intp)
        return _cached_arange(begin, end)
    if isinstance(segment, range):
        return np.arange(segment.start, segment.stop, segment.step, dtype=np.intp)
    arr = np.asarray(segment)
    if arr.ndim != 1:
        raise ValueError(f"index segments must be 1-D, got shape {arr.shape}")
    return arr.astype(np.intp, copy=False)


# ----------------------------------------------------------- plan caching
#: LRU of partition plans keyed by (schedule parameters, n).
_PLAN_CACHE: OrderedDict[tuple, tuple[tuple[int, int], ...]] = OrderedDict()
_PLAN_CACHE_MAX = 128

#: LRU of read-only iota arrays keyed by (begin, end), bounded by bytes.
_ARANGE_CACHE: OrderedDict[tuple[int, int], np.ndarray] = OrderedDict()
_ARANGE_CACHE_BYTES = int(
    os.environ.get("REPRO_INDEX_CACHE_BYTES", 64 * 1024 * 1024)
)
_arange_cache_used = 0


def clear_dispatch_caches() -> None:
    """Drop the partition-plan and iota caches (tests/benchmarks)."""
    global _arange_cache_used
    _PLAN_CACHE.clear()
    _ARANGE_CACHE.clear()
    _arange_cache_used = 0


def _plan_key(policy: ExecPolicy, n: int) -> tuple:
    """Only the parameters that shape the partitioning enter the key."""
    backend = policy.backend
    if backend in (Backend.SEQUENTIAL, Backend.SIMD):
        return ("seq", n)
    if backend is Backend.OPENMP:
        return ("omp", policy.num_threads, n)
    return ("gpu", policy.block_size, n)


def _compute_plan(policy: ExecPolicy, n: int) -> tuple[tuple[int, int], ...]:
    backend = policy.backend
    if backend in (Backend.SEQUENTIAL, Backend.SIMD):
        return ((0, n),)
    if backend is Backend.OPENMP:
        # Static schedule: contiguous chunks of ~n/num_threads. Chunk
        # sizes replicate np.array_split: the first n % k chunks get one
        # extra element.
        nchunks = min(policy.num_threads, n)
        base, extra = divmod(n, nchunks)
        bounds = []
        start = 0
        for chunk in range(nchunks):
            stop = start + base + (1 if chunk < extra else 0)
            bounds.append((start, stop))
            start = stop
        return tuple(bounds)
    # GPU-style: fixed-size thread blocks.
    block = policy.block_size
    return tuple(
        (start, min(start + block, n)) for start in range(0, n, block)
    )


def partition_plan(policy: ExecPolicy, n: int) -> tuple[tuple[int, int], ...]:
    """The policy's ``(start, stop)`` partition boundaries for ``n``
    iterations, computed once per shape and LRU-cached."""
    if n == 0:
        return ()
    key = _plan_key(policy, n)
    plan = _PLAN_CACHE.get(key)
    if plan is not None:
        _PLAN_CACHE.move_to_end(key)
        return plan
    plan = _compute_plan(policy, n)
    _PLAN_CACHE[key] = plan
    while len(_PLAN_CACHE) > _PLAN_CACHE_MAX:
        _PLAN_CACHE.popitem(last=False)
    return plan


def _cached_arange(begin: int, end: int) -> np.ndarray:
    """A read-only ``arange(begin, end)``, shared across calls.

    Read-only so a buggy body cannot corrupt the indices every later
    ``forall`` over the same range would see. Oversized requests bypass
    the cache entirely.
    """
    global _arange_cache_used
    key = (begin, end)
    arr = _ARANGE_CACHE.get(key)
    if arr is not None:
        _ARANGE_CACHE.move_to_end(key)
        return arr
    arr = np.arange(begin, end, dtype=np.intp)
    arr.flags.writeable = False
    if arr.nbytes > _ARANGE_CACHE_BYTES:
        return arr
    _ARANGE_CACHE[key] = arr
    _arange_cache_used += arr.nbytes
    while _arange_cache_used > _ARANGE_CACHE_BYTES and _ARANGE_CACHE:
        _, evicted = _ARANGE_CACHE.popitem(last=False)
        _arange_cache_used -= evicted.nbytes
    return arr


# ------------------------------------------------------------- partitioning
def _iter_partitions_uncached(
    policy: ExecPolicy, indices: np.ndarray
) -> Iterator[np.ndarray]:
    """The seed partitioner, kept verbatim for ``legacy_dispatch``."""
    n = len(indices)
    if n == 0:
        return
    if policy.backend in (Backend.SEQUENTIAL, Backend.SIMD):
        yield indices
        return
    if policy.backend is Backend.OPENMP:
        nchunks = min(policy.num_threads, n)
        for part in np.array_split(indices, nchunks):
            if len(part):
                yield part
        return
    block = policy.block_size
    for start in range(0, n, block):
        yield indices[start : start + block]


def iter_partitions(policy: ExecPolicy, indices: np.ndarray) -> Iterator[np.ndarray]:
    """Yield the index partitions the policy would hand to workers.

    Partitions are basic-slicing *views* of ``indices`` (never copies);
    the fancy-indexing gather, if any, happens inside the body.
    """
    if _legacy_mode:
        yield from _iter_partitions_uncached(policy, indices)
        return
    for start, stop in partition_plan(policy, len(indices)):
        yield indices[start:stop]


def iter_partition_slices(
    policy: ExecPolicy, begin: int, end: int
) -> Iterator[slice]:
    """The policy's partitions over ``[begin, end)`` as ``slice`` objects."""
    for start, stop in partition_plan(policy, end - begin):
        yield slice(begin + start, begin + stop)


# ----------------------------------------------------------------- dispatch
def forall(policy: ExecPolicy, segment: object, body: IndexBody) -> int:
    """Run ``body`` over ``segment`` under ``policy``; return launch count.

    The return value is the number of partitions (GPU blocks / CPU chunks)
    — the simulators use it to attribute launch and scheduling overheads.

    Slice-capable bodies (see :func:`slice_capable`) over contiguous
    segments receive ``slice`` partitions — zero-copy dispatch. All other
    bodies receive index arrays, exactly as before.
    """
    if _legacy_mode:
        launches = 0
        for part in _iter_partitions_uncached(policy, _normalize_segment(segment)):
            body(part)
            launches += 1
        return launches
    span = _segment_span(segment)
    if span is not None:
        capability = index_capability(body)
        begin, end = span
        if capability == FUSED_INDEX:
            # Partition-invariant body: one call over the whole span;
            # the launch count still comes from the policy's plan.
            launches = len(partition_plan(policy, end - begin))
            if launches:
                body(slice(begin, end))
            return launches
        if capability == SLICE_INDEX:
            launches = 0
            for start, stop in partition_plan(policy, end - begin):
                body(slice(begin + start, begin + stop))
                launches += 1
            return launches
    indices = _normalize_segment(segment)
    launches = 0
    for start, stop in partition_plan(policy, len(indices)):
        body(indices[start:stop])
        launches += 1
    return launches


def forall_chunks(
    policy: ExecPolicy, segment: object, body: Callable[[np.ndarray, int], None]
) -> int:
    """Like :func:`forall` but passes the partition ordinal to the body.

    Needed by kernels that keep per-thread/per-block state, e.g. partial
    reductions written to a block-indexed scratch array. Honors the same
    capability protocol as :func:`forall`.
    """
    if _legacy_mode:
        launches = 0
        for ordinal, part in enumerate(
            _iter_partitions_uncached(policy, _normalize_segment(segment))
        ):
            body(part, ordinal)
            launches += 1
        return launches
    span = _segment_span(segment)
    if span is not None and index_capability(body) in (SLICE_INDEX, FUSED_INDEX):
        # Chunk bodies need the ordinal per partition, so fusion does not
        # apply here; fused bodies still get the zero-copy slice path.
        begin, end = span
        launches = 0
        for ordinal, (start, stop) in enumerate(partition_plan(policy, end - begin)):
            body(slice(begin + start, begin + stop), ordinal)
            launches += 1
        return launches
    indices = _normalize_segment(segment)
    launches = 0
    for ordinal, (start, stop) in enumerate(partition_plan(policy, len(indices))):
        body(indices[start:stop], ordinal)
        launches += 1
    return launches
