"""``forall``: the core RAJA dispatch primitive.

A kernel body is a callable taking a NumPy index array and performing
vectorized work over those indices (reads/writes through captured arrays
or :class:`~repro.rajasim.views.View` objects). ``forall`` partitions the
iteration space according to the policy and invokes the body once per
partition:

* sequential / SIMD — one partition covering the whole range (the NumPy
  vectorized execution *is* the SIMD model);
* OpenMP — round-robin chunks per simulated thread;
* GPU backends (CUDA/HIP/SYCL/OMPTarget) — thread blocks of
  ``policy.block_size`` contiguous indices, mirroring a grid launch.

Because bodies receive index *arrays*, results are bit-identical across
policies for data-parallel bodies (floating-point reductions are combined
in deterministic partition order).
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

import numpy as np

from repro.rajasim.policies import Backend, ExecPolicy

IndexBody = Callable[[np.ndarray], None]


def _normalize_segment(segment: object) -> np.ndarray:
    """Accept an int (range size), a (begin, end) tuple, range, or array."""
    if isinstance(segment, (int, np.integer)):
        if segment < 0:
            raise ValueError(f"negative iteration count: {segment}")
        return np.arange(int(segment), dtype=np.intp)
    if isinstance(segment, tuple) and len(segment) == 2:
        begin, end = segment
        if end < begin:
            raise ValueError(f"empty-reversed segment ({begin}, {end})")
        return np.arange(int(begin), int(end), dtype=np.intp)
    if isinstance(segment, range):
        return np.arange(segment.start, segment.stop, segment.step, dtype=np.intp)
    arr = np.asarray(segment)
    if arr.ndim != 1:
        raise ValueError(f"index segments must be 1-D, got shape {arr.shape}")
    return arr.astype(np.intp, copy=False)


def iter_partitions(policy: ExecPolicy, indices: np.ndarray) -> Iterator[np.ndarray]:
    """Yield the index partitions the policy would hand to workers."""
    n = len(indices)
    if n == 0:
        return
    if policy.backend in (Backend.SEQUENTIAL, Backend.SIMD):
        yield indices
        return
    if policy.backend is Backend.OPENMP:
        # Static schedule: contiguous chunks of ~n/num_threads, mirroring
        # `#pragma omp parallel for schedule(static)`.
        nchunks = min(policy.num_threads, n)
        for part in np.array_split(indices, nchunks):
            if len(part):
                yield part
        return
    # GPU-style: fixed-size thread blocks.
    block = policy.block_size
    for start in range(0, n, block):
        yield indices[start : start + block]


def forall(policy: ExecPolicy, segment: object, body: IndexBody) -> int:
    """Run ``body`` over ``segment`` under ``policy``; return launch count.

    The return value is the number of partitions (GPU blocks / CPU chunks)
    — the simulators use it to attribute launch and scheduling overheads.
    """
    indices = _normalize_segment(segment)
    launches = 0
    for part in iter_partitions(policy, indices):
        body(part)
        launches += 1
    return launches


def forall_chunks(
    policy: ExecPolicy, segment: object, body: Callable[[np.ndarray, int], None]
) -> int:
    """Like :func:`forall` but passes the partition ordinal to the body.

    Needed by kernels that keep per-thread/per-block state, e.g. partial
    reductions written to a block-indexed scratch array.
    """
    indices = _normalize_segment(segment)
    launches = 0
    for ordinal, part in enumerate(iter_partitions(policy, indices)):
        body(part, ordinal)
        launches += 1
    return launches
