"""RAJA-style Views and Layouts.

A :class:`View` wraps a flat data array with a :class:`Layout` mapping
multi-dimensional indices to flat offsets, exactly like ``RAJA::View`` over
``RAJA::Layout``. Kernels such as LTIMES use permuted layouts; the suite's
LTIMES vs LTIMES_NOVIEW pair measures the abstraction cost of going
through a View, so the View implementation here does real index
arithmetic rather than delegating to NumPy reshaping.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


class Layout:
    """Maps an N-dimensional index tuple to a flat offset.

    ``perm`` orders dimensions from slowest- to fastest-varying; the default
    is C order (identity permutation).
    """

    def __init__(self, shape: Sequence[int], perm: Sequence[int] | None = None) -> None:
        self.shape = tuple(int(s) for s in shape)
        if any(s < 0 for s in self.shape):
            raise ValueError(f"negative extent in shape {self.shape}")
        ndim = len(self.shape)
        if perm is None:
            perm = tuple(range(ndim))
        self.perm = tuple(int(p) for p in perm)
        if sorted(self.perm) != list(range(ndim)):
            raise ValueError(f"perm {self.perm} is not a permutation of 0..{ndim - 1}")
        # Strides: the last dim in `perm` is stride-1.
        strides = [0] * ndim
        acc = 1
        for dim in reversed(self.perm):
            strides[dim] = acc
            acc *= self.shape[dim] if self.shape[dim] else 1
        self.strides = tuple(strides)
        self.size = int(np.prod(self.shape)) if self.shape else 1

    def __call__(self, *index: object) -> object:
        """Flat offset(s) for the given per-dimension indices (scalars or arrays)."""
        if len(index) != len(self.shape):
            raise ValueError(
                f"layout has {len(self.shape)} dims, got {len(index)} indices"
            )
        flat: object = 0
        for idx, stride in zip(index, self.strides):
            flat = flat + np.asarray(idx) * stride
        return flat

    def __repr__(self) -> str:
        return f"Layout(shape={self.shape}, perm={self.perm})"


def make_permuted_layout(shape: Sequence[int], perm: Sequence[int]) -> Layout:
    """RAJA's ``make_permuted_layout`` equivalent."""
    return Layout(shape, perm)


class View:
    """A multi-dimensional view over a flat array through a :class:`Layout`."""

    def __init__(self, data: np.ndarray, layout: Layout | Sequence[int]) -> None:
        if not isinstance(layout, Layout):
            layout = Layout(layout)
        data = np.asarray(data)
        if data.ndim != 1:
            raise ValueError("View data must be a flat (1-D) array")
        if len(data) < layout.size:
            raise ValueError(
                f"data has {len(data)} elements, layout needs {layout.size}"
            )
        self.data = data
        self.layout = layout

    def __getitem__(self, index: object) -> np.ndarray:
        if not isinstance(index, tuple):
            index = (index,)
        return self.data[self.layout(*index)]

    def __setitem__(self, index: object, value: object) -> None:
        if not isinstance(index, tuple):
            index = (index,)
        self.data[self.layout(*index)] = value

    @property
    def shape(self) -> tuple[int, ...]:
        return self.layout.shape

    def __repr__(self) -> str:
        return f"View(shape={self.layout.shape}, perm={self.layout.perm})"
