"""RAJA-style reducer objects.

RAJA kernels declare reducers (``RAJA::ReduceSum`` etc.) that accumulate a
value across loop iterations and are read after the loop. The Python
equivalents here accept vectorized contributions (an array per ``forall``
partition) and combine partials in deterministic partition order, which
mirrors how the GPU backends combine per-block partials.
"""

from __future__ import annotations

import numpy as np


class _Reducer:
    """Base class: holds the running value and the combine rule."""

    def __init__(self, initial: float) -> None:
        self._initial = initial
        self._value = initial

    def reset(self, initial: float | None = None) -> None:
        if initial is not None:
            self._initial = initial
        self._value = self._initial

    def get(self) -> float:
        return self._value

    def combine(self, values: object) -> None:
        raise NotImplementedError


class ReduceSum(_Reducer):
    """Sum reduction; ``combine`` adds the (partition-local) sum."""

    def combine(self, values: object) -> None:
        arr = np.asarray(values)
        self._value = self._value + (arr.sum() if arr.ndim else arr)

    def __iadd__(self, values: object) -> "ReduceSum":
        self.combine(values)
        return self


class ReduceMin(_Reducer):
    def combine(self, values: object) -> None:
        arr = np.asarray(values)
        candidate = arr.min() if arr.ndim else arr
        if candidate < self._value:
            self._value = candidate


class ReduceMax(_Reducer):
    def combine(self, values: object) -> None:
        arr = np.asarray(values)
        candidate = arr.max() if arr.ndim else arr
        if candidate > self._value:
            self._value = candidate


class _LocReducer:
    """Min/max-with-location reductions (``RAJA::ReduceMinLoc``)."""

    def __init__(self, initial: float, initial_loc: int = -1) -> None:
        self._value = initial
        self._loc = initial_loc

    def get(self) -> float:
        return self._value

    def get_loc(self) -> int:
        return self._loc


class ReduceMinLoc(_LocReducer):
    def combine(self, values: object, locations: object) -> None:
        arr = np.asarray(values)
        locs = np.asarray(locations)
        if arr.shape != locs.shape:
            raise ValueError("values and locations must have the same shape")
        if arr.size == 0:
            return
        i = int(np.argmin(arr))
        if arr.flat[i] < self._value:
            self._value = arr.flat[i]
            self._loc = int(locs.flat[i])


class ReduceMaxLoc(_LocReducer):
    def combine(self, values: object, locations: object) -> None:
        arr = np.asarray(values)
        locs = np.asarray(locations)
        if arr.shape != locs.shape:
            raise ValueError("values and locations must have the same shape")
        if arr.size == 0:
            return
        i = int(np.argmax(arr))
        if arr.flat[i] > self._value:
            self._value = arr.flat[i]
            self._loc = int(locs.flat[i])


class MultiReduceSum:
    """A runtime-sized bank of sum reducers (``RAJA::MultiReduceSum``).

    Used by MULTI_REDUCE and HISTOGRAM: each iteration contributes to one
    of ``num_bins`` accumulators selected by a bin index.
    """

    def __init__(self, num_bins: int, initial: float = 0.0) -> None:
        if num_bins <= 0:
            raise ValueError(f"num_bins must be > 0, got {num_bins}")
        self.num_bins = num_bins
        self._values = np.full(num_bins, float(initial))

    def combine(self, bins: object, values: object) -> None:
        bins_arr = np.asarray(bins, dtype=np.intp)
        vals_arr = np.asarray(values, dtype=float)
        if bins_arr.shape != vals_arr.shape:
            raise ValueError("bins and values must have the same shape")
        if np.any((bins_arr < 0) | (bins_arr >= self.num_bins)):
            raise IndexError("bin index out of range")
        np.add.at(self._values, bins_arr, vals_arr)

    def get(self, bin_index: int | None = None) -> object:
        if bin_index is None:
            return self._values.copy()
        return float(self._values[bin_index])
