"""Scan (prefix-sum) operations, RAJA-style."""

from __future__ import annotations

import numpy as np


def inclusive_scan(values: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Inclusive prefix sum: ``out[i] = sum(values[:i+1])``."""
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise ValueError("scan input must be 1-D")
    if out is None:
        return np.cumsum(arr)
    np.cumsum(arr, out=out)
    return out


def exclusive_scan(
    values: np.ndarray, out: np.ndarray | None = None, identity: float = 0
) -> np.ndarray:
    """Exclusive prefix sum: ``out[0] = identity, out[i] = out[i-1] + v[i-1]``."""
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise ValueError("scan input must be 1-D")
    if out is None:
        out = np.empty_like(arr)
    if len(arr):
        np.cumsum(arr[:-1], out=out[1:])
        out[1:] += identity
        out[0] = identity
    return out


def exclusive_scan_inplace(values: np.ndarray, identity: float = 0) -> np.ndarray:
    """In-place exclusive scan (used by INDEXLIST-style stream compaction)."""
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise ValueError("scan input must be 1-D")
    if len(arr) == 0:
        return arr
    total_shift = arr[:-1].copy()
    arr[0] = identity
    np.cumsum(total_shift, out=arr[1:])
    arr[1:] += identity
    return arr
