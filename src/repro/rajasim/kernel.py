"""Nested-loop dispatch (``RAJA::kernel`` equivalent).

``kernel_2d``/``kernel_3d`` execute a body over the cross product of index
ranges. The body receives one index array per dimension (already
broadcast), so NumPy fancy indexing through :class:`~repro.rajasim.views.View`
objects does the multi-dimensional work in vectorized form. Partitioning
follows the *outermost* range, matching RAJA's common
``kernel<For<0, ...>>`` structure where outer iterations map to
threads/blocks.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.rajasim.forall import _normalize_segment, iter_partitions
from repro.rajasim.policies import ExecPolicy


def kernel_2d(
    policy: ExecPolicy,
    segments: tuple[object, object],
    body: Callable[[np.ndarray, np.ndarray], None],
) -> int:
    """Run ``body(i, j)`` over ``segments[0] x segments[1]``."""
    outer = _normalize_segment(segments[0])
    inner = _normalize_segment(segments[1])
    launches = 0
    for part in iter_partitions(policy, outer):
        ii = np.repeat(part, len(inner))
        jj = np.tile(inner, len(part))
        body(ii, jj)
        launches += 1
    return launches


def kernel_3d(
    policy: ExecPolicy,
    segments: tuple[object, object, object],
    body: Callable[[np.ndarray, np.ndarray, np.ndarray], None],
) -> int:
    """Run ``body(i, j, k)`` over the 3-D cross product of segments."""
    outer = _normalize_segment(segments[0])
    mid = _normalize_segment(segments[1])
    inner = _normalize_segment(segments[2])
    n_mid, n_inner = len(mid), len(inner)
    launches = 0
    for part in iter_partitions(policy, outer):
        ii = np.repeat(part, n_mid * n_inner)
        jj = np.tile(np.repeat(mid, n_inner), len(part))
        kk = np.tile(inner, len(part) * n_mid)
        body(ii, jj, kk)
        launches += 1
    return launches
