"""Top-Down Microarchitecture Analysis (TMA) — Fig. 2's hierarchy.

Computes the top-two-level TMA categories from raw pipeline-slot counters
(as :mod:`repro.cpusim` writes into Caliper profiles), exactly as the
method of Yasin (ISPASS'14) prescribes: each category's slots divided by
total slots. The five-component vector (frontend, bad speculation,
retiring, core bound, memory bound) is the feature vector of the paper's
similarity analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: The paper's feature order for clustering (Section IV).
TMA_COMPONENTS: tuple[str, ...] = (
    "frontend_bound",
    "bad_speculation",
    "retiring",
    "core_bound",
    "memory_bound",
)


@dataclass(frozen=True)
class TopDown:
    """Top-two-level TMA fractions for one kernel on one machine."""

    frontend_bound: float
    bad_speculation: float
    retiring: float
    core_bound: float
    memory_bound: float

    def __post_init__(self) -> None:
        total = (
            self.frontend_bound
            + self.bad_speculation
            + self.retiring
            + self.core_bound
            + self.memory_bound
        )
        if not 0.99 <= total <= 1.01:
            raise ValueError(f"TMA fractions must sum to 1, got {total}")

    @property
    def backend_bound(self) -> float:
        """Level-1 Backend Bound = Core Bound + Memory Bound."""
        return self.core_bound + self.memory_bound

    def vector(self) -> np.ndarray:
        """Feature vector in :data:`TMA_COMPONENTS` order."""
        return np.array([getattr(self, c) for c in TMA_COMPONENTS])

    def dominant(self) -> str:
        return TMA_COMPONENTS[int(np.argmax(self.vector()))]


def topdown_from_counters(counters: dict[str, float]) -> TopDown:
    """Recover TMA fractions from raw slot counters.

    ``counters`` uses the perf/PAPI names of
    :data:`repro.cpusim.PAPI_COUNTER_NAMES`.
    """
    slots = counters.get("perf::slots", 0.0)
    if slots <= 0:
        raise ValueError("missing or non-positive 'perf::slots' counter")
    frac = lambda name: counters.get(name, 0.0) / slots  # noqa: E731
    return TopDown(
        frontend_bound=frac("perf::topdown-fe-bound"),
        bad_speculation=frac("perf::topdown-bad-spec"),
        retiring=frac("perf::topdown-retiring"),
        core_bound=frac("perf::topdown-be-bound:core"),
        memory_bound=frac("perf::topdown-be-bound:memory"),
    )


#: Fig. 2's hierarchy: category -> sub-categories. Only the starred parts
#: are quantified in this reproduction (the paper also uses only the top
#: two levels).
TMA_HIERARCHY: dict[str, list[str]] = {
    "Frontend Bound": ["Fetch Latency", "Fetch Bandwidth"],
    "Bad Speculation": ["Branch Mispredicts", "Machine Clears"],
    "Retiring": ["Base", "Microcode Sequencer"],
    "Backend Bound": ["Core Bound", "Memory Bound"],
    "Core Bound": ["Divider", "Ports Utilization"],
    "Memory Bound": ["L1 Bound", "L2 Bound", "L3 Bound", "DRAM Bound", "Store Bound"],
}


def render_hierarchy() -> str:
    """Text rendering of Fig. 2's top-down tree."""
    lines = ["Pipeline slots"]
    for level1 in ("Frontend Bound", "Bad Speculation", "Retiring", "Backend Bound"):
        lines.append(f"+- {level1}")
        for level2 in TMA_HIERARCHY.get(level1, []):
            lines.append(f"|  +- {level2}")
            for level3 in TMA_HIERARCHY.get(level2, []):
                lines.append(f"|  |  +- {level3}")
    return "\n".join(lines)
