"""Instruction Roofline Analysis for GPUs (Ding & Williams, PMBS'19).

Converts NCU-style counters (Table IV) into the instruction-roofline
coordinates of Fig. 5: performance in warp GIPS on the y-axis,
instruction intensity (warp instructions per transaction) on the x-axis,
one point per (kernel, cache level). The ceilings come from the machine's
GPU spec: the peak warp instruction rate (horizontal roof) and per-level
transaction bandwidths (diagonal roofs, GTXN/s).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machines.model import MachineModel

LEVELS: tuple[str, ...] = ("L1", "L2", "HBM")

_LEVEL_COUNTERS: dict[str, tuple[str, ...]] = {
    "L1": (
        "l1tex__t_sectors_pipe_lsu_mem_global_op_ld.sum",
        "l1tex__t_sectors_pipe_lsu_mem_global_op_st.sum",
        "l1tex__t_sectors_pipe_lsu_mem_local_op_ld.sum",
        "l1tex__t_requests_pipe_lsu_mem_local_op_st.sum",
    ),
    "L2": (
        "lts__t_sectors_op_read.sum",
        "lts__t_sectors_op_write.sum",
        "lts__t_sectors_op_atom.sum",
        "lts__t_sectors_op_red.sum",
    ),
    "HBM": ("dram__sectors_read.sum", "dram__sectors_write.sum"),
}


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel's coordinates at one cache level."""

    kernel: str
    level: str
    warp_gips: float  # performance (10^9 warp instructions / s)
    intensity: float  # warp instructions per transaction
    gtxn_per_sec: float  # achieved transaction rate

    def bound_by(self, machine: MachineModel) -> str:
        """'compute' if the instruction roof limits, else 'memory'."""
        gpu = machine.gpu
        if gpu is None:
            raise ValueError(f"{machine.shorthand} is not a GPU machine")
        bw = level_bandwidth(machine, self.level)
        # The roofline crossover: below the ridge intensity, bandwidth
        # limits; above it the instruction roof does.
        ridge = gpu.peak_warp_gips / bw
        return "compute" if self.intensity >= ridge else "memory"


def level_bandwidth(machine: MachineModel, level: str) -> float:
    gpu = machine.gpu
    if gpu is None:
        raise ValueError(f"{machine.shorthand} is not a GPU machine")
    if level == "L1":
        return gpu.l1_gtxn_per_sec
    if level == "L2":
        return gpu.l2_gtxn_per_sec
    if level == "HBM":
        return gpu.dram_gtxn_per_sec
    raise ValueError(f"unknown cache level {level!r}; have {LEVELS}")


def transactions(counters: dict[str, float], level: str) -> float:
    """Total transactions at one cache level from the NCU counter set."""
    names = _LEVEL_COUNTERS.get(level)
    if names is None:
        raise ValueError(f"unknown cache level {level!r}; have {LEVELS}")
    return float(sum(counters.get(name, 0.0) for name in names))


def roofline_points(
    kernel: str, counters: dict[str, float], machine: MachineModel
) -> list[RooflinePoint]:
    """Fig. 5 coordinates for one kernel (all three cache levels)."""
    if machine.gpu is None:
        raise ValueError(f"{machine.shorthand} is not a GPU machine")
    time_s = counters.get("time (gpu)", 0.0)
    if time_s <= 0:
        raise ValueError("counters lack a positive 'time (gpu)'")
    thread_inst = counters.get("sm__sass_thread_inst_executed.sum", 0.0)
    warp_inst = thread_inst / machine.gpu.warp_size
    gips = warp_inst / time_s / 1e9
    points = []
    for level in LEVELS:
        txn = transactions(counters, level)
        intensity = warp_inst / txn if txn > 0 else float("inf")
        rate = txn / time_s / 1e9
        points.append(
            RooflinePoint(
                kernel=kernel,
                level=level,
                warp_gips=gips,
                intensity=intensity,
                gtxn_per_sec=rate,
            )
        )
    return points


def roofline_ceiling(machine: MachineModel, level: str, intensity: float) -> float:
    """Attainable warp GIPS at a given intensity (the roof of Fig. 5)."""
    gpu = machine.gpu
    if gpu is None:
        raise ValueError(f"{machine.shorthand} is not a GPU machine")
    if intensity < 0:
        raise ValueError(f"negative intensity: {intensity}")
    return min(gpu.peak_warp_gips, intensity * level_bandwidth(machine, level))
