"""Kernel scalability analysis (Section II-C's "kernel scalability with
the increase in computational resources").

The paper lists scalability as one of RAJAPerf's analysis axes. This
module predicts strong- and weak-scaling behaviour by re-evaluating the
CPU time model at reduced core counts (the machine model's resources
scale linearly with cores: issue slots, cache bandwidth, and the DRAM
share a socket's cores can draw).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.machines.model import MachineKind, MachineModel
from repro.perfmodel.cpu_time import CpuTimeModel
from repro.suite.kernel_base import KernelBase


def scaled_machine(machine: MachineModel, cores: int) -> MachineModel:
    """A copy of a CPU machine restricted to ``cores`` cores.

    Compute resources scale with the core count; memory bandwidth
    saturates at about half the socket's cores (the usual DRAM behaviour),
    so bandwidth scales like ``min(1, 2 * cores / total)``.
    """
    if machine.kind is not MachineKind.CPU or machine.cpu is None:
        raise ValueError(f"{machine.shorthand} is not a CPU machine")
    total = machine.cpu.cores_per_node
    if not 1 <= cores <= total:
        raise ValueError(f"cores must be in [1, {total}], got {cores}")
    fraction = cores / total
    bw_fraction = min(1.0, 2.0 * fraction)
    return replace(
        machine,
        peak_tflops_node=machine.peak_tflops_node * fraction,
        peak_membw_tb_node=machine.peak_membw_tb_node * bw_fraction,
        cpu=replace(machine.cpu, cores_per_node=cores),
    )


@dataclass(frozen=True)
class ScalingPoint:
    cores: int
    time_seconds: float
    speedup: float  # vs the 1-core point
    efficiency: float  # speedup / cores


@dataclass(frozen=True)
class ScalingCurve:
    kernel: str
    machine: str
    mode: str  # "strong" or "weak"
    points: tuple[ScalingPoint, ...]

    def saturation_cores(self, threshold: float = 0.5) -> int:
        """First core count whose parallel efficiency drops below
        ``threshold`` (the knee of the curve); the last point if none."""
        for point in self.points:
            if point.efficiency < threshold:
                return point.cores
        return self.points[-1].cores


def strong_scaling(
    kernel: KernelBase,
    machine: MachineModel,
    core_counts: tuple[int, ...] = (1, 2, 4, 8, 16, 28, 56, 112),
) -> ScalingCurve:
    """Fixed problem size, growing cores."""
    work = kernel.work_profile()
    traits = kernel.effective_traits()
    counts = tuple(c for c in core_counts if c <= machine.cpu.cores_per_node)
    times = [
        CpuTimeModel(scaled_machine(machine, cores)).predict(work, traits).total
        for cores in counts
    ]
    base = times[0] * counts[0]
    points = tuple(
        ScalingPoint(
            cores=cores,
            time_seconds=t,
            speedup=times[0] / t,
            efficiency=(times[0] / t) / (cores / counts[0]),
        )
        for cores, t in zip(counts, times)
    )
    return ScalingCurve(kernel.full_name, machine.shorthand, "strong", points)


def weak_scaling(
    kernel_cls: type,
    machine: MachineModel,
    base_size: int = 285_714,  # the paper's per-rank CPU share
    core_counts: tuple[int, ...] = (1, 2, 4, 8, 16, 28, 56, 112),
) -> ScalingCurve:
    """Problem size grows with cores (fixed work per core)."""
    counts = tuple(c for c in core_counts if c <= machine.cpu.cores_per_node)
    times = []
    for cores in counts:
        kernel = kernel_cls(problem_size=base_size * cores)
        model = CpuTimeModel(scaled_machine(machine, cores))
        times.append(
            model.predict(kernel.work_profile(), kernel.effective_traits()).total
        )
    points = tuple(
        ScalingPoint(
            cores=cores,
            time_seconds=t,
            speedup=times[0] / t * (cores / counts[0]),
            efficiency=times[0] / t,
        )
        for cores, t in zip(counts, times)
    )
    name = kernel_cls(problem_size=base_size).full_name
    return ScalingCurve(name, machine.shorthand, "weak", points)


def render_curve(curve: ScalingCurve) -> str:
    lines = [f"{curve.mode} scaling of {curve.kernel} on {curve.machine}"]
    lines.append(f"{'cores':>6s} {'time':>12s} {'speedup':>9s} {'efficiency':>11s}")
    for point in curve.points:
        lines.append(
            f"{point.cores:>6d} {point.time_seconds:>12.4g} "
            f"{point.speedup:>9.2f} {point.efficiency:>11.2f}"
        )
    return "\n".join(lines)
