"""The Section IV kernel-similarity pipeline, end to end.

1. Run the admitted kernels (O(n) complexity, comparable decomposition)
   through the SPR-DDR model and collect their five-component TMA vectors
   (Fig. 3's data).
2. Agglomerative Ward clustering with the paper's 1.4 threshold (Fig. 6).
3. Per-cluster summaries: average TMA metrics, average speedups on the
   three HBM machines, and the per-group membership distribution (Fig. 7),
   plus the parallel-coordinate rows of Fig. 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.clustering import PAPER_THRESHOLD, ClusterResult, cluster_kernels
from repro.analysis.speedup import TARGETS, SpeedupStudy, run_speedup_study
from repro.analysis.topdown import TMA_COMPONENTS
from repro.machines.registry import get_machine
from repro.suite.groups import Group
from repro.suite.registry import similarity_kernel_classes
from repro.suite.run_params import PAPER_PROBLEM_SIZE


@dataclass
class ClusterSummary:
    """One row of Fig. 7's lower table (+ Fig. 8's coordinates)."""

    cluster_id: int
    kernels: list[str]
    tma_means: dict[str, float]
    speedups: dict[str, float]

    @property
    def size(self) -> int:
        return len(self.kernels)


@dataclass
class SimilarityResult:
    """Everything Figs. 6-8 need."""

    kernel_names: list[str]
    groups: list[str]
    vectors: np.ndarray  # (n, 5) TMA features, TMA_COMPONENTS order
    clustering: ClusterResult
    summaries: list[ClusterSummary]
    study: SpeedupStudy
    group_distribution: dict[str, dict[int, int]] = field(default_factory=dict)

    @property
    def num_clusters(self) -> int:
        return self.clustering.num_clusters

    def cluster_of(self, kernel: str) -> int:
        return int(self.clustering.labels[self.kernel_names.index(kernel)])

    def most_memory_bound_cluster(self) -> int:
        return max(
            range(self.num_clusters),
            key=lambda c: self.summaries[c].tma_means["memory_bound"],
        )


def classify_kernel(
    tma_vector: "np.ndarray | list[float]",
    result: SimilarityResult,
) -> tuple[int, dict[str, float], str]:
    """Place a *new* kernel into the existing clusters — the paper's
    porting-decision use case ("extrapolating performance for applications
    with similar algorithmic characteristics to the kernels").

    ``tma_vector`` is the kernel's five-component TMA signature in
    :data:`~repro.analysis.topdown.TMA_COMPONENTS` order (e.g. measured on
    the user's application with real TMA tooling). Returns the nearest
    cluster id, that cluster's expected speedups per machine, and the name
    of the most similar suite kernel.
    """
    vec = np.asarray(tma_vector, dtype=float)
    if vec.shape != (5,):
        raise ValueError(f"expected a 5-component TMA vector, got shape {vec.shape}")
    if not 0.98 <= float(vec.sum()) <= 1.02:
        raise ValueError(f"TMA fractions must sum to ~1, got {vec.sum():.3f}")
    centroids = {
        s.cluster_id: np.array([s.tma_means[c] for c in TMA_COMPONENTS])
        for s in result.summaries
    }
    cluster = min(centroids, key=lambda c: float(np.linalg.norm(vec - centroids[c])))
    distances = np.linalg.norm(result.vectors - vec[None, :], axis=1)
    nearest = result.kernel_names[int(np.argmin(distances))]
    return cluster, dict(result.summaries[cluster].speedups), nearest


def run_similarity_analysis(
    problem_size: int = PAPER_PROBLEM_SIZE,
    threshold: float = PAPER_THRESHOLD,
    method: str = "ward",
) -> SimilarityResult:
    """Execute the full Section IV pipeline on the model's predictions."""
    classes = similarity_kernel_classes()
    names: list[str] = []
    groups: list[str] = []
    vectors: list[np.ndarray] = []
    baseline = get_machine("SPR-DDR")
    for cls in classes:
        kernel = cls(problem_size=problem_size)
        tma = kernel.predict(baseline).tma
        assert tma is not None
        names.append(kernel.full_name)
        groups.append(cls.GROUP.value)
        vectors.append(np.array([tma[c] for c in TMA_COMPONENTS]))
    matrix = np.vstack(vectors)

    clustering = cluster_kernels(matrix, threshold=threshold, method=method)
    study = run_speedup_study(problem_size=problem_size, kernel_classes=classes)

    summaries: list[ClusterSummary] = []
    for cid in range(clustering.num_clusters):
        members = clustering.members(cid)
        member_names = [names[i] for i in members]
        tma_means = {
            comp: float(matrix[members, j].mean())
            for j, comp in enumerate(TMA_COMPONENTS)
        }
        speedups = {
            machine: float(
                np.mean([study.record(k).speedup(machine) for k in member_names])
            )
            for machine in TARGETS
        }
        summaries.append(
            ClusterSummary(
                cluster_id=cid,
                kernels=member_names,
                tma_means=tma_means,
                speedups=speedups,
            )
        )

    distribution: dict[str, dict[int, int]] = {}
    for group in Group:
        if group is Group.COMM:
            continue
        counts: dict[int, int] = {}
        for name, label in zip(names, clustering.labels):
            if groups[names.index(name)] == group.value:
                counts[int(label)] = counts.get(int(label), 0) + 1
        distribution[group.value] = counts

    return SimilarityResult(
        kernel_names=names,
        groups=groups,
        vectors=matrix,
        clustering=clustering,
        summaries=summaries,
        study=study,
        group_distribution=distribution,
    )
