"""Text dendrogram rendering (Fig. 6)."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


def render_dendrogram(
    merges: np.ndarray,
    labels: Sequence[str],
    threshold: float | None = None,
    width: int = 60,
) -> str:
    """Render a linkage matrix as an indented text dendrogram.

    Leaves print at their merge depth; each internal node prints its merge
    distance. A ``threshold`` draws the paper's cut line: merges above it
    are marked, so the flat clusters are visible as subtrees below the
    marked nodes.
    """
    n = len(labels)
    if len(merges) != n - 1:
        raise ValueError(
            f"{len(labels)} labels need {len(labels) - 1} merges, got {len(merges)}"
        )
    max_dist = float(merges[:, 2].max()) if len(merges) else 1.0

    children: dict[int, tuple[int, int, float]] = {}
    for step, (a, b, dist, _size) in enumerate(merges):
        children[n + step] = (int(a), int(b), float(dist))

    lines: list[str] = []

    def walk(node: int, depth: int) -> None:
        prefix = "  " * depth
        if node < n:
            lines.append(f"{prefix}+- {labels[node]}")
            return
        a, b, dist = children[node]
        bar = int(round(dist / max_dist * 20))
        cut = (
            "  <-- above threshold"
            if threshold is not None and dist > threshold
            else ""
        )
        lines.append(f"{prefix}+-[d={dist:.3f} {'#' * bar}]{cut}")
        walk(a, depth + 1)
        walk(b, depth + 1)

    walk(2 * n - 2, 0)
    header = f"Agglomerative (Ward) dendrogram, {n} kernels"
    if threshold is not None:
        header += f", cut at {threshold}"
    return header + "\n" + "\n".join(lines[:width * 100])
