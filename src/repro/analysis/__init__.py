"""Analysis layer: TMA, instruction roofline, clustering, speedup studies.

These are the paper's Sections III-V turned into library calls: everything
operates on raw counters / model predictions, never on model internals.
"""

from repro.analysis.topdown import (
    TMA_COMPONENTS,
    TMA_HIERARCHY,
    TopDown,
    render_hierarchy,
    topdown_from_counters,
)
from repro.analysis.roofline import (
    LEVELS,
    RooflinePoint,
    level_bandwidth,
    roofline_ceiling,
    roofline_points,
    transactions,
)
from repro.analysis.clustering import (
    PAPER_THRESHOLD,
    ClusterResult,
    cluster_kernels,
    fcluster_by_distance,
    linkage,
)
from repro.analysis.dendrogram import render_dendrogram
from repro.analysis.speedup import (
    BASELINE,
    TARGETS,
    KernelPerformance,
    SpeedupStudy,
    run_speedup_study,
)
from repro.analysis.similarity import (
    ClusterSummary,
    SimilarityResult,
    classify_kernel,
    run_similarity_analysis,
)
from repro.analysis.parallel_coords import AXES, coordinates, render_parallel_coordinates
from repro.analysis.tuning import (
    DEFAULT_BLOCK_SIZES,
    TuningResult,
    render_tuning_table,
    tune_from_thicket,
    tune_kernel,
)
from repro.analysis.scaling import (
    ScalingCurve,
    ScalingPoint,
    render_curve,
    scaled_machine,
    strong_scaling,
    weak_scaling,
)

__all__ = [
    "TMA_COMPONENTS",
    "TMA_HIERARCHY",
    "TopDown",
    "render_hierarchy",
    "topdown_from_counters",
    "LEVELS",
    "RooflinePoint",
    "level_bandwidth",
    "roofline_ceiling",
    "roofline_points",
    "transactions",
    "PAPER_THRESHOLD",
    "ClusterResult",
    "cluster_kernels",
    "fcluster_by_distance",
    "linkage",
    "render_dendrogram",
    "BASELINE",
    "TARGETS",
    "KernelPerformance",
    "SpeedupStudy",
    "run_speedup_study",
    "ClusterSummary",
    "SimilarityResult",
    "run_similarity_analysis",
    "classify_kernel",
    "AXES",
    "coordinates",
    "render_parallel_coordinates",
    "ScalingCurve",
    "ScalingPoint",
    "scaled_machine",
    "strong_scaling",
    "weak_scaling",
    "render_curve",
    "DEFAULT_BLOCK_SIZES",
    "TuningResult",
    "tune_kernel",
    "tune_from_thicket",
    "render_tuning_table",
]
