"""Cross-architecture speedup analysis (Section V, Figs. 9 and 10).

Computes, for every kernel, the predicted node-level execution time on
each machine (through the calibrated performance model), the speedups
relative to the SPR-DDR baseline, the SPR-DDR memory-bound TMA metric
(Fig. 9's left panel), the Stream TRIAD reference values (the yellow
lines), and the achieved bandwidth/FLOPS coordinates of Fig. 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machines.model import MachineModel
from repro.machines.registry import MACHINES, get_machine
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import all_kernel_classes
from repro.suite.run_params import PAPER_PROBLEM_SIZE

BASELINE = "SPR-DDR"
TARGETS = ("SPR-HBM", "P9-V100", "EPYC-MI250X")


@dataclass
class KernelPerformance:
    """One kernel's cross-machine performance record."""

    kernel: str
    group: str
    times: dict[str, float] = field(default_factory=dict)  # machine -> seconds
    memory_bound_ddr: float = 0.0
    flops: float = 0.0
    bytes_total: float = 0.0

    def speedup(self, machine: str) -> float:
        return self.times[BASELINE] / self.times[machine]

    def achieved_gflops(self, machine: str) -> float:
        return self.flops / self.times[machine] / 1e9

    def achieved_gbytes(self, machine: str) -> float:
        return self.bytes_total / self.times[machine] / 1e9

    @property
    def is_flop_heavy(self) -> bool:
        """Above Fig. 10's diagonal on SPR-DDR: more FLOPS than bytes."""
        return self.achieved_gflops(BASELINE) > self.achieved_gbytes(BASELINE)


@dataclass
class SpeedupStudy:
    """The full Section V dataset."""

    records: list[KernelPerformance]
    problem_size: int
    triad_speedups: dict[str, float] = field(default_factory=dict)

    def record(self, kernel: str) -> KernelPerformance:
        for rec in self.records:
            if rec.kernel == kernel:
                return rec
        raise KeyError(f"no record for kernel {kernel!r}")

    def no_speedup_kernels(self, machine: str, threshold: float = 1.0) -> list[str]:
        return [r.kernel for r in self.records if r.speedup(machine) <= threshold]

    def flop_heavy_kernels(self) -> list[str]:
        return [r.kernel for r in self.records if r.is_flop_heavy]

    def memory_bound_kernels(self, cutoff: float = 0.05) -> list[str]:
        return [r.kernel for r in self.records if r.memory_bound_ddr > cutoff]


def _machine_time(kernel: KernelBase, machine: MachineModel) -> tuple[float, float]:
    breakdown = kernel.predict(machine)
    mem_frac = breakdown.tma["memory_bound"] if breakdown.tma else 0.0
    return breakdown.total_seconds, mem_frac


def run_speedup_study(
    problem_size: int = PAPER_PROBLEM_SIZE,
    kernel_classes: list[type[KernelBase]] | None = None,
) -> SpeedupStudy:
    """Predict every kernel on every machine at the paper's problem size."""
    classes = kernel_classes if kernel_classes is not None else all_kernel_classes()
    machines = [get_machine(name) for name in MACHINES]
    records: list[KernelPerformance] = []
    for cls in classes:
        kernel = cls(problem_size=problem_size)
        work = kernel.work_profile()
        rec = KernelPerformance(
            kernel=kernel.full_name,
            group=cls.GROUP.value,
            flops=work.flops,
            bytes_total=work.bytes_total,
        )
        for machine in machines:
            total, mem_frac = _machine_time(kernel, machine)
            rec.times[machine.shorthand] = total
            if machine.shorthand == BASELINE:
                rec.memory_bound_ddr = mem_frac
        records.append(rec)

    study = SpeedupStudy(records=records, problem_size=problem_size)
    try:
        triad = study.record("Stream_TRIAD")
        study.triad_speedups = {m: triad.speedup(m) for m in TARGETS}
    except KeyError:
        pass
    return study
