"""Agglomerative hierarchical clustering (Section IV).

A from-scratch implementation of bottom-up agglomerative clustering with
the Ward minimum-variance merge strategy over Euclidean distances — the
configuration the paper uses with a distance threshold of 1.4 to find its
four kernel clusters. The linkage matrix follows SciPy's format
(``[left, right, distance, size]`` per merge) and tests cross-check
against ``scipy.cluster.hierarchy``.

``single``/``complete``/``average`` linkages are also provided for the
ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: The paper's Ward distance threshold producing four clusters.
PAPER_THRESHOLD = 1.4

_LINKAGES = ("ward", "single", "complete", "average")


def linkage(points: np.ndarray, method: str = "ward") -> np.ndarray:
    """Agglomerative linkage matrix in SciPy format.

    ``points`` is (n, d). Returns (n-1, 4): merged cluster ids, merge
    distance, merged size. New clusters get ids n, n+1, ...
    """
    if method not in _LINKAGES:
        raise ValueError(f"unknown linkage {method!r}; have {_LINKAGES}")
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2:
        raise ValueError(f"points must be 2-D, got shape {pts.shape}")
    n = len(pts)
    if n < 2:
        raise ValueError("need at least two points to cluster")

    # Pairwise distances: Ward recursion runs on squared Euclidean.
    diffs = pts[:, None, :] - pts[None, :, :]
    dist2 = np.einsum("ijk,ijk->ij", diffs, diffs)
    dist = dist2 if method == "ward" else np.sqrt(dist2)

    active: dict[int, int] = {i: 1 for i in range(n)}  # cluster id -> size
    # Distance store between active clusters, keyed by sorted id pair.
    store: dict[tuple[int, int], float] = {}
    for i in range(n):
        for j in range(i + 1, n):
            store[(i, j)] = float(dist[i, j])

    merges = np.zeros((n - 1, 4))
    next_id = n
    for step in range(n - 1):
        (a, b), d_ab = min(store.items(), key=lambda kv: (kv[1], kv[0]))
        size_a, size_b = active[a], active[b]
        new_size = size_a + size_b
        merge_dist = np.sqrt(d_ab) if method == "ward" else d_ab
        merges[step] = (a, b, merge_dist, new_size)

        del active[a], active[b]
        # Update distances to every remaining cluster (Lance-Williams).
        new_dists: dict[tuple[int, int], float] = {}
        for c, size_c in active.items():
            d_ac = store[_key(a, c)]
            d_bc = store[_key(b, c)]
            if method == "ward":
                total = size_a + size_b + size_c
                d_new = (
                    (size_a + size_c) * d_ac
                    + (size_b + size_c) * d_bc
                    - size_c * d_ab
                ) / total
            elif method == "single":
                d_new = min(d_ac, d_bc)
            elif method == "complete":
                d_new = max(d_ac, d_bc)
            else:  # average
                d_new = (size_a * d_ac + size_b * d_bc) / (size_a + size_b)
            new_dists[_key(next_id, c)] = d_new
        store = {
            key: value
            for key, value in store.items()
            if a not in key and b not in key
        }
        store.update(new_dists)
        active[next_id] = new_size
        next_id += 1
    return merges


def _key(i: int, j: int) -> tuple[int, int]:
    return (i, j) if i < j else (j, i)


def fcluster_by_distance(merges: np.ndarray, threshold: float) -> np.ndarray:
    """Flat cluster labels: cut the dendrogram at ``threshold``.

    Matches ``scipy.cluster.hierarchy.fcluster(criterion='distance')`` up
    to label permutation; labels here are 0-based and ordered by first
    member appearance.
    """
    if threshold <= 0:
        raise ValueError(f"threshold must be > 0, got {threshold}")
    n = len(merges) + 1
    parent = list(range(2 * n - 1))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for step, (a, b, d, _size) in enumerate(merges):
        if d <= threshold:
            new = n + step
            parent[find(int(a))] = new
            parent[find(int(b))] = new
    roots: dict[int, int] = {}
    labels = np.zeros(n, dtype=int)
    for i in range(n):
        root = find(i)
        if root not in roots:
            roots[root] = len(roots)
        labels[i] = roots[root]
    return labels


@dataclass(frozen=True)
class ClusterResult:
    """Clustering output: labels plus the full merge history."""

    labels: np.ndarray
    merges: np.ndarray
    threshold: float

    @property
    def num_clusters(self) -> int:
        return int(self.labels.max()) + 1 if len(self.labels) else 0

    def members(self, cluster: int) -> np.ndarray:
        return np.flatnonzero(self.labels == cluster)


def cluster_kernels(
    vectors: np.ndarray,
    threshold: float = PAPER_THRESHOLD,
    method: str = "ward",
) -> ClusterResult:
    """The paper's Section IV clustering: Ward over TMA vectors.

    Note: the paper clusters raw TMA fractions whose pairwise Euclidean
    distances are < 2, so a threshold of 1.4 operates on the *merge*
    distance scale (Ward distances grow with cluster size).
    """
    merges = linkage(vectors, method=method)
    labels = fcluster_by_distance(merges, threshold)
    return ClusterResult(labels=labels, merges=merges, threshold=threshold)
