"""Parallel-coordinate data and rendering (Fig. 8).

Fig. 8 links each cluster's average TMA metrics (five axes) with its
average speedups on the three higher-bandwidth systems (three axes). The
data lives in :class:`~repro.analysis.similarity.ClusterSummary`; this
module lays it out as axes and renders a text version.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.similarity import ClusterSummary
from repro.analysis.speedup import TARGETS
from repro.analysis.topdown import TMA_COMPONENTS

AXES: tuple[str, ...] = TMA_COMPONENTS + TARGETS


def coordinates(summaries: Sequence[ClusterSummary]) -> dict[int, list[float]]:
    """cluster id -> value per axis (TMA fractions then speedups)."""
    out: dict[int, list[float]] = {}
    for summary in summaries:
        row = [summary.tma_means[c] for c in TMA_COMPONENTS]
        row += [summary.speedups[m] for m in TARGETS]
        out[summary.cluster_id] = row
    return out


def render_parallel_coordinates(
    summaries: Sequence[ClusterSummary], width: int = 40
) -> str:
    """Text parallel-coordinate plot: one row per axis, one column marker
    per cluster at its normalized position."""
    coords = coordinates(summaries)
    if not coords:
        return "(no clusters)"
    lines = ["Parallel coordinates (clusters: " + ", ".join(str(c) for c in coords) + ")"]
    for axis_index, axis in enumerate(AXES):
        values = {cid: row[axis_index] for cid, row in coords.items()}
        lo, hi = min(values.values()), max(values.values())
        span = hi - lo if hi > lo else 1.0
        track = [" "] * (width + 1)
        for cid, value in values.items():
            pos = int(round((value - lo) / span * width))
            track[pos] = str(cid % 10)
        lines.append(
            f"{axis:>16s} |{''.join(track)}|  min={lo:.4g} max={hi:.4g}"
        )
    return "\n".join(lines)
