"""GPU block-size tuning analysis (RAJAPerf's 'tunings').

RAJAPerf records one Caliper profile per tuning; Thicket composes them and
the user asks "which block size is best for each kernel on this GPU?".
This module answers that question either from the model directly or from
a Thicket ensemble of tuned profiles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machines.model import MachineKind, MachineModel
from repro.suite.kernel_base import KernelBase

DEFAULT_BLOCK_SIZES: tuple[int, ...] = (64, 128, 256, 512, 1024)


@dataclass(frozen=True)
class TuningResult:
    """Best tuning for one kernel on one machine."""

    kernel: str
    machine: str
    times: dict[int, float]  # block size -> predicted seconds
    best_block: int

    @property
    def worst_penalty(self) -> float:
        """Slowdown of the worst tuning relative to the best."""
        best = self.times[self.best_block]
        return max(self.times.values()) / best


def tune_kernel(
    kernel: KernelBase,
    machine: MachineModel,
    block_sizes: tuple[int, ...] = DEFAULT_BLOCK_SIZES,
) -> TuningResult:
    """Predict per-tuning times and pick the fastest block size."""
    if machine.kind is not MachineKind.GPU:
        raise ValueError(f"{machine.shorthand} is not a GPU machine")
    if not block_sizes:
        raise ValueError("need at least one block size")
    times = {
        block: kernel.predict(machine, block_size=block).total_seconds
        for block in block_sizes
    }
    best = min(times, key=times.get)
    return TuningResult(
        kernel=kernel.full_name,
        machine=machine.shorthand,
        times=times,
        best_block=best,
    )


def tune_from_thicket(thicket, metric: str = "Avg time/rank") -> dict[str, int]:
    """Best tuning per kernel from a composed multi-tuning ensemble.

    Expects profiles whose metadata carries a ``tuning`` of the form
    ``block_N`` (as the executor writes). Returns kernel -> best block.
    """
    by_tuning = thicket.groupby("tuning")
    best: dict[str, tuple[float, int]] = {}
    for tuning, sub in by_tuning.items():
        block = int(str(tuning).rsplit("_", 1)[-1])
        for profile in sub.profiles:
            for kernel, value in sub.metric_for_profile(profile, metric).items():
                if "_" not in kernel:
                    continue  # skip group/root regions
                current = best.get(kernel)
                if current is None or value < current[0]:
                    best[kernel] = (value, block)
    return {kernel: block for kernel, (_, block) in best.items()}


def render_tuning_table(results: list[TuningResult]) -> str:
    """Text table of best tunings (one row per kernel)."""
    from repro.util.tables import TextTable

    if not results:
        return "(no tuning results)"
    blocks = sorted(results[0].times)
    table = TextTable(
        ["Kernel", "Machine"] + [f"block_{b}" for b in blocks] + ["Best", "Worst/Best"],
        title="GPU block-size tuning sweep (predicted seconds)",
    )
    for result in results:
        table.add_row(
            result.kernel,
            result.machine,
            *[result.times[b] for b in blocks],
            f"block_{result.best_block}",
            f"{result.worst_penalty:.2f}x",
        )
    return table.render()
