"""Profile data structures: region records and whole-run profiles.

A Caliper profile is a tree of annotated regions; each region carries a
metric dictionary (times, analytic metrics, hardware counters). Profiles
also carry run-global metadata (Adiak name/value pairs: variant, tuning,
machine, problem size) which is what Thicket's metadata table is built
from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class RegionRecord:
    """One annotated region instance in the profile's call tree."""

    name: str
    path: tuple[str, ...]  # full path from the root, including `name`
    metrics: dict[str, float] = field(default_factory=dict)
    children: list["RegionRecord"] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.path or self.path[-1] != self.name:
            raise ValueError(
                f"region path {self.path!r} must end with name {self.name!r}"
            )

    @property
    def depth(self) -> int:
        return len(self.path)

    def child(self, name: str) -> "RegionRecord":
        """Find or create a direct child region."""
        for node in self.children:
            if node.name == name:
                return node
        node = RegionRecord(name=name, path=self.path + (name,))
        self.children.append(node)
        return node

    def add_metric(self, name: str, value: float, accumulate: bool = True) -> None:
        if accumulate and name in self.metrics:
            self.metrics[name] += value
        else:
            self.metrics[name] = value

    def walk(self):
        """Depth-first iteration over this region and its descendants."""
        yield self
        for node in self.children:
            yield from node.walk()


@dataclass
class CaliProfile:
    """A whole-run profile: a region forest plus run-global metadata."""

    globals: dict[str, Any] = field(default_factory=dict)
    roots: list[RegionRecord] = field(default_factory=list)

    def root(self, name: str) -> RegionRecord:
        for node in self.roots:
            if node.name == name:
                return node
        node = RegionRecord(name=name, path=(name,))
        self.roots.append(node)
        return node

    def walk(self):
        for node in self.roots:
            yield from node.walk()

    def find(self, path: tuple[str, ...]) -> RegionRecord | None:
        """Locate a region by its full path."""
        for node in self.walk():
            if node.path == tuple(path):
                return node
        return None

    def region_names(self) -> list[str]:
        return [node.name for node in self.walk()]

    def metric_names(self) -> list[str]:
        names: list[str] = []
        for node in self.walk():
            for key in node.metrics:
                if key not in names:
                    names.append(key)
        return names
