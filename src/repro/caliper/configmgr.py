"""Caliper ConfigManager: parse config strings like
``"runtime-report,spot(output=run.cali,time.exclusive=true)"``.

RAJAPerf users select Caliper behaviour with such strings; we reproduce the
grammar (comma-separated configs, each with optional parenthesized
key=value options) and expose the known configs as feature flags the
executor consults.
"""

from __future__ import annotations

from dataclasses import dataclass, field

KNOWN_CONFIGS = {
    "runtime-report": "print a per-region time report at session close",
    "spot": "write a .cali profile for Thicket/Spot ingestion",
    "topdown-counters": "collect the TMA top-down counter set (CPU runs)",
    "ncu-metrics": "collect the Nsight-Compute roofline counter set (GPU runs)",
    "event-trace": "record begin/end events (not used in the paper)",
}


@dataclass
class ConfigEntry:
    name: str
    options: dict[str, str] = field(default_factory=dict)

    def option_bool(self, key: str, default: bool = False) -> bool:
        raw = self.options.get(key)
        if raw is None:
            return default
        return raw.strip().lower() in ("1", "true", "yes", "on")


class ConfigManager:
    """Parses and validates a Caliper configuration string."""

    def __init__(self, spec: str = "") -> None:
        self.entries: list[ConfigEntry] = []
        self._error: str | None = None
        if spec.strip():
            try:
                self.entries = _parse(spec)
            except ValueError as exc:
                self._error = str(exc)
        for entry in self.entries:
            if entry.name not in KNOWN_CONFIGS:
                self._error = (
                    f"unknown config {entry.name!r}; known: {sorted(KNOWN_CONFIGS)}"
                )
                break

    def error(self) -> str | None:
        """Parse/validation error, or None (Caliper's ``mgr.error()``)."""
        return self._error

    def enabled(self, name: str) -> bool:
        return self._error is None and any(e.name == name for e in self.entries)

    def get(self, name: str) -> ConfigEntry | None:
        for entry in self.entries:
            if entry.name == name:
                return entry
        return None

    def output_path(self, default: str = "run.cali") -> str:
        spot = self.get("spot")
        if spot is not None and "output" in spot.options:
            return spot.options["output"]
        return default


def _parse(spec: str) -> list[ConfigEntry]:
    """Split on top-level commas, honoring parentheses."""
    entries: list[ConfigEntry] = []
    depth = 0
    token = []
    parts: list[str] = []
    for ch in spec:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise ValueError(f"unbalanced ')' in config spec {spec!r}")
        if ch == "," and depth == 0:
            parts.append("".join(token))
            token = []
        else:
            token.append(ch)
    if depth != 0:
        raise ValueError(f"unbalanced '(' in config spec {spec!r}")
    parts.append("".join(token))
    for part in parts:
        part = part.strip()
        if not part:
            continue
        if "(" in part:
            name, _, rest = part.partition("(")
            if not rest.endswith(")"):
                raise ValueError(f"malformed config entry {part!r}")
            body = rest[:-1]
            options: dict[str, str] = {}
            for item in body.split(","):
                item = item.strip()
                if not item:
                    continue
                if "=" not in item:
                    raise ValueError(f"malformed option {item!r} in {part!r}")
                key, _, value = item.partition("=")
                options[key.strip()] = value.strip()
            entries.append(ConfigEntry(name.strip(), options))
        else:
            entries.append(ConfigEntry(part))
    return entries
