"""A Python reimplementation of Caliper's annotation/profiling surface.

Caliper (Boehme et al., SC'16) is a C library that RAJAPerf integrates by
annotating kernels as regions and attaching the suite's analytic metrics
to those regions; each run emits a ``.cali`` profile read by Thicket.
This package reproduces that surface:

* :class:`CaliperSession` — region stack with timers and per-region
  metrics (:func:`annotate` is the ``CALI_MARK``-style entry point);
* :class:`ConfigManager` — parses Caliper config strings like
  ``"spot(output=run.cali)"``;
* :mod:`repro.caliper.cali` — writes/reads the ``.cali``-style JSON
  profile format consumed by :mod:`repro.thicket`.
"""

from repro.caliper.records import CaliProfile, RegionRecord
from repro.caliper.annotation import (
    CaliperSession,
    annotate,
    current_session,
    region,
    set_session,
)
from repro.caliper.configmgr import ConfigManager
from repro.caliper.cali import read_cali, verify_cali, write_cali
from repro.caliper.report import hot_regions, runtime_report
from repro.caliper.trace import EventTrace, TraceEvent, TracingSession

__all__ = [
    "CaliProfile",
    "RegionRecord",
    "CaliperSession",
    "annotate",
    "region",
    "current_session",
    "set_session",
    "ConfigManager",
    "read_cali",
    "verify_cali",
    "write_cali",
    "runtime_report",
    "hot_regions",
    "TracingSession",
    "EventTrace",
    "TraceEvent",
]
