"""Caliper's ``runtime-report`` service: a per-region time table.

Real Caliper prints an indented region tree with inclusive/exclusive
times at program exit when ``runtime-report`` is enabled; this module
renders the same view from a :class:`~repro.caliper.records.CaliProfile`.
"""

from __future__ import annotations

from repro.caliper.records import CaliProfile, RegionRecord

DEFAULT_METRIC = "time (inclusive)"


def exclusive_times(profile: CaliProfile, metric: str = DEFAULT_METRIC) -> dict[tuple[str, ...], float]:
    """Exclusive time per region path: inclusive minus children's inclusive."""
    out: dict[tuple[str, ...], float] = {}
    for node in profile.walk():
        inclusive = node.metrics.get(metric, 0.0)
        children = sum(child.metrics.get(metric, 0.0) for child in node.children)
        out[node.path] = max(0.0, inclusive - children)
    return out


def runtime_report(
    profile: CaliProfile,
    metric: str = DEFAULT_METRIC,
    min_fraction: float = 0.0,
) -> str:
    """Render the runtime-report table.

    ``min_fraction`` hides regions below that share of the total (like
    Caliper's output threshold).
    """
    if not 0.0 <= min_fraction < 1.0:
        raise ValueError(f"min_fraction must be in [0, 1), got {min_fraction}")
    exclusives = exclusive_times(profile, metric)
    # Total = all exclusive time; robust when only leaf regions carry the
    # metric (as the executor's profiles do).
    total = sum(exclusives.values())
    # Subtree totals make parents meaningful even when only leaves carry
    # the metric.
    subtotals: dict[tuple[str, ...], float] = {}

    def subtotal(node: RegionRecord) -> float:
        value = exclusives[node.path] + sum(subtotal(c) for c in node.children)
        subtotals[node.path] = value
        return value

    for root in profile.roots:
        subtotal(root)

    lines = [
        f"Path{' ' * 36}Incl. {metric:>18s}  Excl.{' ' * 13}%",
    ]

    def emit(node: RegionRecord, depth: int) -> None:
        inclusive = subtotals[node.path]
        if total > 0 and inclusive / total < min_fraction:
            return
        exclusive = exclusives[node.path]
        share = 100.0 * inclusive / total if total > 0 else 0.0
        label = "  " * depth + node.name
        lines.append(
            f"{label:<40s}{inclusive:>24.6g}{exclusive:>12.6g}{share:>12.2f}"
        )
        for child in node.children:
            emit(child, depth + 1)

    for root in profile.roots:
        emit(root, 0)
    return "\n".join(lines)


def hot_regions(
    profile: CaliProfile, metric: str = DEFAULT_METRIC, top: int = 10
) -> list[tuple[str, float]]:
    """The ``top`` regions by exclusive time (name, seconds)."""
    if top <= 0:
        raise ValueError(f"top must be > 0, got {top}")
    exclusives = exclusive_times(profile, metric)
    ranked = sorted(exclusives.items(), key=lambda kv: kv[1], reverse=True)
    return [("/".join(path), value) for path, value in ranked[:top]]
