"""Region annotation: the ``CALI_MARK_BEGIN/END`` surface.

A :class:`CaliperSession` keeps the active region stack; entering a region
starts a timer, leaving it accumulates inclusive time into the profile's
region tree. Arbitrary metrics can be attached to the current region —
RAJAPerf attaches its analytic metrics (bytes, FLOPs) this way, and the
simulators attach their counter values.

A module-level default session supports the common single-profile flow;
multi-run experiments create one session per run.
"""

from __future__ import annotations

import functools
import time
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from typing import Any

from repro.caliper.records import CaliProfile, RegionRecord


class CaliperSession:
    """An active profiling session accumulating into a :class:`CaliProfile`."""

    TIME_METRIC = "time (inclusive)"

    def __init__(self, collect_time: bool = True) -> None:
        self.profile = CaliProfile()
        self.collect_time = collect_time
        self._stack: list[RegionRecord] = []
        self._starts: list[float] = []

    # ------------------------------------------------------------ regions
    @property
    def current_path(self) -> tuple[str, ...]:
        return self._stack[-1].path if self._stack else ()

    @property
    def depth(self) -> int:
        return len(self._stack)

    def begin_region(self, name: str) -> None:
        if not name:
            raise ValueError("region name must be non-empty")
        if self._stack:
            node = self._stack[-1].child(name)
        else:
            node = self.profile.root(name)
        self._stack.append(node)
        self._starts.append(time.perf_counter())

    def end_region(self, name: str | None = None) -> None:
        if not self._stack:
            raise RuntimeError("end_region with no open region")
        node = self._stack.pop()
        start = self._starts.pop()
        if name is not None and node.name != name:
            raise RuntimeError(
                f"mismatched region nesting: closing {name!r}, open is {node.name!r}"
            )
        if self.collect_time:
            node.add_metric(self.TIME_METRIC, time.perf_counter() - start)

    @contextmanager
    def region(self, name: str) -> Iterator[RegionRecord]:
        self.begin_region(name)
        try:
            yield self._stack[-1]
        finally:
            self.end_region(name)

    # ------------------------------------------------------------ metrics
    def set_metric(self, name: str, value: float, accumulate: bool = True) -> None:
        """Attach a metric to the innermost open region."""
        if not self._stack:
            raise RuntimeError("set_metric with no open region")
        self._stack[-1].add_metric(name, float(value), accumulate=accumulate)

    def set_global(self, name: str, value: Any) -> None:
        """Attach run-global metadata (the Adiak integration point)."""
        self.profile.globals[name] = value

    def close(self) -> CaliProfile:
        """Finish the session; all regions must be closed."""
        if self._stack:
            raise RuntimeError(
                f"closing session with open regions: "
                f"{[r.name for r in self._stack]}"
            )
        return self.profile


# ------------------------------------------------------- default session
_default_session = CaliperSession()


def current_session() -> CaliperSession:
    return _default_session


def set_session(session: CaliperSession) -> CaliperSession:
    """Replace the module-level default session; returns the old one."""
    global _default_session
    old = _default_session
    _default_session = session
    return old


@contextmanager
def region(name: str, session: CaliperSession | None = None) -> Iterator[RegionRecord]:
    """Context manager annotating a region on the (default) session."""
    sess = session if session is not None else _default_session
    with sess.region(name) as node:
        yield node


def annotate(name: str | None = None) -> Callable:
    """Decorator annotating a function as a Caliper region."""

    def wrap(fn: Callable) -> Callable:
        region_name = name if name is not None else fn.__qualname__

        @functools.wraps(fn)
        def inner(*args: Any, **kwargs: Any) -> Any:
            with _default_session.region(region_name):
                return fn(*args, **kwargs)

        return inner

    return wrap
