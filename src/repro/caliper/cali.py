"""``.cali`` profile serialization with an integrity-sealed footer.

Real Caliper writes a compact binary/text format; Thicket only needs the
structure (region tree, metrics, globals), so we serialize that structure
as JSON with a format marker and version. Round-trip fidelity is asserted
by tests.

Every file is *sealed*: after the JSON payload the writer appends a
one-line footer carrying the payload's byte length and CRC32::

    {... JSON payload ...}
    #cali-footer v1 len=8412 crc32=9fb31a02

Readers verify the seal before parsing, so a truncated or bit-rotted
profile is detected eagerly (``ValueError``) instead of poisoning a
Thicket composition hours later. :func:`verify_cali` classifies a file
without loading it (``ok`` / ``unsealed`` / ``truncated`` / ``corrupt``)
— the primitive behind ``rajaperf-sim fsck``. Pre-seal files (valid JSON,
no footer) still load and classify as ``unsealed``.

Writes are crash-safe: payload + footer land in a fsynced ``.tmp``
sibling which is ``os.replace``d over the target, then the directory is
fsynced — a crash (or injected I/O fault) mid-write never leaves a
truncated ``.cali`` under the target name.
"""

from __future__ import annotations

import json
import re
import zlib
from pathlib import Path
from typing import Any

from repro.caliper.records import CaliProfile, RegionRecord
from repro.util.fsio import tmp_sibling, write_durable_bytes

FORMAT_NAME = "cali-json"
FORMAT_VERSION = 1

FOOTER_MARKER = "#cali-footer"
FOOTER_VERSION = 1
_FOOTER_RE = re.compile(
    rf"{FOOTER_MARKER} v(\d+) len=(\d+) crc32=([0-9a-fA-F]{{8}})$"
)

#: verify_cali statuses
STATUS_OK = "ok"
STATUS_UNSEALED = "unsealed"
STATUS_TRUNCATED = "truncated"
STATUS_CORRUPT = "corrupt"


def _node_to_dict(node: RegionRecord) -> dict[str, Any]:
    return {
        "name": node.name,
        "metrics": dict(node.metrics),
        "children": [_node_to_dict(child) for child in node.children],
    }


def _node_from_dict(data: dict[str, Any], parent_path: tuple[str, ...]) -> RegionRecord:
    path = parent_path + (data["name"],)
    node = RegionRecord(name=data["name"], path=path, metrics=dict(data["metrics"]))
    node.children = [_node_from_dict(c, path) for c in data.get("children", [])]
    return node


def footer_line(payload: bytes, crc: int | None = None) -> str:
    """The seal for ``payload`` (``crc`` overrides, for fault injection)."""
    if crc is None:
        crc = zlib.crc32(payload) & 0xFFFFFFFF
    return f"{FOOTER_MARKER} v{FOOTER_VERSION} len={len(payload)} crc32={crc:08x}"


def serialize_cali(profile: CaliProfile, corrupt_crc: bool = False) -> bytes:
    """The exact sealed bytes of a ``.cali`` file: compact payload + footer.

    Payloads are written compact (no indentation) — smaller files, and a
    faster CRC + parse on every later ingest. ``corrupt_crc`` seals with
    a deliberately wrong CRC (the ``FOOTER_CORRUPTION`` fault).
    """
    payload_obj = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "globals": profile.globals,
        "records": [_node_to_dict(root) for root in profile.roots],
    }
    payload = json.dumps(
        payload_obj, separators=(",", ":"), default=_jsonable
    ).encode("utf-8")
    crc = None
    if corrupt_crc:
        crc = (zlib.crc32(payload) ^ 0xFFFFFFFF) & 0xFFFFFFFF
    return payload + ("\n" + footer_line(payload, crc) + "\n").encode("ascii")


def write_cali(profile: CaliProfile, path: str | Path) -> Path:
    """Serialize a profile to a sealed ``.cali`` (JSON) file; returns the path.

    The write is atomic and durable: payload + CRC32 footer land in a
    fsynced ``.tmp`` sibling which is then ``os.replace``d over the
    target (directory fsynced), so a crash (or injected I/O fault)
    mid-write never leaves a truncated ``.cali`` that would later
    poison analysis. Raises :class:`OSError` on failure; the target is
    untouched in that case.
    """
    from repro.faults import active_injector

    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    injector = active_injector()
    # Bit-rot simulation: the write completes, but the seal is wrong.
    corrupt = injector is not None and injector.footer_fault(out.name) is not None
    data = serialize_cali(profile, corrupt_crc=corrupt)
    if injector is not None and injector.io_fault(out.name) is not None:
        # Simulate an interrupted write: a truncated tmp file, then the
        # failure. The target file must remain absent/intact.
        tmp_sibling(out).write_bytes(data[: max(1, len(data) // 2)])
        raise OSError(f"injected I/O write failure for {out}")
    return write_durable_bytes(out, data)


def _analyze_bytes(raw: bytes) -> tuple[str, str, bytes]:
    """Classify raw ``.cali`` bytes: (status, detail, payload).

    ``status`` is one of :data:`STATUS_OK` (seal verified),
    :data:`STATUS_UNSEALED` (no footer, payload parses), or the damage
    classes :data:`STATUS_TRUNCATED` / :data:`STATUS_CORRUPT`.
    """
    text_match = re.search(rb"\n(#cali-footer [^\n]*)\n?$", raw)
    if text_match is not None:
        payload = raw[: text_match.start()]
        try:
            footer_text = text_match.group(1).decode("ascii")
        except UnicodeDecodeError:
            return STATUS_CORRUPT, "undecodable footer", payload
        parsed = _FOOTER_RE.match(footer_text)
        if parsed is None:
            # A footer that starts correctly but does not scan is almost
            # always a write cut off mid-seal.
            return STATUS_TRUNCATED, "incomplete integrity footer", payload
        declared_len = int(parsed.group(2))
        declared_crc = int(parsed.group(3), 16)
        if len(payload) < declared_len:
            return (
                STATUS_TRUNCATED,
                f"payload is {len(payload)} bytes, footer declares {declared_len}",
                payload,
            )
        if len(payload) > declared_len:
            return (
                STATUS_CORRUPT,
                f"payload is {len(payload)} bytes, footer declares {declared_len}",
                payload,
            )
        actual_crc = zlib.crc32(payload) & 0xFFFFFFFF
        if actual_crc != declared_crc:
            return (
                STATUS_CORRUPT,
                f"crc32 {actual_crc:08x} != declared {declared_crc:08x}",
                payload,
            )
        return STATUS_OK, "", payload
    # No complete footer. A partial marker at EOF is a truncated seal.
    marker = FOOTER_MARKER.encode("ascii")
    for length in range(len(marker), 1, -1):
        if raw.endswith(b"\n" + marker[:length]):
            return STATUS_TRUNCATED, "file ends inside the integrity footer", raw
    try:
        text = raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        return STATUS_CORRUPT, f"not utf-8 ({exc})", raw
    try:
        json.loads(text)
    except json.JSONDecodeError as exc:
        if "Unterminated" in exc.msg or exc.pos >= len(text.rstrip()):
            return STATUS_TRUNCATED, f"JSON cut short ({exc.msg})", raw
        return STATUS_CORRUPT, f"invalid JSON ({exc.msg} at pos {exc.pos})", raw
    return STATUS_UNSEALED, "no integrity footer (pre-seal file)", raw


def verify_cali(path: str | Path) -> tuple[str, str]:
    """Integrity-check one ``.cali`` file without building a profile.

    Returns ``(status, detail)`` with status ``ok`` / ``unsealed`` /
    ``truncated`` / ``corrupt``. Never raises for damaged content (an
    unreadable *path* still raises :class:`OSError`).
    """
    raw = Path(path).read_bytes()
    status, detail, payload = _analyze_bytes(raw)
    if status in (STATUS_OK, STATUS_UNSEALED):
        # The seal guards bytes, not semantics — a sealed file written
        # by a buggy producer could still be non-JSON.
        try:
            json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return STATUS_CORRUPT, f"sealed payload is not JSON ({exc})"
    return status, detail


def parse_cali_payload(raw: bytes, source: str = "<bytes>") -> dict[str, Any]:
    """Raw sealed/unsealed ``.cali`` bytes -> the validated payload dict.

    The columnar ingest path stops here (it walks the plain dict tree
    instead of building :class:`RegionRecord` objects); :func:`read_cali`
    continues to a full profile. Damage raises :class:`ValueError` with
    the damage class in the message.
    """
    status, detail, payload_bytes = _analyze_bytes(raw)
    if status in (STATUS_TRUNCATED, STATUS_CORRUPT):
        raise ValueError(f"{source}: {status} .cali file: {detail}")
    payload = json.loads(payload_bytes.decode("utf-8"))
    if payload.get("format") != FORMAT_NAME:
        raise ValueError(f"{source}: not a {FORMAT_NAME} file")
    if payload.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"{source}: unsupported version {payload.get('version')!r} "
            f"(expected {FORMAT_VERSION})"
        )
    return payload


def profile_from_payload(payload: dict[str, Any]) -> CaliProfile:
    """Build a full :class:`CaliProfile` from a parsed payload dict."""
    profile = CaliProfile(globals=dict(payload.get("globals", {})))
    profile.roots = [_node_from_dict(r, ()) for r in payload.get("records", [])]
    return profile


def read_cali(path: str | Path) -> CaliProfile:
    """Load a profile written by :func:`write_cali`, verifying its seal.

    A truncated or corrupt file raises :class:`ValueError` with the
    damage class in the message; unsealed (pre-footer) files still load.
    """
    return profile_from_payload(
        parse_cali_payload(Path(path).read_bytes(), str(path))
    )


def sealed_crc32(path: str | Path) -> int:
    """A ``.cali`` file's content identity *without* reading the payload.

    Sealed files declare their payload CRC32 in the footer — read just
    the tail and trust the seal (ingest verifies it before parsing
    anyway). Unsealed/damaged files fall back to a CRC over the whole
    file. This is what keys the content-addressed ingest cache.
    """
    p = Path(path)
    size = p.stat().st_size
    with open(p, "rb") as handle:
        handle.seek(max(0, size - 256))
        tail = handle.read()
    match = re.search(rb"\n(#cali-footer [^\n]*)\n?$", tail)
    if match is not None:
        parsed = _FOOTER_RE.match(match.group(1).decode("ascii", "replace"))
        if parsed is not None:
            return int(parsed.group(3), 16)
    return zlib.crc32(p.read_bytes()) & 0xFFFFFFFF


def _jsonable(value: Any) -> Any:
    try:
        import numpy as np

        if isinstance(value, np.integer):
            return int(value)
        if isinstance(value, np.floating):
            return float(value)
        if isinstance(value, np.bool_):
            return bool(value)
    except ImportError:  # pragma: no cover
        pass
    raise TypeError(f"cannot serialize {type(value)} to .cali JSON")
