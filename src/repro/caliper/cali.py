"""``.cali`` profile serialization.

Real Caliper writes a compact binary/text format; Thicket only needs the
structure (region tree, metrics, globals), so we serialize that structure
as JSON with a format marker and version. Round-trip fidelity is asserted
by tests.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.caliper.records import CaliProfile, RegionRecord

FORMAT_NAME = "cali-json"
FORMAT_VERSION = 1


def _node_to_dict(node: RegionRecord) -> dict[str, Any]:
    return {
        "name": node.name,
        "metrics": dict(node.metrics),
        "children": [_node_to_dict(child) for child in node.children],
    }


def _node_from_dict(data: dict[str, Any], parent_path: tuple[str, ...]) -> RegionRecord:
    path = parent_path + (data["name"],)
    node = RegionRecord(name=data["name"], path=path, metrics=dict(data["metrics"]))
    node.children = [_node_from_dict(c, path) for c in data.get("children", [])]
    return node


def write_cali(profile: CaliProfile, path: str | Path) -> Path:
    """Serialize a profile to a ``.cali`` (JSON) file; returns the path."""
    payload = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "globals": profile.globals,
        "records": [_node_to_dict(root) for root in profile.roots],
    }
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=1, default=_jsonable))
    return out


def read_cali(path: str | Path) -> CaliProfile:
    """Load a profile written by :func:`write_cali`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != FORMAT_NAME:
        raise ValueError(f"{path}: not a {FORMAT_NAME} file")
    if payload.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported version {payload.get('version')!r} "
            f"(expected {FORMAT_VERSION})"
        )
    profile = CaliProfile(globals=dict(payload.get("globals", {})))
    profile.roots = [_node_from_dict(r, ()) for r in payload.get("records", [])]
    return profile


def _jsonable(value: Any) -> Any:
    try:
        import numpy as np

        if isinstance(value, np.integer):
            return int(value)
        if isinstance(value, np.floating):
            return float(value)
        if isinstance(value, np.bool_):
            return bool(value)
    except ImportError:  # pragma: no cover
        pass
    raise TypeError(f"cannot serialize {type(value)} to .cali JSON")
