"""``.cali`` profile serialization.

Real Caliper writes a compact binary/text format; Thicket only needs the
structure (region tree, metrics, globals), so we serialize that structure
as JSON with a format marker and version. Round-trip fidelity is asserted
by tests.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from repro.caliper.records import CaliProfile, RegionRecord

FORMAT_NAME = "cali-json"
FORMAT_VERSION = 1


def _node_to_dict(node: RegionRecord) -> dict[str, Any]:
    return {
        "name": node.name,
        "metrics": dict(node.metrics),
        "children": [_node_to_dict(child) for child in node.children],
    }


def _node_from_dict(data: dict[str, Any], parent_path: tuple[str, ...]) -> RegionRecord:
    path = parent_path + (data["name"],)
    node = RegionRecord(name=data["name"], path=path, metrics=dict(data["metrics"]))
    node.children = [_node_from_dict(c, path) for c in data.get("children", [])]
    return node


def write_cali(profile: CaliProfile, path: str | Path) -> Path:
    """Serialize a profile to a ``.cali`` (JSON) file; returns the path.

    The write is atomic: the payload lands in a ``.tmp`` sibling which is
    then ``os.replace``d over the target, so a crash (or injected I/O
    fault) mid-write never leaves a truncated ``.cali`` that would later
    poison analysis. Raises :class:`OSError` on failure; the target is
    untouched in that case.
    """
    from repro.faults import active_injector

    payload = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "globals": profile.globals,
        "records": [_node_to_dict(root) for root in profile.roots],
    }
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    data = json.dumps(payload, indent=1, default=_jsonable)
    tmp = out.with_suffix(out.suffix + ".tmp")
    injector = active_injector()
    if injector is not None and injector.io_fault(out.name) is not None:
        # Simulate an interrupted write: a truncated tmp file, then the
        # failure. The target file must remain absent/intact.
        tmp.write_text(data[: max(1, len(data) // 2)])
        raise OSError(f"injected I/O write failure for {out}")
    tmp.write_text(data)
    os.replace(tmp, out)
    return out


def read_cali(path: str | Path) -> CaliProfile:
    """Load a profile written by :func:`write_cali`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != FORMAT_NAME:
        raise ValueError(f"{path}: not a {FORMAT_NAME} file")
    if payload.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported version {payload.get('version')!r} "
            f"(expected {FORMAT_VERSION})"
        )
    profile = CaliProfile(globals=dict(payload.get("globals", {})))
    profile.roots = [_node_from_dict(r, ()) for r in payload.get("records", [])]
    return profile


def _jsonable(value: Any) -> Any:
    try:
        import numpy as np

        if isinstance(value, np.integer):
            return int(value)
        if isinstance(value, np.floating):
            return float(value)
        if isinstance(value, np.bool_):
            return bool(value)
    except ImportError:  # pragma: no cover
        pass
    raise TypeError(f"cannot serialize {type(value)} to .cali JSON")
