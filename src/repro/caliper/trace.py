"""Caliper's ``event-trace`` service: begin/end event recording.

When ``event-trace`` is enabled in the ConfigManager, a tracing session
records a timestamped event per region begin/end instead of only
aggregated metrics — useful for ordering/latency questions the aggregate
profile cannot answer (e.g. which rank's halo pack ran last).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.caliper.annotation import CaliperSession


@dataclass(frozen=True)
class TraceEvent:
    timestamp: float
    kind: str  # "begin" or "end"
    path: tuple[str, ...]

    @property
    def name(self) -> str:
        return self.path[-1]


@dataclass
class EventTrace:
    """A recorded event stream."""

    events: list[TraceEvent] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.events)

    def spans(self) -> list[tuple[tuple[str, ...], float]]:
        """Matched (path, duration) pairs, in completion order."""
        out: list[tuple[tuple[str, ...], float]] = []
        stack: list[TraceEvent] = []
        for event in self.events:
            if event.kind == "begin":
                stack.append(event)
            else:
                if not stack or stack[-1].path != event.path:
                    raise ValueError(f"unmatched end event for {event.path}")
                begin = stack.pop()
                out.append((event.path, event.timestamp - begin.timestamp))
        if stack:
            raise ValueError(f"unclosed regions: {[e.path for e in stack]}")
        return out

    def render(self) -> str:
        if not self.events:
            return "(empty trace)"
        t0 = self.events[0].timestamp
        lines = []
        for event in self.events:
            indent = "  " * (len(event.path) - 1)
            lines.append(
                f"{(event.timestamp - t0) * 1e6:>12.1f}us {indent}"
                f"{event.kind:>5s} {event.name}"
            )
        return "\n".join(lines)


class TracingSession(CaliperSession):
    """A CaliperSession that additionally records an event trace."""

    def __init__(self, collect_time: bool = True) -> None:
        super().__init__(collect_time=collect_time)
        self.trace = EventTrace()

    def begin_region(self, name: str) -> None:
        super().begin_region(name)
        self.trace.events.append(
            TraceEvent(time.perf_counter(), "begin", self.current_path)
        )

    def end_region(self, name: str | None = None) -> None:
        path = self.current_path
        super().end_region(name)
        self.trace.events.append(TraceEvent(time.perf_counter(), "end", path))
