"""``.calipack``: a packed, append-only campaign profile archive.

A paper-scale campaign produces thousands of small sealed ``.cali``
files; opening, fsyncing, and re-scanning them one at a time is the
ingest wall. A ``.calipack`` collapses a campaign directory into one
append-only container:

::

    #calipack v1
    #calipack-entry name=<fname> len=<bytes>
    <sealed .cali bytes, verbatim>
    #calipack-entry name=<fname> len=<bytes>
    <sealed .cali bytes, verbatim>
    ...
    <index JSON>
    #calipack-footer v1 index_off=<off> index_len=<len> crc32=<8 hex>

Entries are the *exact* bytes :func:`repro.caliper.cali.write_cali`
would have written (payload + CRC32 seal), so ``unpack`` restores
byte-identical files and every entry stays independently verifiable.
The index records ``(name, offset, length, crc32)`` per entry — the
CRC here covers the stored entry bytes and doubles as the entry's
content address for the ingest cache. The index itself is sealed by
the footer's CRC32.

Durability mirrors the profile store: appends go through a single
``os.write`` after truncating any garbage tail left by a crashed or
fault-injected append, the handle is fsynced on :meth:`CalipackWriter.
close` (which writes index + footer), and whole-archive rewrites go
through the durable tmp+``os.replace`` machinery. An archive that
crashed before ``close`` has no footer; :func:`recover_entries` scans
the entry framing headers and salvages every complete entry — the
supervisor runs exactly this when merging per-worker segments.

Member references use ``<archive>::<entry name>`` strings (manifest
``file`` fields, CLI arguments, fsck reports).
"""

from __future__ import annotations

import json
import os
import re
import shutil
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.caliper.cali import _analyze_bytes, serialize_cali
from repro.caliper.records import CaliProfile
from repro.chaos.points import crash_point
from repro.util.fsio import durable_replace, fsync_dir, tmp_sibling

ARCHIVE_SUFFIX = ".calipack"
ARCHIVE_NAME = "campaign" + ARCHIVE_SUFFIX
SEGMENT_DIR = "segments"
MEMBER_SEP = "::"

MAGIC = b"#calipack v1\n"
INDEX_FORMAT = "calipack-index"
INDEX_VERSION = 1

_ENTRY_RE = re.compile(rb"#calipack-entry name=([^\n ]+) len=(\d+)\n")
_FOOTER_RE = re.compile(
    rb"#calipack-footer v1 index_off=(\d+) index_len=(\d+) "
    rb"crc32=([0-9a-fA-F]{8})\n?$"
)
#: generous bound on the footer line's size, for the tail read
_FOOTER_TAIL = 128


class CalipackError(ValueError):
    """A structurally damaged archive (bad magic, index, or footer)."""


#: index sentinel for a global whose value is not a JSON scalar — the
#: attribute exists but cannot be compared at the index level, so a
#: predicate referencing it never skips the entry.
NONSCALAR_ATTR = {"__nonscalar__": True}


@dataclass(frozen=True)
class ArchiveEntry:
    """One archived profile: where it lives and what its bytes hash to.

    ``attrs`` (sealed archives only) carries the entry's scalar globals
    as indexed attributes: the predicate-pushdown path evaluates
    metadata filters against them and skips entries — no payload read,
    no JSON parse — when the filter provably rejects them. ``metrics``
    lists the entry's metric column names in document order, letting a
    filtered composition reconstruct the exact column order a full
    composition would produce. None for either means the index predates
    them or the entry was unparseable; such entries are never skipped.
    """

    name: str
    offset: int
    length: int
    crc32: int
    attrs: dict | None = field(default=None, compare=False)
    metrics: list | None = field(default=None, compare=False)

    @property
    def crc_hex(self) -> str:
        return f"{self.crc32:08x}"


def member_ref(archive: str | Path, name: str) -> str:
    """The ``<archive>::<name>`` reference for one archived profile."""
    return f"{archive}{MEMBER_SEP}{name}"


def split_member_ref(source: str) -> tuple[str, str] | None:
    """Parse ``<archive>::<name>``; None when ``source`` is not one."""
    if MEMBER_SEP not in source:
        return None
    archive, _, name = source.rpartition(MEMBER_SEP)
    if not archive.endswith(ARCHIVE_SUFFIX) or not name:
        return None
    return archive, name


def is_archive(source: str | Path) -> bool:
    return str(source).endswith(ARCHIVE_SUFFIX)


def _entry_header(name: str, length: int) -> bytes:
    if " " in name or "\n" in name:
        raise ValueError(f"entry name may not contain spaces/newlines: {name!r}")
    return f"#calipack-entry name={name} len={length}\n".encode("ascii")


class CalipackWriter:
    """Append entries to one archive; ``close()`` writes index + footer.

    A writer owns its file exclusively (per-worker segments, or the
    supervisor's merge). ``append_bytes`` truncates any garbage tail a
    previous failed append left behind, so framing never goes bad, and
    keeps the in-memory index authoritative. Entries replace earlier
    ones of the same name (last-wins — a retried cell supersedes the
    crashed attempt's profile).
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._entries: dict[str, ArchiveEntry] = {}
        if self.path.exists():
            entries, good_end = scan_entries(self.path)
            for entry in entries:
                self._entries[entry.name] = entry
            self._handle = open(self.path, "r+b")
            self._handle.truncate(good_end)
            self._handle.seek(good_end)
        else:
            self._handle = open(self.path, "w+b")
            self._handle.write(MAGIC)
        self._good_end = self._handle.tell()
        self._closed = False

    def __enter__(self) -> "CalipackWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def entries(self) -> list[ArchiveEntry]:
        return list(self._entries.values())

    def append_bytes(self, name: str, data: bytes) -> ArchiveEntry:
        """Append one sealed ``.cali`` blob under ``name``."""
        from repro.faults import active_injector

        if self._closed:
            raise ValueError(f"writer for {self.path} is closed")
        # A failed append leaves a partial tail: cut it before writing.
        self._handle.truncate(self._good_end)
        self._handle.seek(self._good_end)
        header = _entry_header(name, len(data))
        injector = active_injector()
        if injector is not None and injector.io_fault(name) is not None:
            # Simulate an interrupted append: half the entry lands, then
            # the failure. The next append (or recovery scan) drops it.
            blob = header + data
            self._handle.write(blob[: max(1, len(blob) // 2)])
            self._handle.flush()
            raise OSError(f"injected I/O write failure for {self.path}::{name}")
        self._handle.write(header)
        offset = self._handle.tell()
        self._handle.write(data)
        self._handle.flush()
        # The entry's bytes are on disk but not yet acknowledged: a crash
        # here leaves a complete-but-unindexed (or, torn, a partial) tail
        # that the next reopen's recovery scan must classify correctly.
        crash_point(
            "calipack.mid-entry-append",
            path=self.path,
            torn_file=self.path,
            torn_base=self._good_end,
        )
        self._good_end = self._handle.tell()
        entry = ArchiveEntry(
            name=name,
            offset=offset,
            length=len(data),
            crc32=zlib.crc32(data) & 0xFFFFFFFF,
        )
        self._entries[name] = entry
        return entry

    def append_profile(self, name: str, profile: CaliProfile,
                       corrupt_crc: bool = False) -> ArchiveEntry:
        return self.append_bytes(name, serialize_cali(profile, corrupt_crc))

    def _collect_schemas(
        self,
    ) -> tuple[dict[str, tuple[dict, list[str]]], dict[str, list[str]]]:
        """Indexed (attrs, metrics) per entry + the archive column registry.

        Both are recomputed from the stored entry bytes at seal time —
        never carried from a source index — so the sealed index is a
        pure function of the entry set and canonical merges stay
        byte-deterministic. Unparseable (damaged) entries contribute
        nothing and simply get no schema.
        """
        schema_by_name: dict[str, tuple[dict, list[str]]] = {}
        metrics: dict[str, None] = {}
        globals_: dict[str, None] = {}
        for entry in self._entries.values():
            self._handle.seek(entry.offset)
            data = self._handle.read(entry.length)
            schema = extract_entry_schema(data)
            if schema is None:
                continue
            attrs, entry_metrics, entry_globals = schema
            schema_by_name[entry.name] = (attrs, entry_metrics)
            for name in entry_metrics:
                metrics.setdefault(name)
            for name in entry_globals:
                globals_.setdefault(name)
        return schema_by_name, {
            "metrics": list(metrics),
            "globals": list(globals_),
        }

    def close(self) -> Path:
        """Seal the archive: write the index and footer, fsync."""
        if self._closed:
            return self.path
        self._closed = True
        self._handle.truncate(self._good_end)
        schema_by_name, columns = self._collect_schemas()
        self._handle.seek(self._good_end)
        crash_point("calipack.pre-index", path=self.path)
        entries_payload = []
        for e in self._entries.values():
            record: dict[str, object] = {
                "name": e.name,
                "offset": e.offset,
                "length": e.length,
                "crc32": e.crc_hex,
            }
            schema = schema_by_name.get(e.name)
            if schema is not None:
                record["attrs"], record["metrics"] = schema
            entries_payload.append(record)
        index = json.dumps(
            {
                "format": INDEX_FORMAT,
                "version": INDEX_VERSION,
                "columns": columns,
                "entries": entries_payload,
            },
            separators=(",", ":"),
        ).encode("utf-8")
        crc = zlib.crc32(index) & 0xFFFFFFFF
        self._handle.write(index)
        self._handle.flush()
        crash_point(
            "calipack.pre-footer",
            path=self.path,
            torn_file=self.path,
            torn_base=self._good_end,
        )
        self._handle.write(
            f"\n#calipack-footer v1 index_off={self._good_end} "
            f"index_len={len(index)} crc32={crc:08x}\n".encode("ascii")
        )
        self._handle.flush()
        try:
            os.fsync(self._handle.fileno())
        except OSError:  # pragma: no cover - fs without fsync
            pass
        self._handle.close()
        fsync_dir(self.path.parent)
        return self.path

    def abort(self) -> None:
        """Close the handle without sealing (tests / error paths)."""
        if not self._closed:
            self._closed = True
            self._handle.close()


class ArchiveSink:
    """A lazily opened archive the executor streams cell profiles into.

    ``ref_archive`` is the archive name reported back in manifests and
    cell results: per-worker segments report member refs against the
    final merged campaign archive, which :func:`merge_segments`
    guarantees on drain (and campaign startup salvages after a crash),
    so recorded refs never dangle on a stranded segment file.
    """

    def __init__(
        self, path: str | Path, ref_archive: str | Path | None = None
    ) -> None:
        self.path = Path(path)
        self.ref_archive = (
            Path(ref_archive) if ref_archive is not None else self.path
        )
        self._writer: CalipackWriter | None = None

    def append(
        self, name: str, profile: CaliProfile, corrupt_crc: bool = False
    ) -> str:
        """Append one cell's profile; returns its member ref."""
        if self._writer is None:
            self._writer = CalipackWriter(self.path)
        self._writer.append_profile(name, profile, corrupt_crc)
        return member_ref(self.ref_archive, name)

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None


# ------------------------------------------------------------------ reading
def read_footer(path: str | Path) -> tuple[int, int, int] | None:
    """``(index_off, index_len, crc32)`` from the footer, or None."""
    p = Path(path)
    size = p.stat().st_size
    with open(p, "rb") as handle:
        handle.seek(max(0, size - _FOOTER_TAIL))
        tail = handle.read()
    at = tail.rfind(b"#calipack-footer ")
    if at < 0:
        return None
    match = _FOOTER_RE.match(tail[at:])
    if match is None:
        return None
    return int(match.group(1)), int(match.group(2)), int(match.group(3), 16)


def load_index(path: str | Path) -> list[ArchiveEntry]:
    """The archive's sealed entry index (verifying its CRC).

    Raises :class:`CalipackError` for a missing/damaged footer or index
    — callers that want salvage semantics use :func:`scan_entries`.
    """
    p = Path(path)
    with open(p, "rb") as handle:
        if handle.read(len(MAGIC)) != MAGIC:
            raise CalipackError(f"{p}: not a calipack archive")
    footer = read_footer(p)
    if footer is None:
        raise CalipackError(f"{p}: no archive footer (unfinished archive?)")
    index_off, index_len, declared_crc = footer
    with open(p, "rb") as handle:
        handle.seek(index_off)
        raw = handle.read(index_len)
    if len(raw) != index_len:
        raise CalipackError(f"{p}: index truncated")
    if zlib.crc32(raw) & 0xFFFFFFFF != declared_crc:
        raise CalipackError(f"{p}: index CRC mismatch")
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise CalipackError(f"{p}: unreadable index ({exc})") from exc
    if payload.get("format") != INDEX_FORMAT:
        raise CalipackError(f"{p}: not a {INDEX_FORMAT} index")
    return [
        ArchiveEntry(
            name=e["name"],
            offset=int(e["offset"]),
            length=int(e["length"]),
            crc32=int(e["crc32"], 16),
            attrs=e.get("attrs"),
            metrics=e.get("metrics"),
        )
        for e in payload.get("entries", [])
    ]


def load_columns_registry(path: str | Path) -> dict[str, list[str]] | None:
    """The sealed archive's column registry, or None when absent.

    ``{"metrics": [...], "globals": [...]}`` in first-seen order across
    entries — the schema a filtered composition needs to pad skipped
    entries' columns without parsing them. Archives sealed before attrs
    existed (or unsealed segments) return None: pushdown then degrades
    to reading everything, never to a wrong answer.
    """
    p = Path(path)
    try:
        footer = read_footer(p)
    except OSError:
        return None
    if footer is None:
        return None
    index_off, index_len, declared_crc = footer
    try:
        with open(p, "rb") as handle:
            handle.seek(index_off)
            raw = handle.read(index_len)
    except OSError:
        return None
    if len(raw) != index_len or zlib.crc32(raw) & 0xFFFFFFFF != declared_crc:
        return None
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return None
    columns = payload.get("columns")
    if not isinstance(columns, dict):
        return None
    metrics = columns.get("metrics")
    globals_ = columns.get("globals")
    if not isinstance(metrics, list) or not isinstance(globals_, list):
        return None
    return {
        "metrics": [str(m) for m in metrics],
        "globals": [str(g) for g in globals_],
    }


def extract_entry_schema(
    data: bytes,
) -> tuple[dict, list[str], list[str]] | None:
    """``(attrs, metric_names, global_names)`` from sealed ``.cali`` bytes.

    ``attrs`` maps each global to its scalar value, or to
    :data:`NONSCALAR_ATTR` when the value is structured. Metric names
    come back in document (first-seen walk) order, matching the column
    order the columnar composer produces. Damaged or non-JSON entries
    return None.
    """
    status, _, payload = _analyze_bytes(data)
    if status not in ("ok", "unsealed"):
        return None
    try:
        doc = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return None
    if not isinstance(doc, dict):
        return None
    globals_ = doc.get("globals")
    if not isinstance(globals_, dict):
        globals_ = {}
    attrs: dict[str, object] = {}
    for key, value in globals_.items():
        if value is None or isinstance(value, (str, int, float, bool)):
            attrs[str(key)] = value
        else:
            attrs[str(key)] = dict(NONSCALAR_ATTR)
    metrics: dict[str, None] = {}
    records = doc.get("records")
    stack = list(reversed(records)) if isinstance(records, list) else []
    while stack:
        node = stack.pop()
        if not isinstance(node, dict):
            continue
        node_metrics = node.get("metrics")
        if isinstance(node_metrics, dict):
            for name in node_metrics:
                metrics.setdefault(str(name))
        children = node.get("children")
        if isinstance(children, list):
            stack.extend(reversed(children))
    return attrs, list(metrics), [str(k) for k in globals_]


def is_nonscalar_attr(value: object) -> bool:
    """True for the :data:`NONSCALAR_ATTR` sentinel (or any structured
    attr value a future writer might store)."""
    return isinstance(value, (dict, list))


def entry_passes(entry: ArchiveEntry, expr) -> bool:
    """False only when ``expr`` *provably* rejects this entry's attrs."""
    return attrs_pass(entry.attrs, expr)


def attrs_pass(attrs: dict | None, expr) -> bool:
    """False only when ``expr`` *provably* rejects these indexed attrs.

    This is the index-level predicate: entries without attrs, attrs the
    expression cannot be evaluated over (nonscalar sentinels, type
    errors), or any other doubt keep the entry — the exact filter after
    composition is always the authority; this only skips work.
    Referenced attrs missing from the entry evaluate as None, matching
    the metadata table's padding for absent globals.
    """
    import numpy as np

    if attrs is None:
        return True
    refs = expr.references()
    for name in refs:
        if is_nonscalar_attr(attrs.get(name)):
            return True
    columns = {
        name: np.array([attrs.get(name)], dtype=object) for name in refs
    }
    try:
        mask = np.asarray(expr.evaluate(columns))
        if mask.ndim == 0:
            return bool(mask)
        if not len(mask):
            return True
        return bool(mask.astype(bool)[0])
    except Exception:
        return True


def scan_frames(path: str | Path) -> tuple[list[ArchiveEntry], int]:
    """Every *complete* entry frame in append order, duplicates included.

    The raw framing walk behind :func:`scan_entries`, without the
    last-wins dedup — retention's archive compaction uses it to count
    (and then drop) superseded duplicate frames. ``good_end`` is the
    offset just past the last complete entry.
    """
    p = Path(path)
    raw = p.read_bytes()
    if not raw.startswith(MAGIC):
        raise CalipackError(f"{p}: not a calipack archive")
    frames: list[ArchiveEntry] = []
    pos = len(MAGIC)
    good_end = pos
    while pos < len(raw):
        match = _ENTRY_RE.match(raw, pos)
        if match is None:
            break  # index / footer / partial tail
        length = int(match.group(2))
        offset = match.end()
        if offset + length > len(raw):
            break  # truncated final entry: drop it
        data = raw[offset : offset + length]
        name = match.group(1).decode("ascii", "replace")
        frames.append(
            ArchiveEntry(
                name=name,
                offset=offset,
                length=length,
                crc32=zlib.crc32(data) & 0xFFFFFFFF,
            )
        )
        pos = offset + length
        good_end = pos
    return frames, good_end


def scan_entries(path: str | Path) -> tuple[list[ArchiveEntry], int]:
    """Salvage scan: walk the entry framing headers directly.

    Returns ``(entries, good_end)`` where ``good_end`` is the offset
    just past the last *complete* entry — a partial tail (crashed
    append) or an old index/footer region is excluded. Works on
    unfinished (footer-less) segments; last-wins on duplicate names.
    """
    frames, good_end = scan_frames(path)
    entries: dict[str, ArchiveEntry] = {}
    for entry in frames:
        entries[entry.name] = entry
    return list(entries.values()), good_end


def load_entries(path: str | Path) -> list[ArchiveEntry]:
    """Index when sealed, salvage scan otherwise (crashed segments)."""
    try:
        return load_index(path)
    except CalipackError:
        entries, _ = scan_entries(path)
        return entries


def read_entry_bytes(
    path: str | Path, entry: ArchiveEntry, verify: bool = True
) -> bytes:
    """One entry's stored (sealed ``.cali``) bytes, CRC-checked."""
    with open(path, "rb") as handle:
        handle.seek(entry.offset)
        data = handle.read(entry.length)
    if len(data) != entry.length:
        raise ValueError(
            f"{member_ref(path, entry.name)}: truncated archive entry "
            f"({len(data)} of {entry.length} bytes)"
        )
    if verify and zlib.crc32(data) & 0xFFFFFFFF != entry.crc32:
        raise ValueError(
            f"{member_ref(path, entry.name)}: corrupt archive entry "
            f"(index CRC mismatch)"
        )
    return data


def find_entry(path: str | Path, name: str) -> ArchiveEntry:
    for entry in load_entries(path):
        if entry.name == name:
            return entry
    raise KeyError(f"{path}: no archive entry named {name!r}")


def verify_entry(path: str | Path, entry: ArchiveEntry) -> tuple[str, str]:
    """Classify one entry like ``verify_cali``: archive CRC, then seal."""
    with open(path, "rb") as handle:
        handle.seek(entry.offset)
        data = handle.read(entry.length)
    if len(data) != entry.length:
        return "truncated", f"{len(data)} of {entry.length} entry bytes on disk"
    if zlib.crc32(data) & 0xFFFFFFFF != entry.crc32:
        return "corrupt", "archive index CRC mismatch"
    status, detail, payload = _analyze_bytes(data)
    if status in ("ok", "unsealed"):
        try:
            json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            return "corrupt", f"sealed payload is not JSON ({exc})"
    return status, detail


# --------------------------------------------------------------- conversion
def pack_directory(
    directory: str | Path,
    archive: str | Path | None = None,
    remove: bool = True,
) -> tuple[Path, list[ArchiveEntry]]:
    """Pack every loose ``.cali`` in ``directory`` into one archive.

    Entries store the files' bytes verbatim (seals included). With
    ``remove`` (the default) the loose files are deleted afterwards and
    the campaign manifest's ``file`` fields are rewritten to
    ``<archive>::<name>`` member refs. The archive is built in a tmp
    sibling and durably replaced, so a crash mid-pack loses nothing.
    """
    directory = Path(directory)
    target = Path(archive) if archive is not None else directory / ARCHIVE_NAME
    files = sorted(directory.glob("*.cali"))
    tmp = tmp_sibling(target)
    writer = CalipackWriter(tmp)
    try:
        if target.exists():  # repack: carry existing entries over
            for entry in load_entries(target):
                writer.append_bytes(entry.name, read_entry_bytes(target, entry))
        for path in files:
            writer.append_bytes(path.name, path.read_bytes())
    except BaseException:
        writer.abort()
        tmp.unlink(missing_ok=True)
        raise
    writer.close()
    durable_replace(tmp, target)
    entries = load_index(target)
    if remove:
        for path in files:
            path.unlink()
        _rewrite_manifest_refs(directory, target, pack=True)
    return target, entries


def unpack_archive(
    archive: str | Path,
    directory: str | Path | None = None,
    remove: bool = True,
) -> list[Path]:
    """Restore an archive's entries as loose ``.cali`` files (verbatim)."""
    archive = Path(archive)
    directory = Path(directory) if directory is not None else archive.parent
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for entry in load_entries(archive):
        out = directory / entry.name
        tmp = tmp_sibling(out)
        tmp.write_bytes(read_entry_bytes(archive, entry))
        durable_replace(tmp, out)
        written.append(out)
    if remove:
        archive.unlink()
        _rewrite_manifest_refs(directory, archive, pack=False)
    return written


def _rewrite_manifest_refs(directory: Path, archive: Path, pack: bool) -> None:
    """Point manifest ``file`` fields at the archive (or back at files)."""
    from repro.suite.manifest import MANIFEST_NAME, CampaignManifest

    if not (directory / MANIFEST_NAME).exists():
        return
    try:
        fingerprint = json.loads(
            (directory / MANIFEST_NAME).read_text()
        ).get("fingerprint", {})
    except (OSError, ValueError):
        return
    manifest = CampaignManifest.load_or_create(directory, fingerprint)
    changed = False
    for entry in manifest.cells.values():
        file = entry.get("file")
        if not file:
            continue
        ref = split_member_ref(file)
        if pack and ref is None:
            entry["file"] = member_ref(archive, Path(file).name)
            changed = True
        elif not pack and ref is not None:
            entry["file"] = str(directory / ref[1])
            changed = True
    if changed:
        manifest.save()


def _natural_key(name: str) -> tuple:
    """Numeric-aware sort key: ``worker-2`` orders before ``worker-10``.

    Plain lexicographic ordering folds ``worker-10`` before ``worker-2``,
    which inverts last-wins precedence for respawned workers whose ids
    passed one digit width. Digit runs compare as integers; text runs as
    text (tagged so mixed shapes stay comparable).
    """
    return tuple(
        (0, int(part)) if part.isdigit() else (1, part)
        for part in re.split(r"(\d+)", name)
        if part
    )


def _merge_archives(sources: list[Path], target: Path) -> Path:
    """Fold ``sources`` (in order, last-wins) into ``target`` canonically.

    The merged archive is rebuilt name-sorted in a tmp sibling and
    durably replaced, so its bytes are a pure function of its entry set:
    no matter how many segments or merge levels produced it, or in what
    completion order entries arrived, the same entries give the same
    archive — the property the sharded merge tree's bit-identity
    guarantee rests on.
    """
    entries: dict[str, tuple[Path, ArchiveEntry]] = {}
    for source in sources:
        for entry in load_entries(source):
            entries[entry.name] = (source, entry)
    tmp = tmp_sibling(target)
    writer = CalipackWriter(tmp)
    try:
        for name in sorted(entries):
            source, entry = entries[name]
            # verify=False: damaged entries carry over byte-for-byte —
            # detecting and quarantining them is fsck's job, and a merge
            # must never fail a campaign over one bad profile.
            writer.append_bytes(
                name, read_entry_bytes(source, entry, verify=False)
            )
    except BaseException:
        writer.abort()
        tmp.unlink(missing_ok=True)
        raise
    writer.close()
    durable_replace(tmp, target)
    return target


def canonicalize_archive(archive: str | Path) -> Path | None:
    """Rewrite an archive into its canonical (name-sorted) sealed form.

    Appends land in completion order, which resume, retry, and worker
    scheduling legitimately permute. Campaign completion canonicalizes
    the archive so serial, supervised, and sharded runs over the same
    cells end with byte-identical ``campaign.calipack`` files.
    """
    target = Path(archive)
    if not target.exists():
        return None
    return _merge_archives([target], target)


def merge_segments(
    directory: str | Path, archive: str | Path | None = None
) -> Path | None:
    """Merge ``segments/*.calipack`` into the campaign archive.

    The supervisor calls this on drain; campaign startup calls it too,
    so segments stranded by a crash are salvaged (footer-less segments
    go through the recovery scan). Segments fold in numeric-aware name
    order (``worker-2`` before ``worker-10``) with last-wins dedup, and
    the merged archive is rebuilt canonically (tmp + durable replace)
    before any segment is deleted — a crash between the replace and the
    deletions just re-merges idempotently. Returns the archive path, or
    None when there was nothing to merge.
    """
    directory = Path(directory)
    seg_dir = directory / SEGMENT_DIR
    segments = (
        sorted(
            seg_dir.glob("*" + ARCHIVE_SUFFIX),
            key=lambda p: _natural_key(p.name),
        )
        if seg_dir.is_dir()
        else []
    )
    if not segments:
        return None
    target = Path(archive) if archive is not None else directory / ARCHIVE_NAME
    sources = ([target] if target.exists() else []) + segments
    _merge_archives(sources, target)
    # Merged archive durable, no segment deleted yet: a crash here must
    # leave a re-runnable merge (last-wins dedup makes it idempotent).
    crash_point("calipack.mid-merge", path=target)
    for segment in segments:
        segment.unlink()
        # Between two segment deletions: the survivors re-merge into the
        # already-folded archive without changing it.
        crash_point("calipack.post-merge-unlink", path=target)
    try:
        seg_dir.rmdir()
    except OSError:
        pass
    return target


def merge_shards(
    directory: str | Path,
    shard_archives: list[str | Path],
    archive: str | Path | None = None,
    scratch: str | Path | None = None,
) -> Path | None:
    """Hierarchically merge per-shard archives into the campaign archive.

    Pairs of archives fold into scratch intermediates level by level (a
    merge tree, with the ``shard.mid-merge-level`` crash point between
    levels), and the final level — together with any existing campaign
    archive — goes through the same canonical rewrite as
    :func:`merge_segments`. Source order is preserved across tree
    levels, so last-wins precedence holds globally: callers order
    ``shard_archives`` with superseded (failed, reassigned-away) shards
    first. Intermediates live in a scratch directory recreated per
    merge; a crash at any level simply re-runs the tree from the intact
    shard archives. Shard archives themselves are never deleted.
    """
    directory = Path(directory)
    target = Path(archive) if archive is not None else directory / ARCHIVE_NAME
    sources = [Path(p) for p in shard_archives if Path(p).exists()]
    if not sources:
        return None
    scratch_dir = (
        Path(scratch) if scratch is not None else directory / ".merge-scratch"
    )
    shutil.rmtree(scratch_dir, ignore_errors=True)
    scratch_dir.mkdir(parents=True, exist_ok=True)
    level: list[Path] = sources
    depth = 0
    while len(level) > 1:
        next_level: list[Path] = []
        for i in range(0, len(level), 2):
            out = scratch_dir / f"level{depth}-{i // 2}{ARCHIVE_SUFFIX}"
            _merge_archives(level[i : i + 2], out)
            next_level.append(out)
        # One tree level durable in scratch: a crash here re-runs the
        # whole tree from the shard archives (still intact).
        crash_point("shard.mid-merge-level", path=target)
        level = next_level
        depth += 1
    _merge_archives(([target] if target.exists() else []) + level, target)
    shutil.rmtree(scratch_dir, ignore_errors=True)
    return target
