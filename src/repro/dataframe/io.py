"""CSV and JSON round-trips for :class:`repro.dataframe.Frame`.

Used by the benchmark harness to persist regenerated tables/figures and by
Thicket to cache composed ensembles.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path

import numpy as np

from repro.dataframe.frame import Frame


def _jsonable(value: object) -> object:
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    return value


def frame_to_json(frame: Frame, path: str | Path | None = None) -> str:
    """Serialize as ``{"columns": [...], "data": {col: [...]}}``."""
    payload = {
        "columns": frame.columns,
        "data": {
            name: [_jsonable(v) for v in frame[name].tolist()]
            for name in frame.columns
        },
    }
    text = json.dumps(payload, indent=2)
    if path is not None:
        Path(path).write_text(text)
    return text


def frame_from_json(source: str | Path) -> Frame:
    """Load a frame written by :func:`frame_to_json` (path or JSON text)."""
    text = source
    if isinstance(source, Path) or (
        isinstance(source, str) and not source.lstrip().startswith("{")
    ):
        text = Path(source).read_text()
    payload = json.loads(text)
    return Frame({name: payload["data"][name] for name in payload["columns"]})


def frame_to_csv(frame: Frame, path: str | Path | None = None) -> str:
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(frame.columns)
    for row in frame.iter_rows():
        writer.writerow([_jsonable(row[c]) for c in frame.columns])
    text = buf.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text


def _coerce(values: list[str]) -> list[object]:
    """Best-effort typed parse of a CSV column (int, then float, else str)."""
    for caster in (int, float):
        try:
            return [caster(v) for v in values]
        except ValueError:
            continue
    return list(values)


def frame_from_csv(source: str | Path) -> Frame:
    """Load a frame from CSV text or a path, inferring column types."""
    text = source
    if isinstance(source, Path) or (
        isinstance(source, str) and source and "\n" not in source
    ):
        text = Path(source).read_text()
    rows = list(csv.reader(io.StringIO(text)))
    if not rows:
        return Frame()
    header, body = rows[0], rows[1:]
    columns: dict[str, object] = {}
    for j, name in enumerate(header):
        columns[name] = _coerce([row[j] for row in body])
    return Frame(columns)
