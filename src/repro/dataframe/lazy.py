"""The :class:`LazyFrame` deferred-query surface.

``frame.lazy()`` (or :func:`scan_cache` for an on-disk ingest-cache
table) gives a handle whose ``filter`` / ``select`` / ``with_column`` /
``sort`` / ``join`` / ``groupby().agg`` calls only build a plan;
``collect()`` optimizes the plan (mask fusion, predicate pushdown into
the scan, column pruning) and executes it vectorized. Results are
bit-identical to the eager :class:`~repro.dataframe.Frame` methods —
the eager methods are themselves one-node plans over the same executor.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from typing import Any

import numpy as np

from repro.dataframe.expr import Expr, Lit
from repro.dataframe.frame import Frame
from repro.dataframe.plan import (
    Filter,
    GroupAgg,
    Join,
    Plan,
    Scan,
    ScanCache,
    Select,
    Sort,
    WithColumn,
    execute,
    optimize,
)

__all__ = ["LazyFrame", "LazyGroupBy", "scan_cache"]


class LazyFrame:
    """A deferred query: every method extends the plan, nothing runs."""

    __slots__ = ("_plan",)

    def __init__(self, plan: Plan) -> None:
        self._plan = plan

    @classmethod
    def scan(cls, frame: Frame) -> "LazyFrame":
        return cls(Scan(frame))

    # ----------------------------------------------------------- operators
    def filter(self, predicate: Expr | np.ndarray) -> "LazyFrame":
        """Keep rows where ``predicate`` holds (an Expr or boolean mask)."""
        if isinstance(predicate, Expr):
            expr = predicate
        elif isinstance(predicate, np.ndarray) or (
            not callable(predicate) and hasattr(predicate, "__len__")
        ):
            expr = Lit(np.asarray(predicate))
        else:
            raise TypeError(
                "LazyFrame.filter takes an Expr (col(...) == value) or a "
                "boolean mask; for arbitrary callables use the eager "
                "Frame.filter"
            )
        return LazyFrame(Filter(self._plan, expr))

    def select(self, names: Sequence[str]) -> "LazyFrame":
        return LazyFrame(Select(self._plan, names))

    def with_column(self, name: str, value: Expr | Any) -> "LazyFrame":
        expr = value if isinstance(value, Expr) else Lit(value)
        return LazyFrame(WithColumn(self._plan, name, expr))

    def sort(self, *names: str, descending: bool = False) -> "LazyFrame":
        if not names:
            raise ValueError("sort needs at least one column")
        return LazyFrame(Sort(self._plan, names, descending))

    # Alias matching the eager spelling.
    sort_by = sort

    def join(
        self,
        other: "LazyFrame | Frame",
        on: str,
        how: str = "inner",
        suffix: str = "_r",
    ) -> "LazyFrame":
        if how not in ("inner", "left"):
            raise ValueError(f"how must be 'inner' or 'left', got {how!r}")
        right = other._plan if isinstance(other, LazyFrame) else Scan(other)
        return LazyFrame(Join(self._plan, right, on, how, suffix))

    def groupby(self, *keys: str) -> "LazyGroupBy":
        if not keys:
            raise ValueError("groupby needs at least one key column")
        return LazyGroupBy(self._plan, keys)

    # ---------------------------------------------------------- execution
    def collect(self) -> Frame:
        """Optimize and run the plan, materializing an eager Frame."""
        return execute(optimize(self._plan))

    def explain(self, optimized: bool = True) -> str:
        """The plan tree as indented text (post-optimization by default)."""
        plan = optimize(self._plan) if optimized else self._plan
        return plan.explain()

    def __repr__(self) -> str:
        return f"LazyFrame(\n{self.explain(optimized=False)}\n)"


class LazyGroupBy:
    """The plan-building counterpart of :class:`repro.dataframe.GroupBy`."""

    __slots__ = ("_plan", "_keys")

    def __init__(self, plan: Plan, keys: Sequence[str]) -> None:
        self._plan = plan
        self._keys = tuple(keys)

    def agg(
        self, spec: Mapping[str, str | Callable[[np.ndarray], Any]]
    ) -> LazyFrame:
        return LazyFrame(GroupAgg(self._plan, self._keys, spec))

    def size(self) -> LazyFrame:
        return LazyFrame(GroupAgg(self._plan, self._keys, None))


def scan_cache(path: str, table: str = "metadata") -> LazyFrame:
    """Lazily scan one table (``"dataframe"`` or ``"metadata"``) of an
    ingest-cache ``.tic`` file.

    Column buffers are read only when the collected plan references
    them, and plan predicates are pushed into the scan so string
    equality runs over dictionary codes before anything is decoded.
    """
    from repro.thicket.ingest_cache import ColumnStore

    return LazyFrame(ScanCache(ColumnStore(path, table)))
