"""A small, pandas-free column-store dataframe.

Thicket (the real tool) is built on pandas; this environment has no pandas,
so :class:`Frame` provides the slice of dataframe functionality Thicket's
EDA surface needs: labelled columns, row filtering, group-by with
aggregation, joins, sorting, and CSV/JSON round-trips. Columns are NumPy
arrays (numeric) or object arrays (strings), so vectorized operations stay
vectorized per the HPC-Python guidance.
"""

from repro.dataframe.expr import DictColumn, Expr, col, lit, parse_expr
from repro.dataframe.frame import Frame
from repro.dataframe.groupby import GroupBy
from repro.dataframe.io import frame_from_csv, frame_from_json, frame_to_csv, frame_to_json
from repro.dataframe.lazy import LazyFrame, LazyGroupBy, scan_cache

__all__ = [
    "DictColumn",
    "Expr",
    "Frame",
    "GroupBy",
    "LazyFrame",
    "LazyGroupBy",
    "col",
    "frame_from_csv",
    "frame_from_json",
    "frame_to_csv",
    "frame_to_json",
    "lit",
    "parse_expr",
    "scan_cache",
]
