"""Vectorized column expressions for the lazy query engine.

An :class:`Expr` is a small immutable DAG built by operator overloading::

    col("variant") == "RAJA_CUDA"
    (col("Avg time/rank") * col("reps")) > 1.0
    col("machine").is_in(["m0", "m1"]) & ~(col("tuning") == "block_128")

Expressions evaluate *vectorized* against a mapping of column name ->
NumPy array — never per row — and they know their referenced columns
(:meth:`Expr.references`) and their top-level conjuncts
(:meth:`Expr.conjuncts`), which is what lets the planner prune unused
columns and push predicates into scans.

Dictionary-encoded columns participate without being decoded: a scan
may bind a name to a :class:`DictColumn` (``u4`` codes + unique
values), and equality / membership comparisons against literals then
compare *codes*, not objects. Any other operation transparently decodes
first, so semantics never depend on the encoding.

:func:`parse_expr` turns the small ``--where`` predicate language
(Python comparison syntax over column names and literals) into an
expression tree.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Mapping
from typing import Any

import numpy as np

__all__ = [
    "DictColumn",
    "Expr",
    "col",
    "lit",
    "parse_expr",
]


class DictColumn:
    """A dictionary-encoded column: ``u4`` codes into unique ``values``.

    The ingest cache stores string columns this way; scans hand them to
    expressions as-is so equality predicates run over the code array.
    ``decode()`` materializes the plain object array.
    """

    __slots__ = ("codes", "values")

    def __init__(self, codes: np.ndarray, values: np.ndarray) -> None:
        self.codes = codes
        self.values = values

    def __len__(self) -> int:
        return len(self.codes)

    def code_of(self, value: Any) -> int | None:
        """The code for ``value``, or None when it never occurs."""
        for i, v in enumerate(self.values):
            if v == value or (v is None and value is None):
                return i
        return None

    def decode(self) -> np.ndarray:
        if not len(self.values):
            return np.empty(len(self.codes), dtype=object)
        return self.values[self.codes]

    def take(self, indices: np.ndarray) -> "DictColumn":
        return DictColumn(self.codes[indices], self.values)


def _materialize(value: Any) -> Any:
    """Decode a :class:`DictColumn` operand; pass everything else through."""
    if isinstance(value, DictColumn):
        return value.decode()
    return value


def _object_compare(a: Any, b: Any, op: str) -> Any:
    """Elementwise ==/!= that never errors on mixed object columns."""
    result = np.equal(a, b) if op == "eq" else np.not_equal(a, b)
    return result


class Expr:
    """Base class: operator overloads build the tree."""

    # -- comparisons -------------------------------------------------------
    def __eq__(self, other: Any) -> "Expr":  # type: ignore[override]
        return Cmp(self, _wrap(other), "eq")

    def __ne__(self, other: Any) -> "Expr":  # type: ignore[override]
        return Cmp(self, _wrap(other), "ne")

    def __lt__(self, other: Any) -> "Expr":
        return Cmp(self, _wrap(other), "lt")

    def __le__(self, other: Any) -> "Expr":
        return Cmp(self, _wrap(other), "le")

    def __gt__(self, other: Any) -> "Expr":
        return Cmp(self, _wrap(other), "gt")

    def __ge__(self, other: Any) -> "Expr":
        return Cmp(self, _wrap(other), "ge")

    # -- arithmetic --------------------------------------------------------
    def __add__(self, other: Any) -> "Expr":
        return BinOp(self, _wrap(other), "add")

    def __radd__(self, other: Any) -> "Expr":
        return BinOp(_wrap(other), self, "add")

    def __sub__(self, other: Any) -> "Expr":
        return BinOp(self, _wrap(other), "sub")

    def __rsub__(self, other: Any) -> "Expr":
        return BinOp(_wrap(other), self, "sub")

    def __mul__(self, other: Any) -> "Expr":
        return BinOp(self, _wrap(other), "mul")

    def __rmul__(self, other: Any) -> "Expr":
        return BinOp(_wrap(other), self, "mul")

    def __truediv__(self, other: Any) -> "Expr":
        return BinOp(self, _wrap(other), "div")

    def __rtruediv__(self, other: Any) -> "Expr":
        return BinOp(_wrap(other), self, "div")

    # -- boolean combinators ----------------------------------------------
    def __and__(self, other: Any) -> "Expr":
        return BoolOp(self, _wrap(other), "and")

    def __rand__(self, other: Any) -> "Expr":
        return BoolOp(_wrap(other), self, "and")

    def __or__(self, other: Any) -> "Expr":
        return BoolOp(self, _wrap(other), "or")

    def __ror__(self, other: Any) -> "Expr":
        return BoolOp(_wrap(other), self, "or")

    def __invert__(self) -> "Expr":
        return Not(self)

    def __bool__(self) -> bool:
        # Truth-testing an expression is always a bug (``and``/``or``/
        # ``if`` in would-be-vectorized predicates); the loud TypeError
        # is also how Frame.filter detects a non-vectorizable callable
        # and falls back to its row path.
        raise TypeError(
            "Expr has no truth value; combine with & | ~ instead of "
            "and/or/not"
        )

    def __hash__(self) -> int:  # __eq__ is overloaded; identity hash
        return id(self)

    # -- convenience methods ----------------------------------------------
    def is_in(self, values: Iterable[Any]) -> "Expr":
        return IsIn(self, list(values))

    def is_null(self) -> "Expr":
        return IsNull(self)

    # -- analysis ----------------------------------------------------------
    def references(self) -> set[str]:
        """Every column name this expression reads."""
        out: set[str] = set()
        self._collect_refs(out)
        return out

    def _collect_refs(self, out: set[str]) -> None:
        raise NotImplementedError

    def conjuncts(self) -> list["Expr"]:
        """Split a top-level ``&`` chain into its factors."""
        if isinstance(self, BoolOp) and self.op == "and":
            return self.left.conjuncts() + self.right.conjuncts()
        return [self]

    # -- evaluation --------------------------------------------------------
    def evaluate(self, columns: Mapping[str, Any]) -> Any:
        """Vectorized evaluation over ``columns`` (arrays or DictColumns)."""
        raise NotImplementedError


class Col(Expr):
    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def _collect_refs(self, out: set[str]) -> None:
        out.add(self.name)

    def evaluate(self, columns: Mapping[str, Any]) -> Any:
        try:
            return columns[self.name]
        except KeyError:
            raise KeyError(
                f"no column {self.name!r}; have {sorted(columns)}"
            ) from None

    def __repr__(self) -> str:
        return f"col({self.name!r})"


class Lit(Expr):
    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def _collect_refs(self, out: set[str]) -> None:
        pass

    def evaluate(self, columns: Mapping[str, Any]) -> Any:
        return self.value

    def __repr__(self) -> str:
        return f"lit({self.value!r})"


class Cmp(Expr):
    __slots__ = ("left", "right", "op")

    _OPS = {
        "eq": "==", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">=",
    }

    def __init__(self, left: Expr, right: Expr, op: str) -> None:
        self.left = left
        self.right = right
        self.op = op

    def _collect_refs(self, out: set[str]) -> None:
        self.left._collect_refs(out)
        self.right._collect_refs(out)

    def evaluate(self, columns: Mapping[str, Any]) -> Any:
        a = self.left.evaluate(columns)
        b = self.right.evaluate(columns)
        # Code-space equality: compare u4 codes against the literal's
        # code without decoding a single string.
        if self.op in ("eq", "ne"):
            dict_side, other = None, None
            if isinstance(a, DictColumn) and not isinstance(b, (DictColumn, np.ndarray)):
                dict_side, other = a, b
            elif isinstance(b, DictColumn) and not isinstance(a, (DictColumn, np.ndarray)):
                dict_side, other = b, a
            if dict_side is not None:
                code = dict_side.code_of(other)
                if code is None:
                    full = np.zeros(len(dict_side), dtype=bool)
                else:
                    full = dict_side.codes == code
                return full if self.op == "eq" else ~full
        a, b = _materialize(a), _materialize(b)
        if self.op == "eq":
            return _object_compare(a, b, "eq")
        if self.op == "ne":
            return _object_compare(a, b, "ne")
        if self.op == "lt":
            return a < b
        if self.op == "le":
            return a <= b
        if self.op == "gt":
            return a > b
        return a >= b

    def __repr__(self) -> str:
        return f"({self.left!r} {self._OPS[self.op]} {self.right!r})"


class BinOp(Expr):
    __slots__ = ("left", "right", "op")

    _OPS = {"add": "+", "sub": "-", "mul": "*", "div": "/"}

    def __init__(self, left: Expr, right: Expr, op: str) -> None:
        self.left = left
        self.right = right
        self.op = op

    def _collect_refs(self, out: set[str]) -> None:
        self.left._collect_refs(out)
        self.right._collect_refs(out)

    def evaluate(self, columns: Mapping[str, Any]) -> Any:
        a = _materialize(self.left.evaluate(columns))
        b = _materialize(self.right.evaluate(columns))
        if self.op == "add":
            return a + b
        if self.op == "sub":
            return a - b
        if self.op == "mul":
            return a * b
        return a / b

    def __repr__(self) -> str:
        return f"({self.left!r} {self._OPS[self.op]} {self.right!r})"


class BoolOp(Expr):
    __slots__ = ("left", "right", "op")

    def __init__(self, left: Expr, right: Expr, op: str) -> None:
        self.left = left
        self.right = right
        self.op = op

    def _collect_refs(self, out: set[str]) -> None:
        self.left._collect_refs(out)
        self.right._collect_refs(out)

    def evaluate(self, columns: Mapping[str, Any]) -> Any:
        a = np.asarray(_materialize(self.left.evaluate(columns)), dtype=bool)
        b = np.asarray(_materialize(self.right.evaluate(columns)), dtype=bool)
        return (a & b) if self.op == "and" else (a | b)

    def __repr__(self) -> str:
        symbol = "&" if self.op == "and" else "|"
        return f"({self.left!r} {symbol} {self.right!r})"


class Not(Expr):
    __slots__ = ("operand",)

    def __init__(self, operand: Expr) -> None:
        self.operand = operand

    def _collect_refs(self, out: set[str]) -> None:
        self.operand._collect_refs(out)

    def evaluate(self, columns: Mapping[str, Any]) -> Any:
        return ~np.asarray(_materialize(self.operand.evaluate(columns)), dtype=bool)

    def __repr__(self) -> str:
        return f"~{self.operand!r}"


class IsIn(Expr):
    __slots__ = ("operand", "values")

    def __init__(self, operand: Expr, values: list[Any]) -> None:
        self.operand = operand
        self.values = values

    def _collect_refs(self, out: set[str]) -> None:
        self.operand._collect_refs(out)

    def evaluate(self, columns: Mapping[str, Any]) -> Any:
        target = self.operand.evaluate(columns)
        if isinstance(target, DictColumn):
            codes = [
                c for c in (target.code_of(v) for v in self.values)
                if c is not None
            ]
            if not codes:
                return np.zeros(len(target), dtype=bool)
            return np.isin(target.codes, np.asarray(codes, dtype=target.codes.dtype))
        target = np.asarray(target)
        mask = np.zeros(len(target), dtype=bool)
        for v in self.values:
            mask |= np.asarray(_object_compare(target, v, "eq"), dtype=bool)
        return mask

    def __repr__(self) -> str:
        return f"{self.operand!r}.is_in({self.values!r})"


class IsNull(Expr):
    __slots__ = ("operand",)

    def __init__(self, operand: Expr) -> None:
        self.operand = operand

    def _collect_refs(self, out: set[str]) -> None:
        self.operand._collect_refs(out)

    def evaluate(self, columns: Mapping[str, Any]) -> Any:
        target = self.operand.evaluate(columns)
        if isinstance(target, DictColumn):
            code = target.code_of(None)
            if code is None:
                return np.zeros(len(target), dtype=bool)
            return target.codes == code
        target = np.asarray(target)
        if target.dtype.kind == "f":
            return np.isnan(target)
        if target.dtype == object:
            none_mask = np.frompyfunc(lambda v: v is None, 1, 1)(target)
            nan_mask = np.frompyfunc(
                lambda v: isinstance(v, float) and v != v, 1, 1
            )(target)
            return (none_mask | nan_mask).astype(bool)
        return np.zeros(len(target), dtype=bool)

    def __repr__(self) -> str:
        return f"{self.operand!r}.is_null()"


def col(name: str) -> Col:
    """A reference to the column ``name``."""
    return Col(str(name))


def lit(value: Any) -> Lit:
    """A literal constant operand."""
    return Lit(value)


def _wrap(value: Any) -> Expr:
    return value if isinstance(value, Expr) else Lit(value)


# ----------------------------------------------------------- --where parser
_CMP_NODES = {
    ast.Eq: "eq", ast.NotEq: "ne", ast.Lt: "lt", ast.LtE: "le",
    ast.Gt: "gt", ast.GtE: "ge",
}
_ARITH_NODES = {ast.Add: "add", ast.Sub: "sub", ast.Mult: "mul", ast.Div: "div"}


def parse_expr(text: str) -> Expr:
    """Parse the ``--where`` predicate language into an :class:`Expr`.

    Supported: column names as bare identifiers, string/number/bool/None
    literals, the six comparisons, ``in (…)`` membership, arithmetic
    ``+ - * /``, and ``and`` / ``or`` / ``not``. Anything else (calls,
    subscripts, attribute access) is rejected — the predicate runs over
    untrusted CLI input and must stay declarative.
    """
    try:
        tree = ast.parse(text, mode="eval")
    except SyntaxError as exc:
        raise ValueError(f"invalid --where expression: {exc.msg}") from exc
    return _from_ast(tree.body)


def _from_ast(node: ast.AST) -> Expr:
    if isinstance(node, ast.BoolOp):
        op = "and" if isinstance(node.op, ast.And) else "or"
        expr = _from_ast(node.values[0])
        for value in node.values[1:]:
            expr = BoolOp(expr, _from_ast(value), op)
        return expr
    if isinstance(node, ast.UnaryOp):
        if isinstance(node.op, ast.Not):
            return Not(_from_ast(node.operand))
        if isinstance(node.op, ast.USub):
            operand = _from_ast(node.operand)
            if isinstance(operand, Lit) and isinstance(operand.value, (int, float)):
                return Lit(-operand.value)
        raise ValueError(f"unsupported operator in --where: {ast.dump(node.op)}")
    if isinstance(node, ast.Compare):
        if len(node.ops) != 1:
            raise ValueError("chained comparisons are not supported in --where")
        left = _from_ast(node.left)
        op_node, right_node = node.ops[0], node.comparators[0]
        if isinstance(op_node, ast.In):
            return IsIn(left, _literal_list(right_node))
        if isinstance(op_node, ast.NotIn):
            return Not(IsIn(left, _literal_list(right_node)))
        op = _CMP_NODES.get(type(op_node))
        if op is None:
            raise ValueError(
                f"unsupported comparison in --where: {type(op_node).__name__}"
            )
        return Cmp(left, _from_ast(right_node), op)
    if isinstance(node, ast.BinOp):
        op = _ARITH_NODES.get(type(node.op))
        if op is None:
            raise ValueError(
                f"unsupported operator in --where: {type(node.op).__name__}"
            )
        return BinOp(_from_ast(node.left), _from_ast(node.right), op)
    if isinstance(node, ast.Name):
        return Col(node.id)
    if isinstance(node, ast.Constant):
        if node.value is None or isinstance(node.value, (str, int, float, bool)):
            return Lit(node.value)
        raise ValueError(f"unsupported literal in --where: {node.value!r}")
    raise ValueError(f"unsupported syntax in --where: {type(node).__name__}")


def _literal_list(node: ast.AST) -> list[Any]:
    if not isinstance(node, (ast.Tuple, ast.List)):
        raise ValueError("'in' in --where requires a literal list/tuple")
    out = []
    for element in node.elts:
        expr = _from_ast(element)
        if not isinstance(expr, Lit):
            raise ValueError("'in' in --where requires literal members")
        out.append(expr.value)
    return out
