"""Group-by machinery for :class:`repro.dataframe.Frame`.

Thicket's workflow groups profile rows by metadata (variant, tuning,
machine) and aggregates metrics across runs; ``GroupBy`` provides exactly
that: iteration over groups and reduction with named aggregators.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Mapping, Sequence
from typing import Any

import numpy as np

from repro.dataframe.frame import Frame

AGGREGATORS: dict[str, Callable[[np.ndarray], float]] = {
    "mean": lambda a: float(np.mean(a)),
    "sum": lambda a: float(np.sum(a)),
    "min": lambda a: float(np.min(a)),
    "max": lambda a: float(np.max(a)),
    "std": lambda a: float(np.std(a)),
    "median": lambda a: float(np.median(a)),
    "count": lambda a: float(len(a)),
    "first": lambda a: a[0],
    "last": lambda a: a[-1],
}


class GroupBy:
    """Lazily-evaluated grouping of a frame by one or more key columns."""

    def __init__(self, frame: Frame, keys: Sequence[str]) -> None:
        if not keys:
            raise ValueError("groupby needs at least one key column")
        for key in keys:
            if key not in frame:
                raise KeyError(f"no column {key!r} to group by")
        self.frame = frame
        self.keys = list(keys)
        self._groups: dict[tuple, list[int]] = {}
        cols = [frame[k] for k in self.keys]
        for i in range(frame.nrows):
            key = tuple(c[i] for c in cols)
            self._groups.setdefault(key, []).append(i)

    def __len__(self) -> int:
        return len(self._groups)

    def __iter__(self) -> Iterator[tuple[tuple, Frame]]:
        """Yield (key-tuple, sub-frame) pairs in first-seen order."""
        for key, rows in self._groups.items():
            yield key, self.frame.take(np.asarray(rows, dtype=int))

    def groups(self) -> dict[tuple, Frame]:
        return dict(iter(self))

    def get(self, *key_values: object) -> Frame:
        key = tuple(key_values)
        if key not in self._groups:
            raise KeyError(f"no group {key!r}; have {list(self._groups)}")
        return self.frame.take(np.asarray(self._groups[key], dtype=int))

    def size(self) -> Frame:
        """One row per group with a ``count`` column."""
        records = []
        for key, rows in self._groups.items():
            rec = dict(zip(self.keys, key))
            rec["count"] = len(rows)
            records.append(rec)
        return Frame.from_records(records)

    def agg(self, spec: Mapping[str, str | Callable[[np.ndarray], Any]]) -> Frame:
        """Aggregate columns: ``spec`` maps column -> aggregator (name or fn).

        The result has one row per group, the key columns, and one column
        per aggregated metric named ``<column>_<aggname>`` (or ``<column>``
        when a callable is supplied).
        """
        resolved: list[tuple[str, str, Callable[[np.ndarray], Any]]] = []
        for col, how in spec.items():
            if col not in self.frame:
                raise KeyError(f"no column {col!r} to aggregate")
            if callable(how):
                resolved.append((col, col, how))
            else:
                if how not in AGGREGATORS:
                    raise ValueError(
                        f"unknown aggregator {how!r}; have {list(AGGREGATORS)}"
                    )
                resolved.append((col, f"{col}_{how}", AGGREGATORS[how]))
        records = []
        for key, rows in self._groups.items():
            idx = np.asarray(rows, dtype=int)
            rec: dict[str, Any] = dict(zip(self.keys, key))
            for col, out_name, fn in resolved:
                rec[out_name] = fn(self.frame[col][idx])
            records.append(rec)
        return Frame.from_records(records)

    def apply(self, fn: Callable[[Frame], Mapping[str, Any]]) -> Frame:
        """Apply ``fn`` to each sub-frame; collect returned dicts as rows."""
        records = []
        for key, sub in self:
            rec = dict(zip(self.keys, key))
            rec.update(fn(sub))
            records.append(rec)
        return Frame.from_records(records)
