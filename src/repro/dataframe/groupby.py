"""Group-by machinery for :class:`repro.dataframe.Frame`.

Thicket's workflow groups profile rows by metadata (variant, tuning,
machine) and aggregates metrics across runs; ``GroupBy`` provides exactly
that: iteration over groups and reduction with named aggregators.

Grouping is vectorized: each key column is codified with
``np.unique(return_inverse=True)``, multiple keys combine mixed-radix
(re-compacted per step so codes never overflow), and group ids are
remapped to deterministic first-occurrence order. ``size()``/``agg()``
then reduce over stable-sorted row segments — no sub-Frame is
materialized per group. Key columns NumPy cannot order (mixed object
types, NaN keys, None) fall back to the original dict loop, whose
semantics the vectorized path reproduces exactly.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Mapping, Sequence
from typing import Any

import numpy as np

from repro.dataframe.frame import Frame

AGGREGATORS: dict[str, Callable[[np.ndarray], float]] = {
    "mean": lambda a: float(np.mean(a)),
    "sum": lambda a: float(np.sum(a)),
    "min": lambda a: float(np.min(a)),
    "max": lambda a: float(np.max(a)),
    "std": lambda a: float(np.std(a)),
    "median": lambda a: float(np.median(a)),
    "count": lambda a: float(len(a)),
    "first": lambda a: a[0],
    "last": lambda a: a[-1],
}


def _codify(col: np.ndarray) -> np.ndarray | None:
    """Per-row group codes for one key column, or None when NumPy cannot
    order it with dict-equality semantics (NaN keys, mixed objects)."""
    if col.dtype.kind == "f" and np.isnan(col).any():
        # dict semantics: every NaN key is its own group (fresh scalars
        # never compare equal); np.unique would merge them.
        return None
    try:
        _, inverse = np.unique(col, return_inverse=True)
    except TypeError:
        return None
    return inverse.astype(np.int64)


class GroupBy:
    """Lazily-evaluated grouping of a frame by one or more key columns."""

    def __init__(self, frame: Frame, keys: Sequence[str]) -> None:
        if not keys:
            raise ValueError("groupby needs at least one key column")
        for key in keys:
            if key not in frame:
                raise KeyError(f"no column {key!r} to group by")
        self.frame = frame
        self.keys = list(keys)
        cols = [frame[k] for k in self.keys]
        codes = self._combined_codes(cols, frame.nrows)
        if codes is None:
            self._init_fallback(cols, frame.nrows)
        else:
            self._init_vectorized(codes, cols, frame.nrows)
        self._key_to_group: dict[tuple, int] | None = None

    @staticmethod
    def _combined_codes(cols: list[np.ndarray], nrows: int) -> np.ndarray | None:
        if nrows == 0:
            return np.zeros(0, dtype=np.int64)
        combined: np.ndarray | None = None
        for col in cols:
            codes = _codify(col)
            if codes is None:
                return None
            if combined is None:
                combined = codes
            else:
                # Mixed-radix merge, re-compacted each step so the
                # product of cardinalities never overflows int64.
                radix = int(codes.max()) + 1
                combined = combined * radix + codes
                _, combined = np.unique(combined, return_inverse=True)
                combined = combined.astype(np.int64)
        return combined

    def _init_vectorized(
        self, codes: np.ndarray, cols: list[np.ndarray], nrows: int
    ) -> None:
        ngroups = int(codes.max()) + 1 if nrows else 0
        # Remap group ids to first-occurrence order: the row index where
        # each group first appears decides its rank.
        first_row = np.full(ngroups, nrows, dtype=np.int64)
        np.minimum.at(first_row, codes, np.arange(nrows, dtype=np.int64))
        rank_order = np.argsort(first_row, kind="stable")
        remap = np.empty(ngroups, dtype=np.int64)
        remap[rank_order] = np.arange(ngroups, dtype=np.int64)
        codes = remap[codes] if nrows else codes
        self._codes = codes
        self._order = np.argsort(codes, kind="stable")
        self._counts = np.bincount(codes, minlength=ngroups)
        self._starts = np.cumsum(self._counts) - self._counts
        rep_rows = first_row[rank_order]
        self._rep_rows = rep_rows
        self._keys_list = [
            tuple(col[r] for col in cols) for r in rep_rows
        ]

    def _init_fallback(self, cols: list[np.ndarray], nrows: int) -> None:
        groups: dict[tuple, list[int]] = {}
        for i in range(nrows):
            key = tuple(c[i] for c in cols)
            groups.setdefault(key, []).append(i)
        self._keys_list = list(groups)
        rows_per_group = [np.asarray(rows, dtype=np.int64) for rows in groups.values()]
        self._counts = np.asarray([len(r) for r in rows_per_group], dtype=np.int64)
        self._starts = np.cumsum(self._counts) - self._counts
        self._order = (
            np.concatenate(rows_per_group)
            if rows_per_group
            else np.zeros(0, dtype=np.int64)
        )
        self._rep_rows = np.asarray(
            [r[0] for r in rows_per_group], dtype=np.int64
        )
        codes = np.zeros(nrows, dtype=np.int64)
        for g, rows in enumerate(rows_per_group):
            codes[rows] = g
        self._codes = codes

    # ------------------------------------------------------------- access
    def _group_rows(self, g: int) -> np.ndarray:
        start = self._starts[g]
        return self._order[start:start + self._counts[g]]

    @property
    def _groups(self) -> dict[tuple, list[int]]:
        """Key tuple -> row indices, first-seen order (compat view)."""
        return {
            key: self._group_rows(g).tolist()
            for g, key in enumerate(self._keys_list)
        }

    def __len__(self) -> int:
        return len(self._keys_list)

    def __iter__(self) -> Iterator[tuple[tuple, Frame]]:
        """Yield (key-tuple, sub-frame) pairs in first-seen order."""
        for g, key in enumerate(self._keys_list):
            yield key, self.frame.take(self._group_rows(g))

    def groups(self) -> dict[tuple, Frame]:
        return dict(iter(self))

    def get(self, *key_values: object) -> Frame:
        if self._key_to_group is None:
            self._key_to_group = {
                key: g for g, key in enumerate(self._keys_list)
            }
        key = tuple(key_values)
        if key not in self._key_to_group:
            raise KeyError(f"no group {key!r}; have {self._keys_list}")
        return self.frame.take(self._group_rows(self._key_to_group[key]))

    # --------------------------------------------------------- reductions
    def _key_data(self) -> dict[str, list]:
        # Column-wise key values via the representative (first) row of
        # each group; Frame() applies the same list coercion
        # from_records would, so dtypes match the legacy output exactly.
        return {
            k: [self._keys_list[g][j] for g in range(len(self._keys_list))]
            for j, k in enumerate(self.keys)
        }

    def size(self) -> Frame:
        """One row per group with a ``count`` column."""
        if not self._keys_list:
            return Frame()
        data: dict[str, object] = self._key_data()
        data["count"] = [int(c) for c in self._counts]
        return Frame(data)

    def agg(self, spec: Mapping[str, str | Callable[[np.ndarray], Any]]) -> Frame:
        """Aggregate columns: ``spec`` maps column -> aggregator (name or fn).

        The result has one row per group, the key columns, and one column
        per aggregated metric named ``<column>_<aggname>`` (or ``<column>``
        when a callable is supplied). Each aggregator runs over a slice of
        the stable-sorted column — rows appear in frame order, exactly as
        the per-group index lists used to provide.
        """
        resolved: list[tuple[str, str, Callable[[np.ndarray], Any]]] = []
        for col, how in spec.items():
            if col not in self.frame:
                raise KeyError(f"no column {col!r} to aggregate")
            if callable(how):
                resolved.append((col, col, how))
            else:
                if how not in AGGREGATORS:
                    raise ValueError(
                        f"unknown aggregator {how!r}; have {list(AGGREGATORS)}"
                    )
                resolved.append((col, f"{col}_{how}", AGGREGATORS[how]))
        if not self._keys_list:
            return Frame()
        data: dict[str, object] = self._key_data()
        for col, out_name, fn in resolved:
            sorted_vals = self.frame[col][self._order]
            data[out_name] = [
                fn(sorted_vals[self._starts[g]:self._starts[g] + self._counts[g]])
                for g in range(len(self._keys_list))
            ]
        return Frame(data)

    def apply(self, fn: Callable[[Frame], Mapping[str, Any]]) -> Frame:
        """Apply ``fn`` to each sub-frame; collect returned dicts as rows."""
        records = []
        for key, sub in self:
            rec = dict(zip(self.keys, key))
            rec.update(fn(sub))
            records.append(rec)
        return Frame.from_records(records)
