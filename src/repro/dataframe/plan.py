"""Query plans: the DAG behind :class:`repro.dataframe.LazyFrame`.

A plan is a small immutable tree of nodes (scan / filter / select /
with-column / sort / join / group-agg). :func:`optimize` rewrites it —
fusing adjacent filter masks, pushing predicates into scans, pruning
columns nobody reads — and :func:`execute` runs it fully vectorized
over NumPy columns. There are no row dicts anywhere in this module.

The eager :class:`~repro.dataframe.Frame` methods are thin wrappers
that build one-node plans and collect them, so lazy and eager queries
share this single execution path; the golden equivalence tests in
``tests/test_lazy_query.py`` pin the two to bit-identical results.

Two details carry the perf weight:

* Scans can be *cache scans* (``repro.thicket.ingest_cache.ColumnStore``):
  the optimizer tells the scan which columns are referenced and which
  predicate applies, and the store then reads only those columns' binary
  buffers and hands string columns over dictionary-encoded so equality
  runs on ``u4`` codes.
* Arrays borrowed from a scanned Frame are only copied at
  materialization time if they flow through untouched — filtered /
  sorted / joined outputs are already fresh, so nothing is copied twice.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from typing import Any

import numpy as np

from repro.dataframe.expr import Col, DictColumn, Expr, Lit
from repro.dataframe.frame import Frame, _as_column

__all__ = [
    "Filter",
    "GroupAgg",
    "Join",
    "Plan",
    "Scan",
    "ScanCache",
    "Select",
    "Sort",
    "WithColumn",
    "execute",
    "optimize",
    "vectorized_join",
]


class Plan:
    """Base class for plan nodes."""

    def children(self) -> tuple["Plan", ...]:
        return ()

    def label(self) -> str:
        return type(self).__name__

    def explain(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.label()]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)


class Scan(Plan):
    """Scan an in-memory eager :class:`Frame`."""

    __slots__ = ("frame",)

    def __init__(self, frame: Frame) -> None:
        self.frame = frame

    def label(self) -> str:
        return f"Scan[{self.frame.nrows} rows x {len(self.frame.columns)} cols]"


class ScanCache(Plan):
    """Scan an ingest-cache column store, loading only what is needed.

    ``columns`` (set by the pruning pass) limits which binary buffers
    are read; ``predicate`` (set by the pushdown pass) is evaluated over
    the loaded columns — dictionary-encoded string columns compare codes
    — before any decoding happens.
    """

    __slots__ = ("store", "columns", "predicate")

    def __init__(
        self,
        store: Any,
        columns: frozenset[str] | None = None,
        predicate: Expr | None = None,
    ) -> None:
        self.store = store
        self.columns = columns
        self.predicate = predicate

    def label(self) -> str:
        cols = "*" if self.columns is None else ",".join(sorted(self.columns))
        pred = f" where {self.predicate!r}" if self.predicate is not None else ""
        return f"ScanCache[{cols}]{pred}"


class Filter(Plan):
    __slots__ = ("input", "expr")

    def __init__(self, input: Plan, expr: Expr) -> None:
        self.input = input
        self.expr = expr

    def children(self) -> tuple[Plan, ...]:
        return (self.input,)

    def label(self) -> str:
        return f"Filter[{self.expr!r}]"


class Select(Plan):
    __slots__ = ("input", "names")

    def __init__(self, input: Plan, names: Sequence[str]) -> None:
        self.input = input
        self.names = tuple(str(n) for n in names)

    def children(self) -> tuple[Plan, ...]:
        return (self.input,)

    def label(self) -> str:
        return f"Select[{', '.join(self.names)}]"


class WithColumn(Plan):
    __slots__ = ("input", "name", "expr")

    def __init__(self, input: Plan, name: str, expr: Expr) -> None:
        self.input = input
        self.name = str(name)
        self.expr = expr

    def children(self) -> tuple[Plan, ...]:
        return (self.input,)

    def label(self) -> str:
        return f"WithColumn[{self.name} = {self.expr!r}]"


class Sort(Plan):
    __slots__ = ("input", "names", "descending")

    def __init__(self, input: Plan, names: Sequence[str], descending: bool) -> None:
        self.input = input
        self.names = tuple(str(n) for n in names)
        self.descending = bool(descending)

    def children(self) -> tuple[Plan, ...]:
        return (self.input,)

    def label(self) -> str:
        arrow = "desc" if self.descending else "asc"
        return f"Sort[{', '.join(self.names)} {arrow}]"


class Join(Plan):
    __slots__ = ("left", "right", "on", "how", "suffix")

    def __init__(self, left: Plan, right: Plan, on: str, how: str, suffix: str) -> None:
        self.left = left
        self.right = right
        self.on = str(on)
        self.how = how
        self.suffix = suffix

    def children(self) -> tuple[Plan, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        return f"Join[{self.how} on {self.on}]"


class GroupAgg(Plan):
    """Group by ``keys``; ``spec`` of None means ``size()``."""

    __slots__ = ("input", "keys", "spec")

    def __init__(
        self,
        input: Plan,
        keys: Sequence[str],
        spec: Mapping[str, str | Callable[[np.ndarray], Any]] | None,
    ) -> None:
        self.input = input
        self.keys = tuple(str(k) for k in keys)
        self.spec = dict(spec) if spec is not None else None

    def children(self) -> tuple[Plan, ...]:
        return (self.input,)

    def label(self) -> str:
        what = "size" if self.spec is None else ", ".join(
            f"{c}:{how if isinstance(how, str) else getattr(how, '__name__', 'fn')}"
            for c, how in self.spec.items()
        )
        return f"GroupAgg[{', '.join(self.keys)} -> {what}]"


# ------------------------------------------------------------------ optimizer

def optimize(plan: Plan) -> Plan:
    """Fuse filters, push predicates into scans, prune unused columns."""
    plan = _fuse_filters(plan)
    plan = _pushdown(plan)
    plan = _prune(plan, None)
    return plan


def _is_pushable(expr: Expr) -> bool:
    """Only pure expressions move: a literal holding a precomputed mask
    array is positional (its length is tied to one node's row count)."""
    if isinstance(expr, Lit):
        return not isinstance(expr.value, np.ndarray)
    if isinstance(expr, Col):
        return True
    for slot in getattr(expr, "__slots__", ()):
        value = getattr(expr, slot)
        if isinstance(value, Expr) and not _is_pushable(value):
            return False
    return True


def _fuse_filters(plan: Plan) -> Plan:
    plan = _rewrite_children(plan, _fuse_filters)
    if (
        isinstance(plan, Filter)
        and isinstance(plan.input, Filter)
        and _is_pushable(plan.expr)
        and _is_pushable(plan.input.expr)
    ):
        fused = plan.input.expr & plan.expr
        return Filter(plan.input.input, fused)
    return plan


def _pushdown(plan: Plan) -> Plan:
    plan = _rewrite_children(plan, _pushdown)
    if isinstance(plan, Filter) and _is_pushable(plan.expr):
        child = plan.input
        if isinstance(child, Select):
            # Filter over a projection only sees projected names, so it
            # commutes with the projection.
            return Select(_pushdown(Filter(child.input, plan.expr)), child.names)
        if isinstance(child, ScanCache):
            pred = plan.expr
            if child.predicate is not None:
                pred = child.predicate & pred
            return ScanCache(child.store, child.columns, pred)
    return plan


def _prune(plan: Plan, needed: frozenset[str] | None) -> Plan:
    if isinstance(plan, Filter):
        child_needed = (
            None if needed is None else needed | frozenset(plan.expr.references())
        )
        return Filter(_prune(plan.input, child_needed), plan.expr)
    if isinstance(plan, Select):
        return Select(_prune(plan.input, frozenset(plan.names)), plan.names)
    if isinstance(plan, WithColumn):
        if needed is None:
            child_needed = None
        else:
            child_needed = (needed - {plan.name}) | frozenset(plan.expr.references())
        return WithColumn(_prune(plan.input, child_needed), plan.name, plan.expr)
    if isinstance(plan, Sort):
        child_needed = None if needed is None else needed | frozenset(plan.names)
        return Sort(_prune(plan.input, child_needed), plan.names, plan.descending)
    if isinstance(plan, GroupAgg):
        child_needed = frozenset(plan.keys) | frozenset(plan.spec or ())
        return GroupAgg(_prune(plan.input, child_needed), plan.keys, plan.spec)
    if isinstance(plan, Join):
        # Output names are renamed on collision, so splitting `needed`
        # between the sides is not sound without schema tracking; scan
        # pruning stops at joins.
        return Join(
            _prune(plan.left, None), _prune(plan.right, None),
            plan.on, plan.how, plan.suffix,
        )
    if isinstance(plan, ScanCache):
        return ScanCache(plan.store, needed, plan.predicate)
    return plan


def _rewrite_children(plan: Plan, fn: Callable[[Plan], Plan]) -> Plan:
    if isinstance(plan, Filter):
        return Filter(fn(plan.input), plan.expr)
    if isinstance(plan, Select):
        return Select(fn(plan.input), plan.names)
    if isinstance(plan, WithColumn):
        return WithColumn(fn(plan.input), plan.name, plan.expr)
    if isinstance(plan, Sort):
        return Sort(fn(plan.input), plan.names, plan.descending)
    if isinstance(plan, Join):
        return Join(fn(plan.left), fn(plan.right), plan.on, plan.how, plan.suffix)
    if isinstance(plan, GroupAgg):
        return GroupAgg(fn(plan.input), plan.keys, plan.spec)
    return plan


# ------------------------------------------------------------------- executor

class _Table:
    """Executor intermediate: name -> ndarray | DictColumn, plus row count."""

    __slots__ = ("cols", "nrows")

    def __init__(self, cols: dict[str, Any], nrows: int) -> None:
        self.cols = cols
        self.nrows = nrows

    def get(self, name: str) -> Any:
        try:
            return self.cols[name]
        except KeyError:
            raise KeyError(
                f"no column {name!r}; have {list(self.cols)}"
            ) from None


def execute(plan: Plan) -> Frame:
    """Run an (already optimized) plan and materialize a :class:`Frame`."""
    borrowed: set[int] = set()
    table = _exec(plan, borrowed)
    return _to_frame(table, borrowed, copy_borrowed=True)


def _to_frame(table: _Table, borrowed: set[int], copy_borrowed: bool) -> Frame:
    out = Frame()
    out._nrows = table.nrows
    cols: dict[str, np.ndarray] = {}
    for name, col in table.cols.items():
        if isinstance(col, DictColumn):
            col = col.decode()
        elif copy_borrowed and id(col) in borrowed:
            col = col.copy()
        cols[name] = col
    out._cols = cols
    return out


def _exec(plan: Plan, borrowed: set[int]) -> _Table:
    if isinstance(plan, Scan):
        cols = dict(plan.frame._cols)
        borrowed.update(id(c) for c in cols.values())
        return _Table(cols, plan.frame.nrows)
    if isinstance(plan, ScanCache):
        names = plan.columns
        if names is not None and plan.predicate is not None:
            names = names | frozenset(plan.predicate.references())
        cols, nrows = plan.store.load_columns(names)
        table = _Table(cols, nrows)
        if plan.predicate is not None:
            table = _apply_filter(table, plan.predicate)
        if plan.columns is not None and set(table.cols) != set(plan.columns):
            # Drop columns that were loaded only to evaluate the predicate,
            # preserving the store's column order.
            table = _Table(
                {n: c for n, c in table.cols.items() if n in plan.columns},
                table.nrows,
            )
        return table
    if isinstance(plan, Filter):
        return _apply_filter(_exec(plan.input, borrowed), plan.expr)
    if isinstance(plan, Select):
        table = _exec(plan.input, borrowed)
        return _Table({n: table.get(n) for n in plan.names}, table.nrows)
    if isinstance(plan, WithColumn):
        table = _exec(plan.input, borrowed)
        value = plan.expr.evaluate(table.cols)
        if not isinstance(value, DictColumn):
            value = _as_column(
                value, table.nrows if not isinstance(value, np.ndarray) else None
            )
            if len(value) != table.nrows:
                raise ValueError(
                    f"column {plan.name!r} has length {len(value)}, "
                    f"expected {table.nrows}"
                )
        cols = dict(table.cols)
        cols[plan.name] = value
        return _Table(cols, table.nrows)
    if isinstance(plan, Sort):
        table = _exec(plan.input, borrowed)
        keys = []
        for n in reversed(plan.names):
            col = table.get(n)
            if isinstance(col, DictColumn):
                col = col.decode()
            keys.append(col.astype(str) if col.dtype == object else col)
        order = np.lexsort(keys)
        if plan.descending:
            order = order[::-1]
        return _take(table, order)
    if isinstance(plan, Join):
        left = _to_frame(_exec(plan.left, borrowed), borrowed, copy_borrowed=False)
        right = _to_frame(_exec(plan.right, borrowed), borrowed, copy_borrowed=False)
        joined = vectorized_join(left, right, plan.on, plan.how, plan.suffix)
        cols = dict(joined._cols)
        borrowed.update(id(c) for c in cols.values())
        return _Table(cols, joined.nrows)
    if isinstance(plan, GroupAgg):
        frame = _to_frame(_exec(plan.input, borrowed), borrowed, copy_borrowed=False)
        grouped = frame.groupby(*plan.keys)
        result = grouped.size() if plan.spec is None else grouped.agg(plan.spec)
        return _Table(dict(result._cols), result.nrows)
    raise TypeError(f"unknown plan node: {type(plan).__name__}")


def _apply_filter(table: _Table, expr: Expr) -> _Table:
    mask = expr.evaluate(table.cols)
    mask = np.asarray(mask)
    if mask.ndim == 0:
        mask = np.broadcast_to(np.asarray(bool(mask)), (table.nrows,))
    elif mask.dtype != bool:
        mask = mask.astype(bool)
    if len(mask) != table.nrows:
        raise ValueError(f"mask length {len(mask)} != row count {table.nrows}")
    return _take(table, mask)


def _take(table: _Table, indices: np.ndarray) -> _Table:
    nrows = int(indices.sum()) if indices.dtype == bool else len(indices)
    cols = {
        n: c.take(indices) if isinstance(c, DictColumn) else c[indices]
        for n, c in table.cols.items()
    }
    return _Table(cols, nrows)


# ------------------------------------------------------------ vectorized join

def vectorized_join(
    left: Frame, right: Frame, on: str, how: str = "inner", suffix: str = "_r"
) -> Frame:
    """Hash join on a single key column, vectorized via ``np.unique``.

    Falls back to the legacy row-loop when key columns contain NaN
    (Python dict semantics: NaN keys never match) or when ``np.unique``
    cannot order mixed object types. Output is bit-identical to the
    legacy implementation: left rows in order, right matches in row
    order, unmatched left rows None-filled, collisions suffixed.
    """
    if how not in ("inner", "left"):
        raise ValueError(f"how must be 'inner' or 'left', got {how!r}")
    lk, rk = left[on], right[on]
    if _join_needs_fallback(lk) or _join_needs_fallback(rk):
        return _legacy_join(left, right, on, how, suffix)
    try:
        combined = np.concatenate([lk, rk])
        uniq, inv = np.unique(combined, return_inverse=True)
    except TypeError:
        return _legacy_join(left, right, on, how, suffix)
    nl = left.nrows
    lc, rc = inv[:nl], inv[nl:]
    order = np.argsort(rc, kind="stable")
    counts = np.bincount(rc, minlength=len(uniq))
    offsets = np.cumsum(counts) - counts
    cnt_l = counts[lc] if nl else np.zeros(0, dtype=np.intp)
    reps = cnt_l if how == "inner" else np.maximum(cnt_l, 1)
    total = int(reps.sum())
    li = np.repeat(np.arange(nl), reps)
    if total:
        run_starts = np.cumsum(reps) - reps
        pos = np.arange(total) - np.repeat(run_starts, reps)
        base = np.repeat(offsets[lc], reps)
        matched_rep = np.repeat(cnt_l > 0, reps)
        if len(order):
            gather = base + pos
            gather[~matched_rep] = 0
            rr = np.where(matched_rep, order[gather], -1)
        else:
            rr = np.full(total, -1, dtype=np.intp)
    else:
        rr = np.zeros(0, dtype=np.intp)
    data: dict[str, object] = {}
    for n in left.columns:
        data[n] = left[n][li] if total else left[n][:0]
    missing = rr < 0
    ri = np.where(missing, 0, rr)
    for n in right.columns:
        if n == on:
            continue
        name = n if n not in data else n + suffix
        col = right[n][ri] if total else right[n][:0]
        if missing.any():
            col = col.astype(object)
            col[missing] = None
        data[name] = col
    return Frame(data) if data else Frame()


def _join_needs_fallback(col: np.ndarray) -> bool:
    if col.dtype.kind == "f":
        return bool(np.isnan(col).any())
    if col.dtype == object and len(col):
        is_nan = np.frompyfunc(lambda v: isinstance(v, float) and v != v, 1, 1)
        return bool(is_nan(col).any())
    return False


def _legacy_join(
    left: Frame, right: Frame, on: str, how: str, suffix: str
) -> Frame:
    """The original row-loop join; kept for dict-equality key semantics."""
    right_index: dict[Any, list[int]] = {}
    right_key = right[on]
    for j in range(right.nrows):
        right_index.setdefault(right_key[j], []).append(j)
    left_rows: list[int] = []
    right_rows: list[int] = []
    for i in range(left.nrows):
        matches = right_index.get(left[on][i], [])
        if matches:
            for j in matches:
                left_rows.append(i)
                right_rows.append(j)
        elif how == "left":
            left_rows.append(i)
            right_rows.append(-1)
    data: dict[str, object] = {}
    li = np.asarray(left_rows, dtype=int)
    for n in left.columns:
        data[n] = left[n][li] if len(li) else left[n][:0]
    missing = np.asarray(right_rows) < 0
    ri = np.asarray([max(j, 0) for j in right_rows], dtype=int)
    for n in right.columns:
        if n == on:
            continue
        name = n if n not in data else n + suffix
        col = right[n][ri] if len(ri) else right[n][:0]
        if missing.any():
            col = col.astype(object)
            col[missing] = None
        data[name] = col
    return Frame(data) if data else Frame()
