"""The :class:`Frame` column-store.

A ``Frame`` is an ordered mapping of column name -> 1-D NumPy array, all of
equal length. It supports the operations Thicket needs (select, filter,
group-by, join, sort, column arithmetic) without pulling in pandas.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Mapping, Sequence
from typing import Any

import numpy as np


def _as_column(values: object, length_hint: int | None = None) -> np.ndarray:
    """Coerce ``values`` to a 1-D column array (object dtype for strings)."""
    if isinstance(values, np.ndarray):
        arr = values
    else:
        seq = list(values) if not np.isscalar(values) else None
        if seq is None:
            if length_hint is None:
                raise ValueError("scalar column requires a length hint")
            arr = np.full(length_hint, values)
        else:
            has_str = any(isinstance(v, str) or v is None for v in seq)
            arr = np.array(seq, dtype=object) if has_str else np.asarray(seq)
    if arr.ndim != 1:
        raise ValueError(f"columns must be 1-D, got shape {arr.shape}")
    if arr.dtype.kind in "US":
        arr = arr.astype(object)
    return arr


class Frame:
    """An immutable-length, ordered collection of named columns."""

    def __init__(self, data: Mapping[str, object] | None = None) -> None:
        self._cols: dict[str, np.ndarray] = {}
        self._nrows = 0
        if data:
            items = list(data.items())
            first = _as_column(items[0][1])
            self._nrows = len(first)
            self._cols[str(items[0][0])] = first
            for name, values in items[1:]:
                col = _as_column(values, self._nrows)
                if len(col) != self._nrows:
                    raise ValueError(
                        f"column {name!r} has length {len(col)}, expected {self._nrows}"
                    )
                self._cols[str(name)] = col

    # ---------------------------------------------------------------- basic
    @classmethod
    def from_records(cls, records: Iterable[Mapping[str, Any]]) -> "Frame":
        """Build a frame from an iterable of row dicts (union of keys)."""
        rows = list(records)
        if not rows:
            return cls()
        # Ordered-set union of keys: a dict keeps first-seen order without
        # the quadratic `key not in list` scan per row.
        keys: dict[str, None] = {}
        for row in rows:
            keys.update(dict.fromkeys(row))
        data = {key: [row.get(key) for row in rows] for key in keys}
        return cls(data)

    @property
    def columns(self) -> list[str]:
        return list(self._cols)

    @property
    def nrows(self) -> int:
        return self._nrows

    def __len__(self) -> int:
        return self._nrows

    def __contains__(self, name: str) -> bool:
        return name in self._cols

    def __getitem__(self, name: str) -> np.ndarray:
        try:
            return self._cols[name]
        except KeyError:
            raise KeyError(f"no column {name!r}; have {self.columns}") from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._cols)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Frame):
            return NotImplemented
        if self.columns != other.columns or self.nrows != other.nrows:
            return False
        return all(
            np.array_equal(self._cols[c], other._cols[c]) for c in self.columns
        )

    def equals(self, other: "Frame", equal_nan: bool = True) -> bool:
        """Like ``==`` but treating aligned NaNs as equal (the default).

        ``__eq__`` uses strict ``np.array_equal``, under which a column
        containing NaN never equals itself — useless for comparing two
        independently composed ensembles. This is the comparison the
        ingest-equivalence guarantees are stated in.
        """
        if not isinstance(other, Frame):
            return False
        if self.columns != other.columns or self.nrows != other.nrows:
            return False
        for name in self.columns:
            a, b = self._cols[name], other._cols[name]
            if a.dtype != b.dtype:
                return False
            if np.array_equal(a, b):
                continue
            if not equal_nan or a.dtype.kind != "f":
                return False
            if not np.array_equal(a, b, equal_nan=True):
                return False
        return True

    def __repr__(self) -> str:
        return f"Frame({self.nrows} rows x {len(self._cols)} cols: {self.columns})"

    def copy(self) -> "Frame":
        out = Frame()
        out._nrows = self._nrows
        out._cols = {name: col.copy() for name, col in self._cols.items()}
        return out

    # ------------------------------------------------------------- mutation
    def with_column(self, name: str, values: object) -> "Frame":
        """Return a new frame with ``name`` set (added or replaced)."""
        col = _as_column(values, self._nrows)
        if self._cols and len(col) != self._nrows:
            raise ValueError(
                f"column {name!r} has length {len(col)}, expected {self._nrows}"
            )
        out = self.copy()
        if not out._cols:
            out._nrows = len(col)
        out._cols[str(name)] = col
        return out

    def drop(self, *names: str) -> "Frame":
        missing = [n for n in names if n not in self._cols]
        if missing:
            raise KeyError(f"cannot drop missing columns {missing}")
        out = Frame()
        out._nrows = self._nrows
        out._cols = {n: c.copy() for n, c in self._cols.items() if n not in names}
        return out

    def rename(self, mapping: Mapping[str, str]) -> "Frame":
        out = Frame()
        out._nrows = self._nrows
        out._cols = {mapping.get(n, n): c.copy() for n, c in self._cols.items()}
        if len(out._cols) != len(self._cols):
            raise ValueError(f"rename produced duplicate column names: {mapping}")
        return out

    # ------------------------------------------------------------ selection
    def select(self, names: Sequence[str]) -> "Frame":
        out = Frame()
        out._nrows = self._nrows
        out._cols = {n: self[n].copy() for n in names}
        return out

    def take(self, indices: object) -> "Frame":
        idx = np.asarray(indices)
        out = Frame()
        out._cols = {n: c[idx] for n, c in self._cols.items()}
        out._nrows = len(idx) if idx.dtype != bool else int(idx.sum())
        if out._cols:
            out._nrows = len(next(iter(out._cols.values())))
        return out

    def filter(self, predicate: Callable[[Mapping[str, Any]], bool] | np.ndarray) -> "Frame":
        """Keep rows where ``predicate`` holds.

        ``predicate`` is either a boolean mask or a callable applied to each
        row dict (the callable form matches Thicket's ``filter_metadata``).
        """
        if callable(predicate):
            mask = np.fromiter(
                (bool(predicate(row)) for row in self.iter_rows()),
                dtype=bool,
                count=self._nrows,
            )
        else:
            mask = np.asarray(predicate, dtype=bool)
            if len(mask) != self._nrows:
                raise ValueError(
                    f"mask length {len(mask)} != row count {self._nrows}"
                )
        return self.take(mask)

    def iter_rows(self) -> Iterator[dict[str, Any]]:
        names = self.columns
        for i in range(self._nrows):
            yield {n: self._cols[n][i] for n in names}

    def row(self, i: int) -> dict[str, Any]:
        if not -self._nrows <= i < self._nrows:
            raise IndexError(f"row {i} out of range for {self._nrows} rows")
        return {n: c[i] for n, c in self._cols.items()}

    def to_records(self) -> list[dict[str, Any]]:
        return list(self.iter_rows())

    # -------------------------------------------------------------- sorting
    def sort_by(self, *names: str, descending: bool = False) -> "Frame":
        """Stable lexicographic sort by the given columns (first is primary)."""
        if not names:
            raise ValueError("sort_by needs at least one column")
        # np.lexsort uses the LAST key as primary, so reverse.
        keys = []
        for n in reversed(names):
            col = self[n]
            keys.append(col.astype(str) if col.dtype == object else col)
        order = np.lexsort(keys)
        if descending:
            order = order[::-1]
        return self.take(order)

    # -------------------------------------------------------------- combine
    def vstack(self, other: "Frame") -> "Frame":
        """Concatenate rows; columns must match exactly (order-insensitive)."""
        if set(self.columns) != set(other.columns):
            raise ValueError(
                f"column mismatch: {self.columns} vs {other.columns}"
            )
        if not self._cols:
            return other.copy()
        out = Frame()
        out._cols = {
            n: np.concatenate([self[n], other[n]]) for n in self.columns
        }
        out._nrows = self._nrows + other._nrows
        return out

    def join(self, other: "Frame", on: str, how: str = "inner", suffix: str = "_r") -> "Frame":
        """Hash join on a single key column."""
        if how not in ("inner", "left"):
            raise ValueError(f"how must be 'inner' or 'left', got {how!r}")
        right_index: dict[Any, list[int]] = {}
        right_key = other[on]
        for j in range(other.nrows):
            right_index.setdefault(right_key[j], []).append(j)
        left_rows: list[int] = []
        right_rows: list[int] = []
        for i in range(self._nrows):
            matches = right_index.get(self[on][i], [])
            if matches:
                for j in matches:
                    left_rows.append(i)
                    right_rows.append(j)
            elif how == "left":
                left_rows.append(i)
                right_rows.append(-1)
        data: dict[str, object] = {}
        li = np.asarray(left_rows, dtype=int)
        for n in self.columns:
            data[n] = self[n][li] if len(li) else self[n][:0]
        missing = np.asarray(right_rows) < 0
        ri = np.asarray([max(j, 0) for j in right_rows], dtype=int)
        for n in other.columns:
            if n == on:
                continue
            name = n if n not in data else n + suffix
            col = other[n][ri] if len(ri) else other[n][:0]
            if missing.any():
                col = col.astype(object)
                col[missing] = None
            data[name] = col
        out = Frame(data) if data else Frame()
        return out

    # ------------------------------------------------------------- groupby
    def groupby(self, *names: str) -> "GroupBy":
        from repro.dataframe.groupby import GroupBy

        return GroupBy(self, names)

    # ------------------------------------------------------------ numeric
    def numeric_columns(self) -> list[str]:
        return [n for n, c in self._cols.items() if c.dtype.kind in "ifub"]

    def to_matrix(self, names: Sequence[str] | None = None) -> np.ndarray:
        """Stack numeric columns into an (nrows, ncols) float matrix."""
        names = list(names) if names is not None else self.numeric_columns()
        if not names:
            return np.empty((self._nrows, 0))
        return np.column_stack([self[n].astype(float) for n in names])
