"""The :class:`Frame` column-store.

A ``Frame`` is an ordered mapping of column name -> 1-D NumPy array, all of
equal length. It supports the operations Thicket needs (select, filter,
group-by, join, sort, column arithmetic) without pulling in pandas.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Mapping, Sequence
from typing import Any

import numpy as np


def _as_column(values: object, length_hint: int | None = None) -> np.ndarray:
    """Coerce ``values`` to a 1-D column array (object dtype for strings)."""
    if isinstance(values, np.ndarray):
        arr = values
    else:
        seq = list(values) if not np.isscalar(values) else None
        if seq is None:
            if length_hint is None:
                raise ValueError("scalar column requires a length hint")
            arr = np.full(length_hint, values)
        elif seq and (isinstance(seq[0], str) or seq[0] is None):
            # Short-circuit on the first element: string-led and
            # None-led inputs go straight to object dtype.
            arr = np.array(seq, dtype=object)
        else:
            # Let NumPy inspect the rest; a str/unicode result means a
            # stringy or mixed payload whose original values (ints next
            # to strings) must survive, so rebuild as object.
            arr = np.asarray(seq)
            if arr.dtype.kind in "US":
                arr = np.array(seq, dtype=object)
    if arr.ndim != 1:
        raise ValueError(f"columns must be 1-D, got shape {arr.shape}")
    if arr.dtype.kind in "US":
        arr = arr.astype(object)
    return arr


class Frame:
    """An immutable-length, ordered collection of named columns."""

    def __init__(self, data: Mapping[str, object] | None = None) -> None:
        self._cols: dict[str, np.ndarray] = {}
        self._nrows = 0
        if data:
            items = list(data.items())
            first = _as_column(items[0][1])
            self._nrows = len(first)
            self._cols[str(items[0][0])] = first
            for name, values in items[1:]:
                col = _as_column(values, self._nrows)
                if len(col) != self._nrows:
                    raise ValueError(
                        f"column {name!r} has length {len(col)}, expected {self._nrows}"
                    )
                self._cols[str(name)] = col

    # ---------------------------------------------------------------- basic
    @classmethod
    def from_records(cls, records: Iterable[Mapping[str, Any]]) -> "Frame":
        """Build a frame from an iterable of row dicts (union of keys)."""
        rows = list(records)
        if not rows:
            return cls()
        # Ordered-set union of keys: a dict keeps first-seen order without
        # the quadratic `key not in list` scan per row.
        keys: dict[str, None] = {}
        for row in rows:
            keys.update(dict.fromkeys(row))
        data = {key: [row.get(key) for row in rows] for key in keys}
        return cls(data)

    @property
    def columns(self) -> list[str]:
        return list(self._cols)

    @property
    def nrows(self) -> int:
        return self._nrows

    def __len__(self) -> int:
        return self._nrows

    def __contains__(self, name: str) -> bool:
        return name in self._cols

    def __getitem__(self, name: str) -> np.ndarray:
        try:
            return self._cols[name]
        except KeyError:
            raise KeyError(f"no column {name!r}; have {self.columns}") from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._cols)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Frame):
            return NotImplemented
        if self.columns != other.columns or self.nrows != other.nrows:
            return False
        return all(
            np.array_equal(self._cols[c], other._cols[c]) for c in self.columns
        )

    def equals(self, other: "Frame", equal_nan: bool = True) -> bool:
        """Like ``==`` but treating aligned NaNs as equal (the default).

        ``__eq__`` uses strict ``np.array_equal``, under which a column
        containing NaN never equals itself — useless for comparing two
        independently composed ensembles. This is the comparison the
        ingest-equivalence guarantees are stated in.
        """
        if not isinstance(other, Frame):
            return False
        if self.columns != other.columns or self.nrows != other.nrows:
            return False
        for name in self.columns:
            a, b = self._cols[name], other._cols[name]
            if a.dtype != b.dtype:
                return False
            if np.array_equal(a, b):
                continue
            if not equal_nan or a.dtype.kind != "f":
                return False
            if not np.array_equal(a, b, equal_nan=True):
                return False
        return True

    def __repr__(self) -> str:
        return f"Frame({self.nrows} rows x {len(self._cols)} cols: {self.columns})"

    def copy(self) -> "Frame":
        out = Frame()
        out._nrows = self._nrows
        out._cols = {name: col.copy() for name, col in self._cols.items()}
        return out

    # ------------------------------------------------------------- mutation
    def with_column(self, name: str, values: object) -> "Frame":
        """Return a new frame with ``name`` set (added or replaced)."""
        col = _as_column(values, self._nrows)
        if self._cols and len(col) != self._nrows:
            raise ValueError(
                f"column {name!r} has length {len(col)}, expected {self._nrows}"
            )
        out = self.copy()
        if not out._cols:
            out._nrows = len(col)
        out._cols[str(name)] = col
        return out

    def drop(self, *names: str) -> "Frame":
        missing = [n for n in names if n not in self._cols]
        if missing:
            raise KeyError(f"cannot drop missing columns {missing}")
        out = Frame()
        out._nrows = self._nrows
        out._cols = {n: c.copy() for n, c in self._cols.items() if n not in names}
        return out

    def rename(self, mapping: Mapping[str, str]) -> "Frame":
        out = Frame()
        out._nrows = self._nrows
        out._cols = {mapping.get(n, n): c.copy() for n, c in self._cols.items()}
        if len(out._cols) != len(self._cols):
            raise ValueError(f"rename produced duplicate column names: {mapping}")
        return out

    # ------------------------------------------------------------ selection
    def select(self, names: Sequence[str]) -> "Frame":
        return self.lazy().select(names).collect()

    def take(self, indices: object) -> "Frame":
        idx = np.asarray(indices)
        out = Frame()
        out._cols = {n: c[idx] for n, c in self._cols.items()}
        out._nrows = len(idx) if idx.dtype != bool else int(idx.sum())
        if out._cols:
            out._nrows = len(next(iter(out._cols.values())))
        return out

    def filter(self, predicate) -> "Frame":
        """Keep rows where ``predicate`` holds.

        ``predicate`` is a column expression (``col("x") == 1``), a
        boolean mask, or a callable applied to each row mapping (the
        callable form matches Thicket's ``filter_metadata``). Callables
        that turn out to be simple column predicates are vectorized by
        tracing them once against symbolic columns; everything else runs
        row-by-row over a single reusable row view.
        """
        from repro.dataframe.expr import Expr

        if isinstance(predicate, Expr):
            return self.lazy().filter(predicate).collect()
        if callable(predicate):
            expr = _vectorize_predicate(self, predicate)
            if expr is not None:
                return self.lazy().filter(expr).collect()
            view = _RowView(self)
            mask = np.fromiter(
                (bool(predicate(view.at(i))) for i in range(self._nrows)),
                dtype=bool,
                count=self._nrows,
            )
        else:
            mask = np.asarray(predicate, dtype=bool)
            if len(mask) != self._nrows:
                raise ValueError(
                    f"mask length {len(mask)} != row count {self._nrows}"
                )
        return self.take(mask)

    def iter_rows(self) -> Iterator[dict[str, Any]]:
        names = self.columns
        for i in range(self._nrows):
            yield {n: self._cols[n][i] for n in names}

    def row(self, i: int) -> dict[str, Any]:
        if not -self._nrows <= i < self._nrows:
            raise IndexError(f"row {i} out of range for {self._nrows} rows")
        return {n: c[i] for n, c in self._cols.items()}

    def to_records(self) -> list[dict[str, Any]]:
        return list(self.iter_rows())

    # -------------------------------------------------------------- sorting
    def sort_by(self, *names: str, descending: bool = False) -> "Frame":
        """Stable lexicographic sort by the given columns (first is primary)."""
        if not names:
            raise ValueError("sort_by needs at least one column")
        return self.lazy().sort(*names, descending=descending).collect()

    # -------------------------------------------------------------- combine
    def vstack(self, other: "Frame") -> "Frame":
        """Concatenate rows; columns must match exactly (order-insensitive)."""
        if set(self.columns) != set(other.columns):
            raise ValueError(
                f"column mismatch: {self.columns} vs {other.columns}"
            )
        if not self._cols:
            return other.copy()
        out = Frame()
        out._cols = {
            n: np.concatenate([self[n], other[n]]) for n in self.columns
        }
        out._nrows = self._nrows + other._nrows
        return out

    def join(self, other: "Frame", on: str, how: str = "inner", suffix: str = "_r") -> "Frame":
        """Hash join on a single key column (vectorized; see plan module)."""
        from repro.dataframe.plan import vectorized_join

        return vectorized_join(self, other, on, how=how, suffix=suffix)

    # ------------------------------------------------------------- groupby
    def groupby(self, *names: str) -> "GroupBy":
        from repro.dataframe.groupby import GroupBy

        return GroupBy(self, names)

    # ---------------------------------------------------------------- lazy
    def lazy(self) -> "LazyFrame":
        """A deferred-query handle over this frame (see dataframe.lazy)."""
        from repro.dataframe.lazy import LazyFrame

        return LazyFrame.scan(self)

    # ------------------------------------------------------------ numeric
    def numeric_columns(self) -> list[str]:
        return [n for n, c in self._cols.items() if c.dtype.kind in "ifub"]

    def to_matrix(self, names: Sequence[str] | None = None) -> np.ndarray:
        """Stack numeric columns into an (nrows, ncols) float matrix."""
        names = list(names) if names is not None else self.numeric_columns()
        if not names:
            return np.empty((self._nrows, 0))
        return np.column_stack([self[n].astype(float) for n in names])


class _RowView(Mapping):
    """A reusable read-only row mapping over a frame.

    ``Frame.filter``'s row fallback repositions one view per row instead
    of building a dict per row; predicates see the usual Mapping surface
    (``row["col"]``, ``row.get``, iteration over column names).
    """

    __slots__ = ("_cols", "_names", "_i")

    def __init__(self, frame: "Frame") -> None:
        self._cols = frame._cols
        self._names = frame.columns
        self._i = 0

    def at(self, i: int) -> "_RowView":
        self._i = i
        return self

    def __getitem__(self, name: str) -> Any:
        try:
            return self._cols[name][self._i]
        except KeyError:
            raise KeyError(f"no column {name!r}; have {self._names}") from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __len__(self) -> int:
        return len(self._names)


class _TraceRow(Mapping):
    """The symbolic row handed to a candidate filter callable: column
    access returns ``col(name)`` expressions instead of values."""

    __slots__ = ("_names",)

    def __init__(self, names: Sequence[str]) -> None:
        self._names = list(names)

    def __getitem__(self, name: str):
        from repro.dataframe.expr import col

        if name in self._names:
            return col(name)
        raise KeyError(name)

    def get(self, name: str, default: Any = None):
        from repro.dataframe.expr import col, lit

        return col(name) if name in self._names else lit(default)

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __len__(self) -> int:
        return len(self._names)


def _vectorize_predicate(frame: "Frame", predicate: Callable) -> "object | None":
    """Trace ``predicate`` once against symbolic columns.

    Simple column predicates (``lambda r: r["variant"] == "x"``) come
    back as an expression tree we can evaluate vectorized. Anything the
    trace cannot prove equivalent — ``and``/``or`` chains (truth-testing
    an Expr raises), ``in`` on a column value, identity checks, plain
    bool results — returns None and the caller keeps the row loop.
    """
    from repro.dataframe.expr import Expr

    try:
        result = predicate(_TraceRow(frame.columns))
    except Exception:
        return None
    return result if isinstance(result, Expr) else None
