"""Thicket: EDA for multi-run performance experiments (pandas-free port).

The real Thicket (LLNL) composes many Caliper profiles into a single
queryable object; the paper reads RAJAPerf's ``.cali`` files into Thicket,
groups by variant/tuning in the metadata, and runs the Section IV/V
analyses on the composed metrics. This package reproduces that surface on
the local column store.
"""

from repro.thicket.thicket import ProfileLoadWarning, Thicket

__all__ = ["Thicket", "ProfileLoadWarning"]
