"""Content-addressed cache of composed Thicket tables.

A repeated ``analyze`` over an unchanged campaign should not re-parse a
single payload. Every profile already has a content address — archive
entries carry their CRC32 in the ``.calipack`` index, loose sealed
files declare theirs in the seal footer — so the *source set* has one
too: the SHA-256 over the ordered ``(name, crc32)`` pairs. The cache
stores the fully composed dataframe + metadata tables under that key;
any change to any cell (``run --resume`` re-executing it, ``fsck``
quarantining it, a repack) changes a CRC, changes the key, and the
stale entry simply never matches again. No explicit invalidation
protocol, no mtime heuristics.

Entries are single files in a ``.ingest_cache/`` directory::

    #thicket-ingest-cache v1 header=<len> blob=<len> crc32=<8 hex>
    <header JSON>
    <blob bytes>

The header describes both tables column by column; the blob carries the
column data. Numeric columns are raw array buffers (``ndarray.tobytes``
/ ``np.frombuffer`` by exact dtype string, so a cache load reproduces
dtypes bit-for-bit); string/object columns are dictionary-encoded
(unique values + a ``u4`` code array — profile ids, region names, and
paths are massively repetitive); anything else falls back to JSON.
Loading is a handful of buffer views — no JSON parse of profile
payloads, no row iteration. The whole file is CRC-guarded and written
via the durable tmp+replace protocol; a damaged or mismatched cache
entry is treated as a miss, never an error.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from pathlib import Path
from typing import Any

import numpy as np

from repro.chaos.points import crash_point
from repro.dataframe import Frame
from repro.util.fsio import write_durable_bytes

CACHE_DIR_NAME = ".ingest_cache"
CACHE_SUFFIX = ".tic"
_MAGIC = "#thicket-ingest-cache v1"
#: cache entries kept per directory (oldest evicted after a store)
KEEP_ENTRIES = 8


def cache_key(sources: list[tuple[str, str]]) -> str:
    """The source set's content address: ordered (name, crc32hex) pairs."""
    digest = hashlib.sha256()
    for name, crc in sources:
        digest.update(f"{name}:{crc}\n".encode("utf-8"))
    return digest.hexdigest()[:24]


def cache_path(cache_dir: str | Path, key: str) -> Path:
    return Path(cache_dir) / f"thicket-{key}{CACHE_SUFFIX}"


def default_cache_dir(source: str | Path) -> Path:
    """Where a campaign's cache lives: beside its first source."""
    p = Path(str(source).split("::", 1)[0])
    base = p.parent if p.suffix else p
    return base / CACHE_DIR_NAME


# ------------------------------------------------------------------ encode
def _encode_frame(frame: Frame, blob: bytearray) -> dict[str, Any]:
    columns = []
    for name in frame.columns:
        arr = frame[name]
        spec: dict[str, Any] = {"name": name}
        if arr.dtype != object:
            raw = np.ascontiguousarray(arr).tobytes()
            spec.update(
                kind="raw", dtype=arr.dtype.str,
                offset=len(blob), nbytes=len(raw),
            )
            blob.extend(raw)
        else:
            values = arr.tolist()
            if all(v is None or isinstance(v, str) for v in values):
                uniq: dict[Any, int] = {}
                codes = [uniq.setdefault(v, len(uniq)) for v in values]
                raw = np.asarray(codes, dtype="<u4").tobytes()
                spec.update(
                    kind="dict", values=list(uniq),
                    offset=len(blob), nbytes=len(raw),
                )
                blob.extend(raw)
            else:
                spec.update(kind="json", values=[_jsonable(v) for v in values])
        columns.append(spec)
    return {"nrows": frame.nrows, "columns": columns}


def _jsonable(value: Any) -> Any:
    if isinstance(value, np.generic):
        return value.item()
    return value


def _decode_frame(spec: dict[str, Any], blob: bytes) -> Frame:
    nrows = int(spec["nrows"])
    cols: dict[str, np.ndarray] = {}
    for col in spec["columns"]:
        kind = col["kind"]
        if kind == "raw":
            raw = blob[col["offset"] : col["offset"] + col["nbytes"]]
            arr = np.frombuffer(raw, dtype=np.dtype(col["dtype"])).copy()
        elif kind == "dict":
            raw = blob[col["offset"] : col["offset"] + col["nbytes"]]
            codes = np.frombuffer(raw, dtype="<u4")
            values = np.empty(len(col["values"]), dtype=object)
            values[:] = col["values"]
            arr = values[codes] if len(values) else np.empty(0, dtype=object)
        elif kind == "json":
            arr = np.empty(len(col["values"]), dtype=object)
            arr[:] = col["values"]
        else:
            raise ValueError(f"unknown cache column kind {kind!r}")
        if len(arr) != nrows:
            raise ValueError(
                f"cache column {col['name']!r} has {len(arr)} rows, "
                f"expected {nrows}"
            )
        cols[col["name"]] = arr
    frame = Frame()
    frame._cols = cols
    frame._nrows = nrows
    return frame


# ------------------------------------------------------------- store / load
def store(
    cache_dir: str | Path,
    sources: list[tuple[str, str]],
    dataframe: Frame,
    metadata: Frame,
) -> Path:
    """Persist composed tables for this exact source set; prune old entries."""
    blob = bytearray()
    header = {
        "sources": sources,
        "dataframe": _encode_frame(dataframe, blob),
        "metadata": _encode_frame(metadata, blob),
    }
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    body = header_bytes + bytes(blob)
    crc = zlib.crc32(body) & 0xFFFFFFFF
    head = (
        f"{_MAGIC} header={len(header_bytes)} blob={len(blob)} "
        f"crc32={crc:08x}\n"
    ).encode("ascii")
    target = cache_path(cache_dir, cache_key(sources))
    crash_point("ingest-cache.pre-store", path=target)
    out = write_durable_bytes(target, head + body)
    _prune(Path(cache_dir), keep=KEEP_ENTRIES)
    return out


def load(
    cache_dir: str | Path, sources: list[tuple[str, str]]
) -> tuple[Frame, Frame] | None:
    """(dataframe, metadata) on a verified hit; None on any miss/damage."""
    path = cache_path(cache_dir, cache_key(sources))
    try:
        raw = path.read_bytes()
    except OSError:
        return None
    try:
        nl = raw.index(b"\n")
        head = raw[:nl].decode("ascii")
        if not head.startswith(_MAGIC):
            return None
        fields = dict(
            part.split("=", 1) for part in head[len(_MAGIC):].split()
        )
        header_len = int(fields["header"])
        blob_len = int(fields["blob"])
        declared_crc = int(fields["crc32"], 16)
        body = raw[nl + 1 :]
        if len(body) != header_len + blob_len:
            return None
        if zlib.crc32(body) & 0xFFFFFFFF != declared_crc:
            return None
        header = json.loads(body[:header_len].decode("utf-8"))
        if [list(s) for s in header.get("sources", [])] != [
            list(s) for s in sources
        ]:
            return None  # hash collision or hand-renamed file
        blob = body[header_len:]
        dataframe = _decode_frame(header["dataframe"], blob)
        metadata = _decode_frame(header["metadata"], blob)
    except (ValueError, KeyError, IndexError, UnicodeDecodeError):
        return None
    return dataframe, metadata


def _prune(cache_dir: Path, keep: int) -> None:
    try:
        entries = sorted(
            cache_dir.glob("thicket-*" + CACHE_SUFFIX),
            key=lambda p: p.stat().st_mtime,
        )
    except OSError:  # pragma: no cover - racing cleanup
        return
    for stale in entries[:-keep] if keep else entries:
        try:
            stale.unlink()
        except OSError:  # pragma: no cover - racing cleanup
            pass
