"""Content-addressed cache of composed Thicket tables.

A repeated ``analyze`` over an unchanged campaign should not re-parse a
single payload. Every profile already has a content address — archive
entries carry their CRC32 in the ``.calipack`` index, loose sealed
files declare theirs in the seal footer — so the *source set* has one
too: the SHA-256 over the ordered ``(name, crc32)`` pairs. The cache
stores the fully composed dataframe + metadata tables under that key;
any change to any cell (``run --resume`` re-executing it, ``fsck``
quarantining it, a repack) changes a CRC, changes the key, and the
stale entry simply never matches again. No explicit invalidation
protocol, no mtime heuristics.

Entries are single files in a ``.ingest_cache/`` directory::

    #thicket-ingest-cache v1 header=<len> blob=<len> crc32=<8 hex>
    <header JSON>
    <blob bytes>

The header describes both tables column by column; the blob carries the
column data plus the JSON-encoded source list (``sources_ref``), kept
out of the header so its size never taxes a column-selective scan. Numeric columns are raw array buffers (``ndarray.tobytes``
/ ``np.frombuffer`` by exact dtype string, so a cache load reproduces
dtypes bit-for-bit); string/object columns are dictionary-encoded
(unique values + a ``u4`` code array — profile ids, region names, and
paths are massively repetitive); anything else falls back to JSON.
Loading is a handful of buffer views — no JSON parse of profile
payloads, no row iteration. The whole file is CRC-guarded and written
via the durable tmp+replace protocol; a damaged or mismatched cache
entry is treated as a miss, never an error.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from pathlib import Path
from typing import Any

import numpy as np

from repro.chaos.points import crash_point
from repro.dataframe import Frame
from repro.util.fsio import write_durable_bytes

CACHE_DIR_NAME = ".ingest_cache"
CACHE_SUFFIX = ".tic"
_MAGIC = "#thicket-ingest-cache v1"
#: byte budget for a directory's cache entries (LRU eviction after a
#: store); overridable via $REPRO_INGEST_CACHE_BYTES
CACHE_BYTES_ENV = "REPRO_INGEST_CACHE_BYTES"
DEFAULT_CACHE_BYTES = 256 * 1024 * 1024


def cache_key(sources: list[tuple[str, str]]) -> str:
    """The source set's content address: ordered (name, crc32hex) pairs."""
    digest = hashlib.sha256()
    for name, crc in sources:
        digest.update(f"{name}:{crc}\n".encode("utf-8"))
    return digest.hexdigest()[:24]


def cache_path(cache_dir: str | Path, key: str) -> Path:
    return Path(cache_dir) / f"thicket-{key}{CACHE_SUFFIX}"


def default_cache_dir(source: str | Path) -> Path:
    """Where a campaign's cache lives: beside its first source."""
    p = Path(str(source).split("::", 1)[0])
    base = p.parent if p.suffix else p
    return base / CACHE_DIR_NAME


# ------------------------------------------------------------------ encode
def _encode_frame(frame: Frame, blob: bytearray) -> dict[str, Any]:
    columns = []
    for name in frame.columns:
        arr = frame[name]
        spec: dict[str, Any] = {"name": name}
        if arr.dtype != object:
            raw = np.ascontiguousarray(arr).tobytes()
            spec.update(
                kind="raw", dtype=arr.dtype.str,
                offset=len(blob), nbytes=len(raw),
                crc32=f"{zlib.crc32(raw) & 0xFFFFFFFF:08x}",
            )
            blob.extend(raw)
        else:
            values = arr.tolist()
            if all(v is None or isinstance(v, str) for v in values):
                uniq: dict[Any, int] = {}
                codes = [uniq.setdefault(v, len(uniq)) for v in values]
                raw = np.asarray(codes, dtype="<u4").tobytes()
                spec.update(
                    kind="dict", values=list(uniq),
                    offset=len(blob), nbytes=len(raw),
                    crc32=f"{zlib.crc32(raw) & 0xFFFFFFFF:08x}",
                )
                blob.extend(raw)
            else:
                spec.update(kind="json", values=[_jsonable(v) for v in values])
        columns.append(spec)
    return {"nrows": frame.nrows, "columns": columns}


def _jsonable(value: Any) -> Any:
    if isinstance(value, np.generic):
        return value.item()
    return value


def _decode_frame(spec: dict[str, Any], blob: bytes) -> Frame:
    nrows = int(spec["nrows"])
    cols: dict[str, np.ndarray] = {}
    for col in spec["columns"]:
        kind = col["kind"]
        if kind == "raw":
            raw = blob[col["offset"] : col["offset"] + col["nbytes"]]
            arr = np.frombuffer(raw, dtype=np.dtype(col["dtype"])).copy()
        elif kind == "dict":
            raw = blob[col["offset"] : col["offset"] + col["nbytes"]]
            codes = np.frombuffer(raw, dtype="<u4")
            values = np.empty(len(col["values"]), dtype=object)
            values[:] = col["values"]
            arr = values[codes] if len(values) else np.empty(0, dtype=object)
        elif kind == "json":
            arr = np.empty(len(col["values"]), dtype=object)
            arr[:] = col["values"]
        else:
            raise ValueError(f"unknown cache column kind {kind!r}")
        if len(arr) != nrows:
            raise ValueError(
                f"cache column {col['name']!r} has {len(arr)} rows, "
                f"expected {nrows}"
            )
        cols[col["name"]] = arr
    frame = Frame()
    frame._cols = cols
    frame._nrows = nrows
    return frame


# ------------------------------------------------------------- store / load
def store(
    cache_dir: str | Path,
    sources: list[tuple[str, str]],
    dataframe: Frame,
    metadata: Frame,
) -> Path:
    """Persist composed tables for this exact source set; prune old entries."""
    blob = bytearray()
    header = {
        "dataframe": _encode_frame(dataframe, blob),
        "metadata": _encode_frame(metadata, blob),
    }
    # The source list scales with the campaign (100k profiles -> megabytes
    # of JSON) while the column specs stay tiny; storing it as its own
    # blob buffer keeps the header cheap to parse, so a column-selective
    # scan never pays for the source inventory it doesn't need.
    src_raw = json.dumps(sources, separators=(",", ":")).encode("utf-8")
    header["sources_ref"] = {
        "offset": len(blob),
        "nbytes": len(src_raw),
        "crc32": f"{zlib.crc32(src_raw) & 0xFFFFFFFF:08x}",
    }
    blob.extend(src_raw)
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    body = header_bytes + bytes(blob)
    crc = zlib.crc32(body) & 0xFFFFFFFF
    # hcrc seals the header JSON alone so a partial (column-selective)
    # reader can verify the header without touching the blob; per-column
    # crc32 fields in the specs cover each buffer slice the same way.
    hcrc = zlib.crc32(header_bytes) & 0xFFFFFFFF
    head = (
        f"{_MAGIC} header={len(header_bytes)} blob={len(blob)} "
        f"crc32={crc:08x} hcrc={hcrc:08x}\n"
    ).encode("ascii")
    target = cache_path(cache_dir, cache_key(sources))
    crash_point("ingest-cache.pre-store", path=target)
    out = write_durable_bytes(target, head + body)
    _prune(Path(cache_dir), budget=cache_budget_bytes())
    return out


def _load_verified(path: Path) -> tuple[dict, bytes] | None:
    """Whole-file read + CRC verify: ``(header, blob)``, or None on damage."""
    try:
        raw = path.read_bytes()
    except OSError:
        return None
    try:
        nl = raw.index(b"\n")
        head = raw[:nl].decode("ascii")
        if not head.startswith(_MAGIC):
            return None
        fields = dict(
            part.split("=", 1) for part in head[len(_MAGIC):].split()
        )
        header_len = int(fields["header"])
        blob_len = int(fields["blob"])
        declared_crc = int(fields["crc32"], 16)
        body = raw[nl + 1 :]
        if len(body) != header_len + blob_len:
            return None
        if zlib.crc32(body) & 0xFFFFFFFF != declared_crc:
            return None
        header = json.loads(body[:header_len].decode("utf-8"))
        return header, body[header_len:]
    except (ValueError, KeyError, IndexError, UnicodeDecodeError):
        return None


def _sources_from_blob(header: dict, blob: bytes) -> list[list[str]] | None:
    """The stored source list, wherever this file's layout put it.

    Newer files carry a ``sources_ref`` buffer in the blob (CRC-guarded
    like any column); older ones inlined ``sources`` in the header JSON.
    """
    if "sources" in header:
        return [list(s) for s in header["sources"]]
    ref = header.get("sources_ref")
    if not isinstance(ref, dict):
        return None
    try:
        raw = blob[int(ref["offset"]) : int(ref["offset"]) + int(ref["nbytes"])]
    except (ValueError, KeyError, TypeError):
        return None
    return _decode_sources(raw, ref)


def load(
    cache_dir: str | Path, sources: list[tuple[str, str]]
) -> tuple[Frame, Frame] | None:
    """(dataframe, metadata) on a verified hit; None on any miss/damage."""
    loaded = _load_verified(cache_path(cache_dir, cache_key(sources)))
    if loaded is None:
        return None
    header, blob = loaded
    if _sources_from_blob(header, blob) != [list(s) for s in sources]:
        return None  # hash collision or hand-renamed file
    try:
        dataframe = _decode_frame(header["dataframe"], blob)
        metadata = _decode_frame(header["metadata"], blob)
    except (ValueError, KeyError, IndexError):
        return None
    return dataframe, metadata


def find_prefix(
    cache_dir: str | Path, sources: list[tuple[str, str]]
) -> tuple[int, Frame, Frame] | None:
    """The longest cached *prefix* of ``sources``: ``(count, df, md)``.

    Incremental analyze calls this on an exact-key miss after a campaign
    grew: a cache entry stored for the first N sources (N < len) means
    only sources[N:] need composing, and the suffix tables splice onto
    the cached ones. Candidate headers are read cheaply (head line +
    header JSON, ``hcrc``-verified); the winning file is then re-read
    fully CRC-verified. Anything damaged is just not a candidate.
    """
    want = [list(s) for s in sources]
    best: tuple[int, Path] | None = None
    try:
        entries = list(Path(cache_dir).glob("thicket-*" + CACHE_SUFFIX))
    except OSError:
        return None
    for path in entries:
        got = _read_header_at(path)
        if got is None:
            continue
        header, blob_base = got
        stored = _peek_sources(path, header, blob_base)
        if stored is None:
            continue
        n = len(stored)
        if not 0 < n < len(want) or stored != want[:n]:
            continue
        if best is None or n > best[0]:
            best = (n, path)
    if best is None:
        return None
    loaded = _load_verified(best[1])
    if loaded is None:
        return None
    header, blob = loaded
    try:
        dataframe = _decode_frame(header["dataframe"], blob)
        metadata = _decode_frame(header["metadata"], blob)
    except (ValueError, KeyError, IndexError):
        return None
    return best[0], dataframe, metadata


def _parse_head(head: str) -> dict[str, int] | None:
    """The head line's fields; None unless it parses (hcrc optional)."""
    if not head.startswith(_MAGIC):
        return None
    try:
        fields = dict(part.split("=", 1) for part in head[len(_MAGIC):].split())
        out = {
            "header": int(fields["header"]),
            "blob": int(fields["blob"]),
            "crc32": int(fields["crc32"], 16),
        }
        if "hcrc" in fields:
            out["hcrc"] = int(fields["hcrc"], 16)
        return out
    except (ValueError, KeyError):
        return None


def _read_header_at(path: Path) -> tuple[dict, int] | None:
    """``(header, blob_base)`` — no blob read, ``hcrc``-verified.

    Files without an ``hcrc`` field (older writers) are skipped: without
    it the header cannot be verified short of reading the whole file,
    and partial readers must never trust unverified bytes. ``blob_base``
    is the file offset where the blob starts, for targeted buffer reads.
    """
    try:
        with open(path, "rb") as handle:
            head = handle.readline(4096)
            try:
                fields = _parse_head(head.decode("ascii").rstrip("\n"))
            except UnicodeDecodeError:
                return None
            if fields is None or "hcrc" not in fields:
                return None
            header_bytes = handle.read(fields["header"])
    except OSError:
        return None
    if len(header_bytes) != fields["header"]:
        return None
    if zlib.crc32(header_bytes) & 0xFFFFFFFF != fields["hcrc"]:
        return None
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return None
    return header, len(head) + fields["header"]


def _read_header(path: Path) -> dict | None:
    """Head line + header JSON only — no blob read, ``hcrc``-verified."""
    got = _read_header_at(path)
    return None if got is None else got[0]


def _peek_sources(
    path: Path, header: dict, blob_base: int
) -> list[list[str]] | None:
    """The stored source list via a targeted read — no full-file load."""
    if "sources" in header:
        return [list(s) for s in header["sources"]]
    ref = header.get("sources_ref")
    if not isinstance(ref, dict):
        return None
    try:
        with open(path, "rb") as handle:
            handle.seek(blob_base + int(ref["offset"]))
            raw = handle.read(int(ref["nbytes"]))
    except (OSError, ValueError, KeyError, TypeError):
        return None
    return _decode_sources(raw, ref)


def _decode_sources(raw: bytes, ref: dict) -> list[list[str]] | None:
    """CRC-verify and parse one ``sources_ref`` buffer; None on damage."""
    try:
        if len(raw) != int(ref["nbytes"]):
            return None
        if zlib.crc32(raw) & 0xFFFFFFFF != int(ref["crc32"], 16):
            return None
        return [list(s) for s in json.loads(raw.decode("utf-8"))]
    except (ValueError, KeyError, TypeError, UnicodeDecodeError):
        return None


class ColumnStore:
    """Column-selective reader over one table of a ``.tic`` cache file.

    The lazy query engine's scan source: ``load_columns`` reads only the
    requested columns' byte ranges from the blob (per-column CRC
    verified) and hands dictionary-encoded string columns back as
    :class:`repro.dataframe.DictColumn` — codes, not objects — so
    pushed-down equality predicates never decode what they reject.
    Damage raises :class:`ValueError` (a scan is an explicit read, not a
    cache probe; silently returning nothing would be a wrong answer).
    """

    def __init__(self, path: str | Path, table: str = "metadata") -> None:
        if table not in ("dataframe", "metadata"):
            raise ValueError(
                f"table must be 'dataframe' or 'metadata', got {table!r}"
            )
        self.path = Path(path)
        self.table = table
        got = _read_header_at(self.path)
        if got is None:
            raise ValueError(
                f"{self.path}: not a verifiable ingest-cache file "
                f"(missing, damaged, or pre-hcrc format)"
            )
        header, self._blob_base = got
        spec = header.get(table)
        if not isinstance(spec, dict):
            raise ValueError(f"{self.path}: cache file has no {table!r} table")
        self._spec = spec
        self.nrows = int(spec["nrows"])
        self._columns: dict[str, dict] = {
            c["name"]: c for c in spec["columns"]
        }

    def column_names(self) -> list[str]:
        return list(self._columns)

    def load_columns(
        self, names: "frozenset[str] | set[str] | None" = None
    ) -> tuple[dict[str, Any], int]:
        """``(columns, nrows)`` for ``names`` (None = all), header order.

        Raw numeric columns come back as owned ndarrays, dict-encoded
        string columns as :class:`DictColumn`, JSON-fallback columns as
        object arrays. Unknown names raise KeyError like a Frame lookup.
        """
        from repro.dataframe.expr import DictColumn

        if names is not None:
            for name in names:
                if name not in self._columns:
                    raise KeyError(
                        f"no column {name!r}; have {list(self._columns)}"
                    )
        out: dict[str, Any] = {}
        with open(self.path, "rb") as handle:
            for name, col in self._columns.items():
                if names is not None and name not in names:
                    continue
                kind = col["kind"]
                if kind == "json":
                    arr = np.empty(len(col["values"]), dtype=object)
                    arr[:] = col["values"]
                    if len(arr) != self.nrows:
                        raise ValueError(
                            f"{self.path}: column {name!r} has {len(arr)} "
                            f"rows, expected {self.nrows}"
                        )
                    out[name] = arr
                    continue
                raw = self._read_buffer(handle, col)
                if kind == "raw":
                    arr = np.frombuffer(raw, dtype=np.dtype(col["dtype"])).copy()
                    if len(arr) != self.nrows:
                        raise ValueError(
                            f"{self.path}: column {name!r} has {len(arr)} "
                            f"rows, expected {self.nrows}"
                        )
                    out[name] = arr
                elif kind == "dict":
                    codes = np.frombuffer(raw, dtype="<u4")
                    if len(codes) != self.nrows:
                        raise ValueError(
                            f"{self.path}: column {name!r} has {len(codes)} "
                            f"rows, expected {self.nrows}"
                        )
                    values = np.empty(len(col["values"]), dtype=object)
                    values[:] = col["values"]
                    out[name] = DictColumn(codes, values)
                else:
                    raise ValueError(
                        f"{self.path}: unknown cache column kind {kind!r}"
                    )
        return out, self.nrows

    def _read_buffer(self, handle, col: dict) -> bytes:
        handle.seek(self._blob_base + int(col["offset"]))
        raw = handle.read(int(col["nbytes"]))
        if len(raw) != int(col["nbytes"]):
            raise ValueError(
                f"{self.path}: column {col['name']!r} buffer truncated"
            )
        declared = col.get("crc32")
        if declared is None:
            raise ValueError(
                f"{self.path}: column {col['name']!r} has no buffer CRC "
                f"(pre-partial-read cache format)"
            )
        if zlib.crc32(raw) & 0xFFFFFFFF != int(declared, 16):
            raise ValueError(
                f"{self.path}: column {col['name']!r} buffer CRC mismatch"
            )
        return raw


def cache_budget_bytes() -> int:
    """The directory byte budget ($REPRO_INGEST_CACHE_BYTES or default)."""
    import os

    raw = os.environ.get(CACHE_BYTES_ENV)
    if raw is not None:
        try:
            return max(0, int(raw))
        except ValueError:
            pass
    return DEFAULT_CACHE_BYTES


def verify_cache_file(path: str | Path) -> bool:
    """Does this ``.tic`` file verify against its whole-body seal?

    The scrubber's probe: a damaged entry is already a silent miss to
    readers; verifying it out-of-band lets the scrubber reclaim the
    bytes instead of paying for the miss forever.
    """
    return _load_verified(Path(path)) is not None


def _prune(cache_dir: Path, budget: int) -> None:
    """Byte-budget LRU eviction: drop oldest entries until under budget.

    Every filesystem call tolerates a concurrent delete (two analyze
    processes can prune the same directory): an entry that vanishes
    between the listing and its stat/unlink simply stops counting.
    """
    entries: list[tuple[float, int, Path]] = []
    try:
        listing = list(cache_dir.glob("thicket-*" + CACHE_SUFFIX))
    except OSError:  # pragma: no cover - racing cleanup of the dir itself
        return
    for path in listing:
        try:
            stat = path.stat()
        except OSError:
            continue  # deleted under us: no longer occupies budget
        entries.append((stat.st_mtime, stat.st_size, path))
    entries.sort()
    total = sum(size for _, size, _ in entries)
    for _, size, stale in entries:
        if total <= budget:
            break
        try:
            stale.unlink()
        except OSError:
            pass  # already gone: the race did our work
        total -= size
