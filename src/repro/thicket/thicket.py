"""The Thicket class: exploratory data analysis over many profiles.

Mirrors LLNL Thicket's composition model (Brink et al., HPDC'23):

* a **performance dataframe** with one row per (profile, region) carrying
  every collected metric;
* a **metadata table** with one row per profile (the Adiak globals:
  variant, tuning, machine, problem size);
* an **aggregated statsframe** summarizing metrics across profiles.

Implemented on :class:`repro.dataframe.Frame` (no pandas in this
environment).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping, Sequence
from pathlib import Path
from typing import Any

import numpy as np

from repro.caliper.records import CaliProfile
from repro.dataframe import Expr, Frame, col, parse_expr
from repro.thicket import ingest, ingest_cache

PATH_SEP = "/"


class ProfileLoadWarning(UserWarning):
    """A ``.cali`` source was unreadable and skipped (degraded mode)."""


class Thicket:
    """An ensemble of Caliper profiles with composition and EDA methods."""

    def __init__(self, dataframe: Frame, metadata: Frame) -> None:
        for col in ("profile", "name", "path", "depth"):
            if col not in dataframe:
                raise ValueError(f"dataframe lacks required column {col!r}")
        if "profile" not in metadata:
            raise ValueError("metadata lacks required column 'profile'")
        self.dataframe = dataframe
        self.metadata = metadata
        self.statsframe: Frame | None = None
        #: (source, reason) pairs skipped during a tolerant load.
        self.load_errors: list[tuple[str, str]] = []

    # -------------------------------------------------------- construction
    @classmethod
    def from_caliperreader(
        cls,
        sources: Iterable[CaliProfile | str | Path] | CaliProfile | str | Path,
        on_error: str = "raise",
        workers: int = 1,
        cache: str | Path | None = None,
        where: "Expr | str | None" = None,
        incremental: bool = False,
    ) -> "Thicket":
        """Build a Thicket from profiles, ``.cali`` files, or archives.

        Sources may be in-memory :class:`CaliProfile` objects, loose
        ``.cali`` paths, ``.calipack`` archive paths (every entry), or
        ``<archive>::<name>`` member refs, freely mixed.

        ``on_error`` controls degraded-mode composition: ``"raise"``
        (default) propagates the first unreadable source; ``"warn"``
        emits a :class:`ProfileLoadWarning` per corrupt/missing file and
        analyzes the surviving profiles, recording the casualties in
        ``thicket.load_errors``. A campaign with a few dead cells still
        yields its figures.

        ``workers`` > 1 fans composition out over a multiprocessing
        pool (sources split into index ranges, chunks merged in source
        order — the result is identical to a serial load). ``cache``
        names a directory holding content-addressed composed tables: a
        repeated load of an unchanged source set returns without
        parsing any payload, and any change to any profile changes its
        CRC and misses the cache naturally.

        ``where`` restricts the ensemble to profiles whose metadata
        satisfies a column expression (``col("variant") == "RAJA_CUDA"``
        or the equivalent ``--where`` string). When every source is a
        sealed archive entry the predicate is pushed into the calipack
        index: entries it provably rejects are never read or parsed,
        and the exact filter still runs over the survivors, so the
        result always equals composing everything and filtering after.

        ``incremental`` reuses the longest cached *prefix* of the source
        set when the exact identity misses: appending segments to a
        campaign recomposes only the new entries, splices them onto the
        cached tables (bit-identical to a full recompose), and stores
        the updated composition under the full identity.
        """
        if on_error not in ("raise", "warn"):
            raise ValueError(f"on_error must be 'raise' or 'warn', got {on_error!r}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        where_expr = _resolve_where(where)
        units, expand_errors = ingest.expand_sources(sources)
        if expand_errors and on_error == "raise":
            src, reason = expand_errors[0]
            raise ValueError(f"{src}: {reason}")
        if not units and not expand_errors:
            raise ValueError("no profiles given")

        identity = ingest.source_identity(units) if cache is not None else None
        if identity is not None and not expand_errors:
            hit = ingest_cache.load(cache, identity)
            if hit is not None:
                return _apply_where(cls(*hit), where_expr)

        if incremental and identity is not None and not expand_errors:
            prefix = ingest_cache.find_prefix(cache, identity)
            if prefix is not None:
                thicket = cls._compose_suffix(
                    units, prefix, workers, on_error, expand_errors,
                    cache, identity,
                )
                return _apply_where(thicket, where_expr)

        compose, indices, pad = units, None, None
        if where_expr is not None:
            plan = ingest.index_pushdown(units, where_expr)
            if plan is not None and len(plan[0]) < len(units):
                compose, indices, meta_cols, metric_cols = plan
                pad = (meta_cols, metric_cols)

        builder, loaded, load_errors = ingest.compose_units(
            compose, workers, on_error, indices=indices
        )
        load_errors = expand_errors + load_errors
        ingest.warn_load_errors(load_errors, ProfileLoadWarning)
        if not loaded:
            raise ValueError(
                "no profiles given"
                if not load_errors
                else f"no readable profiles (skipped {len(load_errors)})"
            )
        frame, metadata = ingest.build_frames(builder)
        if pad is not None:
            frame, metadata = _pad_schema(frame, metadata, *pad)
        thicket = cls(frame, metadata)
        thicket.load_errors = load_errors
        # Only a complete composition is cacheable; a pushdown-reduced
        # one covers a predicate-specific subset of the ensemble.
        if identity is not None and not load_errors and pad is None:
            try:
                ingest_cache.store(cache, identity, frame, metadata)
            except OSError:  # pragma: no cover - read-only cache dir
                pass
        return _apply_where(thicket, where_expr)

    @classmethod
    def _compose_suffix(
        cls, units, prefix, workers, on_error, expand_errors, cache, identity
    ) -> "Thicket":
        """Incremental path: cached prefix tables + a composed suffix.

        The suffix composes with its units' original source indices and
        splices onto the prefix through the composition-semantics
        concat, so the merged tables are bit-identical to recomposing
        every source from scratch.
        """
        n, pre_df, pre_md = prefix
        builder, _, load_errors = ingest.compose_units(
            units[n:], workers, on_error, indices=range(n, len(units))
        )
        load_errors = expand_errors + load_errors
        ingest.warn_load_errors(load_errors, ProfileLoadWarning)
        suf_df, suf_md = ingest.build_frames(builder)
        frame = ingest.coerce_metrics(ingest.concat_composed(pre_df, suf_df))
        metadata = ingest.concat_composed(pre_md, suf_md)
        thicket = cls(frame, metadata)
        thicket.load_errors = load_errors
        if not load_errors:
            try:
                ingest_cache.store(cache, identity, frame, metadata)
            except OSError:  # pragma: no cover - read-only cache dir
                pass
        return thicket

    @classmethod
    def concat_thickets(cls, thickets: Sequence["Thicket"]) -> "Thicket":
        """Compose several thickets into one ensemble (Thicket.concat)."""
        if not thickets:
            raise ValueError("nothing to concatenate")
        df = thickets[0].dataframe
        md = thickets[0].metadata
        for other in thickets[1:]:
            df = _outer_vstack(df, other.dataframe)
            md = _outer_vstack(md, other.metadata)
        return cls(df, md)

    # ------------------------------------------------------------ queries
    @property
    def profiles(self) -> list[Any]:
        return list(dict.fromkeys(self.metadata["profile"].tolist()))

    def metric_columns(self) -> list[str]:
        skip = {"profile", "name", "path", "depth"}
        return [c for c in self.dataframe.columns if c not in skip]

    def filter_metadata(
        self,
        predicate: "Expr | Callable[[Mapping[str, Any]], bool]",
    ) -> "Thicket":
        """Keep profiles whose metadata row satisfies ``predicate``.

        ``predicate`` is a column expression (``col("variant") == "x"``)
        evaluated vectorized, or a row callable (vectorized by tracing
        when it proves to be a simple column predicate). The dataframe
        is cut to the surviving profiles with one ``np.isin`` pass.
        """
        keep_md = self.metadata.filter(predicate)
        keep_df = self.dataframe.filter(
            _membership_mask(self.dataframe["profile"], keep_md["profile"])
        )
        return Thicket(keep_df, keep_md)

    def filter_regions(self, predicate: Callable[[str], bool]) -> "Thicket":
        """Keep dataframe rows whose region name satisfies ``predicate``."""
        mask = np.fromiter(
            (bool(predicate(str(n))) for n in self.dataframe["name"]),
            dtype=bool,
            count=self.dataframe.nrows,
        )
        return Thicket(self.dataframe.take(mask), self.metadata)

    def query(self, pattern: str) -> "Thicket":
        """Keep dataframe rows whose region *path* matches a glob pattern.

        Thicket's query language addresses call-tree paths; here a path is
        the ``/``-joined region names, matched with ``fnmatch`` semantics:
        ``thicket.query("RAJAPerf/*/Stream_*")`` selects the Stream kernels
        regardless of group nesting.
        """
        import fnmatch

        mask = np.fromiter(
            (fnmatch.fnmatch(str(p), pattern) for p in self.dataframe["path"]),
            dtype=bool,
            count=self.dataframe.nrows,
        )
        return Thicket(self.dataframe.take(mask), self.metadata)

    def metadata_query(self, **equals: Any) -> "Thicket":
        """Keep profiles whose metadata matches all given key=value pairs."""
        unknown = [k for k in equals if k not in self.metadata]
        if unknown:
            raise KeyError(f"no metadata columns {unknown}; have {self.metadata.columns}")
        if equals and all(
            v is None or isinstance(v, (str, int, float, bool))
            for v in equals.values()
        ):
            expr: Expr | None = None
            for k, v in equals.items():
                term = col(k) == v
                expr = term if expr is None else (expr & term)
            return self.filter_metadata(expr)
        # Non-scalar values keep dict-equality semantics via the row path.
        return self.filter_metadata(
            lambda md: all(md.get(k) == v for k, v in equals.items())
        )

    def groupby(self, key: str) -> dict[Any, "Thicket"]:
        """Split the ensemble by a metadata column (Thicket.groupby)."""
        if key not in self.metadata:
            raise KeyError(f"no metadata column {key!r}")
        out: dict[Any, Thicket] = {}
        for value, sub_md in self.metadata.groupby(key):
            sub_df = self.dataframe.filter(
                _membership_mask(self.dataframe["profile"], sub_md["profile"])
            )
            out[value[0]] = Thicket(sub_df, sub_md)
        return out

    def lazy(self, table: str = "metadata"):
        """A deferred-query handle over one of the thicket's tables.

        ``thicket.lazy().filter(col("variant") == "x").select([...])``
        builds a plan and runs it vectorized on ``collect()`` — the
        same expression API ``where=`` pushes into the archive index.
        """
        if table not in ("metadata", "dataframe"):
            raise ValueError(
                f"table must be 'metadata' or 'dataframe', got {table!r}"
            )
        frame = self.metadata if table == "metadata" else self.dataframe
        return frame.lazy()

    def metric_for_profile(self, profile: Any, metric: str) -> dict[str, float]:
        """region name -> metric value for one profile."""
        sub = self.dataframe.filter(
            np.fromiter(
                (p == profile for p in self.dataframe["profile"]),
                dtype=bool,
                count=self.dataframe.nrows,
            )
        )
        return {
            str(name): float(value)
            for name, value in zip(sub["name"], sub[metric])
            if value == value  # skip NaN
        }

    def metric_matrix(
        self, metric: str, region_filter: Callable[[str], bool] | None = None
    ) -> tuple[list[str], list[Any], np.ndarray]:
        """(region names, profile ids, matrix) for one metric.

        Rows are regions, columns profiles; missing entries are NaN.
        """
        if metric not in self.dataframe:
            raise KeyError(f"no metric {metric!r}; have {self.metric_columns()}")
        regions: list[str] = []
        for name in self.dataframe["name"]:
            s = str(name)
            if region_filter is not None and not region_filter(s):
                continue
            if s not in regions:
                regions.append(s)
        profs = self.profiles
        matrix = np.full((len(regions), len(profs)), np.nan)
        region_idx = {r: i for i, r in enumerate(regions)}
        prof_idx = {p: j for j, p in enumerate(profs)}
        values = self.dataframe[metric]
        for row in range(self.dataframe.nrows):
            name = str(self.dataframe["name"][row])
            if name not in region_idx:
                continue
            prof = self.dataframe["profile"][row]
            value = values[row]
            if value == value:
                matrix[region_idx[name], prof_idx[prof]] = float(value)
        return regions, profs, matrix

    # ---------------------------------------------------------- statistics
    def aggregate_stats(
        self, metrics: Sequence[str] | None = None, aggs: Sequence[str] = ("mean", "min", "max", "std")
    ) -> Frame:
        """Per-region statistics across all profiles -> the statsframe.

        Aggregators are NumPy reduction names plus percentile shorthands
        (``"p50"``, ``"p95"``, ...), matching Thicket's stats module.
        """
        metrics = list(metrics) if metrics is not None else self.metric_columns()
        numeric = [
            m for m in metrics if m in self.dataframe and self.dataframe[m].dtype != object
        ]
        records = []
        for (name,), sub in self.dataframe.groupby("name"):
            rec: dict[str, Any] = {"name": name}
            for m in numeric:
                col = sub[m]
                col = col[~np.isnan(col.astype(float))]
                if len(col) == 0:
                    continue
                for agg in aggs:
                    rec[f"{m}_{agg}"] = _aggregate(col, agg)
            records.append(rec)
        self.statsframe = Frame.from_records(records)
        return self.statsframe

    def tree(self, metric: str | None = None, profile: Any | None = None) -> str:
        """Render the region tree of one profile (Thicket.tree())."""
        prof = profile if profile is not None else self.profiles[0]
        lines: list[str] = [f"profile: {prof}"]
        sub_rows = [
            row
            for row in self.dataframe.iter_rows()
            if row["profile"] == prof
        ]
        sub_rows.sort(key=lambda r: str(r["path"]))
        for row in sub_rows:
            indent = "  " * (int(row["depth"]) - 1)
            suffix = ""
            if metric is not None and row.get(metric) == row.get(metric):
                suffix = f"  [{metric}={row[metric]:.6g}]"
            lines.append(f"{indent}{row['name']}{suffix}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Thicket({len(self.profiles)} profiles, "
            f"{self.dataframe.nrows} rows, {len(self.metric_columns())} metrics)"
        )


def _aggregate(values: np.ndarray, agg: str) -> float:
    """One aggregation: a NumPy reduction name or a pNN percentile."""
    if agg.startswith("p") and agg[1:].isdigit():
        q = int(agg[1:])
        if not 0 <= q <= 100:
            raise ValueError(f"percentile out of range: {agg}")
        return float(np.percentile(values, q))
    fn = getattr(np, agg, None)
    if fn is None:
        raise ValueError(f"unknown aggregator {agg!r}")
    return float(fn(values))


def _profile_id(profile: CaliProfile, index: int) -> str:
    return ingest.profile_id(profile.globals, index)


def _resolve_where(where: "Expr | str | None") -> "Expr | None":
    """Normalize a ``where=`` argument: expression, query string, None."""
    if where is None or isinstance(where, Expr):
        return where
    if isinstance(where, str):
        return parse_expr(where)
    raise TypeError(
        f"where must be a column expression or a query string, "
        f"got {type(where).__name__}"
    )


def _apply_where(thicket: "Thicket", where_expr: "Expr | None") -> "Thicket":
    """The exact metadata filter — always the authority after pushdown."""
    if where_expr is None:
        return thicket
    filtered = thicket.filter_metadata(where_expr)
    filtered.load_errors = thicket.load_errors
    return filtered


def _membership_mask(values: np.ndarray, keep: np.ndarray) -> np.ndarray:
    """Boolean mask of ``values`` rows whose value appears in ``keep``."""
    keep_list = list(dict.fromkeys(keep.tolist()))
    try:
        return np.isin(values, np.array(keep_list, dtype=object))
    except (TypeError, ValueError):  # pragma: no cover - unorderable ids
        keep_set = set(keep_list)
        return np.fromiter(
            (v in keep_set for v in values), dtype=bool, count=len(values)
        )


def _pad_schema(
    frame: Frame, metadata: Frame, meta_cols: list, metric_cols: list
) -> tuple[Frame, Frame]:
    """Pad a pushdown-reduced composition back to the full schema.

    Entries the index filter skipped never composed, so columns only
    they carry are missing; a full compose would have kept those columns
    (``None``-backfilled metadata, NaN-coerced metrics) and the exact
    filter only removes *rows*. Reinstate them — in the full compose's
    first-seen order, reconstructed from the per-entry index schema —
    so filtered-with-pushdown equals filtered-after-composing.
    """
    md_cols: dict[str, object] = {}
    for name in meta_cols:
        if name in metadata:
            md_cols[name] = metadata[name]
        else:
            md_cols[name] = np.array([None] * metadata.nrows, dtype=object)
    for name in metadata.columns:
        md_cols.setdefault(name, metadata[name])

    df_cols: dict[str, object] = {}
    for name in list(ingest.CORE_COLUMNS) + list(metric_cols):
        if name in frame:
            df_cols[name] = frame[name]
        else:
            df_cols[name] = np.full(frame.nrows, np.nan)
    for name in frame.columns:
        df_cols.setdefault(name, frame[name])
    return Frame(df_cols), Frame(md_cols)


def _outer_vstack(a: Frame, b: Frame) -> Frame:
    """vstack with an outer join on columns (missing cells become NaN/None)."""
    all_cols = list(dict.fromkeys(list(a.columns) + list(b.columns)))

    def pad(frame: Frame) -> Frame:
        out = frame
        for col in all_cols:
            if col not in out:
                template = a[col] if col in a else b[col]
                if template.dtype == object:
                    filler = np.array([None] * out.nrows, dtype=object)
                else:
                    filler = np.full(out.nrows, np.nan)
                out = out.with_column(col, filler)
        return out.select(all_cols)

    return pad(a).vstack(pad(b))
