"""High-throughput profile ingest: columnar composition + parallel fan-out.

The seed composition path built one dict per (profile, region) row and
handed the pile to ``Frame.from_records``, which re-scanned the key
union and re-probed every row per column — O(rows x columns) twice
over, after materializing a full :class:`RegionRecord` tree per profile
just to walk it once. At paper scale (thousands of profiles) that
assembly, not the kernels, is the wall.

This module replaces it:

* **Sources expand to lightweight refs** (:class:`FileRef` for loose
  ``.cali`` files, :class:`EntryRef` for ``.calipack`` archive entries
  located via the footer index), so work can be split by index ranges.
* **Record assembly is columnar**: payload JSON is walked *as parsed*
  (no ``RegionRecord`` objects on the hot path) and values append
  directly into growing per-column lists; a column first seen late is
  back-filled with ``None`` once, not re-scanned per row.
* **`workers=N` fans ref chunks out** over a ``multiprocessing`` pool;
  each worker returns its chunk's columns (cheap to pickle — flat
  lists, not object trees) and the supervisor merges chunks in source
  order, so serial and parallel ingest produce identical frames.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Sequence
from typing import Any, BinaryIO

import numpy as np

from repro.caliper import calipack
from repro.caliper.cali import parse_cali_payload, sealed_crc32
from repro.caliper.records import CaliProfile
from repro.dataframe import Frame

PATH_SEP = "/"

#: dataframe columns that are identity, not metrics
CORE_COLUMNS = ("profile", "name", "path", "depth")

#: chunks per worker — small enough to balance, big enough to amortize IPC
_CHUNKS_PER_WORKER = 4


@dataclass(frozen=True)
class FileRef:
    """One loose ``.cali`` file."""

    path: str

    @property
    def label(self) -> str:
        return self.path

    @property
    def cache_name(self) -> str:
        return Path(self.path).name


@dataclass(frozen=True)
class EntryRef:
    """One entry inside a ``.calipack`` archive (located by the index).

    ``attrs``/``metrics`` mirror the sealed index's per-entry schema
    (scalar globals and document-order metric names); None when the
    archive predates them. They feed predicate pushdown — deciding
    entry survival and reconstructing skipped entries' column order
    without reading any payload.
    """

    archive: str
    name: str
    offset: int
    length: int
    crc32: int
    attrs: dict | None = field(default=None, compare=False)
    metrics: list | None = field(default=None, compare=False)

    @property
    def label(self) -> str:
        return calipack.member_ref(self.archive, self.name)

    @property
    def cache_name(self) -> str:
        return self.name


def profile_id(globals_: dict[str, Any], index: int) -> str:
    """Thicket's profile identity: machine/variant[/tuning][/trialN]."""
    parts = [str(globals_.get("machine", "?")), str(globals_.get("variant", "?"))]
    tuning = globals_.get("tuning")
    if tuning and tuning != "default":
        parts.append(str(tuning))
    trial = globals_.get("trial")
    if trial not in (None, 0):
        parts.append(f"trial{trial}")
    base = "/".join(parts)
    return base if base != "?/?" else f"profile-{index}"


# -------------------------------------------------------- source expansion
def expand_sources(
    sources,
) -> tuple[list[Any], list[tuple[str, str]]]:
    """Normalize sources into (units, expansion errors).

    Units are :class:`CaliProfile` objects, :class:`FileRef`, or
    :class:`EntryRef` items in source order; ``.calipack`` paths expand
    to one :class:`EntryRef` per index entry, ``archive::name`` member
    refs to exactly one. An unreadable archive becomes an expansion
    error (the caller decides raise-vs-warn).
    """
    if isinstance(sources, (CaliProfile, str, Path)):
        sources = [sources]
    units: list[Any] = []
    errors: list[tuple[str, str]] = []
    for src in sources:
        if isinstance(src, CaliProfile):
            units.append(src)
            continue
        text = str(src)
        member = calipack.split_member_ref(text)
        try:
            if member is not None:
                archive, name = member
                entry = calipack.find_entry(archive, name)
                units.append(_entry_ref(archive, entry))
            elif calipack.is_archive(text):
                for entry in calipack.load_entries(text):
                    units.append(_entry_ref(text, entry))
            else:
                units.append(FileRef(path=text))
        except (OSError, ValueError, KeyError) as exc:
            errors.append((text, f"{type(exc).__name__}: {exc}"))
    return units, errors


def _entry_ref(archive: str | Path, entry: calipack.ArchiveEntry) -> EntryRef:
    return EntryRef(
        archive=str(archive),
        name=entry.name,
        offset=entry.offset,
        length=entry.length,
        crc32=entry.crc32,
        attrs=entry.attrs,
        metrics=entry.metrics,
    )


def source_identity(units: list[Any]) -> list[tuple[str, str]] | None:
    """Content address of the source set: ordered (name, crc32) pairs.

    Archive entries carry their CRC in the index (free); loose files
    declare theirs in the seal footer (a tail read, no payload parse).
    In-memory :class:`CaliProfile` sources have no stable content
    address — those ensembles are not cacheable (returns None).
    """
    out: list[tuple[str, str]] = []
    for unit in units:
        if isinstance(unit, EntryRef):
            out.append((unit.cache_name, f"{unit.crc32:08x}"))
        elif isinstance(unit, FileRef):
            try:
                out.append((unit.cache_name, f"{sealed_crc32(unit.path):08x}"))
            except OSError:
                return None
        else:
            return None
    return out


# ------------------------------------------------------- columnar builders
class ColumnBuilder:
    """Typed, growing columns: append rows, back-fill gaps once.

    ``append`` pushes one row's (key, value) pairs; a column that first
    appears at row *i* is back-filled with ``None`` for rows ``0..i-1``,
    and a column missing from a row is padded lazily the next time it
    receives a value (or at :meth:`finish`). Total work is O(values +
    gaps), not O(rows x columns).
    """

    __slots__ = ("cols", "n")

    def __init__(self) -> None:
        self.cols: dict[str, list[Any]] = {}
        self.n = 0

    def append(self, items) -> None:
        n = self.n
        cols = self.cols
        for key, value in items:
            col = cols.get(key)
            if col is None:
                cols[key] = col = [None] * n
            elif len(col) < n:
                col.extend([None] * (n - len(col)))
            col.append(value)
        self.n = n + 1

    def merge(self, chunk_cols: dict[str, list[Any]], chunk_n: int) -> None:
        """Splice a chunk's columns after this builder's rows, in order."""
        base = self.n
        for key, col in chunk_cols.items():
            if len(col) < chunk_n:
                col.extend([None] * (chunk_n - len(col)))
            mine = self.cols.get(key)
            if mine is None:
                self.cols[key] = mine = [None] * base
            elif len(mine) < base:
                mine.extend([None] * (base - len(mine)))
            mine.extend(col)
        self.n = base + chunk_n

    def finish(self) -> dict[str, list[Any]]:
        for col in self.cols.values():
            if len(col) < self.n:
                col.extend([None] * (self.n - len(col)))
        return self.cols


class TableBuilder:
    """Columnar accumulator for both Thicket tables (data + metadata)."""

    __slots__ = ("data", "meta")

    def __init__(self) -> None:
        self.data = ColumnBuilder()
        self.meta = ColumnBuilder()

    def add_payload(self, payload: dict[str, Any], index: int) -> None:
        """Compose one parsed ``.cali`` payload dict (no profile objects)."""
        globals_ = payload.get("globals", {})
        pid = profile_id(globals_, index)
        meta_items = [("profile", pid)]
        meta_items.extend(globals_.items())
        self.meta.append(meta_items)
        data = self.data
        stack = [(node, "", 0) for node in reversed(payload.get("records", []))]
        while stack:
            node, parent_path, parent_depth = stack.pop()
            name = node["name"]
            path = parent_path + PATH_SEP + name if parent_path else name
            depth = parent_depth + 1
            row = [("profile", pid), ("name", name), ("path", path),
                   ("depth", depth)]
            row.extend(node["metrics"].items())
            data.append(row)
            children = node.get("children", ())
            for child in reversed(children):
                stack.append((child, path, depth))

    def add_profile(self, profile: CaliProfile, index: int) -> None:
        """Compose one in-memory :class:`CaliProfile` (same row order)."""
        pid = profile_id(profile.globals, index)
        meta_items = [("profile", pid)]
        meta_items.extend(profile.globals.items())
        self.meta.append(meta_items)
        data = self.data
        for node in profile.walk():
            row = [("profile", pid), ("name", node.name),
                   ("path", PATH_SEP.join(node.path)), ("depth", node.depth)]
            row.extend(node.metrics.items())
            data.append(row)

    def merge(self, other_state) -> None:
        data_cols, data_n, meta_cols, meta_n = other_state
        self.data.merge(data_cols, data_n)
        self.meta.merge(meta_cols, meta_n)

    def state(self):
        return (self.data.cols, self.data.n, self.meta.cols, self.meta.n)


def coerce_metrics(frame: Frame) -> Frame:
    """The dataframe's NaN metric coercion: object columns get their
    ``None`` gaps replaced by NaN and become float when every value
    converts. Idempotent — re-coercing an already coerced frame (the
    incremental merge path) changes nothing."""
    for col in frame.columns:
        if col in ("profile", "name", "path"):
            continue
        arr = frame[col]
        if arr.dtype == object:
            coerced = np.array(
                [np.nan if v is None else v for v in arr], dtype=object
            )
            try:
                frame = frame.with_column(col, coerced.astype(float))
            except (TypeError, ValueError):
                frame = frame.with_column(col, coerced)
    return frame


def build_frames(builder: TableBuilder) -> tuple[Frame, Frame]:
    """Builders -> (dataframe, metadata) with the NaN metric coercion."""
    frame = Frame(builder.data.finish()) if builder.data.n else Frame()
    frame = coerce_metrics(frame)
    metadata = Frame(builder.meta.finish()) if builder.meta.n else Frame()
    return frame, metadata


def concat_composed(a: Frame, b: Frame) -> Frame:
    """Outer row-concat with *composition* semantics.

    The incremental path splices a cached prefix table and a freshly
    composed suffix table, and the result must be bit-identical to one
    full composition. Columns present on both sides with the same dtype
    concatenate vectorized; a column missing on one side (or typed
    differently per side) is rebuilt through the same Python-list
    coercion ``ColumnBuilder`` + :class:`Frame` would apply to the full
    value sequence — ``None`` fill and all — so dtypes come out exactly
    as a from-scratch compose would produce them.
    """
    if not a.columns and not a.nrows:
        return b
    if not b.columns and not b.nrows:
        return a
    all_cols = list(dict.fromkeys(list(a.columns) + list(b.columns)))
    cols: dict[str, object] = {}
    for name in all_cols:
        in_a, in_b = name in a, name in b
        if in_a and in_b and a[name].dtype == b[name].dtype:
            cols[name] = np.concatenate([a[name], b[name]])
            continue
        values = list(a[name]) if in_a else [None] * a.nrows
        values.extend(list(b[name]) if in_b else [None] * b.nrows)
        cols[name] = values
    return Frame(cols)


def index_pushdown(
    units: list[Any], expr
) -> tuple[list[Any], list[int], list[str], list[str]] | None:
    """Plan an index-level predicate pushdown over archive entries.

    Returns ``(kept_units, kept_indices, meta_columns, metric_columns)``
    — the surviving entries with their *original* source indices (so
    fallback profile ids stay stable) plus the full composition's
    metadata and metric column orders, reconstructed from the per-entry
    index schema so skipped entries' columns can be padded back in.

    Returns None — compose everything, filter exactly — whenever the
    skip cannot be proven safe: any non-archive source, any entry
    without indexed schema, a predicate referencing the synthesized
    ``profile`` column, or a predicate rejecting every entry (the empty
    result's dtypes are not reconstructible from the index alone).
    """
    if not units or not all(isinstance(u, EntryRef) for u in units):
        return None
    if any(u.attrs is None or u.metrics is None for u in units):
        return None
    if "profile" in expr.references():
        return None
    kept: list[Any] = []
    kept_indices: list[int] = []
    meta_cols: dict[str, None] = {"profile": None}
    metric_cols: dict[str, None] = {}
    for index, unit in enumerate(units):
        meta_cols.update(dict.fromkeys(unit.attrs))
        metric_cols.update(dict.fromkeys(unit.metrics))
        if calipack.attrs_pass(unit.attrs, expr):
            kept.append(unit)
            kept_indices.append(index)
    if not kept:
        return None
    return kept, kept_indices, list(meta_cols), list(metric_cols)


# ----------------------------------------------------------- chunk loading
def _read_ref_payload(ref, handles: dict[str, BinaryIO]) -> dict[str, Any]:
    if isinstance(ref, FileRef):
        return parse_cali_payload(Path(ref.path).read_bytes(), ref.path)
    handle = handles.get(ref.archive)
    if handle is None:
        handle = handles[ref.archive] = open(ref.archive, "rb")
    handle.seek(ref.offset)
    data = handle.read(ref.length)
    entry = calipack.ArchiveEntry(
        name=ref.name, offset=ref.offset, length=ref.length, crc32=ref.crc32
    )
    if len(data) != entry.length:
        raise ValueError(f"{ref.label}: truncated archive entry")
    import zlib

    if zlib.crc32(data) & 0xFFFFFFFF != entry.crc32:
        raise ValueError(f"{ref.label}: corrupt archive entry (index CRC mismatch)")
    return parse_cali_payload(data, ref.label)


def _load_chunk(args):
    """Pool task: load+compose one ref chunk, return its columnar state.

    ``on_error='raise'`` lets the exception propagate — the pool
    re-raises it in the parent. ``'warn'`` records (source, reason)
    casualties and composes the survivors; the parent owns warning
    emission so messages stay ordered.
    """
    refs, indices, on_error = args
    builder = TableBuilder()
    errors: list[tuple[str, str]] = []
    handles: dict[str, BinaryIO] = {}
    try:
        for ref, index in zip(refs, indices):
            try:
                payload = _read_ref_payload(ref, handles)
            except (OSError, ValueError, KeyError) as exc:
                if on_error == "raise":
                    raise
                errors.append((ref.label, f"{type(exc).__name__}: {exc}"))
                continue
            builder.add_payload(payload, index)
    finally:
        for handle in handles.values():
            handle.close()
    return builder.state(), builder.meta.n, errors


def compose_units(
    units: list[Any], workers: int, on_error: str,
    indices: Sequence[int] | None = None,
) -> tuple[TableBuilder, int, list[tuple[str, str]]]:
    """Compose all units (serial or fanned out); returns the merged
    builder, the number of profiles composed, and the load errors.

    ``indices`` assigns each unit its profile index (fallback-id seed);
    default is positional. Pushdown and incremental composition pass the
    units' *original* source positions so a partial compose mints the
    same profile ids a full compose would.
    """
    if indices is None:
        indices = range(len(units))
    builder = TableBuilder()
    errors: list[tuple[str, str]] = []
    refs = [u for u in units if not isinstance(u, CaliProfile)]
    if workers > 1 and len(refs) > 1:
        loaded = _compose_parallel(
            units, indices, workers, on_error, builder, errors
        )
    else:
        loaded = _compose_serial(units, indices, on_error, builder, errors)
    return builder, loaded, errors


def _compose_serial(units, indices, on_error, builder, errors) -> int:
    handles: dict[str, BinaryIO] = {}
    loaded = 0
    try:
        for unit, index in zip(units, indices):
            if isinstance(unit, CaliProfile):
                builder.add_profile(unit, index)
                loaded += 1
                continue
            try:
                payload = _read_ref_payload(unit, handles)
            except (OSError, ValueError, KeyError) as exc:
                if on_error == "raise":
                    raise
                errors.append((unit.label, f"{type(exc).__name__}: {exc}"))
                continue
            builder.add_payload(payload, index)
            loaded += 1
    finally:
        for handle in handles.values():
            handle.close()
    return loaded


def _compose_parallel(units, indices, workers, on_error, builder, errors) -> int:
    """Fan ref runs out to a pool; merge chunk columns in source order.

    In-memory profiles (rare in mixed source lists) compose locally in
    their source position, so ordering guarantees hold regardless of
    how sources interleave.
    """
    import multiprocessing

    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platform
        ctx = multiprocessing.get_context("spawn")

    # Partition into runs of local (CaliProfile) and pooled (ref) units,
    # each unit keeping its assigned profile index.
    runs: list[tuple[str, list[Any], list[int]]] = []  # (kind, items, idxs)
    for unit, index in zip(units, indices):
        kind = "local" if isinstance(unit, CaliProfile) else "pool"
        if runs and runs[-1][0] == kind:
            runs[-1][1].append(unit)
            runs[-1][2].append(index)
        else:
            runs.append((kind, [unit], [index]))

    refs_total = sum(len(items) for kind, items, _ in runs if kind == "pool")
    pool_workers = max(1, min(workers, refs_total))
    chunk_size = max(1, -(-refs_total // (pool_workers * _CHUNKS_PER_WORKER)))
    loaded = 0
    with ctx.Pool(pool_workers) as pool:
        for kind, items, idxs in runs:
            if kind == "local":
                for profile, index in zip(items, idxs):
                    builder.add_profile(profile, index)
                    loaded += 1
                continue
            tasks = [
                (items[i : i + chunk_size], idxs[i : i + chunk_size], on_error)
                for i in range(0, len(items), chunk_size)
            ]
            for state, chunk_loaded, chunk_errors in pool.map(
                _load_chunk, tasks
            ):
                builder.merge(state)
                errors.extend(chunk_errors)
                loaded += chunk_loaded
    return loaded


def warn_load_errors(errors, warning_cls, stacklevel: int = 3) -> None:
    for src, reason in errors:
        warnings.warn(
            f"skipping unreadable profile {src} ({reason})",
            warning_cls,
            stacklevel=stacklevel,
        )
