"""Plain-text rendering of tables and bar charts.

The paper's tables and figures are regenerated as text artifacts (no
matplotlib in this environment); ``TextTable`` renders aligned ASCII tables
and ``render_barchart`` renders horizontal bar charts such as the top-down
metric stacks of Figs. 3/4 and the speedup panels of Fig. 9.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


class TextTable:
    """Accumulate rows and render an aligned, pipe-delimited text table."""

    def __init__(self, columns: Sequence[str], title: str | None = None) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.columns = [str(c) for c in columns]
        self.title = title
        self._rows: list[list[str]] = []

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.columns)} columns"
            )
        self._rows.append([_format_cell(v) for v in values])

    def add_rows(self, rows: Iterable[Sequence[object]]) -> None:
        for row in rows:
            self.add_row(*row)

    def __len__(self) -> int:
        return len(self._rows)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines: list[str] = []
        if self.title:
            lines.append(self.title)
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in self._rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def to_csv(self) -> str:
        out = [",".join(_csv_escape(c) for c in self.columns)]
        for row in self._rows:
            out.append(",".join(_csv_escape(c) for c in row))
        return "\n".join(out)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    if value is None:
        return ""
    return str(value)


def _csv_escape(cell: str) -> str:
    if any(ch in cell for ch in ',"\n'):
        return '"' + cell.replace('"', '""') + '"'
    return cell


def render_barchart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    max_value: float | None = None,
    unit: str = "",
    marker: str = "#",
    reference: float | None = None,
) -> str:
    """Render a horizontal bar chart.

    ``reference`` draws a ``|`` at the given value on each bar's axis — used
    for the 1x speedup line and the Stream TRIAD line in Fig. 9.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have the same length")
    if not labels:
        return "(empty chart)"
    vmax = max_value if max_value is not None else max(max(values), 1e-300)
    if vmax <= 0:
        vmax = 1.0
    label_w = max(len(str(lab)) for lab in labels)
    lines = []
    for lab, val in zip(labels, values):
        n = int(round(min(max(val, 0.0), vmax) / vmax * width))
        bar = list(marker * n + " " * (width - n))
        capped = "+" if val > vmax else ""
        if reference is not None and 0 <= reference <= vmax:
            ref_pos = min(int(round(reference / vmax * width)), width - 1)
            bar[ref_pos] = "|"
        lines.append(
            f"{str(lab).ljust(label_w)} [{''.join(bar)}] {val:.4g}{capped}{unit}"
        )
    return "\n".join(lines)
