"""Shared utilities: unit handling, text tables, validation helpers.

These are deliberately dependency-light; every other subpackage may import
from here, but :mod:`repro.util` imports nothing from the rest of the
package.
"""

from repro.util.units import (
    KIB,
    MIB,
    GIB,
    KILO,
    MEGA,
    GIGA,
    TERA,
    format_bytes,
    format_count,
    format_rate,
    format_seconds,
    parse_size,
)
from repro.util.tables import TextTable, render_barchart
from repro.util.fsio import durable_replace, fsync_dir, write_durable_text
from repro.util.validation import (
    check_positive,
    check_in,
    check_probability_vector,
    check_same_length,
)

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "KILO",
    "MEGA",
    "GIGA",
    "TERA",
    "format_bytes",
    "format_count",
    "format_rate",
    "format_seconds",
    "parse_size",
    "TextTable",
    "render_barchart",
    "durable_replace",
    "fsync_dir",
    "write_durable_text",
    "check_positive",
    "check_in",
    "check_probability_vector",
    "check_same_length",
]
