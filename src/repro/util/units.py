"""Unit constants, formatting, and parsing for sizes, counts, and rates.

The performance suite reports quantities spanning ~12 orders of magnitude
(bytes per iteration up to node-level TFLOPS); these helpers keep the
formatting consistent across tables, figures, and the CLI.
"""

from __future__ import annotations

import re

# Binary (memory capacity) units.
KIB = 1024
MIB = 1024**2
GIB = 1024**3
TIB = 1024**4

# Decimal (rate / count) units.
KILO = 10**3
MEGA = 10**6
GIGA = 10**9
TERA = 10**12
PETA = 10**15

_DECIMAL_STEPS = [
    (PETA, "P"),
    (TERA, "T"),
    (GIGA, "G"),
    (MEGA, "M"),
    (KILO, "K"),
]

_BINARY_STEPS = [
    (TIB, "TiB"),
    (GIB, "GiB"),
    (MIB, "MiB"),
    (KIB, "KiB"),
]

_SIZE_RE = re.compile(
    r"^\s*(?P<num>[0-9]*\.?[0-9]+)\s*(?P<suffix>[kKmMgGtT]?)(?:i?[bB])?\s*$"
)

_SUFFIX_MULTIPLIER = {
    "": 1,
    "k": KILO,
    "m": MEGA,
    "g": GIGA,
    "t": TERA,
}


def format_count(value: float, digits: int = 3) -> str:
    """Format a raw count with a decimal magnitude suffix (K/M/G/T/P)."""
    if value == 0:
        return "0"
    sign = "-" if value < 0 else ""
    mag = abs(float(value))
    for step, suffix in _DECIMAL_STEPS:
        if mag >= step:
            return f"{sign}{mag / step:.{digits}g}{suffix}"
    return f"{sign}{mag:.{digits}g}"


def format_bytes(value: float, digits: int = 3) -> str:
    """Format a byte count using binary units (KiB/MiB/GiB/TiB)."""
    sign = "-" if value < 0 else ""
    mag = abs(float(value))
    for step, suffix in _BINARY_STEPS:
        if mag >= step:
            return f"{sign}{mag / step:.{digits}g} {suffix}"
    return f"{sign}{mag:.{digits}g} B"


def format_rate(value: float, unit: str = "B/s", digits: int = 3) -> str:
    """Format a rate (e.g. bytes/s or FLOP/s) with decimal suffixes."""
    return f"{format_count(value, digits)}{unit}"


def format_seconds(value: float, digits: int = 3) -> str:
    """Format a duration, scaling to ns/us/ms/s."""
    if value < 0:
        raise ValueError(f"negative duration: {value}")
    if value == 0:
        return "0 s"
    for scale, suffix in [(1.0, "s"), (1e-3, "ms"), (1e-6, "us"), (1e-9, "ns")]:
        if value >= scale:
            return f"{value / scale:.{digits}g} {suffix}"
    return f"{value:.{digits}g} s"


def parse_size(text: str | int | float) -> int:
    """Parse a problem-size string like ``"32M"``, ``"1.5G"``, or ``"4096"``.

    Mirrors RAJAPerf's ``--size`` argument handling: suffixes are decimal
    (``32M`` means 32,000,000 elements).
    """
    if isinstance(text, (int, float)):
        if text < 0:
            raise ValueError(f"size must be non-negative, got {text}")
        return int(text)
    match = _SIZE_RE.match(text)
    if match is None:
        raise ValueError(f"cannot parse size {text!r}")
    value = float(match.group("num"))
    mult = _SUFFIX_MULTIPLIER[match.group("suffix").lower()]
    return int(round(value * mult))
