"""Disk watermark monitoring for graceful degradation under pressure.

The campaign service and the sharded coordinator both write large
archives; running the filesystem to ENOSPC mid-write is the one failure
mode the durable-write protocol cannot make atomic (the tmp write
itself fails). Instead of discovering pressure at the worst moment, the
service samples free space and degrades *before* writes start failing:

* **soft watermark** — free bytes at or below this: admission rejects
  new submissions (with an explicit reason) and the daemon triggers a
  retention GC pass to reclaim terminal jobs' campaigns.
* **hard watermark** — free bytes at or below this: the scheduler stops
  claiming queued jobs entirely, and ``jobs`` / ``shard-status`` report
  the degradation (exit code 4) so monitors page before data is at
  risk.

Watermarks are plumbed explicitly (``serve --soft-free-bytes`` /
``--hard-free-bytes``) or ambiently via ``$REPRO_DISK_SOFT_BYTES`` /
``$REPRO_DISK_HARD_BYTES`` for commands that have no flags for them
(``shard-status``). For deterministic tests and CI smoke runs,
``$REPRO_DISK_FREE_BYTES`` overrides the measured free space — the
state machine can then be driven without actually filling a disk.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

#: fake the measured free bytes (deterministic tests / CI smoke)
FREE_BYTES_ENV = "REPRO_DISK_FREE_BYTES"
#: ambient watermark configuration for flag-less commands
SOFT_BYTES_ENV = "REPRO_DISK_SOFT_BYTES"
HARD_BYTES_ENV = "REPRO_DISK_HARD_BYTES"

#: watermark states, in order of severity
STATE_OK = "ok"
STATE_SOFT = "soft"
STATE_HARD = "hard"


def disk_free_bytes(path: str | Path) -> int | None:
    """Free bytes on the filesystem holding ``path`` (None if unknown).

    ``$REPRO_DISK_FREE_BYTES`` wins over the real measurement so tests
    and CI can drive the watermark state machine deterministically.
    """
    override = os.environ.get(FREE_BYTES_ENV)
    if override is not None:
        try:
            return max(0, int(override))
        except ValueError:
            pass
    probe = Path(path)
    while not probe.exists():
        parent = probe.parent
        if parent == probe:
            return None
        probe = parent
    try:
        stat = os.statvfs(str(probe))
    except (OSError, AttributeError):  # pragma: no cover - exotic fs
        return None
    return stat.f_bavail * stat.f_frsize


@dataclass(frozen=True)
class DiskWatermarks:
    """Soft/hard free-byte thresholds; ``None`` disables a rail."""

    soft_free_bytes: int | None = None
    hard_free_bytes: int | None = None

    def __post_init__(self) -> None:
        if (
            self.soft_free_bytes is not None
            and self.hard_free_bytes is not None
            and self.hard_free_bytes > self.soft_free_bytes
        ):
            raise ValueError(
                "hard watermark must be at or below the soft watermark "
                f"({self.hard_free_bytes} > {self.soft_free_bytes})"
            )

    @property
    def enabled(self) -> bool:
        return (
            self.soft_free_bytes is not None
            or self.hard_free_bytes is not None
        )

    def state(self, path: str | Path) -> str:
        """``ok`` / ``soft`` / ``hard`` for the filesystem under ``path``."""
        if not self.enabled:
            return STATE_OK
        free = disk_free_bytes(path)
        if free is None:
            return STATE_OK
        if self.hard_free_bytes is not None and free <= self.hard_free_bytes:
            return STATE_HARD
        if self.soft_free_bytes is not None and free <= self.soft_free_bytes:
            return STATE_SOFT
        return STATE_OK

    def describe(self, path: str | Path) -> dict:
        """Machine-readable health payload (daemon ``/healthz``, CLI)."""
        return {
            "state": self.state(path),
            "free_bytes": disk_free_bytes(path),
            "soft_free_bytes": self.soft_free_bytes,
            "hard_free_bytes": self.hard_free_bytes,
        }


def watermarks_from_env() -> DiskWatermarks:
    """Ambient watermarks from the environment (disabled when unset)."""

    def _read(name: str) -> int | None:
        raw = os.environ.get(name)
        if raw is None:
            return None
        try:
            return int(raw)
        except ValueError:
            return None

    soft = _read(SOFT_BYTES_ENV)
    hard = _read(HARD_BYTES_ENV)
    if soft is not None and hard is not None and hard > soft:
        # Misconfigured ambient rails degrade to disabled rather than
        # crashing flag-less commands like shard-status.
        return DiskWatermarks()
    return DiskWatermarks(soft_free_bytes=soft, hard_free_bytes=hard)
