"""Small argument-validation helpers used across the package."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


def check_positive(name: str, value: float, allow_zero: bool = False) -> float:
    """Raise ``ValueError`` unless ``value`` is positive (or >= 0)."""
    if allow_zero:
        if value < 0:
            raise ValueError(f"{name} must be >= 0, got {value}")
    elif value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return value


def check_in(name: str, value: object, allowed: Sequence[object]) -> object:
    """Raise ``ValueError`` unless ``value`` is one of ``allowed``."""
    if value not in allowed:
        raise ValueError(f"{name} must be one of {list(allowed)}, got {value!r}")
    return value


def check_same_length(**named_sequences: Sequence[object]) -> int:
    """Raise ``ValueError`` unless all sequences share one length; return it."""
    lengths = {name: len(seq) for name, seq in named_sequences.items()}
    unique = set(lengths.values())
    if len(unique) > 1:
        raise ValueError(f"length mismatch: {lengths}")
    return unique.pop() if unique else 0


def check_probability_vector(name: str, values: Sequence[float], tol: float = 1e-6) -> np.ndarray:
    """Validate that ``values`` are non-negative and sum to ~1 (a TMA split)."""
    arr = np.asarray(values, dtype=float)
    if np.any(arr < -tol):
        raise ValueError(f"{name} has negative entries: {arr}")
    total = float(arr.sum())
    if abs(total - 1.0) > tol:
        raise ValueError(f"{name} must sum to 1 (got {total})")
    return np.clip(arr, 0.0, None)
