"""Durable filesystem primitives for the crash-safe stores.

The profile store and the campaign manifest both follow the same
protocol: write the payload to a tmp sibling, fsync it, ``os.replace``
it over the target, then fsync the containing directory so the rename
itself survives a power cut. These helpers keep that protocol in one
place; fsync failures on filesystems that do not support it (some CI
overlays) are tolerated — atomicity still holds, only durability
degrades.

Tmp siblings are named ``<target>.<pid>.<n>.tmp`` — unique per writer
process and per write — so two processes durably writing the same
target (the reference-checksum sidecar's read-merge-write, concurrent
campaigns racing a stale lock) can never clobber each other's
in-flight tmp; the losing ``os.replace`` is simply overwritten by the
winner's, which is the documented last-wins semantics. Orphaned tmps
(a crash between tmp write and replace) are swept by ``fsck``.

Every step of the protocol is also a registered chaos crash point
(:mod:`repro.chaos.points`): ``fsio.before-tmp-write``,
``fsio.after-tmp-fsync`` (torn-write capable), ``fsio.before-replace``,
``fsio.after-replace``, and ``fsio.before-dir-fsync``. The hooks are
no-ops unless a chaos schedule is armed.
"""

from __future__ import annotations

import itertools
import os
from pathlib import Path

from repro.chaos.points import crash_point

_tmp_counter = itertools.count()

#: glob matching this module's tmp siblings (fsck's orphan sweep)
TMP_GLOB = "*.tmp"


def tmp_sibling(target: str | Path) -> Path:
    """A collision-free tmp path next to ``target`` (pid + counter)."""
    out = Path(target)
    return out.with_name(f"{out.name}.{os.getpid()}.{next(_tmp_counter)}.tmp")


def fsync_dir(path: str | Path) -> None:
    """fsync a directory so a completed rename inside it is durable."""
    crash_point("fsio.before-dir-fsync", path=path)
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without dir fsync
        pass
    finally:
        os.close(fd)


def durable_replace(tmp: str | Path, target: str | Path) -> None:
    """``os.replace`` + directory fsync (the tmp must already be synced)."""
    crash_point("fsio.before-replace", path=target, torn_file=tmp)
    os.replace(tmp, target)
    crash_point("fsio.after-replace", path=target)
    fsync_dir(Path(target).parent)


def write_durable_text(target: str | Path, text: str) -> Path:
    """Crash-safe whole-file write: tmp sibling + fsync + atomic replace."""
    return write_durable_bytes(target, text.encode("utf-8"))


def write_durable_bytes(target: str | Path, data: bytes) -> Path:
    """:func:`write_durable_text` for binary payloads (the ingest cache)."""
    out = Path(target)
    out.parent.mkdir(parents=True, exist_ok=True)
    tmp = tmp_sibling(out)
    crash_point("fsio.before-tmp-write", path=out)
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        try:
            os.fsync(handle.fileno())
        except OSError:  # pragma: no cover - fs without fsync
            pass
    crash_point("fsio.after-tmp-fsync", path=out, torn_file=tmp)
    durable_replace(tmp, out)
    return out
