"""Durable filesystem primitives for the crash-safe stores.

The profile store and the campaign manifest both follow the same
protocol: write the payload to a tmp sibling, fsync it, ``os.replace``
it over the target, then fsync the containing directory so the rename
itself survives a power cut. These helpers keep that protocol in one
place; fsync failures on filesystems that do not support it (some CI
overlays) are tolerated — atomicity still holds, only durability
degrades.
"""

from __future__ import annotations

import os
from pathlib import Path


def fsync_dir(path: str | Path) -> None:
    """fsync a directory so a completed rename inside it is durable."""
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without dir fsync
        pass
    finally:
        os.close(fd)


def durable_replace(tmp: str | Path, target: str | Path) -> None:
    """``os.replace`` + directory fsync (the tmp must already be synced)."""
    os.replace(tmp, target)
    fsync_dir(Path(target).parent)


def write_durable_text(target: str | Path, text: str) -> Path:
    """Crash-safe whole-file write: tmp sibling + fsync + atomic replace."""
    out = Path(target)
    out.parent.mkdir(parents=True, exist_ok=True)
    tmp = out.with_suffix(out.suffix + ".tmp")
    with open(tmp, "w") as handle:
        handle.write(text)
        handle.flush()
        try:
            os.fsync(handle.fileno())
        except OSError:  # pragma: no cover - fs without fsync
            pass
    durable_replace(tmp, out)
    return out


def write_durable_bytes(target: str | Path, data: bytes) -> Path:
    """:func:`write_durable_text` for binary payloads (the ingest cache)."""
    out = Path(target)
    out.parent.mkdir(parents=True, exist_ok=True)
    tmp = out.with_suffix(out.suffix + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        try:
            os.fsync(handle.fileno())
        except OSError:  # pragma: no cover - fs without fsync
            pass
    durable_replace(tmp, out)
    return out
