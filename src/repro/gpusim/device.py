"""Simulated GPU device: launch-geometry bookkeeping.

Wraps a :class:`~repro.machines.GpuSpec` with the grid/block arithmetic a
CUDA/HIP runtime performs, so GPU-variant kernels can reason about blocks,
warps, and occupancy-driven launch counts. The executor uses it to turn a
policy's block size into warp and launch counts for the counter model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.machines.model import GpuSpec, MachineModel


@dataclass(frozen=True)
class LaunchGeometry:
    """Grid geometry for one kernel launch."""

    threads: int
    block_size: int
    grid_size: int
    warps_per_block: int
    total_warps: int

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise ValueError(f"block_size must be > 0, got {self.block_size}")


class Device:
    """A simulated GPU device (one compute unit of a GPU machine)."""

    def __init__(self, machine: MachineModel) -> None:
        if machine.gpu is None:
            raise ValueError(f"{machine.shorthand} has no GPU spec")
        self.machine = machine
        self.spec: GpuSpec = machine.gpu

    @property
    def warp_size(self) -> int:
        return self.spec.warp_size

    def launch_geometry(self, threads: int, block_size: int) -> LaunchGeometry:
        """Grid geometry for launching ``threads`` work items."""
        if threads < 0:
            raise ValueError(f"negative thread count: {threads}")
        grid = math.ceil(threads / block_size) if threads else 0
        warps_per_block = math.ceil(block_size / self.warp_size)
        return LaunchGeometry(
            threads=threads,
            block_size=block_size,
            grid_size=grid,
            warps_per_block=warps_per_block,
            total_warps=grid * warps_per_block,
        )

    def warp_instructions(self, thread_instructions: float) -> float:
        """Convert a thread-instruction count to warp instructions."""
        return thread_instructions / self.warp_size

    def occupancy(self, block_size: int, max_blocks_per_sm: int = 32) -> float:
        """Fraction of the SM's warp slots occupied for a block size.

        A simple occupancy model: 64 warp slots per SM, blocks limited by
        ``max_blocks_per_sm``. Used by the tuning sweep example.
        """
        warps_per_block = math.ceil(block_size / self.warp_size)
        blocks = min(max_blocks_per_sm, 64 // max(warps_per_block, 1))
        return min(1.0, blocks * warps_per_block / 64.0)
