"""Nsight-Compute counter generation (the paper's Table IV metric set).

Counters are derived from the kernel's work profile and traits:

* thread instructions are the profile's instruction total (non-predicated);
* L1 transactions come from all global loads/stores in 32-byte sectors,
  amplified when the access pattern is not perfectly coalesced
  (``streaming_eff`` < 1 means more sectors per request);
* L2 transactions are the L1 misses (a fixed L1 hit fraction plus the
  kernel's cache residency);
* DRAM transactions are the bytes that actually leave the cache hierarchy;
* atomics surface as ``lts__t_sectors_op_atom/red``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machines.model import MachineModel
from repro.perfmodel.traits import KernelTraits
from repro.perfmodel.work import WorkProfile

#: Baseline fraction of L1 transactions that hit in L1 for streaming code.
L1_BASE_HIT = 0.25


@dataclass(frozen=True)
class NcuMetric:
    """One row of Table IV."""

    category: str  # "thread-based", "warp-based", "kernel-based"
    name: str
    description: str


#: Table IV verbatim: the NCU metrics used for instruction roofline.
NCU_METRIC_TABLE: tuple[NcuMetric, ...] = (
    NcuMetric("thread-based", "sm__sass_thread_inst_executed.sum", "non-predicated"),
    NcuMetric("warp-based", "l1tex__t_sectors_pipe_lsu_mem_global_op_ld.sum", "L1 cache transactions"),
    NcuMetric("warp-based", "l1tex__t_sectors_pipe_lsu_mem_global_op_st.sum", "L1 cache transactions"),
    NcuMetric("warp-based", "l1tex__t_sectors_pipe_lsu_mem_local_op_ld.sum", "L1 cache transactions"),
    NcuMetric("warp-based", "l1tex__t_requests_pipe_lsu_mem_local_op_st.sum", "L1 cache transactions"),
    NcuMetric("warp-based", "lts__t_sectors_op_read.sum", "L2 cache"),
    NcuMetric("warp-based", "lts__t_sectors_op_write.sum", "L2 cache"),
    NcuMetric("warp-based", "lts__t_sectors_op_atom.sum", "L2 cache"),
    NcuMetric("warp-based", "lts__t_sectors_op_red.sum", "L2 cache"),
    NcuMetric("warp-based", "dram__sectors_read.sum", "HBM memory"),
    NcuMetric("warp-based", "dram__sectors_write.sum", "HBM memory"),
    NcuMetric("kernel-based", "time (gpu)", "execution time"),
)


def ncu_counters(
    work: WorkProfile,
    traits: KernelTraits,
    machine: MachineModel,
    gpu_time_seconds: float,
) -> dict[str, float]:
    """Synthesize the Table IV counter set for one kernel run.

    ``work`` must be the *single-GPU* share of the node's work (NCU
    profiles one device); callers with node-level totals divide by
    ``machine.units_per_node`` first.
    """
    if machine.gpu is None:
        raise ValueError(f"{machine.shorthand} is not a GPU machine")
    if gpu_time_seconds <= 0:
        raise ValueError(f"non-positive GPU time: {gpu_time_seconds}")
    sector = float(machine.gpu.sector_bytes)

    # Coalescing amplification: perfectly streaming code touches each
    # sector once; poorly coalesced code re-fetches sectors (up to 4x for
    # 8-byte elements scattered across 32-byte sectors).
    amplification = 1.0 + 3.0 * (1.0 - traits.streaming_eff)

    l1_ld = work.bytes_read * amplification / sector
    l1_st = work.bytes_written * amplification / sector

    l1_hit = min(0.95, L1_BASE_HIT + 0.5 * traits.gpu_cache_resident)
    l2_read = l1_ld * (1.0 - l1_hit)
    l2_write = l1_st * (1.0 - l1_hit)
    l2_atom = work.atomics
    l2_red = 0.25 * work.atomics  # reduction-flavored atomics

    dram_read = work.bytes_read * (1.0 - traits.gpu_cache_resident) / sector
    dram_write = work.bytes_written * (1.0 - traits.gpu_cache_resident) / sector

    return {
        "sm__sass_thread_inst_executed.sum": work.instructions,
        "l1tex__t_sectors_pipe_lsu_mem_global_op_ld.sum": l1_ld,
        "l1tex__t_sectors_pipe_lsu_mem_global_op_st.sum": l1_st,
        "l1tex__t_sectors_pipe_lsu_mem_local_op_ld.sum": 0.0,
        "l1tex__t_requests_pipe_lsu_mem_local_op_st.sum": 0.0,
        "lts__t_sectors_op_read.sum": l2_read,
        "lts__t_sectors_op_write.sum": l2_write,
        "lts__t_sectors_op_atom.sum": l2_atom,
        "lts__t_sectors_op_red.sum": l2_red,
        "dram__sectors_read.sum": dram_read,
        "dram__sectors_write.sum": dram_write,
        "time (gpu)": gpu_time_seconds,
    }
