"""GPU counter simulator: Nsight-Compute-style metrics for the
instruction-roofline analysis (Table IV of the paper).

The time model produces execution time; this package produces the raw
NCU counters (thread instructions, L1/L2/DRAM sectors) that Ding &
Williams' instruction-roofline formulation consumes. Sector counts follow
the 32-byte-sector memory system model, with access-pattern amplification
derived from the kernel's traits.
"""

from repro.gpusim.device import Device
from repro.gpusim.ncu import (
    NCU_METRIC_TABLE,
    NcuMetric,
    ncu_counters,
)

__all__ = ["Device", "NCU_METRIC_TABLE", "NcuMetric", "ncu_counters"]
