"""Apps group: kernels from LLNL multiphysics applications (Table I)."""

from repro.kernels.apps.convection3dpa import AppsConvection3dpa
from repro.kernels.apps.del_dot_vec_2d import AppsDelDotVec2d
from repro.kernels.apps.diffusion3dpa import AppsDiffusion3dpa
from repro.kernels.apps.edge3d import AppsEdge3d
from repro.kernels.apps.energy import AppsEnergy
from repro.kernels.apps.fir import AppsFir
from repro.kernels.apps.ltimes import AppsLtimes
from repro.kernels.apps.ltimes_noview import AppsLtimesNoview
from repro.kernels.apps.mass3dea import AppsMass3dea
from repro.kernels.apps.mass3dpa import AppsMass3dpa
from repro.kernels.apps.matvec_3d_stencil import AppsMatvec3dStencil
from repro.kernels.apps.nodal_accumulation_3d import AppsNodalAccumulation3d
from repro.kernels.apps.pressure import AppsPressure
from repro.kernels.apps.vol3d import AppsVol3d
from repro.kernels.apps.zonal_accumulation_3d import AppsZonalAccumulation3d

__all__ = [
    "AppsConvection3dpa",
    "AppsDelDotVec2d",
    "AppsDiffusion3dpa",
    "AppsEdge3d",
    "AppsEnergy",
    "AppsFir",
    "AppsLtimes",
    "AppsLtimesNoview",
    "AppsMass3dea",
    "AppsMass3dpa",
    "AppsMatvec3dStencil",
    "AppsNodalAccumulation3d",
    "AppsPressure",
    "AppsVol3d",
    "AppsZonalAccumulation3d",
]
