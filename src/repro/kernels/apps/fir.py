"""Apps_FIR: 16-tap finite impulse response filter.

``out[i] = sum_j coeff[j] * in[i+j]``. The input window stays in cache, so
on CPUs it is retiring bound (Section V-B: speeds up on the V100 but not
on SPR-HBM); the tap loop gives it a high FLOP:byte ratio (one of the 17
FLOP-heavy kernels of Fig. 10).
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim import forall
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import RETIRING, derive

TAPS = 16
COEFFS = np.array(
    [3.0, -1.0, -1.0, -1.0, -1.0, 3.0, -1.0, -1.0,
     -1.0, -1.0, 3.0, -1.0, -1.0, -1.0, -1.0, 3.0]
)


@register_kernel
class AppsFir(KernelBase):
    NAME = "FIR"
    GROUP = Group.APPS
    FEATURES = frozenset({Feature.FORALL})
    INSTR_PER_ITER = 40.0

    def setup(self) -> None:
        n = self.problem_size
        self.signal = self.rng.random(n + TAPS)
        self.out = np.zeros(n)

    def bytes_read(self) -> float:
        return 8.0 * self.problem_size  # window reuse: ~1 new element/iter

    def bytes_written(self) -> float:
        return 8.0 * self.problem_size

    def flops(self) -> float:
        return 2.0 * TAPS * self.problem_size

    def traits(self) -> KernelTraits:
        return derive(
            RETIRING,
            simd_eff=0.35,
            frontend_factor=0.15,
            cache_resident=0.9,
            cpu_compute_eff=0.25,
            gpu_compute_eff=0.8,
        )

    def run_base(self, policy: ExecPolicy) -> None:
        out, signal = self.out, self.signal
        out[:] = 0.0
        n = self.problem_size
        for j, c in enumerate(COEFFS):
            out += c * signal[j : j + n]

    def run_raja(self, policy: ExecPolicy) -> None:
        out, signal = self.out, self.signal

        def body(i: np.ndarray) -> None:
            acc = np.zeros(len(i))
            for j, c in enumerate(COEFFS):
                acc += c * signal[i + j]
            out[i] = acc

        forall(policy, self.problem_size, body)

    def checksum(self) -> float:
        return checksum_array(self.out)
