"""Apps_NODAL_ACCUMULATION_3D: scatter zone values to their 8 corner nodes.

The zone-to-node scatter requires atomics (neighboring zones share
nodes). Mixed memory/compute profile (cluster 0).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.apps._mesh import BoxMesh
from repro.perfmodel.traits import KernelTraits
from repro.rajasim import atomic_add, forall
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import BALANCED, derive


@register_kernel
class AppsNodalAccumulation3d(KernelBase):
    NAME = "NODAL_ACCUMUL_3D"
    GROUP = Group.APPS
    FEATURES = frozenset({Feature.FORALL, Feature.ATOMIC})
    INSTR_PER_ITER = 30.0

    def __init__(self, problem_size: int | None = None, seed: int = 4793) -> None:
        super().__init__(problem_size, seed)
        self.mesh = BoxMesh.cube_for_zones(self.problem_size)

    def iterations(self) -> float:
        return float(self.mesh.num_zones)

    def setup(self) -> None:
        self.vol = self.rng.random(self.mesh.num_zones)
        self.node_vals = np.zeros(self.mesh.num_nodes)
        self.corners = self.mesh.zone_corner_nodes()

    def bytes_read(self) -> float:
        return 8.0 * 3.0 * self.iterations()  # vol + RMW node reads (cached)

    def bytes_written(self) -> float:
        return 8.0 * 2.0 * self.iterations()

    def flops(self) -> float:
        return 9.0 * self.iterations()  # val/8 + 8 adds

    def atomics(self) -> float:
        return 0.5 * self.iterations()

    def traits(self) -> KernelTraits:
        return derive(
            BALANCED,
            streaming_eff=0.6,
            simd_eff=0.35,
            cache_resident=0.45,
            cpu_compute_eff=0.12,
        )

    def run_base(self, policy: ExecPolicy) -> None:
        self.node_vals[:] = 0.0
        contribution = 0.125 * self.vol
        for corner in range(8):
            np.add.at(self.node_vals, self.corners[:, corner], contribution)

    def run_raja(self, policy: ExecPolicy) -> None:
        node_vals, corners, vol = self.node_vals, self.corners, self.vol
        node_vals[:] = 0.0

        def body(z: np.ndarray) -> None:
            contribution = 0.125 * vol[z]
            for corner in range(8):
                atomic_add(node_vals, corners[z, corner], contribution)

        forall(policy, self.mesh.num_zones, body)

    def checksum(self) -> float:
        return checksum_array(self.node_vals)
