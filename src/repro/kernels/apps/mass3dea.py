"""Apps_MASS3DEA: mass-matrix *element assembly*.

Assembles the full dense (D^3 x D^3) element mass matrix for every
element: ``M_e[i,j] = sum_q B[q,i] B[q,j] w_e[q]``. The output volume per
iteration depends on the element decomposition, which is why the
similarity analysis excludes it.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.apps._fem import basis_matrices
from repro.perfmodel.traits import KernelTraits
from repro.rajasim.forall import _normalize_segment, iter_partitions
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.rajasim.policies import Backend
from repro.suite.kernel_base import KernelBase
from repro.suite.variants import ALL_BACKENDS
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import BALANCED, derive

D1D = 2
Q1D = 3


@register_kernel
class AppsMass3dea(KernelBase):
    NAME = "MASS3DEA"
    GROUP = Group.APPS
    FEATURES = frozenset({Feature.LAUNCH})
    INSTR_PER_ITER = 0.0
    # RAJA::launch kernels have no OpenMP-target backend (Table I).
    BACKENDS = tuple(
        b for b in ALL_BACKENDS if b is not Backend.OPENMP_TARGET
    )

    def __init__(self, problem_size: int | None = None, seed: int = 4793) -> None:
        super().__init__(problem_size, seed)
        self.ne = max(1, self.problem_size // (D1D**3))
        self.dofs = D1D**3
        self.quads = Q1D**3

    def iterations(self) -> float:
        return float(self.ne * self.dofs)

    def setup(self) -> None:
        b1, _ = basis_matrices(D1D, Q1D, self.rng)
        # Full 3-D basis: (Q^3, D^3) tensor product of the 1-D basis.
        b3 = np.einsum("qi,rj,sk->qrsijk", b1, b1, b1).reshape(self.quads, self.dofs)
        self.basis = b3
        self.w = self.rng.random((self.ne, self.quads)) + 0.5
        self.m = np.zeros((self.ne, self.dofs, self.dofs))

    def bytes_read(self) -> float:
        return 8.0 * self.ne * self.quads

    def bytes_written(self) -> float:
        return 8.0 * self.ne * self.dofs * self.dofs

    def flops(self) -> float:
        return 3.0 * self.ne * self.quads * self.dofs * self.dofs

    def work_profile(self, reps: int = 1):
        from dataclasses import replace

        profile = super().work_profile(reps)
        return replace(profile, instructions=0.8 * profile.flops)

    def traits(self) -> KernelTraits:
        return derive(
            BALANCED,
            streaming_eff=0.7,
            simd_eff=0.6,
            cache_resident=0.6,
            cpu_compute_eff=0.1,
            gpu_compute_eff=0.8,
        )

    def _assemble(self, elems: slice | np.ndarray) -> None:
        self.m[elems] = np.einsum(
            "qi,qj,eq->eij", self.basis, self.basis, self.w[elems]
        )

    def run_base(self, policy: ExecPolicy) -> None:
        self._assemble(slice(None))

    def run_raja(self, policy: ExecPolicy) -> None:
        assemble = self._assemble
        for part in iter_partitions(policy, _normalize_segment(self.ne)):
            assemble(part)

    def checksum(self) -> float:
        return checksum_array(self.m.ravel())
