"""Apps_DIFFUSION3DPA: partially-assembled diffusion (stiffness) action.

Per element: interpolate the three reference gradients to quadrature,
contract with the symmetric 6-component diffusion coefficient tensor
(the real MFEM data layout), and apply the transposes — roughly 3x
MASS3DPA's FLOPs plus the tensor contraction. Among the FLOP-heaviest
kernels in the suite: Fig. 10d reports 14.97 TFLOPS on the MI250X.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.apps._fem import basis_matrices, interp_flops
from repro.perfmodel.traits import KernelTraits
from repro.rajasim.forall import _normalize_segment, iter_partitions
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.rajasim.policies import Backend
from repro.suite.kernel_base import KernelBase
from repro.suite.variants import ALL_BACKENDS
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import BALANCED, derive

D1D = 4
Q1D = 5
# Symmetric-tensor component indices: D[i][j] -> packed slot.
_SYM = ((0, 1, 2), (1, 3, 4), (2, 4, 5))


@register_kernel
class AppsDiffusion3dpa(KernelBase):
    NAME = "DIFFUSION3DPA"
    GROUP = Group.APPS
    FEATURES = frozenset({Feature.LAUNCH})
    INSTR_PER_ITER = 0.0
    # RAJA::launch kernels have no OpenMP-target backend (Table I).
    BACKENDS = tuple(
        b for b in ALL_BACKENDS if b is not Backend.OPENMP_TARGET
    )

    def __init__(self, problem_size: int | None = None, seed: int = 4793) -> None:
        super().__init__(problem_size, seed)
        self.ne = max(1, self.problem_size // (D1D**3))

    def iterations(self) -> float:
        return float(self.ne * D1D**3)

    def setup(self) -> None:
        self.b, self.g = basis_matrices(D1D, Q1D, self.rng)
        self.x = self.rng.random((self.ne, D1D, D1D, D1D))
        # Symmetric 6-component coefficient per quadrature point, with a
        # dominant diagonal so the operator stays positive-ish.
        self.d = self.rng.random((self.ne, 6, Q1D, Q1D, Q1D)) * 0.2
        self.d[:, (0, 3, 5)] += 1.0
        self.y = np.zeros_like(self.x)

    def bytes_read(self) -> float:
        return 8.0 * (self.iterations() + 6.0 * self.ne * Q1D**3)

    def bytes_written(self) -> float:
        return 8.0 * self.iterations()

    def flops(self) -> float:
        # 3 gradient interpolations + 3 transposes + the 3x3 symmetric
        # tensor contraction at each quadrature point.
        return 6.0 * interp_flops(self.ne, D1D, Q1D) + 18.0 * self.ne * Q1D**3

    def work_profile(self, reps: int = 1):
        from dataclasses import replace

        profile = super().work_profile(reps)
        return replace(profile, instructions=0.3 * profile.flops)

    def traits(self) -> KernelTraits:
        return derive(
            BALANCED,
            streaming_eff=0.7,
            simd_eff=0.65,
            cache_resident=0.55,
            cpu_compute_eff=0.13,
            gpu_compute_eff=1.0,
            gpu_eff_overrides={"EPYC-MI250X": 14.974 * 1.06 / 16.852},
            gpu_cache_resident=0.4,
        )

    def _grad(self, mats: tuple, x: np.ndarray) -> np.ndarray:
        m0, m1, m2 = mats
        t1 = np.einsum("qi,eijk->eqjk", m0, x)
        t2 = np.einsum("rj,eqjk->eqrk", m1, t1)
        return np.einsum("sk,eqrk->eqrs", m2, t2)

    def _grad_t(self, mats: tuple, xq: np.ndarray) -> np.ndarray:
        m0, m1, m2 = mats
        t1 = np.einsum("qi,eqrs->eirs", m0, xq)
        t2 = np.einsum("rj,eirs->eijs", m1, t1)
        return np.einsum("sk,eijs->eijk", m2, t2)

    def _apply(self, elems: slice | np.ndarray) -> None:
        b, g = self.b, self.g
        x = self.x[elems]
        d = self.d[elems]
        combos = ((g, b, b), (b, g, b), (b, b, g))
        # Reference gradients at quadrature points.
        grads = [self._grad(mats, x) for mats in combos]
        # Flux: contract with the symmetric coefficient tensor.
        y = None
        for i, mats in enumerate(combos):
            flux = sum(d[:, _SYM[i][j]] * grads[j] for j in range(3))
            contrib = self._grad_t(mats, flux)
            y = contrib if y is None else y + contrib
        self.y[elems] = y

    def run_base(self, policy: ExecPolicy) -> None:
        self._apply(slice(None))

    def run_raja(self, policy: ExecPolicy) -> None:
        apply_ = self._apply
        for part in iter_partitions(policy, _normalize_segment(self.ne)):
            apply_(part)

    def checksum(self) -> float:
        return checksum_array(self.y.ravel())
