"""Apps_PRESSURE: equation-of-state pressure update (two passes)."""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim import forall, slice_capable
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import STREAMING, derive


@register_kernel
class AppsPressure(KernelBase):
    NAME = "PRESSURE"
    GROUP = Group.APPS
    FEATURES = frozenset({Feature.FORALL})
    INSTR_PER_ITER = 12.0

    CLS = 0.3
    P_CUT, PMIN = 1.0e-7, 1.0e-12

    def setup(self) -> None:
        n = self.problem_size
        self.compression = self.rng.random(n) - 0.5
        self.bvc = np.zeros(n)
        self.p_new = np.zeros(n)
        self.e_old = self.rng.random(n)
        self.vnewc = self.rng.random(n) + 0.5

    def bytes_read(self) -> float:
        return 8.0 * 4.0 * self.problem_size

    def bytes_written(self) -> float:
        return 8.0 * 2.0 * self.problem_size

    def flops(self) -> float:
        return 6.0 * self.problem_size

    def launches_per_rep(self) -> float:
        return 2.0

    def traits(self) -> KernelTraits:
        return derive(
            STREAMING,
            streaming_eff=0.9,
            simd_eff=0.8,
            branch_misp_per_iter=0.004,
        )

    def _compute(self, i: object) -> None:
        bvc, compression = self.bvc, self.compression
        p_new, e_old, vnewc = self.p_new, self.e_old, self.vnewc
        bvc[i] = self.CLS * (compression[i] + 1.0)
        p_new[i] = bvc[i] * e_old[i]
        p_new[i] = np.where(np.abs(p_new[i]) < self.P_CUT, 0.0, p_new[i])
        p_new[i] = np.where(vnewc[i] >= 1.0, 0.0, p_new[i])
        p_new[i] = np.maximum(p_new[i], self.PMIN)

    def run_base(self, policy: ExecPolicy) -> None:
        self._compute(slice(None))

    def run_raja(self, policy: ExecPolicy) -> None:
        compute = self._compute

        @slice_capable(fuse=True)
        def body(i: np.ndarray) -> None:
            compute(i)

        forall(policy, self.problem_size, body)

    def checksum(self) -> float:
        return checksum_array(self.p_new) + checksum_array(self.bvc)
