"""Apps_EDGE3D: edge-basis (Nedelec) curl-curl element operator.

Per element: read the per-quadrature-point Jacobians, form the metric
factors (3x3 determinants), and apply a dense 12-edge curl-curl operator
— the FLOP-densest kernel in the suite. Its scalar gather/geometry code
vectorizes terribly on CPUs but maps superbly onto GPUs: the paper
annotates its EPYC-MI250X speedup at 118.6x (Fig. 9) and measures 84.1
TFLOPS there (Fig. 10d). Its outlier profile excludes it from the
similarity clustering.
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim.forall import _normalize_segment, iter_partitions
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.rajasim.policies import Backend
from repro.suite.kernel_base import KernelBase
from repro.suite.variants import ALL_BACKENDS
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import BALANCED, derive

EDGES = 12  # edge dofs per hexahedron
QUADS = 8  # quadrature points


@register_kernel
class AppsEdge3d(KernelBase):
    NAME = "EDGE3D"
    GROUP = Group.APPS
    FEATURES = frozenset({Feature.FORALL})
    INSTR_PER_ITER = 0.0
    # RAJA::launch kernels have no OpenMP-target backend (Table I).
    BACKENDS = tuple(
        b for b in ALL_BACKENDS if b is not Backend.OPENMP_TARGET
    )

    def __init__(self, problem_size: int | None = None, seed: int = 4793) -> None:
        super().__init__(problem_size, seed)
        self.ne = max(1, self.problem_size // EDGES)

    def iterations(self) -> float:
        return float(self.ne * EDGES)

    def setup(self) -> None:
        self.x = self.rng.random((self.ne, EDGES))
        self.y = np.zeros((self.ne, EDGES))
        # Per-quadrature-point curl basis (fixed) and per-element Jacobians.
        self.curl = self.rng.random((QUADS, 3, EDGES)) - 0.5
        self.jac = self.rng.random((self.ne, QUADS, 3, 3)) + np.eye(3)

    def bytes_read(self) -> float:
        # Edge dofs + the full Jacobian field (9 doubles per quad point).
        return 8.0 * (EDGES + 9 * QUADS) * self.ne

    def bytes_written(self) -> float:
        return 8.0 * EDGES * self.ne

    def flops(self) -> float:
        # Per element: QUADS x (det 14 + curl apply 2*3*E + scale 3 +
        # test 2*3*E).
        return self.ne * QUADS * (4.0 * 3.0 * EDGES + 17.0)

    def work_profile(self, reps: int = 1):
        from dataclasses import replace

        profile = super().work_profile(reps)
        # FMA-dense operator application.
        return replace(profile, instructions=0.25 * profile.flops)

    def traits(self) -> KernelTraits:
        return derive(
            BALANCED,
            streaming_eff=0.55,
            simd_eff=0.1,
            cache_resident=0.3,
            frontend_factor=0.1,
            # Scalar geometry code on CPUs; near-ideal on GPUs. The MI250X
            # efficiency is pinned to Fig. 10d's 84.1 TFLOPS.
            cpu_compute_eff=0.02,
            gpu_compute_eff=1.2,
            gpu_eff_overrides={"EPYC-MI250X": 84.113 * 1.12 / 16.852},
            gpu_cache_resident=0.95,
        )

    def _apply(self, elems: slice | np.ndarray) -> None:
        x = self.x[elems]
        metric = np.linalg.det(self.jac[elems])  # (n_e, QUADS)
        # curl_q = C_q x  (per quadrature point, 3-vector)
        cq = np.einsum("qce,ne->nqc", self.curl, x)
        cq *= metric[:, :, None]
        # y += C_q^T curl_q
        self.y[elems] = np.einsum("qce,nqc->ne", self.curl, cq)

    def run_base(self, policy: ExecPolicy) -> None:
        self._apply(slice(None))

    def run_raja(self, policy: ExecPolicy) -> None:
        apply_ = self._apply
        for part in iter_partitions(policy, _normalize_segment(self.ne)):
            apply_(part)

    def checksum(self) -> float:
        return checksum_array(self.y.ravel())
