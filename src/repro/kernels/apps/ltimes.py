"""Apps_LTIMES: discrete-ordinates transport moment accumulation.

``phi(m,g,z) += ell(m,d) * psi(d,g,z)`` summed over directions d, written
through permuted RAJA Views. The small ell matrix and the blocked psi
planes stay cache-resident on CPUs: retiring bound there (Section V-B),
FLOP-heavy on the Fig. 10 scatter.
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim import Layout, View, forall
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import RETIRING, derive

NUM_D = 24  # directions
NUM_G = 4  # energy groups
NUM_M = 6  # moments


@register_kernel
class AppsLtimes(KernelBase):
    NAME = "LTIMES"
    GROUP = Group.APPS
    FEATURES = frozenset({Feature.KERNEL, Feature.VIEW})
    INSTR_PER_ITER = 30.0

    def __init__(self, problem_size: int | None = None, seed: int = 4793) -> None:
        super().__init__(problem_size, seed)
        self.num_z = max(1, self.problem_size // (NUM_G * NUM_M))

    def iterations(self) -> float:
        return float(self.num_z * NUM_G * NUM_M)

    def setup(self) -> None:
        self.ell = self.rng.random(NUM_M * NUM_D)
        self.psi = self.rng.random(NUM_D * NUM_G * self.num_z)
        self.phi = np.zeros(NUM_M * NUM_G * self.num_z)

    def bytes_read(self) -> float:
        # psi and phi are each touched once per (g,z) slice; ell cached.
        return 8.0 * 2.0 * self.iterations()

    def bytes_written(self) -> float:
        return 8.0 * self.iterations()

    def flops(self) -> float:
        return 2.0 * NUM_D * self.iterations()

    def traits(self) -> KernelTraits:
        return derive(
            RETIRING,
            simd_eff=0.35,
            frontend_factor=0.18,
            cache_resident=0.88,
            cpu_compute_eff=0.2,
            gpu_compute_eff=0.7,
        )

    def _views(self):
        ell = View(self.ell, Layout((NUM_M, NUM_D)))
        psi = View(self.psi, Layout((NUM_D, NUM_G, self.num_z)))
        phi = View(self.phi, Layout((NUM_M, NUM_G, self.num_z)))
        return ell, psi, phi

    def run_base(self, policy: ExecPolicy) -> None:
        ell = self.ell.reshape(NUM_M, NUM_D)
        psi = self.psi.reshape(NUM_D, NUM_G * self.num_z)
        phi = self.phi.reshape(NUM_M, NUM_G * self.num_z)
        # Accumulate direction-by-direction to match the loop nest's order.
        for d in range(NUM_D):
            phi += np.outer(ell[:, d], psi[d])

    def run_raja(self, policy: ExecPolicy) -> None:
        ell, psi, phi = self._views()
        num_z = self.num_z

        def body(z: np.ndarray) -> None:
            for m in range(NUM_M):
                for g in range(NUM_G):
                    for d in range(NUM_D):
                        phi[m, g, z] = phi[m, g, z] + ell[m, d] * psi[d, g, z]

        forall(policy, num_z, body)

    def checksum(self) -> float:
        return checksum_array(self.phi)
