"""Apps_MASS3DPA: partially-assembled mass-matrix action (MFEM-style).

``Y_e = B^T (D_e o (B X_e))`` per element with sum-factorized tensor
contractions. FLOP-dense (one of Fig. 10's 17 FLOP-heavy kernels) with a
mixed memory profile (cluster 0).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.apps._fem import basis_matrices, interp_3d, interp_flops, interp_t_3d
from repro.perfmodel.traits import KernelTraits
from repro.rajasim.forall import _normalize_segment, iter_partitions
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.rajasim.policies import Backend
from repro.suite.kernel_base import KernelBase
from repro.suite.variants import ALL_BACKENDS
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import BALANCED, derive

D1D = 4
Q1D = 5


@register_kernel
class AppsMass3dpa(KernelBase):
    NAME = "MASS3DPA"
    GROUP = Group.APPS
    FEATURES = frozenset({Feature.LAUNCH})
    INSTR_PER_ITER = 0.0
    # RAJA::launch kernels have no OpenMP-target backend (Table I).
    BACKENDS = tuple(
        b for b in ALL_BACKENDS if b is not Backend.OPENMP_TARGET
    )

    def __init__(self, problem_size: int | None = None, seed: int = 4793) -> None:
        super().__init__(problem_size, seed)
        self.ne = max(1, self.problem_size // (D1D**3))

    def iterations(self) -> float:
        return float(self.ne * D1D**3)

    def setup(self) -> None:
        self.b, _ = basis_matrices(D1D, Q1D, self.rng)
        self.x = self.rng.random((self.ne, D1D, D1D, D1D))
        self.d = self.rng.random((self.ne, Q1D, Q1D, Q1D)) + 0.5
        self.y = np.zeros_like(self.x)

    def bytes_read(self) -> float:
        # X, the quadrature data D (Q^3 per element), B cached.
        return 8.0 * (self.iterations() + self.ne * Q1D**3)

    def bytes_written(self) -> float:
        return 8.0 * self.iterations()

    def flops(self) -> float:
        return 2.0 * interp_flops(self.ne, D1D, Q1D) + self.ne * Q1D**3

    def work_profile(self, reps: int = 1):
        from dataclasses import replace

        profile = super().work_profile(reps)
        return replace(profile, instructions=0.3 * profile.flops)

    def traits(self) -> KernelTraits:
        return derive(
            BALANCED,
            streaming_eff=0.7,
            simd_eff=0.6,
            cache_resident=0.5,
            cpu_compute_eff=0.12,
            gpu_compute_eff=1.0,
            gpu_cache_resident=0.4,
        )

    def _apply(self, elems: slice | np.ndarray) -> None:
        xq = interp_3d(self.b, self.x[elems])
        xq *= self.d[elems]
        self.y[elems] = interp_t_3d(self.b, xq)

    def run_base(self, policy: ExecPolicy) -> None:
        self._apply(slice(None))

    def run_raja(self, policy: ExecPolicy) -> None:
        apply_ = self._apply
        for part in iter_partitions(policy, _normalize_segment(self.ne)):
            apply_(part)

    def checksum(self) -> float:
        return checksum_array(self.y.ravel())
