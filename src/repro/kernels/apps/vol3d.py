"""Apps_VOL3D: hexahedral zone volumes from nodal coordinates.

The exact hex-volume formula (three scalar triple products over corner
diagonals, as in LULESH's ``CalcElemVolume``). Gathering 24 coordinates
that are heavily reused across neighboring zones keeps it cache-friendly
— retiring bound on CPUs (Section V-B) — while the ~70 FLOPs per zone put
it among the FLOP-heavy kernels, reaching 11.3 TFLOPS on the MI250X
(Fig. 10d).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.apps._mesh import BoxMesh
from repro.perfmodel.traits import KernelTraits
from repro.rajasim import forall
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import RETIRING, derive


def _triple(ax, ay, az, bx, by, bz, cx, cy, cz):
    """Scalar triple product a . (b x c)."""
    return ax * (by * cz - bz * cy) + ay * (bz * cx - bx * cz) + az * (bx * cy - by * cx)


@register_kernel
class AppsVol3d(KernelBase):
    NAME = "VOL3D"
    GROUP = Group.APPS
    FEATURES = frozenset({Feature.FORALL})
    INSTR_PER_ITER = 90.0

    def __init__(self, problem_size: int | None = None, seed: int = 4793) -> None:
        super().__init__(problem_size, seed)
        self.mesh = BoxMesh.cube_for_zones(self.problem_size)

    def iterations(self) -> float:
        return float(self.mesh.num_zones)

    def setup(self) -> None:
        self.x, self.y, self.z = self.mesh.node_coordinates(
            jitter=0.2, rng=self.rng
        )
        self.vol = np.zeros(self.mesh.num_zones)
        self.corners = self.mesh.zone_corner_nodes()

    def bytes_read(self) -> float:
        # 8 corners x 3 coords, ~75% reused from cache lines of neighbors.
        return 8.0 * 6.0 * self.iterations()

    def bytes_written(self) -> float:
        return 8.0 * self.iterations()

    def flops(self) -> float:
        return 72.0 * self.iterations()

    def traits(self) -> KernelTraits:
        return derive(
            RETIRING,
            simd_eff=0.3,
            frontend_factor=0.2,
            cache_resident=0.8,
            cpu_compute_eff=0.25,
            gpu_compute_eff=1.0,
            gpu_eff_overrides={"EPYC-MI250X": 11.259 * 1.14 / 16.852},
        )

    def _volumes(self, zones: np.ndarray) -> np.ndarray:
        c = self.corners[zones]
        px = self.x[c]  # (nz, 8)
        py = self.y[c]
        pz = self.z[c]

        def d(a: int, b: int):
            return px[:, a] - px[:, b], py[:, a] - py[:, b], pz[:, a] - pz[:, b]

        d31, d72, d63, d20 = d(3, 1), d(7, 2), d(6, 3), d(2, 0)
        d43, d57, d64, d70 = d(4, 3), d(5, 7), d(6, 4), d(7, 0)
        d14, d25, d61, d50 = d(1, 4), d(2, 5), d(6, 1), d(5, 0)

        t1 = _triple(
            d31[0] + d72[0], d31[1] + d72[1], d31[2] + d72[2], *d63, *d20
        )
        t2 = _triple(
            d43[0] + d57[0], d43[1] + d57[1], d43[2] + d57[2], *d64, *d70
        )
        t3 = _triple(
            d14[0] + d25[0], d14[1] + d25[1], d14[2] + d25[2], *d61, *d50
        )
        return (t1 + t2 + t3) / 12.0

    def run_base(self, policy: ExecPolicy) -> None:
        self.vol[:] = self._volumes(self.mesh.zone_ids())

    def run_raja(self, policy: ExecPolicy) -> None:
        vol, volumes = self.vol, self._volumes

        def body(i: np.ndarray) -> None:
            vol[i] = volumes(i)

        forall(policy, self.mesh.num_zones, body)

    def checksum(self) -> float:
        return checksum_array(self.vol)
