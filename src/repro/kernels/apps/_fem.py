"""Shared helpers for the MFEM-style partial-assembly element kernels.

The *PA kernels (MASS3DPA, DIFFUSION3DPA, CONVECTION3DPA) operate on
batches of hexahedral elements with a tensor-product basis: ``D1D`` dofs
and ``Q1D`` quadrature points per dimension. ``B`` interpolates dof ->
quadrature, ``G`` differentiates; sum-factorized contractions apply them
one dimension at a time (that is what makes these kernels FLOP-dense).
"""

from __future__ import annotations

import numpy as np


def basis_matrices(d1d: int, q1d: int, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic interpolation (B) and gradient (G) basis matrices.

    Real kernels use Gauss-Legendre values; well-conditioned fixed
    matrices exercise the identical data flow.
    """
    # Deterministic but non-trivial: rows are smooth functions of columns.
    q = np.linspace(0.0, 1.0, q1d)[:, None]
    d = np.arange(d1d)[None, :]
    b = np.cos(np.pi * q * (d + 0.5) / d1d) / d1d + 0.5 / d1d
    g = -np.sin(np.pi * q * (d + 0.5) / d1d) * (np.pi * (d + 0.5) / d1d) / d1d
    return b, g


def interp_3d(b: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Sum-factorized interpolation: (E, D,D,D) -> (E, Q,Q,Q).

    Applies ``b`` along each dimension in turn, exactly as the
    sum-factorized GPU kernels stage through shared memory.
    """
    t1 = np.einsum("qi,eijk->eqjk", b, x)
    t2 = np.einsum("rj,eqjk->eqrk", b, t1)
    return np.einsum("sk,eqrk->eqrs", b, t2)


def interp_t_3d(b: np.ndarray, xq: np.ndarray) -> np.ndarray:
    """Transpose interpolation: (E, Q,Q,Q) -> (E, D,D,D)."""
    t1 = np.einsum("qi,eqrs->eirs", b, xq)
    t2 = np.einsum("rj,eirs->eijs", b, t1)
    return np.einsum("sk,eijs->eijk", b, t2)


def interp_flops(e: int, d1d: int, q1d: int) -> float:
    """FLOPs of one sum-factorized interpolation over ``e`` elements."""
    return 2.0 * e * (
        q1d * d1d * d1d * d1d + q1d * q1d * d1d * d1d + q1d * q1d * q1d * d1d
    )
