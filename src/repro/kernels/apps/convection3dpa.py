"""Apps_CONVECTION3DPA: partially-assembled convection action.

Interpolate to quadrature, apply a velocity-weighted directional
derivative, and test against the basis — between MASS3DPA and
DIFFUSION3DPA in FLOP density. Deep sum-factorized loop nests make it
frontend/retiring heavy on CPUs (cluster 1).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.apps._fem import basis_matrices, interp_3d, interp_flops, interp_t_3d
from repro.perfmodel.traits import KernelTraits
from repro.rajasim.forall import _normalize_segment, iter_partitions
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.rajasim.policies import Backend
from repro.suite.kernel_base import KernelBase
from repro.suite.variants import ALL_BACKENDS
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import RETIRING, derive

D1D = 4
Q1D = 5


@register_kernel
class AppsConvection3dpa(KernelBase):
    NAME = "CONVECTION3DPA"
    GROUP = Group.APPS
    FEATURES = frozenset({Feature.LAUNCH})
    INSTR_PER_ITER = 0.0
    # RAJA::launch kernels have no OpenMP-target backend (Table I).
    BACKENDS = tuple(
        b for b in ALL_BACKENDS if b is not Backend.OPENMP_TARGET
    )

    def __init__(self, problem_size: int | None = None, seed: int = 4793) -> None:
        super().__init__(problem_size, seed)
        self.ne = max(1, self.problem_size // (D1D**3))

    def iterations(self) -> float:
        return float(self.ne * D1D**3)

    def setup(self) -> None:
        self.b, self.g = basis_matrices(D1D, Q1D, self.rng)
        self.x = self.rng.random((self.ne, D1D, D1D, D1D))
        # Velocity-weighted quadrature data, one coefficient per direction.
        self.u = self.rng.random((3, self.ne, Q1D, Q1D, Q1D))
        self.y = np.zeros_like(self.x)

    def bytes_read(self) -> float:
        return 8.0 * (self.iterations() + 3.0 * self.ne * Q1D**3)

    def bytes_written(self) -> float:
        return 8.0 * self.iterations()

    def flops(self) -> float:
        return 4.0 * interp_flops(self.ne, D1D, Q1D) + 3.0 * self.ne * Q1D**3

    def work_profile(self, reps: int = 1):
        from dataclasses import replace

        profile = super().work_profile(reps)
        return replace(profile, instructions=0.3 * profile.flops)

    def traits(self) -> KernelTraits:
        return derive(
            RETIRING,
            simd_eff=0.35,
            frontend_factor=0.2,
            cache_resident=0.85,
            cpu_compute_eff=0.2,
            gpu_compute_eff=0.9,
            streaming_eff=0.75,
        )

    def _apply(self, elems: slice | np.ndarray) -> None:
        b, g = self.b, self.g
        x = self.x[elems]
        combos = ((g, b, b), (b, g, b), (b, b, g))
        acc = None
        for direction, mats in enumerate(combos):
            m0, m1, m2 = mats
            t1 = np.einsum("qi,eijk->eqjk", m0, x)
            t2 = np.einsum("rj,eqjk->eqrk", m1, t1)
            dq = np.einsum("sk,eqrk->eqrs", m2, t2)
            dq = dq * self.u[direction][elems]
            acc = dq if acc is None else acc + dq
        self.y[elems] = interp_t_3d(b, acc)

    def run_base(self, policy: ExecPolicy) -> None:
        self._apply(slice(None))

    def run_raja(self, policy: ExecPolicy) -> None:
        apply_ = self._apply
        for part in iter_partitions(policy, _normalize_segment(self.ne)):
            apply_(part)

    def checksum(self) -> float:
        return checksum_array(self.y.ravel())
