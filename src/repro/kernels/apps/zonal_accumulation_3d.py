"""Apps_ZONAL_ACCUMUL_3D: gather 8 corner node values into each zone.

The gather dual of NODAL_ACCUMULATION_3D — no atomics needed, since each
zone writes only its own slot.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.apps._mesh import BoxMesh
from repro.perfmodel.traits import KernelTraits
from repro.rajasim import forall
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import BALANCED, derive


@register_kernel
class AppsZonalAccumulation3d(KernelBase):
    NAME = "ZONAL_ACCUMUL_3D"
    GROUP = Group.APPS
    FEATURES = frozenset({Feature.FORALL})
    INSTR_PER_ITER = 24.0

    def __init__(self, problem_size: int | None = None, seed: int = 4793) -> None:
        super().__init__(problem_size, seed)
        self.mesh = BoxMesh.cube_for_zones(self.problem_size)

    def iterations(self) -> float:
        return float(self.mesh.num_zones)

    def setup(self) -> None:
        self.node_vals = self.rng.random(self.mesh.num_nodes)
        self.zone_vals = np.zeros(self.mesh.num_zones)
        self.corners = self.mesh.zone_corner_nodes()

    def bytes_read(self) -> float:
        return 8.0 * 4.0 * self.iterations()  # 8 gathers, ~half cached

    def bytes_written(self) -> float:
        return 8.0 * self.iterations()

    def flops(self) -> float:
        return 8.0 * self.iterations()

    def traits(self) -> KernelTraits:
        return derive(
            BALANCED,
            streaming_eff=0.65,
            simd_eff=0.4,
            cache_resident=0.4,
            cpu_compute_eff=0.12,
        )

    def _gather(self, z: np.ndarray) -> np.ndarray:
        c = self.corners[z]
        vals = self.node_vals
        acc = vals[c[:, 0]].copy()
        for corner in range(1, 8):
            acc += vals[c[:, corner]]
        return 0.125 * acc

    def run_base(self, policy: ExecPolicy) -> None:
        self.zone_vals[:] = self._gather(self.mesh.zone_ids())

    def run_raja(self, policy: ExecPolicy) -> None:
        zone_vals, gather = self.zone_vals, self._gather

        def body(z: np.ndarray) -> None:
            zone_vals[z] = gather(z)

        forall(policy, self.mesh.num_zones, body)

    def checksum(self) -> float:
        return checksum_array(self.zone_vals)
