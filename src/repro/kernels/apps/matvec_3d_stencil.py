"""Apps_MATVEC_3D_STENCIL: 27-point stencil matrix-vector product.

``b[z] = sum over 27 neighbors of matrix(z, s) * x[neighbor(z, s)]``.
Neighbor loads hit cache lines repeatedly, so despite the large nominal
byte count it is *not* memory bound on the SPR systems (Section III-A).
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim import forall
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import RETIRING, derive

STENCIL = 27


@register_kernel
class AppsMatvec3dStencil(KernelBase):
    NAME = "MATVEC_3D_STENCIL"
    GROUP = Group.APPS
    FEATURES = frozenset({Feature.FORALL})
    INSTR_PER_ITER = 100.0

    def __init__(self, problem_size: int | None = None, seed: int = 4793) -> None:
        super().__init__(problem_size, seed)
        self.m = max(3, int(round(self.problem_size ** (1.0 / 3.0))))

    def iterations(self) -> float:
        return float((self.m - 2) ** 3)

    def setup(self) -> None:
        m = self.m
        n_total = m * m * m
        self.x = self.rng.random(n_total)
        self.b = np.zeros(n_total)
        self.matrix = self.rng.random((STENCIL, n_total))
        # Interior zone ids and the 27 neighbor offsets.
        k, j, i = np.meshgrid(
            np.arange(1, m - 1), np.arange(1, m - 1), np.arange(1, m - 1),
            indexing="ij",
        )
        self.interior = (i + m * (j + m * k)).ravel()
        dk, dj, di = np.meshgrid([-1, 0, 1], [-1, 0, 1], [-1, 0, 1], indexing="ij")
        self.offsets = (di + m * (dj + m * dk)).ravel()

    def bytes_read(self) -> float:
        # matrix streamed (27 doubles/zone) + x mostly cached.
        return 8.0 * (STENCIL + 2) * self.iterations()

    def bytes_written(self) -> float:
        return 8.0 * self.iterations()

    def flops(self) -> float:
        return 2.0 * STENCIL * self.iterations()

    def traits(self) -> KernelTraits:
        return derive(
            RETIRING,
            simd_eff=0.35,
            frontend_factor=0.16,
            cache_resident=0.85,
            cpu_compute_eff=0.2,
            gpu_compute_eff=0.7,
            streaming_eff=0.8,
        )

    def _compute(self, rows: np.ndarray) -> np.ndarray:
        zones = self.interior[rows]
        acc = np.zeros(len(zones))
        for s, off in enumerate(self.offsets):
            acc += self.matrix[s, zones] * self.x[zones + off]
        return acc

    def run_base(self, policy: ExecPolicy) -> None:
        self.b[self.interior] = self._compute(np.arange(len(self.interior)))

    def run_raja(self, policy: ExecPolicy) -> None:
        b, interior, compute = self.b, self.interior, self._compute

        def body(r: np.ndarray) -> None:
            b[interior[r]] = compute(r)

        forall(policy, len(self.interior), body)

    def checksum(self) -> float:
        return checksum_array(self.b)
