"""Apps_ENERGY: hydrodynamics energy update (six sequential passes).

Streaming updates with data-dependent selects, from LLNL multiphysics
hydro packages. Firmly memory bound.
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim import forall, slice_capable
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import STREAMING, derive


@register_kernel
class AppsEnergy(KernelBase):
    NAME = "ENERGY"
    GROUP = Group.APPS
    FEATURES = frozenset({Feature.FORALL})
    INSTR_PER_ITER = 30.0

    RHO0, E_CUT, EMIN = 1.0, 1.0e-7, 1.0e-12
    Q_CUT, U_CUT, P_CUT = 1.0e-7, 1.0e-7, 1.0e-7

    def setup(self) -> None:
        n = self.problem_size
        r = self.rng.random
        self.e_new = np.zeros(n)
        self.e_old = r(n)
        self.delvc = r(n) - 0.5
        self.p_new = r(n)
        self.p_old = r(n)
        self.q_new = np.zeros(n)
        self.q_old = r(n)
        self.work = r(n) * 0.1
        self.compHalfStep = r(n)
        self.pHalfStep = r(n)
        self.bvc = r(n)
        self.pbvc = r(n)
        self.ql_old = r(n) * 0.1
        self.qq_old = r(n) * 0.1
        self.vnewc = r(n) + 0.5

    def bytes_read(self) -> float:
        return 8.0 * 12.0 * self.problem_size

    def bytes_written(self) -> float:
        return 8.0 * 3.0 * self.problem_size

    def flops(self) -> float:
        return 22.0 * self.problem_size

    def launches_per_rep(self) -> float:
        return 6.0

    def traits(self) -> KernelTraits:
        return derive(
            STREAMING,
            streaming_eff=0.88,
            simd_eff=0.75,
            branch_misp_per_iter=0.005,
        )

    def _compute(self, i: object) -> None:
        e_new, e_old, delvc = self.e_new, self.e_old, self.delvc
        p_old, q_old, work = self.p_old, self.q_old, self.work
        compHalfStep, pHalfStep = self.compHalfStep, self.pHalfStep
        bvc, pbvc = self.bvc, self.pbvc
        ql_old, qq_old = self.ql_old, self.qq_old
        q_new, vnewc, p_new = self.q_new, self.vnewc, self.p_new

        # Pass 1: half-step energy.
        e_new[i] = e_old[i] - 0.5 * delvc[i] * (p_old[i] + q_old[i]) + 0.5 * work[i]
        # Pass 2: artificial viscosity at the half step.
        vhalf = 1.0 / (1.0 + compHalfStep[i])
        ssc = np.maximum(
            pbvc[i] * e_new[i] + vhalf * vhalf * bvc[i] * pHalfStep[i], 0.0
        )
        ssc = np.sqrt(np.maximum(ssc, 1.111e-36))
        q_mid = ssc * ql_old[i] + qq_old[i]
        q_new[i] = np.where(delvc[i] > 0.0, 0.0, q_mid)
        # Pass 3: full-step energy.
        e_new[i] = e_new[i] + 0.5 * delvc[i] * (
            3.0 * (p_old[i] + q_old[i]) - 4.0 * (pHalfStep[i] + q_new[i])
        )
        # Pass 4: add work, clamp.
        e_new[i] = e_new[i] + 0.5 * work[i]
        e_new[i] = np.where(np.abs(e_new[i]) < self.E_CUT, 0.0, e_new[i])
        e_new[i] = np.maximum(e_new[i], self.EMIN)
        # Pass 5: pressure-consistent correction.
        q_tilde = np.maximum(
            pbvc[i] * e_new[i] + vnewc[i] * vnewc[i] * bvc[i] * p_new[i], 0.0
        )
        e_new[i] = e_new[i] - 0.0625 * (7.0 * (p_old[i] + q_old[i]) - q_tilde)
        # Pass 6: final clamps.
        e_new[i] = np.where(np.abs(e_new[i]) < self.E_CUT, 0.0, e_new[i])
        e_new[i] = np.maximum(e_new[i], self.EMIN)

    def run_base(self, policy: ExecPolicy) -> None:
        self._compute(slice(None))

    def run_raja(self, policy: ExecPolicy) -> None:
        compute = self._compute

        @slice_capable(fuse=True)
        def body(i: np.ndarray) -> None:
            compute(i)

        forall(policy, self.problem_size, body)

    def checksum(self) -> float:
        return checksum_array(self.e_new) + checksum_array(self.q_new)
