"""Structured 3-D box-mesh helpers shared by the Apps mesh kernels.

RAJAPerf's Apps kernels operate on an ``ADomain``-style structured mesh:
zones indexed (i,j,k) on an (nx,ny,nz) box, nodes on the (nx+1)^3 lattice,
and each zone touching its 8 corner nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BoxMesh:
    """An nx x ny x nz zone box with its node lattice."""

    nx: int
    ny: int
    nz: int

    def __post_init__(self) -> None:
        if min(self.nx, self.ny, self.nz) < 1:
            raise ValueError(f"degenerate mesh {self.nx}x{self.ny}x{self.nz}")

    @classmethod
    def cube_for_zones(cls, zones: int) -> "BoxMesh":
        edge = max(1, round(zones ** (1.0 / 3.0)))
        return cls(edge, edge, edge)

    @property
    def num_zones(self) -> int:
        return self.nx * self.ny * self.nz

    @property
    def num_nodes(self) -> int:
        return (self.nx + 1) * (self.ny + 1) * (self.nz + 1)

    def zone_ids(self) -> np.ndarray:
        return np.arange(self.num_zones, dtype=np.intp)

    def zone_corner_nodes(self) -> np.ndarray:
        """(num_zones, 8) node ids of each zone's corners.

        Corner order follows the usual hexahedron convention:
        (i,j,k), (i+1,j,k), (i+1,j+1,k), (i,j+1,k), then the k+1 plane.
        """
        nx, ny, nz = self.nx, self.ny, self.nz
        npx, npy = nx + 1, ny + 1
        k, j, i = np.meshgrid(
            np.arange(nz), np.arange(ny), np.arange(nx), indexing="ij"
        )
        base = (i + npx * (j + npy * k)).ravel()
        dx, dy, dz = 1, npx, npx * npy
        offsets = np.array(
            [0, dx, dx + dy, dy, dz, dx + dz, dx + dy + dz, dy + dz], dtype=np.intp
        )
        return base[:, None] + offsets[None, :]

    def node_coordinates(self, jitter: float = 0.0, rng: np.random.Generator | None = None):
        """x/y/z coordinate arrays over nodes, optionally jittered
        (non-degenerate hex volumes for VOL3D)."""
        npx, npy, npz = self.nx + 1, self.ny + 1, self.nz + 1
        k, j, i = np.meshgrid(
            np.arange(npz, dtype=np.float64),
            np.arange(npy, dtype=np.float64),
            np.arange(npx, dtype=np.float64),
            indexing="ij",
        )
        x, y, z = i.ravel(), j.ravel(), k.ravel()
        if jitter > 0.0:
            if rng is None:
                rng = np.random.default_rng(0)
            x = x + jitter * (rng.random(x.size) - 0.5)
            y = y + jitter * (rng.random(y.size) - 0.5)
            z = z + jitter * (rng.random(z.size) - 0.5)
        return x, y, z
