"""Apps_DEL_DOT_VEC_2D: divergence of a 2-D vector field on a quad mesh.

Per-zone gather of 4 corner node values for each of x/y coordinates and
velocities, plus ~50 FLOPs of geometric work — a FLOP-heavy kernel that
remains partly memory bound (cluster 0).
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim import forall
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import BALANCED, derive

PTINY = 1.0e-80
HALF = 0.5


@register_kernel
class AppsDelDotVec2d(KernelBase):
    NAME = "DEL_DOT_VEC_2D"
    GROUP = Group.APPS
    FEATURES = frozenset({Feature.FORALL})
    INSTR_PER_ITER = 60.0

    def __init__(self, problem_size: int | None = None, seed: int = 4793) -> None:
        super().__init__(problem_size, seed)
        edge = max(2, int(round(self.problem_size**0.5)))
        self.nx = self.ny = edge

    def iterations(self) -> float:
        return float(self.nx * self.ny)

    def setup(self) -> None:
        npx, npy = self.nx + 1, self.ny + 1
        num_nodes = npx * npy
        j, i = np.meshgrid(np.arange(self.ny), np.arange(self.nx), indexing="ij")
        base = (i + npx * j).ravel()
        self.c0 = base
        self.c1 = base + 1
        self.c2 = base + 1 + npx
        self.c3 = base + npx
        jj, ii = np.meshgrid(
            np.arange(npy, dtype=np.float64),
            np.arange(npx, dtype=np.float64),
            indexing="ij",
        )
        self.x = ii.ravel() + 0.1 * (self.rng.random(num_nodes) - 0.5)
        self.y = jj.ravel() + 0.1 * (self.rng.random(num_nodes) - 0.5)
        self.xdot = self.rng.random(num_nodes)
        self.ydot = self.rng.random(num_nodes)
        self.div = np.zeros(self.nx * self.ny)

    def bytes_read(self) -> float:
        # 4 corners x (x, y, xdot, ydot), but neighbors share corners so
        # each node value is charged once (analytic bytes touched).
        return 8.0 * 5.0 * self.iterations()

    def bytes_written(self) -> float:
        return 8.0 * self.iterations()

    def flops(self) -> float:
        return 54.0 * self.iterations()  # > bytes: one of Fig. 10's FLOP-heavy set

    def traits(self) -> KernelTraits:
        return derive(
            BALANCED,
            streaming_eff=0.65,
            simd_eff=0.5,
            cache_resident=0.45,
            cpu_compute_eff=0.15,
            gpu_compute_eff=0.9,
        )

    def _compute(self, zones: np.ndarray) -> np.ndarray:
        x, y, xd, yd = self.x, self.y, self.xdot, self.ydot
        c0, c1, c2, c3 = self.c0[zones], self.c1[zones], self.c2[zones], self.c3[zones]
        xi = HALF * ((x[c1] + x[c2]) - (x[c0] + x[c3]))
        xj = HALF * ((x[c3] + x[c2]) - (x[c0] + x[c1]))
        yi = HALF * ((y[c1] + y[c2]) - (y[c0] + y[c3]))
        yj = HALF * ((y[c3] + y[c2]) - (y[c0] + y[c1]))
        fx = xi * xi + xj * xj
        fy = yi * yi + yj * yj
        rarea = 1.0 / (xi * yj - xj * yi + PTINY)
        dxdxdot = HALF * ((xd[c1] + xd[c2]) - (xd[c0] + xd[c3]))
        dydxdot = HALF * ((xd[c3] + xd[c2]) - (xd[c0] + xd[c1]))
        dxdydot = HALF * ((yd[c1] + yd[c2]) - (yd[c0] + yd[c3]))
        dydydot = HALF * ((yd[c3] + yd[c2]) - (yd[c0] + yd[c1]))
        return rarea * (
            dxdxdot * yj - dydxdot * yi - dxdydot * xj + dydydot * xi
        ) + 0.0 * (fx + fy)  # metric terms kept live for the FLOP count

    def run_base(self, policy: ExecPolicy) -> None:
        self.div[:] = self._compute(np.arange(self.nx * self.ny))

    def run_raja(self, policy: ExecPolicy) -> None:
        div, compute = self.div, self._compute

        def body(i: np.ndarray) -> None:
            div[i] = compute(i)

        forall(policy, self.nx * self.ny, body)

    def checksum(self) -> float:
        return checksum_array(self.div)
