"""Apps_LTIMES_NOVIEW: LTIMES with raw index arithmetic instead of Views.

The LTIMES / LTIMES_NOVIEW pair measures the abstraction cost of RAJA's
View/Layout machinery; both carry the same analytic metrics.
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim import forall
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import RETIRING, derive

NUM_D = 24
NUM_G = 4
NUM_M = 6


@register_kernel
class AppsLtimesNoview(KernelBase):
    NAME = "LTIMES_NOVIEW"
    GROUP = Group.APPS
    FEATURES = frozenset({Feature.KERNEL})
    INSTR_PER_ITER = 28.0

    def __init__(self, problem_size: int | None = None, seed: int = 4793) -> None:
        super().__init__(problem_size, seed)
        self.num_z = max(1, self.problem_size // (NUM_G * NUM_M))

    def iterations(self) -> float:
        return float(self.num_z * NUM_G * NUM_M)

    def setup(self) -> None:
        self.ell = self.rng.random(NUM_M * NUM_D)
        self.psi = self.rng.random(NUM_D * NUM_G * self.num_z)
        self.phi = np.zeros(NUM_M * NUM_G * self.num_z)

    def bytes_read(self) -> float:
        return 8.0 * 2.0 * self.iterations()

    def bytes_written(self) -> float:
        return 8.0 * self.iterations()

    def flops(self) -> float:
        return 2.0 * NUM_D * self.iterations()

    def traits(self) -> KernelTraits:
        return derive(
            RETIRING,
            simd_eff=0.38,  # slightly better than the View variant
            frontend_factor=0.16,
            cache_resident=0.88,
            cpu_compute_eff=0.2,
            gpu_compute_eff=0.7,
        )

    def run_base(self, policy: ExecPolicy) -> None:
        ell = self.ell.reshape(NUM_M, NUM_D)
        psi = self.psi.reshape(NUM_D, NUM_G * self.num_z)
        phi = self.phi.reshape(NUM_M, NUM_G * self.num_z)
        for d in range(NUM_D):
            phi += np.outer(ell[:, d], psi[d])

    def run_raja(self, policy: ExecPolicy) -> None:
        ell, psi, phi = self.ell, self.psi, self.phi
        num_z = self.num_z

        def body(z: np.ndarray) -> None:
            for m in range(NUM_M):
                for g in range(NUM_G):
                    phi_idx = m * (NUM_G * num_z) + g * num_z + z
                    for d in range(NUM_D):
                        phi[phi_idx] += ell[m * NUM_D + d] * psi[
                            d * (NUM_G * num_z) + g * num_z + z
                        ]

        forall(policy, num_z, body)

    def checksum(self) -> float:
        return checksum_array(self.phi)
