"""Basic_COPY8: copy eight independent arrays in one loop.

A wide streaming kernel: 8 loads + 8 stores per iteration, probing whether
the memory system sustains many concurrent streams.
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim import forall, slice_capable
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import STREAMING, derive

NUM_ARRAYS = 8


@register_kernel
class BasicCopy8(KernelBase):
    NAME = "COPY8"
    GROUP = Group.BASIC
    FEATURES = frozenset({Feature.FORALL})
    INSTR_PER_ITER = 20.0

    def setup(self) -> None:
        n = self.problem_size
        self.src = [self.rng.random(n) for _ in range(NUM_ARRAYS)]
        self.dst = [np.zeros(n) for _ in range(NUM_ARRAYS)]

    def bytes_read(self) -> float:
        return 8.0 * NUM_ARRAYS * self.problem_size

    def bytes_written(self) -> float:
        return 8.0 * NUM_ARRAYS * self.problem_size

    def flops(self) -> float:
        return 0.0

    def traits(self) -> KernelTraits:
        # Eight concurrent streams slightly reduce achievable bandwidth.
        return derive(STREAMING, streaming_eff=0.92, simd_eff=0.9)

    def run_base(self, policy: ExecPolicy) -> None:
        for src, dst in zip(self.src, self.dst):
            np.copyto(dst, src)

    def run_raja(self, policy: ExecPolicy) -> None:
        src, dst = self.src, self.dst

        @slice_capable(fuse=True)
        def body(i: np.ndarray) -> None:
            for k in range(NUM_ARRAYS):
                dst[k][i] = src[k][i]

        forall(policy, self.problem_size, body)

    def checksum(self) -> float:
        return float(sum(checksum_array(d) for d in self.dst))
