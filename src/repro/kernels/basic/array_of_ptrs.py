"""Basic_ARRAY_OF_PTRS: sum through an array of pointers.

Each iteration dereferences a small array of pointers to gather its
operands — the indirection pattern that appears when C++ objects hold
raw pointers. The extra indirection costs address generation and defeats
some vectorization.
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim import forall, slice_capable
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import BALANCED, derive

NUM_PTRS = 4


@register_kernel
class BasicArrayOfPtrs(KernelBase):
    NAME = "ARRAY_OF_PTRS"
    GROUP = Group.BASIC
    FEATURES = frozenset({Feature.FORALL})
    INSTR_PER_ITER = 16.0

    def setup(self) -> None:
        n = self.problem_size
        self.sources = [self.rng.random(n) for _ in range(NUM_PTRS)]
        self.out = np.zeros(n)

    def bytes_read(self) -> float:
        return 8.0 * NUM_PTRS * self.problem_size

    def bytes_written(self) -> float:
        return 8.0 * self.problem_size

    def flops(self) -> float:
        return float(NUM_PTRS - 1) * self.problem_size

    def traits(self) -> KernelTraits:
        return derive(BALANCED, streaming_eff=0.7, simd_eff=0.4, cache_resident=0.2)

    def run_base(self, policy: ExecPolicy) -> None:
        np.copyto(self.out, self.sources[0])
        for src in self.sources[1:]:
            self.out += src

    def run_raja(self, policy: ExecPolicy) -> None:
        sources, out = self.sources, self.out

        @slice_capable(fuse=True)
        def body(i: np.ndarray) -> None:
            acc = sources[0][i].copy()
            for k in range(1, NUM_PTRS):
                acc += sources[k][i]
            out[i] = acc

        forall(policy, self.problem_size, body)

    def checksum(self) -> float:
        return checksum_array(self.out)
