"""Basic_MULADDSUB: three outputs per iteration (product, sum, difference)."""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim import forall, slice_capable
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import BALANCED, derive


@register_kernel
class BasicMuladdsub(KernelBase):
    NAME = "MULADDSUB"
    GROUP = Group.BASIC
    FEATURES = frozenset({Feature.FORALL})
    HAS_KOKKOS = True
    INSTR_PER_ITER = 10.0

    def setup(self) -> None:
        n = self.problem_size
        self.in1 = self.rng.random(n)
        self.in2 = self.rng.random(n)
        self.out1 = np.zeros(n)
        self.out2 = np.zeros(n)
        self.out3 = np.zeros(n)

    def bytes_read(self) -> float:
        return 16.0 * self.problem_size

    def bytes_written(self) -> float:
        return 24.0 * self.problem_size

    def flops(self) -> float:
        return 3.0 * self.problem_size

    def traits(self) -> KernelTraits:
        return derive(BALANCED, streaming_eff=0.8, simd_eff=0.6, cache_resident=0.15)

    def run_base(self, policy: ExecPolicy) -> None:
        np.multiply(self.in1, self.in2, out=self.out1)
        np.add(self.in1, self.in2, out=self.out2)
        np.subtract(self.in1, self.in2, out=self.out3)

    def run_raja(self, policy: ExecPolicy) -> None:
        in1, in2 = self.in1, self.in2
        out1, out2, out3 = self.out1, self.out2, self.out3

        @slice_capable(fuse=True)
        def body(i: np.ndarray) -> None:
            out1[i] = in1[i] * in2[i]
            out2[i] = in1[i] + in2[i]
            out3[i] = in1[i] - in2[i]

        forall(policy, self.problem_size, body)

    def checksum(self) -> float:
        return (
            checksum_array(self.out1)
            + checksum_array(self.out2)
            + checksum_array(self.out3)
        )
