"""Basic_DAXPY: ``y[i] += a * x[i]``."""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim import forall, slice_capable
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import STREAMING, derive


@register_kernel
class BasicDaxpy(KernelBase):
    NAME = "DAXPY"
    GROUP = Group.BASIC
    FEATURES = frozenset({Feature.FORALL})
    HAS_KOKKOS = True
    INSTR_PER_ITER = 6.0

    A = 2.5

    def setup(self) -> None:
        n = self.problem_size
        self.x = self.rng.random(n)
        self.y = self.rng.random(n)

    def bytes_read(self) -> float:
        # y is read-modify-write: x + y read, y written.
        return 16.0 * self.problem_size

    def bytes_written(self) -> float:
        return 8.0 * self.problem_size

    def flops(self) -> float:
        return 2.0 * self.problem_size

    def traits(self) -> KernelTraits:
        return derive(STREAMING, streaming_eff=1.0, simd_eff=0.95)

    def run_base(self, policy: ExecPolicy) -> None:
        self.y += self.A * self.x

    def run_raja(self, policy: ExecPolicy) -> None:
        x, y, a = self.x, self.y, self.A

        @slice_capable(fuse=True)
        def body(i: np.ndarray) -> None:
            y[i] += a * x[i]

        forall(policy, self.problem_size, body)

    def checksum(self) -> float:
        return checksum_array(self.y)
