"""Basic_INDEXLIST_3LOOP: three-pass stream compaction.

Pass 1 flags elements, pass 2 exclusive-scans the flags, pass 3 scatters
indices — the data-parallel formulation of INDEXLIST that avoids the
serialized counter, at the price of 3x the memory traffic.
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim import exclusive_scan, forall
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import BALANCED, derive


@register_kernel
class BasicIndexlist3Loop(KernelBase):
    NAME = "INDEXLIST_3LOOP"
    GROUP = Group.BASIC
    FEATURES = frozenset({Feature.FORALL, Feature.SCAN})
    INSTR_PER_ITER = 12.0

    def setup(self) -> None:
        n = self.problem_size
        self.x = self.rng.random(n) - 0.5
        self.flags = np.zeros(n + 1, dtype=np.int64)
        self.indices = np.zeros(n, dtype=np.int64)
        self.count = 0

    def bytes_read(self) -> float:
        # x once (flag pass), flags twice (scan, scatter).
        return (8.0 + 2 * 8.0) * self.problem_size

    def bytes_written(self) -> float:
        # flags twice (flag pass, scan), indices once for passing elements.
        return (2 * 8.0 + 4.0) * self.problem_size

    def flops(self) -> float:
        # Index arithmetic counted as ops (like the int reductions).
        return 1.0 * self.problem_size

    def launches_per_rep(self) -> float:
        return 3.0

    def traits(self) -> KernelTraits:
        return derive(BALANCED, streaming_eff=0.75, simd_eff=0.55, cache_resident=0.2)

    def run_base(self, policy: ExecPolicy) -> None:
        flags = self.flags
        flags[:-1] = self.x < 0.0
        flags[-1] = 0
        scanned = np.concatenate(([0], np.cumsum(flags[:-1])))
        hits = np.flatnonzero(self.x < 0.0)
        self.indices[:] = 0
        self.indices[scanned[hits]] = hits
        self.count = int(scanned[-1])

    def run_raja(self, policy: ExecPolicy) -> None:
        x, flags, indices = self.x, self.flags, self.indices
        n = self.problem_size
        indices[:] = 0

        def flag_body(i: np.ndarray) -> None:
            flags[i] = x[i] < 0.0

        forall(policy, n, flag_body)
        flags[n] = 0
        positions = exclusive_scan(flags[: n + 1])
        self.count = int(positions[n])

        def scatter_body(i: np.ndarray) -> None:
            hits = i[flags[i] == 1]
            indices[positions[hits]] = hits

        forall(policy, n, scatter_body)

    def checksum(self) -> float:
        return checksum_array(self.indices.astype(np.float64)) + self.count
