"""Basic_NESTED_INIT: ``array(i,j,k) = i*j*k`` over a 3-D nested loop.

Exercises RAJA::kernel nested-loop dispatch; the deep nest's loop
overhead makes it retiring/frontend bound on CPUs (Section V-B).
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim import kernel_3d
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import RETIRING, derive


@register_kernel
class BasicNestedInit(KernelBase):
    NAME = "NESTED_INIT"
    GROUP = Group.BASIC
    FEATURES = frozenset({Feature.KERNEL})
    HAS_KOKKOS = True
    INSTR_PER_ITER = 6.0

    def __init__(self, problem_size: int | None = None, seed: int = 4793) -> None:
        super().__init__(problem_size, seed)
        # A near-cubic domain with ni*nj*nk <= problem_size.
        edge = max(1, round(self.problem_size ** (1.0 / 3.0)))
        self.ni = self.nj = self.nk = edge

    def iterations(self) -> float:
        return float(self.ni * self.nj * self.nk)

    def setup(self) -> None:
        self.array = np.zeros(self.ni * self.nj * self.nk)

    def bytes_read(self) -> float:
        return 0.0

    def bytes_written(self) -> float:
        return 8.0 * self.iterations()

    def flops(self) -> float:
        return 2.0 * self.iterations()

    def traits(self) -> KernelTraits:
        return derive(RETIRING, simd_eff=0.3, frontend_factor=0.22, cache_resident=0.9)

    def run_base(self, policy: ExecPolicy) -> None:
        ni, nj, nk = self.ni, self.nj, self.nk
        kk, jj, ii = np.meshgrid(
            np.arange(nk, dtype=np.float64),
            np.arange(nj, dtype=np.float64),
            np.arange(ni, dtype=np.float64),
            indexing="ij",
        )
        self.array[:] = (ii * jj * kk).ravel()

    def run_raja(self, policy: ExecPolicy) -> None:
        array, ni, nj = self.array, self.ni, self.nj

        def body(k: np.ndarray, j: np.ndarray, i: np.ndarray) -> None:
            array[i + ni * (j + nj * k)] = (
                i.astype(np.float64) * j.astype(np.float64) * k.astype(np.float64)
            )

        kernel_3d(policy, (self.nk, self.nj, self.ni), body)

    def checksum(self) -> float:
        return checksum_array(self.array)
