"""Basic_INIT_VIEW1D_OFFSET: ``view(i) = i * v`` over an offset layout.

Like INIT_VIEW1D but the View's index space starts at 1, exercising
RAJA's offset-layout arithmetic; retiring-bound on CPUs at the paper's
size (Section V-B).
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim import forall
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import RETIRING, derive


@register_kernel
class BasicInitView1dOffset(KernelBase):
    NAME = "INIT_VIEW1D_OFFSET"
    GROUP = Group.BASIC
    FEATURES = frozenset({Feature.FORALL, Feature.VIEW})
    INSTR_PER_ITER = 5.0

    V = 0.00000123
    OFFSET = 1

    def setup(self) -> None:
        self.a = np.zeros(self.problem_size)

    def bytes_read(self) -> float:
        return 0.0

    def bytes_written(self) -> float:
        return 8.0 * self.problem_size

    def flops(self) -> float:
        return 1.0 * self.problem_size

    def traits(self) -> KernelTraits:
        return derive(RETIRING, simd_eff=0.25, frontend_factor=0.2, cache_resident=0.9)

    def run_base(self, policy: ExecPolicy) -> None:
        n = self.problem_size
        np.multiply(
            np.arange(self.OFFSET, n + self.OFFSET, dtype=np.float64),
            self.V,
            out=self.a,
        )

    def run_raja(self, policy: ExecPolicy) -> None:
        a, v, offset = self.a, self.V, self.OFFSET

        def body(i: np.ndarray) -> None:
            # Offset layout: logical index i+OFFSET maps to slot i.
            a[i] = (i + offset) * v

        forall(policy, self.problem_size, body)

    def checksum(self) -> float:
        return checksum_array(self.a)
