"""Basic group: small kernels that stress compilers (Table I)."""

from repro.kernels.basic.array_of_ptrs import BasicArrayOfPtrs
from repro.kernels.basic.copy8 import BasicCopy8
from repro.kernels.basic.daxpy import BasicDaxpy
from repro.kernels.basic.daxpy_atomic import BasicDaxpyAtomic
from repro.kernels.basic.if_quad import BasicIfQuad
from repro.kernels.basic.indexlist import BasicIndexlist
from repro.kernels.basic.indexlist_3loop import BasicIndexlist3Loop
from repro.kernels.basic.init3 import BasicInit3
from repro.kernels.basic.init_view1d import BasicInitView1d
from repro.kernels.basic.init_view1d_offset import BasicInitView1dOffset
from repro.kernels.basic.mat_mat_shared import BasicMatMatShared
from repro.kernels.basic.muladdsub import BasicMuladdsub
from repro.kernels.basic.multi_reduce import BasicMultiReduce
from repro.kernels.basic.nested_init import BasicNestedInit
from repro.kernels.basic.pi_atomic import BasicPiAtomic
from repro.kernels.basic.pi_reduce import BasicPiReduce
from repro.kernels.basic.reduce3_int import BasicReduce3Int
from repro.kernels.basic.reduce_struct import BasicReduceStruct
from repro.kernels.basic.trap_int import BasicTrapInt

__all__ = [
    "BasicArrayOfPtrs",
    "BasicCopy8",
    "BasicDaxpy",
    "BasicDaxpyAtomic",
    "BasicIfQuad",
    "BasicIndexlist",
    "BasicIndexlist3Loop",
    "BasicInit3",
    "BasicInitView1d",
    "BasicInitView1dOffset",
    "BasicMatMatShared",
    "BasicMuladdsub",
    "BasicMultiReduce",
    "BasicNestedInit",
    "BasicPiAtomic",
    "BasicPiReduce",
    "BasicReduce3Int",
    "BasicReduceStruct",
    "BasicTrapInt",
]
