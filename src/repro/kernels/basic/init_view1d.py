"""Basic_INIT_VIEW1D: ``view(i) = (i+1) * v`` through a RAJA View.

A pure store stream whose per-rank working set fits in cache at the
paper's problem size, making it retiring-bound on the CPUs — one of the
four kernels Section V-B highlights as speeding up on the V100 without any
memory constraint.
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim import Layout, View, forall
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import RETIRING, derive


@register_kernel
class BasicInitView1d(KernelBase):
    NAME = "INIT_VIEW1D"
    GROUP = Group.BASIC
    FEATURES = frozenset({Feature.FORALL, Feature.VIEW})
    INSTR_PER_ITER = 4.0

    V = 0.00000123

    def setup(self) -> None:
        self.a = np.zeros(self.problem_size)

    def bytes_read(self) -> float:
        return 0.0

    def bytes_written(self) -> float:
        return 8.0 * self.problem_size

    def flops(self) -> float:
        return 1.0 * self.problem_size

    def traits(self) -> KernelTraits:
        return derive(RETIRING, simd_eff=0.25, frontend_factor=0.18, cache_resident=0.9)

    def run_base(self, policy: ExecPolicy) -> None:
        n = self.problem_size
        np.multiply(np.arange(1, n + 1, dtype=np.float64), self.V, out=self.a)

    def run_raja(self, policy: ExecPolicy) -> None:
        view = View(self.a, Layout((self.problem_size,)))
        v = self.V

        def body(i: np.ndarray) -> None:
            view[i] = (i + 1) * v

        forall(policy, self.problem_size, body)

    def checksum(self) -> float:
        return checksum_array(self.a)
