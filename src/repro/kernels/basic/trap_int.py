"""Basic_TRAP_INT: trapezoid-rule integration of a rational function.

No array traffic at all — every iteration evaluates the integrand from
its index. Pure FP work with a divide, so core-bound on CPUs.
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim import ReduceSum, forall
from repro.rajasim.policies import ExecPolicy
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import CORE, derive


@register_kernel
class BasicTrapInt(KernelBase):
    NAME = "TRAP_INT"
    GROUP = Group.BASIC
    FEATURES = frozenset({Feature.FORALL, Feature.REDUCTION})
    INSTR_PER_ITER = 12.0

    X0 = 0.1
    XP = 0.5
    Y = 2.0
    YP = 4.0

    def setup(self) -> None:
        n = self.problem_size
        self.h = (self.XP - self.X0) / n
        self.sumx = 0.0

    def bytes_read(self) -> float:
        return 0.0

    def bytes_written(self) -> float:
        return 0.0

    def flops(self) -> float:
        return 10.0 * self.problem_size

    def traits(self) -> KernelTraits:
        return derive(CORE, cpu_compute_eff=0.035, simd_eff=0.5, cache_resident=1.0)

    def _integrand(self, x: np.ndarray) -> np.ndarray:
        denom = (x - self.Y) * (x - self.Y) + (x - self.YP) * (x - self.YP)
        return 1.0 / np.sqrt(denom)

    def run_base(self, policy: ExecPolicy) -> None:
        i = np.arange(self.problem_size, dtype=np.float64)
        x = self.X0 + (i + 0.5) * self.h
        self.sumx = float(np.sum(self._integrand(x))) * self.h

    def run_raja(self, policy: ExecPolicy) -> None:
        reducer = ReduceSum(0.0)
        integrand, x0, h = self._integrand, self.X0, self.h

        def body(i: np.ndarray) -> None:
            x = x0 + (i.astype(np.float64) + 0.5) * h
            reducer.combine(integrand(x))

        forall(policy, self.problem_size, body)
        self.sumx = float(reducer.get()) * self.h

    def checksum(self) -> float:
        return self.sumx
