"""Basic_IF_QUAD: branchy quadratic-root computation.

Solves ``a x^2 + b x + c = 0`` per element, taking different paths on the
discriminant's sign — a bad-speculation probe.
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim import forall, slice_capable
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import BALANCED, derive


@register_kernel
class BasicIfQuad(KernelBase):
    NAME = "IF_QUAD"
    GROUP = Group.BASIC
    FEATURES = frozenset({Feature.FORALL})
    INSTR_PER_ITER = 18.0

    def setup(self) -> None:
        n = self.problem_size
        # Coefficients chosen so ~half the discriminants are negative.
        self.a = self.rng.random(n) + 0.1
        self.b = self.rng.random(n) * 2.0 - 1.0
        self.c = self.rng.random(n) * 0.5 - 0.25
        self.x1 = np.zeros(n)
        self.x2 = np.zeros(n)

    def bytes_read(self) -> float:
        return 24.0 * self.problem_size

    def bytes_written(self) -> float:
        return 16.0 * self.problem_size

    def flops(self) -> float:
        return 11.0 * self.problem_size

    def traits(self) -> KernelTraits:
        return derive(
            BALANCED,
            streaming_eff=0.7,
            simd_eff=0.45,
            branch_misp_per_iter=0.02,
            cache_resident=0.2,
        )

    def _compute(self, a, b, c, x1, x2) -> None:
        disc = b * b - 4.0 * a * c
        positive = disc >= 0.0
        root = np.sqrt(np.where(positive, disc, 0.0))
        denom = 0.5 / a
        x1[...] = np.where(positive, (-b + root) * denom, 0.0)
        x2[...] = np.where(positive, (-b - root) * denom, 0.0)

    def run_base(self, policy: ExecPolicy) -> None:
        self._compute(self.a, self.b, self.c, self.x1, self.x2)

    def run_raja(self, policy: ExecPolicy) -> None:
        a, b, c, x1, x2 = self.a, self.b, self.c, self.x1, self.x2

        @slice_capable(fuse=True)
        def body(i: np.ndarray) -> None:
            disc = b[i] * b[i] - 4.0 * a[i] * c[i]
            positive = disc >= 0.0
            root = np.sqrt(np.where(positive, disc, 0.0))
            denom = 0.5 / a[i]
            x1[i] = np.where(positive, (-b[i] + root) * denom, 0.0)
            x2[i] = np.where(positive, (-b[i] - root) * denom, 0.0)

        forall(policy, self.problem_size, body)

    def checksum(self) -> float:
        return checksum_array(self.x1) + checksum_array(self.x2)
