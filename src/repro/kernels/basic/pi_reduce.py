"""Basic_PI_REDUCE: compute pi by quadrature with a sum reduction.

The reduction formulation of PI_ATOMIC; the per-iteration divide chain
makes it core (FP) bound on CPUs.
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim import ReduceSum, forall
from repro.rajasim.policies import ExecPolicy
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import CORE, derive


@register_kernel
class BasicPiReduce(KernelBase):
    NAME = "PI_REDUCE"
    GROUP = Group.BASIC
    FEATURES = frozenset({Feature.FORALL, Feature.REDUCTION})
    INSTR_PER_ITER = 10.0

    def setup(self) -> None:
        self.dx = 1.0 / self.problem_size
        self.pi = 0.0

    def bytes_read(self) -> float:
        return 0.0

    def bytes_written(self) -> float:
        return 0.0

    def flops(self) -> float:
        # x = (i+0.5)*dx (2), x*x (1), 1+ (1), divide (~4 as FP work), sum (1).
        return 9.0 * self.problem_size

    def traits(self) -> KernelTraits:
        # The divide's long latency dominates: low achieved FP efficiency.
        return derive(CORE, cpu_compute_eff=0.03, simd_eff=0.5, cache_resident=1.0)

    def _terms(self, i: np.ndarray) -> np.ndarray:
        x = (i.astype(np.float64) + 0.5) * self.dx
        return self.dx / (1.0 + x * x)

    def run_base(self, policy: ExecPolicy) -> None:
        self.pi = 4.0 * float(np.sum(self._terms(np.arange(self.problem_size))))

    def run_raja(self, policy: ExecPolicy) -> None:
        reducer = ReduceSum(0.0)
        terms = self._terms

        def body(i: np.ndarray) -> None:
            reducer.combine(terms(i))

        forall(policy, self.problem_size, body)
        self.pi = 4.0 * float(reducer.get())

    def checksum(self) -> float:
        return self.pi
