"""Basic_MULTI_REDUCE: sum data into a runtime-sized bank of bins.

Exercises RAJA::MultiReduceSum; the binned accumulation's RMW traffic and
combining work make it core-bound on CPUs.
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim import MultiReduceSum, forall, slice_capable
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import CORE, derive

NUM_BINS = 10


@register_kernel
class BasicMultiReduce(KernelBase):
    NAME = "MULTI_REDUCE"
    GROUP = Group.BASIC
    FEATURES = frozenset({Feature.FORALL, Feature.REDUCTION, Feature.ATOMIC})
    INSTR_PER_ITER = 12.0

    def setup(self) -> None:
        n = self.problem_size
        self.data = self.rng.random(n)
        self.bins = self.rng.integers(0, NUM_BINS, size=n)
        self.values = np.zeros(NUM_BINS)

    def bytes_read(self) -> float:
        # data + bin index per element, plus the RMW on the bin slot.
        return (8.0 + 8.0) * self.problem_size

    def bytes_written(self) -> float:
        return 8.0 * NUM_BINS

    def flops(self) -> float:
        return 1.0 * self.problem_size

    def atomics(self) -> float:
        return 0.1 * self.problem_size

    def traits(self) -> KernelTraits:
        return derive(CORE, cpu_compute_eff=0.04, simd_eff=0.3, cache_resident=0.85)

    def run_base(self, policy: ExecPolicy) -> None:
        self.values[:] = np.bincount(
            self.bins, weights=self.data, minlength=NUM_BINS
        )

    def run_raja(self, policy: ExecPolicy) -> None:
        data, bins = self.data, self.bins
        reducer = MultiReduceSum(NUM_BINS)

        @slice_capable
        def body(i: np.ndarray) -> None:
            reducer.combine(bins[i], data[i])

        forall(policy, self.problem_size, body)
        self.values[:] = reducer.get()

    def checksum(self) -> float:
        return checksum_array(self.values, scale=1.0)
