"""Basic_PI_ATOMIC: compute pi by quadrature with one shared atomic.

Every iteration atomically adds its quadrature term to a single shared
accumulator. The contention serializes on every backend: the paper calls
out its "extremely high retiring bound" on CPUs and its refusal to speed
up on either GPU (Sections V-B/V-D).
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim import atomic_add, forall
from repro.rajasim.policies import ExecPolicy
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import RETIRING, derive


@register_kernel
class BasicPiAtomic(KernelBase):
    NAME = "PI_ATOMIC"
    GROUP = Group.BASIC
    FEATURES = frozenset({Feature.FORALL, Feature.ATOMIC})
    INSTR_PER_ITER = 12.0

    def setup(self) -> None:
        self.dx = 1.0 / self.problem_size
        self.pi = np.zeros(1)

    def bytes_read(self) -> float:
        return 8.0  # the single shared accumulator word

    def bytes_written(self) -> float:
        return 8.0

    def flops(self) -> float:
        return 6.0 * self.problem_size

    def atomics(self) -> float:
        return 1.0 * self.problem_size  # fully contended single location

    def traits(self) -> KernelTraits:
        # Scalar (atomics defeat vectorization), cache-resident (one word),
        # and with every iteration's atomic serializing on GPUs.
        return derive(
            RETIRING,
            simd_eff=0.05,
            frontend_factor=0.12,
            cache_resident=1.0,
            gpu_serial_fraction=0.0,
        )

    def _terms(self, i: np.ndarray) -> np.ndarray:
        x = (i.astype(np.float64) + 0.5) * self.dx
        return self.dx / (1.0 + x * x)

    def run_base(self, policy: ExecPolicy) -> None:
        self.pi[0] = 0.0
        terms = self._terms(np.arange(self.problem_size))
        # The base variant still issues one atomic per element.
        atomic_add(self.pi, np.zeros(self.problem_size, dtype=np.intp), terms)
        self.pi[0] *= 4.0

    def run_raja(self, policy: ExecPolicy) -> None:
        pi, terms = self.pi, self._terms
        pi[0] = 0.0

        def body(i: np.ndarray) -> None:
            atomic_add(pi, np.zeros(len(i), dtype=np.intp), terms(i))

        forall(policy, self.problem_size, body)
        pi[0] *= 4.0

    def checksum(self) -> float:
        return float(self.pi[0])
