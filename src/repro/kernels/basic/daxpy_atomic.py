"""Basic_DAXPY_ATOMIC: DAXPY performed with atomic adds.

Same arithmetic as DAXPY, but every update goes through ``atomicAdd``,
exposing atomic-RMW cost on every backend.
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim import atomic_add, forall
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import BALANCED, derive


@register_kernel
class BasicDaxpyAtomic(KernelBase):
    NAME = "DAXPY_ATOMIC"
    GROUP = Group.BASIC
    FEATURES = frozenset({Feature.FORALL, Feature.ATOMIC})
    INSTR_PER_ITER = 9.0

    A = 2.5

    def setup(self) -> None:
        n = self.problem_size
        self.x = self.rng.random(n)
        self.y = self.rng.random(n)

    def bytes_read(self) -> float:
        return 16.0 * self.problem_size

    def bytes_written(self) -> float:
        return 8.0 * self.problem_size

    def flops(self) -> float:
        return 2.0 * self.problem_size

    def atomics(self) -> float:
        # Uncontended per-element atomics: a fraction serialize.
        return 0.05 * self.problem_size

    def traits(self) -> KernelTraits:
        return derive(BALANCED, streaming_eff=0.85, simd_eff=0.4, cache_resident=0.1)

    def run_base(self, policy: ExecPolicy) -> None:
        np.add.at(self.y, np.arange(self.problem_size), self.A * self.x)

    def run_raja(self, policy: ExecPolicy) -> None:
        x, y, a = self.x, self.y, self.A

        def body(i: np.ndarray) -> None:
            atomic_add(y, i, a * x[i])

        forall(policy, self.problem_size, body)

    def checksum(self) -> float:
        return checksum_array(self.y)
