"""Basic_INIT3: ``out1[i] = out2[i] = out3[i] = -in1[i] - in2[i]``."""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim import forall, slice_capable
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import STREAMING, derive


@register_kernel
class BasicInit3(KernelBase):
    NAME = "INIT3"
    GROUP = Group.BASIC
    FEATURES = frozenset({Feature.FORALL})
    INSTR_PER_ITER = 8.0

    def setup(self) -> None:
        n = self.problem_size
        self.in1 = self.rng.random(n)
        self.in2 = self.rng.random(n)
        self.out1 = np.zeros(n)
        self.out2 = np.zeros(n)
        self.out3 = np.zeros(n)

    def bytes_read(self) -> float:
        return 16.0 * self.problem_size

    def bytes_written(self) -> float:
        return 24.0 * self.problem_size

    def flops(self) -> float:
        return 2.0 * self.problem_size

    def traits(self) -> KernelTraits:
        return derive(STREAMING, streaming_eff=0.95, simd_eff=0.9)

    def run_base(self, policy: ExecPolicy) -> None:
        np.add(self.in1, self.in2, out=self.out1)
        np.negative(self.out1, out=self.out1)
        np.copyto(self.out2, self.out1)
        np.copyto(self.out3, self.out1)

    def run_raja(self, policy: ExecPolicy) -> None:
        in1, in2 = self.in1, self.in2
        out1, out2, out3 = self.out1, self.out2, self.out3

        @slice_capable(fuse=True)
        def body(i: np.ndarray) -> None:
            value = -in1[i] - in2[i]
            out1[i] = value
            out2[i] = value
            out3[i] = value

        forall(policy, self.problem_size, body)

    def checksum(self) -> float:
        return (
            checksum_array(self.out1)
            + checksum_array(self.out2)
            + checksum_array(self.out3)
        )
