"""Basic_REDUCE_STRUCT: centroid + bounds of a 2-D point set.

Six simultaneous reductions (sum/min/max of x and y), the struct-of-
reducers pattern from particle codes.
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim import ReduceMax, ReduceMin, ReduceSum, forall, slice_capable
from repro.rajasim.policies import ExecPolicy
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import BALANCED, derive


@register_kernel
class BasicReduceStruct(KernelBase):
    NAME = "REDUCE_STRUCT"
    GROUP = Group.BASIC
    FEATURES = frozenset({Feature.FORALL, Feature.REDUCTION})
    INSTR_PER_ITER = 14.0

    def setup(self) -> None:
        n = self.problem_size
        self.x = self.rng.random(n)
        self.y = self.rng.random(n)
        self.result = np.zeros(6)

    def bytes_read(self) -> float:
        return 16.0 * self.problem_size

    def bytes_written(self) -> float:
        return 48.0  # the six scalars

    def flops(self) -> float:
        return 6.0 * self.problem_size

    def traits(self) -> KernelTraits:
        return derive(BALANCED, streaming_eff=0.75, simd_eff=0.5, cache_resident=0.25)

    def run_base(self, policy: ExecPolicy) -> None:
        x, y = self.x, self.y
        self.result[:] = (
            np.sum(x),
            np.min(x),
            np.max(x),
            np.sum(y),
            np.min(y),
            np.max(y),
        )

    def run_raja(self, policy: ExecPolicy) -> None:
        x, y = self.x, self.y
        xsum, ysum = ReduceSum(0.0), ReduceSum(0.0)
        xmin, ymin = ReduceMin(np.inf), ReduceMin(np.inf)
        xmax, ymax = ReduceMax(-np.inf), ReduceMax(-np.inf)

        @slice_capable
        def body(i: np.ndarray) -> None:
            xv, yv = x[i], y[i]
            xsum.combine(xv)
            xmin.combine(xv)
            xmax.combine(xv)
            ysum.combine(yv)
            ymin.combine(yv)
            ymax.combine(yv)

        forall(policy, self.problem_size, body)
        self.result[:] = (
            xsum.get(),
            xmin.get(),
            xmax.get(),
            ysum.get(),
            ymin.get(),
            ymax.get(),
        )

    def checksum(self) -> float:
        n = self.problem_size
        weighted = self.result.copy()
        weighted[0] /= n  # centroid components
        weighted[3] /= n
        return float(np.sum(weighted * np.arange(1, 7)))
