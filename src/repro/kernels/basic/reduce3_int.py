"""Basic_REDUCE3_INT: simultaneous sum/min/max reduction of an int array."""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim import ReduceMax, ReduceMin, ReduceSum, forall, slice_capable
from repro.rajasim.policies import ExecPolicy
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import CORE, derive


@register_kernel
class BasicReduce3Int(KernelBase):
    NAME = "REDUCE3_INT"
    GROUP = Group.BASIC
    FEATURES = frozenset({Feature.FORALL, Feature.REDUCTION})
    HAS_KOKKOS = True
    INSTR_PER_ITER = 8.0

    def setup(self) -> None:
        n = self.problem_size
        self.vec = self.rng.integers(-100, 101, size=n)
        self.vsum = 0
        self.vmin = 0
        self.vmax = 0

    def bytes_read(self) -> float:
        return 4.0 * self.problem_size  # int32-sized elements

    def bytes_written(self) -> float:
        return 0.0

    def flops(self) -> float:
        return 3.0 * self.problem_size  # counted as comparison/add ops

    def traits(self) -> KernelTraits:
        # Three dependent reduction chains per element: core bound when the
        # int array sits in cache at the per-rank size.
        return derive(CORE, cpu_compute_eff=0.05, simd_eff=0.55, cache_resident=0.9)

    def run_base(self, policy: ExecPolicy) -> None:
        self.vsum = int(np.sum(self.vec))
        self.vmin = int(np.min(self.vec))
        self.vmax = int(np.max(self.vec))

    def run_raja(self, policy: ExecPolicy) -> None:
        vec = self.vec
        rsum = ReduceSum(0.0)
        rmin = ReduceMin(float(np.iinfo(np.int64).max))
        rmax = ReduceMax(float(np.iinfo(np.int64).min))

        @slice_capable
        def body(i: np.ndarray) -> None:
            values = vec[i]
            rsum.combine(values)
            rmin.combine(values)
            rmax.combine(values)

        forall(policy, self.problem_size, body)
        self.vsum = int(rsum.get())
        self.vmin = int(rmin.get())
        self.vmax = int(rmax.get())

    def checksum(self) -> float:
        return float(self.vsum) + 2.0 * self.vmin + 3.0 * self.vmax
