"""Basic_INDEXLIST: single-pass stream compaction.

Builds the list of indices whose elements satisfy a predicate. The
single-pass formulation carries a loop-dependent insertion counter, which
serializes naively on GPUs — one of the kernels the similarity analysis
excludes for decomposition-dependent behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim import exclusive_scan, forall_chunks
from repro.rajasim.forall import iter_partitions, _normalize_segment
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import RETIRING, derive


@register_kernel
class BasicIndexlist(KernelBase):
    NAME = "INDEXLIST"
    GROUP = Group.BASIC
    FEATURES = frozenset({Feature.FORALL, Feature.SCAN})
    INSTR_PER_ITER = 9.0

    def setup(self) -> None:
        n = self.problem_size
        self.x = self.rng.random(n) - 0.5
        self.indices = np.zeros(n, dtype=np.int64)
        self.count = 0

    def bytes_read(self) -> float:
        return 8.0 * self.problem_size

    def bytes_written(self) -> float:
        return 4.0 * self.problem_size  # ~half the elements pass

    def flops(self) -> float:
        return 0.0

    def traits(self) -> KernelTraits:
        return derive(
            RETIRING,
            simd_eff=0.2,
            branch_misp_per_iter=0.05,
            cache_resident=0.5,
            gpu_serial_fraction=0.15,
        )

    def run_base(self, policy: ExecPolicy) -> None:
        hits = np.flatnonzero(self.x < 0.0)
        self.count = len(hits)
        self.indices[: self.count] = hits
        self.indices[self.count :] = 0

    def run_raja(self, policy: ExecPolicy) -> None:
        x, indices = self.x, self.indices
        indices[:] = 0
        parts = list(
            iter_partitions(policy, _normalize_segment(self.problem_size))
        )
        # Two-phase per-partition compaction with an exclusive scan of
        # partition counts, as the RAJA scan-based implementation does.
        counts = np.array(
            [int(np.count_nonzero(x[p] < 0.0)) for p in parts], dtype=np.int64
        )
        offsets = exclusive_scan(counts)
        total = int(counts.sum())

        def body(part: np.ndarray, ordinal: int) -> None:
            hits = part[x[part] < 0.0]
            start = offsets[ordinal]
            indices[start : start + len(hits)] = hits

        forall_chunks(policy, self.problem_size, body)
        self.count = total

    def checksum(self) -> float:
        return checksum_array(self.indices.astype(np.float64)) + self.count
