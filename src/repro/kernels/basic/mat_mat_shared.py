"""Basic_MAT_MAT_SHARED: tiled dense matrix multiply (shared-memory blocked).

The suite's FLOP-rate anchor: Table II's achieved FLOPS are measured with
this kernel on every machine. Its traits come from the calibration module
so the kernel and the model anchors agree by construction. Complexity is
O(n^(3/2)) in the matrix *storage* size, which excludes it from the
similarity analysis (Section IV).
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.calibration import matmat_traits
from repro.perfmodel.traits import KernelTraits
from repro.rajasim.forall import iter_partitions, _normalize_segment
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Complexity, Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel

TILE = 16


@register_kernel
class BasicMatMatShared(KernelBase):
    NAME = "MAT_MAT_SHARED"
    GROUP = Group.BASIC
    COMPLEXITY = Complexity.N_3_2
    FEATURES = frozenset({Feature.LAUNCH})
    DEFAULT_PROBLEM_SIZE = 1_000_000  # matrix elements (N^2)
    INSTR_PER_ITER = 0.0  # instructions declared via flops below

    def __init__(self, problem_size: int | None = None, seed: int = 4793) -> None:
        super().__init__(problem_size, seed)
        self.n_mat = max(1, int(round(self.problem_size**0.5)))

    def iterations(self) -> float:
        return float(self.n_mat * self.n_mat)

    def setup(self) -> None:
        n = self.n_mat
        self.a = self.rng.random((n, n))
        self.b = self.rng.random((n, n))
        self.c = np.zeros((n, n))

    def bytes_read(self) -> float:
        return 2.0 * 8.0 * self.iterations()

    def bytes_written(self) -> float:
        return 8.0 * self.iterations()

    def flops(self) -> float:
        return 2.0 * float(self.n_mat) ** 3

    def work_profile(self, reps: int = 1):
        # FMA-dense code retires ~0.3 instructions per FLOP (see the
        # calibration module); the default heuristic would overcount.
        profile = super().work_profile(reps)
        from dataclasses import replace

        return replace(profile, instructions=0.3 * profile.flops)

    def traits(self) -> KernelTraits:
        return matmat_traits()

    def run_base(self, policy: ExecPolicy) -> None:
        np.matmul(self.a, self.b, out=self.c)

    def run_raja(self, policy: ExecPolicy) -> None:
        a, b, c = self.a, self.b, self.c
        n = self.n_mat
        c[:] = 0.0
        # Tiled multiply: row-tiles are the launch dimension, the K loop
        # stages TILE-wide panels exactly as the shared-memory kernel does.
        for rows in iter_partitions(policy, _normalize_segment((0, n))):
            row_block = slice(rows[0], rows[-1] + 1)
            for k0 in range(0, n, TILE):
                k_block = slice(k0, min(k0 + TILE, n))
                c[row_block] += a[row_block, k_block] @ b[k_block]

    def checksum(self) -> float:
        return checksum_array(self.c.ravel())
