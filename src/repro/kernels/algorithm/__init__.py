"""Algorithm group: parallel constructs and memory operations (Table I)."""

from repro.kernels.algorithm.atomic import AlgorithmAtomic
from repro.kernels.algorithm.histogram import AlgorithmHistogram
from repro.kernels.algorithm.memcpy import AlgorithmMemcpy
from repro.kernels.algorithm.memset import AlgorithmMemset
from repro.kernels.algorithm.reduce_sum import AlgorithmReduceSum
from repro.kernels.algorithm.scan import AlgorithmScan
from repro.kernels.algorithm.sort import AlgorithmSort
from repro.kernels.algorithm.sortpairs import AlgorithmSortPairs

__all__ = [
    "AlgorithmAtomic",
    "AlgorithmHistogram",
    "AlgorithmMemcpy",
    "AlgorithmMemset",
    "AlgorithmReduceSum",
    "AlgorithmScan",
    "AlgorithmSort",
    "AlgorithmSortPairs",
]
