"""Algorithm_ATOMIC: contended atomic accumulation into few locations.

All iterations update a tiny set of shared counters, so the atomics
genuinely contend (unlike DAXPY_ATOMIC's element-wise atomics). Core-bound
on CPUs from the RMW serialization; slow on GPUs for the same reason.
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim import atomic_add, forall
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import CORE, derive

NUM_SLOTS = 4


@register_kernel
class AlgorithmAtomic(KernelBase):
    NAME = "ATOMIC"
    GROUP = Group.ALGORITHM
    FEATURES = frozenset({Feature.FORALL, Feature.ATOMIC})
    INSTR_PER_ITER = 60.0  # contended RMW retry loop

    def setup(self) -> None:
        self.counters = np.zeros(NUM_SLOTS)

    def bytes_read(self) -> float:
        return 8.0 * self.problem_size  # RMW read of the hot line

    def bytes_written(self) -> float:
        return 8.0 * self.problem_size

    def flops(self) -> float:
        return 1.0 * self.problem_size

    def atomics(self) -> float:
        # Contention multiplier: each RMW retries under contention.
        return 2.0 * self.problem_size

    def traits(self) -> KernelTraits:
        return derive(
            CORE,
            cpu_compute_eff=0.1,
            simd_eff=0.1,
            cache_resident=1.0,
            gpu_cache_resident=0.95,
        )

    def run_base(self, policy: ExecPolicy) -> None:
        self.counters[:] = 0.0
        slots = np.arange(self.problem_size) % NUM_SLOTS
        atomic_add(self.counters, slots, 1.0)

    def run_raja(self, policy: ExecPolicy) -> None:
        counters = self.counters
        counters[:] = 0.0

        def body(i: np.ndarray) -> None:
            atomic_add(counters, i % NUM_SLOTS, 1.0)

        forall(policy, self.problem_size, body)

    def checksum(self) -> float:
        return checksum_array(self.counters, scale=1.0 / self.problem_size)
