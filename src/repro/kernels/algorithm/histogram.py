"""Algorithm_HISTOGRAM: bin counts with atomic increments.

Bin contention depends on how the data is decomposed across ranks, which
is why the similarity analysis excludes it (its cross-machine comparison
is decomposition-dependent).
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim import atomic_add, forall, slice_capable
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import BALANCED, derive

NUM_BINS = 100


@register_kernel
class AlgorithmHistogram(KernelBase):
    NAME = "HISTOGRAM"
    GROUP = Group.ALGORITHM
    FEATURES = frozenset({Feature.FORALL, Feature.ATOMIC})
    INSTR_PER_ITER = 8.0

    def setup(self) -> None:
        n = self.problem_size
        self.data = self.rng.integers(0, NUM_BINS, size=n)
        self.counts = np.zeros(NUM_BINS)

    def bytes_read(self) -> float:
        return 8.0 * self.problem_size

    def bytes_written(self) -> float:
        return 8.0 * self.problem_size  # RMW writes to bins

    def flops(self) -> float:
        return 0.0

    def atomics(self) -> float:
        return 0.5 * self.problem_size

    def traits(self) -> KernelTraits:
        return derive(BALANCED, streaming_eff=0.7, simd_eff=0.25, cache_resident=0.4)

    def run_base(self, policy: ExecPolicy) -> None:
        self.counts[:] = np.bincount(self.data, minlength=NUM_BINS)

    def run_raja(self, policy: ExecPolicy) -> None:
        data, counts = self.data, self.counts
        counts[:] = 0.0

        @slice_capable
        def body(i: np.ndarray) -> None:
            atomic_add(counts, data[i], 1.0)

        forall(policy, self.problem_size, body)

    def checksum(self) -> float:
        return checksum_array(self.counts, scale=1.0 / self.problem_size)
