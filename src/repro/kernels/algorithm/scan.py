"""Algorithm_SCAN: exclusive prefix sum.

Section III-A's example of a kernel whose DDR memory-bandwidth bottleneck
is clearly alleviated by HBM: the multi-pass scan streams the array
through memory more than once.
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim import exclusive_scan
from repro.rajasim.forall import _normalize_segment, iter_partitions
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import BALANCED, derive


@register_kernel
class AlgorithmScan(KernelBase):
    NAME = "SCAN"
    GROUP = Group.ALGORITHM
    FEATURES = frozenset({Feature.SCAN})
    INSTR_PER_ITER = 8.0

    def setup(self) -> None:
        n = self.problem_size
        self.x = self.rng.random(n)
        self.y = np.zeros(n)

    def bytes_read(self) -> float:
        # Device scans read the input twice (reduce pass + scan pass).
        return 2.0 * 8.0 * self.problem_size

    def bytes_written(self) -> float:
        return 8.0 * self.problem_size

    def flops(self) -> float:
        return 1.0 * self.problem_size

    def launches_per_rep(self) -> float:
        return 2.0

    def traits(self) -> KernelTraits:
        return derive(
            BALANCED,
            streaming_eff=0.85,
            simd_eff=0.5,
            cache_resident=0.1,
            frontend_factor=0.05,
        )

    def run_base(self, policy: ExecPolicy) -> None:
        exclusive_scan(self.x, out=self.y)

    def run_raja(self, policy: ExecPolicy) -> None:
        x, y = self.x, self.y
        # Two-pass block-scan as GPU implementations do: per-partition sums,
        # scan of the sums, then local scans seeded by the block offsets.
        parts = list(iter_partitions(policy, _normalize_segment(self.problem_size)))
        block_sums = np.array([float(np.sum(x[p])) for p in parts])
        offsets = exclusive_scan(block_sums)
        for part, offset in zip(parts, offsets):
            local = np.cumsum(x[part])
            y[part[0]] = offset
            if len(part) > 1:
                y[part[1:]] = offset + local[:-1]

    def checksum(self) -> float:
        return checksum_array(self.y)
