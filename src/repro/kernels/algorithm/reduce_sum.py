"""Algorithm_REDUCE_SUM: sum-reduce an array.

Section III-A singles this kernel out as *not* memory-bandwidth bound on
either SPR system: at the paper's per-rank size the array is
cache-resident and the reduction's dependency chain keeps the pipeline
retiring instructions rather than waiting on DRAM.
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim import ReduceSum, forall, slice_capable
from repro.rajasim.policies import ExecPolicy
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import RETIRING, derive


@register_kernel
class AlgorithmReduceSum(KernelBase):
    NAME = "REDUCE_SUM"
    GROUP = Group.ALGORITHM
    FEATURES = frozenset({Feature.FORALL, Feature.REDUCTION})
    INSTR_PER_ITER = 5.0

    def setup(self) -> None:
        self.x = self.rng.random(self.problem_size)
        self.total = 0.0

    def bytes_read(self) -> float:
        return 8.0 * self.problem_size

    def bytes_written(self) -> float:
        return 0.0

    def flops(self) -> float:
        return 1.0 * self.problem_size

    def traits(self) -> KernelTraits:
        return derive(RETIRING, simd_eff=0.35, frontend_factor=0.15, cache_resident=0.88)

    def run_base(self, policy: ExecPolicy) -> None:
        self.total = float(np.sum(self.x))

    def run_raja(self, policy: ExecPolicy) -> None:
        x = self.x
        reducer = ReduceSum(0.0)

        @slice_capable
        def body(i: np.ndarray) -> None:
            reducer.combine(x[i])

        forall(policy, self.problem_size, body)
        self.total = float(reducer.get())

    def checksum(self) -> float:
        return self.total / self.problem_size
