"""Algorithm_MEMCPY: bulk memory copy through the resource API."""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim import Resource, device_memcpy, forall, slice_capable
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import STREAMING, derive


@register_kernel
class AlgorithmMemcpy(KernelBase):
    NAME = "MEMCPY"
    GROUP = Group.ALGORITHM
    FEATURES = frozenset({Feature.FORALL})
    INSTR_PER_ITER = 3.0

    def setup(self) -> None:
        n = self.problem_size
        self.resource = Resource()
        self.src = self.rng.random(n)
        self.dst = np.zeros(n)

    def bytes_read(self) -> float:
        return 8.0 * self.problem_size

    def bytes_written(self) -> float:
        return 8.0 * self.problem_size

    def flops(self) -> float:
        return 0.0

    def traits(self) -> KernelTraits:
        return derive(STREAMING, streaming_eff=1.0, simd_eff=0.95, frontend_factor=0.02)

    def run_base(self, policy: ExecPolicy) -> None:
        device_memcpy(self.dst, self.src, self.resource)

    def run_raja(self, policy: ExecPolicy) -> None:
        src, dst = self.src, self.dst

        @slice_capable(fuse=True)
        def body(i: np.ndarray) -> None:
            dst[i] = src[i]

        forall(policy, self.problem_size, body)

    def checksum(self) -> float:
        return checksum_array(self.dst)
