"""Algorithm_MEMSET: bulk memory fill through the resource API."""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim import Resource, forall, slice_capable
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import STREAMING, derive


@register_kernel
class AlgorithmMemset(KernelBase):
    NAME = "MEMSET"
    GROUP = Group.ALGORITHM
    FEATURES = frozenset({Feature.FORALL})
    INSTR_PER_ITER = 2.0

    VALUE = 0.5

    def setup(self) -> None:
        self.resource = Resource()
        self.dst = np.zeros(self.problem_size)

    def bytes_read(self) -> float:
        return 0.0

    def bytes_written(self) -> float:
        return 8.0 * self.problem_size

    def flops(self) -> float:
        return 0.0

    def traits(self) -> KernelTraits:
        # Write-only streams achieve slightly less than TRIAD's mixed
        # read/write bandwidth (no read prefetch overlap).
        return derive(STREAMING, streaming_eff=0.9, simd_eff=0.95, frontend_factor=0.02)

    def run_base(self, policy: ExecPolicy) -> None:
        self.dst.fill(self.VALUE)
        self.resource.bytes_set += self.dst.nbytes

    def run_raja(self, policy: ExecPolicy) -> None:
        dst, value = self.dst, self.VALUE

        @slice_capable(fuse=True)
        def body(i: np.ndarray) -> None:
            dst[i] = value

        forall(policy, self.problem_size, body)

    def checksum(self) -> float:
        return checksum_array(self.dst)
