"""Algorithm_SORTPAIRS: key-value sort (``RAJA::sort_pairs``).

O(n lg n) work excludes it from the similarity analysis.
"""

from __future__ import annotations

import math

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim import sort_pairs
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Complexity, Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import BALANCED, derive


@register_kernel
class AlgorithmSortPairs(KernelBase):
    NAME = "SORTPAIRS"
    GROUP = Group.ALGORITHM
    COMPLEXITY = Complexity.N_LOG_N
    FEATURES = frozenset({Feature.SORT})
    INSTR_PER_ITER = 0.0

    def setup(self) -> None:
        n = self.problem_size
        self.keys = self.rng.random(n)
        self.values = self.rng.random(n)

    def _passes(self) -> float:
        n = max(self.problem_size, 2)
        return math.log2(n)

    def bytes_read(self) -> float:
        return 16.0 * self.problem_size * self._passes()

    def bytes_written(self) -> float:
        return 16.0 * self.problem_size * self._passes()

    def flops(self) -> float:
        return 0.0

    def work_profile(self, reps: int = 1):
        from dataclasses import replace

        profile = super().work_profile(reps)
        return replace(
            profile, instructions=12.0 * self.problem_size * self._passes() * reps
        )

    def traits(self) -> KernelTraits:
        return derive(
            BALANCED,
            streaming_eff=0.55,
            simd_eff=0.2,
            branch_misp_per_iter=0.08,
            cache_resident=0.3,
        )

    def run_base(self, policy: ExecPolicy) -> None:
        order = np.argsort(self.keys, kind="stable")
        self.keys[:] = self.keys[order]
        self.values[:] = self.values[order]

    def run_raja(self, policy: ExecPolicy) -> None:
        sort_pairs(self.keys, self.values)

    def checksum(self) -> float:
        return checksum_array(self.keys) + checksum_array(self.values)
