"""Algorithm_SORT: sort an array (``RAJA::sort``).

O(n lg n) work excludes it from the similarity analysis.
"""

from __future__ import annotations

import math

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim import raja_sort
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Complexity, Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import BALANCED, derive


@register_kernel
class AlgorithmSort(KernelBase):
    NAME = "SORT"
    GROUP = Group.ALGORITHM
    COMPLEXITY = Complexity.N_LOG_N
    FEATURES = frozenset({Feature.SORT})
    INSTR_PER_ITER = 0.0  # instruction count declared via work_profile

    def setup(self) -> None:
        self.x = self.rng.random(self.problem_size)

    def _passes(self) -> float:
        n = max(self.problem_size, 2)
        return math.log2(n)

    def bytes_read(self) -> float:
        return 8.0 * self.problem_size * self._passes()

    def bytes_written(self) -> float:
        return 8.0 * self.problem_size * self._passes()

    def flops(self) -> float:
        return 0.0

    def work_profile(self, reps: int = 1):
        from dataclasses import replace

        profile = super().work_profile(reps)
        # ~8 instructions per element per merge pass.
        return replace(
            profile, instructions=8.0 * self.problem_size * self._passes() * reps
        )

    def traits(self) -> KernelTraits:
        return derive(
            BALANCED,
            streaming_eff=0.6,
            simd_eff=0.2,
            branch_misp_per_iter=0.08,
            cache_resident=0.3,
        )

    def run_base(self, policy: ExecPolicy) -> None:
        self.x.sort(kind="stable")

    def run_raja(self, policy: ExecPolicy) -> None:
        raja_sort(self.x)

    def checksum(self) -> float:
        return checksum_array(self.x)
