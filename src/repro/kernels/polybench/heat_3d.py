"""Polybench_HEAT_3D: 3-D heat equation, 7-point stencil, ping-pong buffers."""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim import kernel_3d
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import BALANCED, derive


@register_kernel
class PolybenchHeat3d(KernelBase):
    NAME = "HEAT_3D"
    GROUP = Group.POLYBENCH
    FEATURES = frozenset({Feature.KERNEL})
    INSTR_PER_ITER = 30.0

    def __init__(self, problem_size: int | None = None, seed: int = 4793) -> None:
        super().__init__(problem_size, seed)
        self.n = max(4, int(round(self.problem_size ** (1.0 / 3.0))))

    def iterations(self) -> float:
        return float((self.n - 2) ** 3)

    def setup(self) -> None:
        n = self.n
        self.a = self.rng.random((n, n, n))
        self.b = self.a.copy()

    def bytes_read(self) -> float:
        # Two stencil sweeps; neighbor loads mostly hit cache lines.
        return 2.0 * 2.0 * 8.0 * self.iterations()

    def bytes_written(self) -> float:
        return 2.0 * 8.0 * self.iterations()

    def flops(self) -> float:
        return 2.0 * 15.0 * self.iterations()

    def launches_per_rep(self) -> float:
        return 2.0

    def traits(self) -> KernelTraits:
        return derive(
            BALANCED,
            streaming_eff=0.7,
            simd_eff=0.6,
            cache_resident=0.35,
            cpu_compute_eff=0.15,
        )

    @staticmethod
    def _stencil(dst: np.ndarray, src: np.ndarray) -> None:
        c = slice(1, -1)
        dst[c, c, c] = (
            0.125 * (src[2:, c, c] - 2.0 * src[c, c, c] + src[:-2, c, c])
            + 0.125 * (src[c, 2:, c] - 2.0 * src[c, c, c] + src[c, :-2, c])
            + 0.125 * (src[c, c, 2:] - 2.0 * src[c, c, c] + src[c, c, :-2])
            + src[c, c, c]
        )

    def run_base(self, policy: ExecPolicy) -> None:
        self._stencil(self.b, self.a)
        self._stencil(self.a, self.b)

    def run_raja(self, policy: ExecPolicy) -> None:
        n = self.n

        def make_body(dst: np.ndarray, src: np.ndarray):
            def body(i: np.ndarray, j: np.ndarray, k: np.ndarray) -> None:
                dst[i, j, k] = (
                    0.125 * (src[i + 1, j, k] - 2.0 * src[i, j, k] + src[i - 1, j, k])
                    + 0.125 * (src[i, j + 1, k] - 2.0 * src[i, j, k] + src[i, j - 1, k])
                    + 0.125 * (src[i, j, k + 1] - 2.0 * src[i, j, k] + src[i, j, k - 1])
                    + src[i, j, k]
                )

            return body

        segments = ((1, n - 1), (1, n - 1), (1, n - 1))
        kernel_3d(policy, segments, make_body(self.b, self.a))
        kernel_3d(policy, segments, make_body(self.a, self.b))

    def checksum(self) -> float:
        return checksum_array(self.a.ravel())
