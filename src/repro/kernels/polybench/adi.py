"""Polybench_ADI: alternating-direction-implicit integration.

Line sweeps carry true loop dependences along one direction, so only the
orthogonal direction parallelizes — on GPUs a fraction of the work
serializes, which is why the paper finds ADI speeds up (slightly) on
SPR-HBM but on *neither* GPU (Sections V-B/V-C).
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim.forall import _normalize_segment, iter_partitions
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import BALANCED, derive


@register_kernel
class PolybenchAdi(KernelBase):
    NAME = "ADI"
    GROUP = Group.POLYBENCH
    FEATURES = frozenset({Feature.KERNEL})
    INSTR_PER_ITER = 30.0

    def __init__(self, problem_size: int | None = None, seed: int = 4793) -> None:
        super().__init__(problem_size, seed)
        self.n = max(4, int(round(self.problem_size**0.5)))

    def iterations(self) -> float:
        return float(self.n * self.n)

    def setup(self) -> None:
        n = self.n
        self.u = self.rng.random((n, n))
        self.v = np.zeros((n, n))
        self.p = np.zeros((n, n))
        self.q = np.zeros((n, n))
        # Tridiagonal sweep coefficients.
        dx = 1.0 / n
        dt = 0.1 * dx
        b1 = 2.0
        mul1 = b1 * dt / (dx * dx)
        self.a_c = -mul1 / 2.0
        self.b_c = 1.0 + mul1
        self.c_c = self.a_c

    def bytes_read(self) -> float:
        # Two sweeps each streaming u/v/p/q.
        return 2.0 * 32.0 * self.iterations()

    def bytes_written(self) -> float:
        return 2.0 * 24.0 * self.iterations()

    def flops(self) -> float:
        return 30.0 * self.iterations()

    def launches_per_rep(self) -> float:
        return 2.0

    def traits(self) -> KernelTraits:
        return derive(
            BALANCED,
            streaming_eff=0.55,
            simd_eff=0.45,
            cache_resident=0.15,
            cpu_compute_eff=0.1,
            # The recurrence along each line serializes on GPUs.
            gpu_serial_fraction=0.10,
            gpu_compute_eff=0.3,
        )

    def _column_sweep(self, cols: np.ndarray) -> None:
        """Forward substitution + back substitution along each column."""
        n = self.n
        u, v, p, q = self.u, self.v, self.p, self.q
        a, b, c = self.a_c, self.b_c, self.c_c
        v[0, cols] = 1.0
        p[0, cols] = 0.0
        q[0, cols] = v[0, cols]
        for i in range(1, n - 1):
            denom = a * p[i - 1, cols] + b
            p[i, cols] = -c / denom
            q[i, cols] = (u[i, cols] - a * q[i - 1, cols]) / denom
        v[n - 1, cols] = 1.0
        for i in range(n - 2, 0, -1):
            v[i, cols] = p[i, cols] * v[i + 1, cols] + q[i, cols]

    def _row_sweep(self, rows: np.ndarray) -> None:
        n = self.n
        u, v, p, q = self.u, self.v, self.p, self.q
        a, b, c = self.a_c, self.b_c, self.c_c
        u[rows, 0] = 1.0
        p[rows, 0] = 0.0
        q[rows, 0] = u[rows, 0]
        for j in range(1, n - 1):
            denom = a * p[rows, j - 1] + b
            p[rows, j] = -c / denom
            q[rows, j] = (v[rows, j] - a * q[rows, j - 1]) / denom
        u[rows, n - 1] = 1.0
        for j in range(n - 2, 0, -1):
            u[rows, j] = p[rows, j] * u[rows, j + 1] + q[rows, j]

    def run_base(self, policy: ExecPolicy) -> None:
        all_lines = np.arange(self.n)
        self._column_sweep(all_lines)
        self._row_sweep(all_lines)

    def run_raja(self, policy: ExecPolicy) -> None:
        segment = _normalize_segment(self.n)
        for part in iter_partitions(policy, segment):
            self._column_sweep(part)
        for part in iter_partitions(policy, segment):
            self._row_sweep(part)

    def checksum(self) -> float:
        return checksum_array(self.u.ravel()) + checksum_array(self.v.ravel())
