"""Polybench_GEMVER: rank-2 update + two matrix-vector products.

``A += u1 v1^T + u2 v2^T; x = beta A^T y + z; w = alpha A x``

In the no-GPU-speedup list on both GPUs; core/retiring bound on the CPUs
at the paper's cache-resident per-rank size.
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim.forall import _normalize_segment, iter_partitions
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import CORE, derive


@register_kernel
class PolybenchGemver(KernelBase):
    NAME = "GEMVER"
    GROUP = Group.POLYBENCH
    FEATURES = frozenset({Feature.KERNEL})
    INSTR_PER_ITER = 12.0

    ALPHA, BETA = 1.5, 1.2

    def __init__(self, problem_size: int | None = None, seed: int = 4793) -> None:
        super().__init__(problem_size, seed)
        self.n = max(2, int(round(self.problem_size**0.5)))

    def iterations(self) -> float:
        return float(self.n * self.n)

    def setup(self) -> None:
        n = self.n
        self.a = self.rng.random((n, n))
        self.u1 = self.rng.random(n)
        self.v1 = self.rng.random(n)
        self.u2 = self.rng.random(n)
        self.v2 = self.rng.random(n)
        self.y = self.rng.random(n)
        self.z = self.rng.random(n)
        self.x = np.zeros(n)
        self.w = np.zeros(n)

    def bytes_read(self) -> float:
        return 3.0 * 8.0 * self.iterations()  # A streamed three times

    def bytes_written(self) -> float:
        return 8.0 * self.iterations()  # the rank-2 update rewrites A

    def flops(self) -> float:
        return 10.0 * self.iterations()

    def launches_per_rep(self) -> float:
        return 3.0

    def traits(self) -> KernelTraits:
        return derive(
            CORE,
            cpu_compute_eff=0.06,
            simd_eff=0.6,
            cache_resident=0.9,
            gpu_cache_resident=0.2,
            gpu_compute_eff=0.15,
            gpu_serial_fraction=0.04,
            streaming_eff=0.6,
        )

    def run_base(self, policy: ExecPolicy) -> None:
        self.a += np.outer(self.u1, self.v1) + np.outer(self.u2, self.v2)
        self.x[:] = self.BETA * (self.a.T @ self.y) + self.z
        self.w[:] = self.ALPHA * (self.a @ self.x)

    def run_raja(self, policy: ExecPolicy) -> None:
        a, x, w = self.a, self.x, self.w
        u1, v1, u2, v2 = self.u1, self.v1, self.u2, self.v2
        n = self.n
        seg = _normalize_segment(n)
        for rows in iter_partitions(policy, seg):
            a[rows] += np.outer(u1[rows], v1) + np.outer(u2[rows], v2)
        xacc = np.zeros(n)
        for rows in iter_partitions(policy, seg):
            xacc += self.y[rows] @ a[rows]
        x[:] = self.BETA * xacc + self.z
        for rows in iter_partitions(policy, seg):
            w[rows] = self.ALPHA * (a[rows] @ x)

    def checksum(self) -> float:
        return checksum_array(self.w) + checksum_array(self.x)
