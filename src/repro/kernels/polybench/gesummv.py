"""Polybench_GESUMMV: ``y = alpha A x + beta B x``.

Two matrices streamed per iteration make it substantially memory bound on
SPR-DDR (Section III-A's example); HBM relieves it slightly (Section V-C),
but the transposed/gather access pattern keeps it from speeding up on
either GPU.
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim.forall import _normalize_segment, iter_partitions
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import BALANCED, derive


@register_kernel
class PolybenchGesummv(KernelBase):
    NAME = "GESUMMV"
    GROUP = Group.POLYBENCH
    FEATURES = frozenset({Feature.KERNEL})
    INSTR_PER_ITER = 10.0

    ALPHA, BETA = 1.5, 1.2

    def __init__(self, problem_size: int | None = None, seed: int = 4793) -> None:
        super().__init__(problem_size, seed)
        self.n = max(2, int(round(self.problem_size**0.5)))

    def iterations(self) -> float:
        return float(self.n * self.n)

    def setup(self) -> None:
        n = self.n
        self.a = self.rng.random((n, n))
        self.b = self.rng.random((n, n))
        self.x = self.rng.random(n)
        self.y = np.zeros(n)

    def bytes_read(self) -> float:
        return 2.0 * 8.0 * self.iterations()  # both matrices streamed

    def bytes_written(self) -> float:
        return 8.0 * self.n

    def flops(self) -> float:
        return 4.0 * self.iterations() + 3.0 * self.n

    def traits(self) -> KernelTraits:
        # Two full matrices exceed the per-rank cache: memory bound on DDR.
        return derive(
            BALANCED,
            streaming_eff=0.55,
            simd_eff=0.5,
            cache_resident=0.3,
            cpu_compute_eff=0.08,
            gpu_compute_eff=0.15,
            gpu_serial_fraction=0.04,
            gpu_cache_resident=0.1,
        )

    def run_base(self, policy: ExecPolicy) -> None:
        self.y[:] = self.ALPHA * (self.a @ self.x) + self.BETA * (self.b @ self.x)

    def run_raja(self, policy: ExecPolicy) -> None:
        a, b, x, y = self.a, self.b, self.x, self.y
        alpha, beta = self.ALPHA, self.BETA

        for rows in iter_partitions(policy, _normalize_segment(self.n)):
            y[rows] = alpha * (a[rows] @ x) + beta * (b[rows] @ x)

    def checksum(self) -> float:
        return checksum_array(self.y)
