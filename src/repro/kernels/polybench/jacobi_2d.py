"""Polybench_JACOBI_2D: 2-D 5-point Jacobi smoothing, ping-pong buffers.

At the paper's per-rank CPU size the grid is cache-resident, so unlike
JACOBI_1D it reads as retiring-bound on the SPR systems.
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim import kernel_2d
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import RETIRING, derive


@register_kernel
class PolybenchJacobi2d(KernelBase):
    NAME = "JACOBI_2D"
    GROUP = Group.POLYBENCH
    FEATURES = frozenset({Feature.KERNEL})
    INSTR_PER_ITER = 14.0

    def __init__(self, problem_size: int | None = None, seed: int = 4793) -> None:
        super().__init__(problem_size, seed)
        self.n = max(4, int(round(self.problem_size**0.5)))

    def iterations(self) -> float:
        return float((self.n - 2) ** 2)

    def setup(self) -> None:
        n = self.n
        self.a = self.rng.random((n, n))
        self.b = self.a.copy()

    def bytes_read(self) -> float:
        return 2.0 * 2.0 * 8.0 * self.iterations()

    def bytes_written(self) -> float:
        return 2.0 * 8.0 * self.iterations()

    def flops(self) -> float:
        return 2.0 * 5.0 * self.iterations()

    def launches_per_rep(self) -> float:
        return 2.0

    def traits(self) -> KernelTraits:
        return derive(
            RETIRING,
            simd_eff=0.3,
            frontend_factor=0.15,
            cache_resident=0.88,
            streaming_eff=0.85,
        )

    @staticmethod
    def _sweep(dst: np.ndarray, src: np.ndarray) -> None:
        c = slice(1, -1)
        dst[c, c] = 0.2 * (
            src[c, c] + src[c, :-2] + src[c, 2:] + src[2:, c] + src[:-2, c]
        )

    def run_base(self, policy: ExecPolicy) -> None:
        self._sweep(self.b, self.a)
        self._sweep(self.a, self.b)

    def run_raja(self, policy: ExecPolicy) -> None:
        n = self.n

        def make_body(dst: np.ndarray, src: np.ndarray):
            def body(i: np.ndarray, j: np.ndarray) -> None:
                dst[i, j] = 0.2 * (
                    src[i, j] + src[i, j - 1] + src[i, j + 1] + src[i + 1, j] + src[i - 1, j]
                )

            return body

        segments = ((1, n - 1), (1, n - 1))
        kernel_2d(policy, segments, make_body(self.b, self.a))
        kernel_2d(policy, segments, make_body(self.a, self.b))

    def checksum(self) -> float:
        return checksum_array(self.a.ravel())
