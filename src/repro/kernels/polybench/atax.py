"""Polybench_ATAX: ``y = A^T (A x)``.

Two matrix-vector products, the second against the transpose. At the
paper's per-rank size the matrix is cache-resident on the CPUs (low
memory-bound, Section III-A), while the transposed reduction phase maps
poorly onto GPUs — ATAX appears in the no-GPU-speedup list for both the
V100 and the MI250X.
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim.forall import _normalize_segment, iter_partitions
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import CORE, derive


@register_kernel
class PolybenchAtax(KernelBase):
    NAME = "ATAX"
    GROUP = Group.POLYBENCH
    FEATURES = frozenset({Feature.KERNEL})
    INSTR_PER_ITER = 8.0

    def __init__(self, problem_size: int | None = None, seed: int = 4793) -> None:
        super().__init__(problem_size, seed)
        self.n = max(2, int(round(self.problem_size**0.5)))

    def iterations(self) -> float:
        return float(self.n * self.n)

    def setup(self) -> None:
        n = self.n
        self.a = self.rng.random((n, n))
        self.x = self.rng.random(n)
        self.y = np.zeros(n)
        self.tmp = np.zeros(n)

    def bytes_read(self) -> float:
        return 2.0 * 8.0 * self.iterations()  # A streamed twice

    def bytes_written(self) -> float:
        return 8.0 * 2.0 * self.n

    def flops(self) -> float:
        return 4.0 * self.iterations()

    def launches_per_rep(self) -> float:
        return 2.0

    def traits(self) -> KernelTraits:
        return derive(
            CORE,
            cpu_compute_eff=0.055,
            simd_eff=0.6,
            cache_resident=0.92,
            gpu_cache_resident=0.2,
            gpu_compute_eff=0.12,
            gpu_serial_fraction=0.04,
            streaming_eff=0.6,
        )

    def run_base(self, policy: ExecPolicy) -> None:
        np.matmul(self.a, self.x, out=self.tmp)
        np.matmul(self.a.T, self.tmp, out=self.y)

    def run_raja(self, policy: ExecPolicy) -> None:
        a, x, y, tmp = self.a, self.x, self.y, self.tmp
        n = self.n
        y[:] = 0.0
        for rows in iter_partitions(policy, _normalize_segment(n)):
            tmp[rows] = a[rows] @ x
        # Transposed accumulation phase: partial sums combined in
        # deterministic partition order.
        for rows in iter_partitions(policy, _normalize_segment(n)):
            y += tmp[rows] @ a[rows]

    def checksum(self) -> float:
        return checksum_array(self.y)
