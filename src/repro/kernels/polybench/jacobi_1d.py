"""Polybench_JACOBI_1D: 1-D Jacobi smoothing, ping-pong buffers."""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim import forall
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import STREAMING, derive

ONE_THIRD = 1.0 / 3.0


@register_kernel
class PolybenchJacobi1d(KernelBase):
    NAME = "JACOBI_1D"
    GROUP = Group.POLYBENCH
    FEATURES = frozenset({Feature.FORALL})
    INSTR_PER_ITER = 8.0

    def setup(self) -> None:
        n = self.problem_size
        self.a = self.rng.random(n)
        self.b = self.a.copy()

    def iterations(self) -> float:
        return float(max(self.problem_size - 2, 0))

    def bytes_read(self) -> float:
        return 2.0 * 8.0 * self.iterations()  # each sweep streams one array

    def bytes_written(self) -> float:
        return 2.0 * 8.0 * self.iterations()

    def flops(self) -> float:
        return 2.0 * 3.0 * self.iterations()

    def launches_per_rep(self) -> float:
        return 2.0

    def traits(self) -> KernelTraits:
        return derive(STREAMING, streaming_eff=0.95, simd_eff=0.9)

    def run_base(self, policy: ExecPolicy) -> None:
        a, b = self.a, self.b
        b[1:-1] = ONE_THIRD * (a[:-2] + a[1:-1] + a[2:])
        a[1:-1] = ONE_THIRD * (b[:-2] + b[1:-1] + b[2:])

    def run_raja(self, policy: ExecPolicy) -> None:
        a, b = self.a, self.b
        n = self.problem_size

        def sweep_ab(i: np.ndarray) -> None:
            b[i] = ONE_THIRD * (a[i - 1] + a[i] + a[i + 1])

        forall(policy, (1, n - 1), sweep_ab)

        def sweep_ba(i: np.ndarray) -> None:
            a[i] = ONE_THIRD * (b[i - 1] + b[i] + b[i + 1])

        forall(policy, (1, n - 1), sweep_ba)

    def checksum(self) -> float:
        return checksum_array(self.a)
