"""Polybench_FDTD_2D: 2-D finite-difference time-domain kernel.

Three streaming stencil updates (ey, ex, hz) per step; firmly in the
memory-bound cluster.
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim import forall, kernel_2d
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import STREAMING, derive


@register_kernel
class PolybenchFdtd2d(KernelBase):
    NAME = "FDTD_2D"
    GROUP = Group.POLYBENCH
    FEATURES = frozenset({Feature.FORALL, Feature.KERNEL})
    INSTR_PER_ITER = 20.0

    def __init__(self, problem_size: int | None = None, seed: int = 4793) -> None:
        super().__init__(problem_size, seed)
        self.n = max(4, int(round(self.problem_size**0.5)))
        self.t = 0

    def iterations(self) -> float:
        return float(self.n * self.n)

    def setup(self) -> None:
        n = self.n
        self.ex = self.rng.random((n, n))
        self.ey = self.rng.random((n, n))
        self.hz = self.rng.random((n, n))
        self.fict = self.rng.random(n)
        self.t = 0

    def bytes_read(self) -> float:
        return 6.0 * 8.0 * self.iterations()

    def bytes_written(self) -> float:
        return 3.0 * 8.0 * self.iterations()

    def flops(self) -> float:
        return 11.0 * self.iterations()

    def launches_per_rep(self) -> float:
        return 4.0

    def traits(self) -> KernelTraits:
        return derive(STREAMING, streaming_eff=0.85, simd_eff=0.8)

    def run_base(self, policy: ExecPolicy) -> None:
        ex, ey, hz, fict = self.ex, self.ey, self.hz, self.fict
        t = self.t
        ey[0, :] = fict[t]
        ey[1:, :] -= 0.5 * (hz[1:, :] - hz[:-1, :])
        ex[:, 1:] -= 0.5 * (hz[:, 1:] - hz[:, :-1])
        hz[:-1, :-1] -= 0.7 * (
            ex[:-1, 1:] - ex[:-1, :-1] + ey[1:, :-1] - ey[:-1, :-1]
        )

    def run_raja(self, policy: ExecPolicy) -> None:
        ex, ey, hz, fict = self.ex, self.ey, self.hz, self.fict
        n, t = self.n, self.t

        def set_fict(j: np.ndarray) -> None:
            ey[0, j] = fict[t]

        forall(policy, n, set_fict)

        def update_ey(i: np.ndarray, j: np.ndarray) -> None:
            ey[i, j] = ey[i, j] - 0.5 * (hz[i, j] - hz[i - 1, j])

        kernel_2d(policy, ((1, n), (0, n)), update_ey)

        def update_ex(i: np.ndarray, j: np.ndarray) -> None:
            ex[i, j] = ex[i, j] - 0.5 * (hz[i, j] - hz[i, j - 1])

        kernel_2d(policy, ((0, n), (1, n)), update_ex)

        def update_hz(i: np.ndarray, j: np.ndarray) -> None:
            hz[i, j] = hz[i, j] - 0.7 * (
                ex[i, j + 1] - ex[i, j] + ey[i + 1, j] - ey[i, j]
            )

        kernel_2d(policy, ((0, n - 1), (0, n - 1)), update_hz)

    def checksum(self) -> float:
        return (
            checksum_array(self.ex.ravel())
            + checksum_array(self.ey.ravel())
            + checksum_array(self.hz.ravel())
        )
