"""Polybench_2MM: two chained matrix multiplies ``D = alpha*A*B*C + beta*D``.

O(n^(3/2)) in matrix storage, so excluded from the similarity analysis;
one of the kernels that gains on GPUs but not on SPR-HBM (core/retiring
bound on CPUs, Section V-B).
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim.forall import _normalize_segment, iter_partitions
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Complexity, Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import CORE, derive


@register_kernel
class Polybench2mm(KernelBase):
    NAME = "2MM"
    GROUP = Group.POLYBENCH
    COMPLEXITY = Complexity.N_3_2
    FEATURES = frozenset({Feature.KERNEL})
    INSTR_PER_ITER = 0.0

    ALPHA, BETA = 1.5, 1.2

    def __init__(self, problem_size: int | None = None, seed: int = 4793) -> None:
        super().__init__(problem_size, seed)
        self.n_mat = max(2, int(round(self.problem_size**0.5)))

    def iterations(self) -> float:
        return float(self.n_mat * self.n_mat)

    def setup(self) -> None:
        n = self.n_mat
        self.a = self.rng.random((n, n))
        self.b = self.rng.random((n, n))
        self.c = self.rng.random((n, n))
        self.d = self.rng.random((n, n))
        self.tmp = np.zeros((n, n))

    def bytes_read(self) -> float:
        return 5.0 * 8.0 * self.iterations()

    def bytes_written(self) -> float:
        return 2.0 * 8.0 * self.iterations()

    def flops(self) -> float:
        return 4.0 * float(self.n_mat) ** 3

    def work_profile(self, reps: int = 1):
        from dataclasses import replace

        profile = super().work_profile(reps)
        return replace(profile, instructions=0.6 * profile.flops)

    def launches_per_rep(self) -> float:
        return 2.0

    def traits(self) -> KernelTraits:
        # Untiled polyhedral code: far from the MAT_MAT_SHARED anchor.
        return derive(
            CORE,
            cpu_compute_eff=0.045,
            simd_eff=0.7,
            cache_resident=0.9,
            gpu_cache_resident=0.5,
            gpu_compute_eff=0.35,
            streaming_eff=0.7,
        )

    def run_base(self, policy: ExecPolicy) -> None:
        np.matmul(self.a, self.b, out=self.tmp)
        self.tmp *= self.ALPHA
        self.d *= self.BETA
        self.d += self.tmp @ self.c

    def run_raja(self, policy: ExecPolicy) -> None:
        a, b, c, d, tmp = self.a, self.b, self.c, self.d, self.tmp
        n = self.n_mat

        for rows in iter_partitions(policy, _normalize_segment((0, n))):
            block = slice(rows[0], rows[-1] + 1)
            tmp[block] = self.ALPHA * (a[block] @ b)
        for rows in iter_partitions(policy, _normalize_segment((0, n))):
            block = slice(rows[0], rows[-1] + 1)
            d[block] = self.BETA * d[block] + tmp[block] @ c

    def checksum(self) -> float:
        return checksum_array(self.d.ravel())
