"""Polybench_FLOYD_WARSHALL: all-pairs shortest paths.

O(n^(3/2)) in matrix storage (N^3 work on an N^2 matrix), so excluded
from the similarity analysis. Primarily memory bound (Section V-D): each
of the N outer iterations re-streams the whole path matrix, which is why
it is the one FLOP-heavy kernel that does better on SPR-HBM than on the
V100.
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim.forall import _normalize_segment, iter_partitions
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Complexity, Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import BALANCED, derive


@register_kernel
class PolybenchFloydWarshall(KernelBase):
    NAME = "FLOYD_WARSHALL"
    GROUP = Group.POLYBENCH
    COMPLEXITY = Complexity.N_3_2
    FEATURES = frozenset({Feature.KERNEL})
    INSTR_PER_ITER = 0.0
    DEFAULT_PROBLEM_SIZE = 40_000  # N^2 path-matrix entries

    def __init__(self, problem_size: int | None = None, seed: int = 4793) -> None:
        super().__init__(problem_size, seed)
        self.n = max(2, int(round(self.problem_size**0.5)))

    def iterations(self) -> float:
        return float(self.n * self.n)

    def setup(self) -> None:
        n = self.n
        paths = self.rng.random((n, n)) * 10.0
        np.fill_diagonal(paths, 0.0)
        self.paths = paths

    def bytes_read(self) -> float:
        # Analytic metric: the path matrix touched once (RAJAPerf counts
        # data touched, not per-k-pass traffic), which is what puts
        # FLOYD_WARSHALL above Fig. 10's diagonal despite being memory
        # bound in practice.
        return 8.0 * self.iterations()

    def bytes_written(self) -> float:
        return 8.0 * self.iterations()

    def flops(self) -> float:
        return 2.0 * self.iterations() * self.n  # add + compare per (i,j,k)

    def work_profile(self, reps: int = 1):
        from dataclasses import replace

        profile = super().work_profile(reps)
        return replace(profile, instructions=6.0 * self.iterations() * self.n * reps)

    def traits(self) -> KernelTraits:
        return derive(
            BALANCED,
            streaming_eff=0.5,
            simd_eff=0.6,
            cache_resident=0.3,
            cpu_compute_eff=0.08,
            gpu_compute_eff=0.25,
            gpu_eff_overrides={"P9-V100": 0.1},
            branch_misp_per_iter=0.01,
        )

    def run_base(self, policy: ExecPolicy) -> None:
        paths = self.paths
        for k in range(self.n):
            through_k = paths[:, k : k + 1] + paths[k : k + 1, :]
            np.minimum(paths, through_k, out=paths)

    def run_raja(self, policy: ExecPolicy) -> None:
        paths = self.paths
        for k in range(self.n):
            col_k = paths[:, k].copy()
            row_k = paths[k].copy()
            for rows in iter_partitions(policy, _normalize_segment(self.n)):
                paths[rows] = np.minimum(
                    paths[rows], col_k[rows][:, None] + row_k[None, :]
                )

    def checksum(self) -> float:
        return checksum_array(self.paths.ravel())
