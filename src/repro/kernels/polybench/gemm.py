"""Polybench_GEMM: ``C = alpha A B + beta C`` (untiled polyhedral form).

O(n^(3/2)) in matrix storage; excluded from the similarity analysis, and
one of the Section V-B kernels that gains on GPUs but not on SPR-HBM.
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim.forall import _normalize_segment, iter_partitions
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Complexity, Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import CORE, derive


@register_kernel
class PolybenchGemm(KernelBase):
    NAME = "GEMM"
    GROUP = Group.POLYBENCH
    COMPLEXITY = Complexity.N_3_2
    FEATURES = frozenset({Feature.KERNEL})
    INSTR_PER_ITER = 0.0

    ALPHA, BETA = 1.5, 1.2

    def __init__(self, problem_size: int | None = None, seed: int = 4793) -> None:
        super().__init__(problem_size, seed)
        self.n_mat = max(2, int(round(self.problem_size**0.5)))

    def iterations(self) -> float:
        return float(self.n_mat * self.n_mat)

    def setup(self) -> None:
        n = self.n_mat
        self.a = self.rng.random((n, n))
        self.b = self.rng.random((n, n))
        self.c = self.rng.random((n, n))

    def bytes_read(self) -> float:
        return 3.0 * 8.0 * self.iterations()

    def bytes_written(self) -> float:
        return 8.0 * self.iterations()

    def flops(self) -> float:
        return 2.0 * float(self.n_mat) ** 3 + 2.0 * self.iterations()

    def work_profile(self, reps: int = 1):
        from dataclasses import replace

        profile = super().work_profile(reps)
        return replace(profile, instructions=0.6 * profile.flops)

    def traits(self) -> KernelTraits:
        return derive(
            CORE,
            cpu_compute_eff=0.05,
            simd_eff=0.7,
            cache_resident=0.9,
            gpu_cache_resident=0.5,
            gpu_compute_eff=0.4,
            streaming_eff=0.7,
        )

    def run_base(self, policy: ExecPolicy) -> None:
        self.c *= self.BETA
        self.c += self.ALPHA * (self.a @ self.b)

    def run_raja(self, policy: ExecPolicy) -> None:
        a, b, c = self.a, self.b, self.c
        alpha, beta = self.ALPHA, self.BETA

        for rows in iter_partitions(policy, _normalize_segment(self.n_mat)):
            block = slice(rows[0], rows[-1] + 1)
            c[block] = beta * c[block] + alpha * (a[block] @ b)

    def checksum(self) -> float:
        return checksum_array(self.c.ravel())
