"""Polybench_MVT: ``x1 += A y1; x2 += A^T y2``.

Matrix-vector and transposed matrix-vector; cache-resident on the CPUs at
the paper's per-rank size, and in the no-GPU-speedup list on both GPUs.
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim.forall import _normalize_segment, iter_partitions
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import CORE, derive


@register_kernel
class PolybenchMvt(KernelBase):
    NAME = "MVT"
    GROUP = Group.POLYBENCH
    FEATURES = frozenset({Feature.KERNEL})
    INSTR_PER_ITER = 8.0

    def __init__(self, problem_size: int | None = None, seed: int = 4793) -> None:
        super().__init__(problem_size, seed)
        self.n = max(2, int(round(self.problem_size**0.5)))

    def iterations(self) -> float:
        return float(self.n * self.n)

    def setup(self) -> None:
        n = self.n
        self.a = self.rng.random((n, n))
        self.x1 = np.zeros(n)
        self.x2 = np.zeros(n)
        self.y1 = self.rng.random(n)
        self.y2 = self.rng.random(n)

    def bytes_read(self) -> float:
        return 2.0 * 8.0 * self.iterations()

    def bytes_written(self) -> float:
        return 16.0 * self.n

    def flops(self) -> float:
        return 4.0 * self.iterations()

    def launches_per_rep(self) -> float:
        return 2.0

    def traits(self) -> KernelTraits:
        return derive(
            CORE,
            cpu_compute_eff=0.055,
            simd_eff=0.6,
            cache_resident=0.92,
            gpu_cache_resident=0.2,
            gpu_compute_eff=0.12,
            gpu_serial_fraction=0.04,
            streaming_eff=0.6,
        )

    def run_base(self, policy: ExecPolicy) -> None:
        self.x1 += self.a @ self.y1
        self.x2 += self.a.T @ self.y2

    def run_raja(self, policy: ExecPolicy) -> None:
        a, x1, x2, y1, y2 = self.a, self.x1, self.x2, self.y1, self.y2
        n = self.n
        for rows in iter_partitions(policy, _normalize_segment(n)):
            x1[rows] += a[rows] @ y1
        for rows in iter_partitions(policy, _normalize_segment(n)):
            x2 += y2[rows] @ a[rows]

    def checksum(self) -> float:
        return checksum_array(self.x1) + checksum_array(self.x2)
