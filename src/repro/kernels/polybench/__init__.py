"""Polybench group: polyhedral-compiler benchmark kernels (Table I)."""

from repro.kernels.polybench.adi import PolybenchAdi
from repro.kernels.polybench.atax import PolybenchAtax
from repro.kernels.polybench.fdtd_2d import PolybenchFdtd2d
from repro.kernels.polybench.floyd_warshall import PolybenchFloydWarshall
from repro.kernels.polybench.gemm import PolybenchGemm
from repro.kernels.polybench.gemver import PolybenchGemver
from repro.kernels.polybench.gesummv import PolybenchGesummv
from repro.kernels.polybench.heat_3d import PolybenchHeat3d
from repro.kernels.polybench.jacobi_1d import PolybenchJacobi1d
from repro.kernels.polybench.jacobi_2d import PolybenchJacobi2d
from repro.kernels.polybench.mvt import PolybenchMvt
from repro.kernels.polybench.p2mm import Polybench2mm
from repro.kernels.polybench.p3mm import Polybench3mm

__all__ = [
    "Polybench2mm",
    "Polybench3mm",
    "PolybenchAdi",
    "PolybenchAtax",
    "PolybenchFdtd2d",
    "PolybenchFloydWarshall",
    "PolybenchGemm",
    "PolybenchGemver",
    "PolybenchGesummv",
    "PolybenchHeat3d",
    "PolybenchJacobi1d",
    "PolybenchJacobi2d",
    "PolybenchMvt",
]
