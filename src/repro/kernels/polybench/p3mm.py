"""Polybench_3MM: three chained matrix multiplies ``G = (A*B) * (C*D)``.

O(n^(3/2)) in matrix storage; excluded from the similarity analysis.
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim.forall import _normalize_segment, iter_partitions
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Complexity, Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import CORE, derive


@register_kernel
class Polybench3mm(KernelBase):
    NAME = "3MM"
    GROUP = Group.POLYBENCH
    COMPLEXITY = Complexity.N_3_2
    FEATURES = frozenset({Feature.KERNEL})
    INSTR_PER_ITER = 0.0

    def __init__(self, problem_size: int | None = None, seed: int = 4793) -> None:
        super().__init__(problem_size, seed)
        self.n_mat = max(2, int(round(self.problem_size**0.5)))

    def iterations(self) -> float:
        return float(self.n_mat * self.n_mat)

    def setup(self) -> None:
        n = self.n_mat
        self.a = self.rng.random((n, n))
        self.b = self.rng.random((n, n))
        self.c = self.rng.random((n, n))
        self.d = self.rng.random((n, n))
        self.e = np.zeros((n, n))
        self.f = np.zeros((n, n))
        self.g = np.zeros((n, n))

    def bytes_read(self) -> float:
        return 6.0 * 8.0 * self.iterations()

    def bytes_written(self) -> float:
        return 3.0 * 8.0 * self.iterations()

    def flops(self) -> float:
        return 6.0 * float(self.n_mat) ** 3

    def work_profile(self, reps: int = 1):
        from dataclasses import replace

        profile = super().work_profile(reps)
        return replace(profile, instructions=0.6 * profile.flops)

    def launches_per_rep(self) -> float:
        return 3.0

    def traits(self) -> KernelTraits:
        return derive(
            CORE,
            cpu_compute_eff=0.045,
            simd_eff=0.7,
            cache_resident=0.9,
            gpu_cache_resident=0.5,
            gpu_compute_eff=0.35,
            streaming_eff=0.7,
        )

    def run_base(self, policy: ExecPolicy) -> None:
        np.matmul(self.a, self.b, out=self.e)
        np.matmul(self.c, self.d, out=self.f)
        np.matmul(self.e, self.f, out=self.g)

    def run_raja(self, policy: ExecPolicy) -> None:
        n = self.n_mat
        for target, lhs, rhs in (
            (self.e, self.a, self.b),
            (self.f, self.c, self.d),
            (self.g, self.e, self.f),
        ):
            for rows in iter_partitions(policy, _normalize_segment((0, n))):
                block = slice(rows[0], rows[-1] + 1)
                target[block] = lhs[block] @ rhs

    def checksum(self) -> float:
        return checksum_array(self.g.ravel())
