"""Comm group: MPI halo packing/exchange patterns (Table I)."""

from repro.kernels.comm.halo_kernels import (
    CommHaloExchange,
    CommHaloExchangeFused,
    CommHaloPacking,
    CommHaloPackingFused,
    CommHaloSendrecv,
)

__all__ = [
    "CommHaloExchange",
    "CommHaloExchangeFused",
    "CommHaloPacking",
    "CommHaloPackingFused",
    "CommHaloSendrecv",
]
