"""Shared machinery for the Comm (halo) kernels.

Functional model: a ring of simulated ranks, each owning ``num_vars``
variable arrays. Every exchange packs boundary elements into send
buffers, moves them through :class:`~repro.mpisim.SimComm`, and unpacks
into ghost slots. Analytic metrics scale with the 3-D halo surface of the
paper's decomposition (O(n^(2/3)) per rank — Table I's Comm complexity),
while the functional arrays are sized to the surface so tests execute
quickly.
"""

from __future__ import annotations

import numpy as np

from repro.mpisim.comm import SimComm
from repro.mpisim.halo import HaloGeometry
from repro.perfmodel.traits import KernelTraits
from repro.suite.checksum import checksum_array
from repro.suite.features import Complexity, Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.trait_presets import COMM, derive

NUM_RANKS = 4
NUM_VARS = 3


class HaloKernelBase(KernelBase):
    """Base for the five HALO kernels."""

    GROUP = Group.COMM
    COMPLEXITY = Complexity.N_2_3
    FEATURES = frozenset({Feature.FORALL})

    #: Subclasses flip these to select which phases run.
    DO_PACK = True
    DO_MPI = True
    FUSED = False

    def __init__(self, problem_size: int | None = None, seed: int = 4793) -> None:
        super().__init__(problem_size, seed)
        self.geometry = HaloGeometry(
            local_elements=max(self.problem_size // NUM_RANKS, 8),
            num_vars=NUM_VARS,
        )
        # Functional halo width per rank: boundary elements per side.
        self.halo_elems = max(4, int(round(self.geometry.exchange_elements ** 0.5)))

    # ------------------------------------------------- analytic metrics
    def iterations(self) -> float:
        return float(NUM_RANKS * self.geometry.exchange_elements * NUM_VARS)

    def bytes_read(self) -> float:
        passes = 2.0 if self.DO_PACK else 0.0  # pack reads + unpack reads
        return 8.0 * passes * self.iterations()

    def bytes_written(self) -> float:
        passes = 2.0 if self.DO_PACK else 0.0
        return 8.0 * passes * self.iterations()

    def flops(self) -> float:
        return 0.0

    def mpi_messages(self) -> float:
        if not self.DO_MPI:
            return 0.0
        return float(NUM_RANKS * self.geometry.messages)

    def mpi_bytes(self) -> float:
        if not self.DO_MPI:
            return 0.0
        return float(NUM_RANKS * self.geometry.exchange_bytes)

    def launches_per_rep(self) -> float:
        if not self.DO_PACK:
            return 1.0
        # One pack + one unpack launch per neighbor per variable, unless
        # the workgroup-fused variant batches them into two launches.
        if self.FUSED:
            return 2.0
        return 2.0 * self.geometry.neighbors * NUM_VARS

    def traits(self) -> KernelTraits:
        return derive(COMM, simd_eff=0.5)

    # ---------------------------------------------------- functional run
    def setup(self) -> None:
        n_local = self.halo_elems * 4  # interior + two ghost fringes
        self.comm = SimComm(NUM_RANKS)
        self.vars = [
            [
                self.rng.random(n_local)
                for _ in range(NUM_VARS)
            ]
            for _ in range(NUM_RANKS)
        ]
        self.send_buffers = [
            np.zeros(2 * self.halo_elems * NUM_VARS) for _ in range(NUM_RANKS)
        ]
        self.recv_buffers = [
            np.zeros(2 * self.halo_elems * NUM_VARS) for _ in range(NUM_RANKS)
        ]

    def _pack(self) -> None:
        """Buffer layout: all low-boundary planes first, then all high."""
        h = self.halo_elems
        half = h * NUM_VARS
        for rank in range(NUM_RANKS):
            buf = self.send_buffers[rank]
            for v, var in enumerate(self.vars[rank]):
                buf[v * h : (v + 1) * h] = var[h : 2 * h]  # low boundary
                buf[half + v * h : half + (v + 1) * h] = var[-2 * h : -h]

    def _exchange(self) -> None:
        """Ring exchange: the low boundary goes to the left neighbor's high
        ghost; the high boundary goes to the right neighbor's low ghost."""
        half = self.halo_elems * NUM_VARS
        requests = []
        for rank in range(NUM_RANKS):
            left = (rank - 1) % NUM_RANKS
            right = (rank + 1) % NUM_RANKS
            self.comm.isend(rank, left, self.send_buffers[rank][:half], tag=0)
            self.comm.isend(rank, right, self.send_buffers[rank][half:], tag=1)
        for rank in range(NUM_RANKS):
            left = (rank - 1) % NUM_RANKS
            right = (rank + 1) % NUM_RANKS
            # Low ghost <- left neighbor's high boundary (their tag-1 send).
            req_low = self.comm.irecv(rank, left, self.recv_buffers[rank][:half], tag=1)
            # High ghost <- right neighbor's low boundary (their tag-0 send).
            req_high = self.comm.irecv(rank, right, self.recv_buffers[rank][half:], tag=0)
            requests.append((rank, req_low))
            requests.append((rank, req_high))
        for rank, req in requests:
            self.comm.wait(rank, req)

    def _unpack(self) -> None:
        h = self.halo_elems
        half = h * NUM_VARS
        for rank in range(NUM_RANKS):
            buf = self.recv_buffers[rank]
            for v, var in enumerate(self.vars[rank]):
                var[:h] = buf[v * h : (v + 1) * h]  # low ghost
                var[-h:] = buf[half + v * h : half + (v + 1) * h]

    def _run(self) -> None:
        if self.DO_PACK:
            self._pack()
        else:
            self._pack()  # sendrecv still needs data in flight buffers
        if self.DO_MPI:
            self._exchange()
        else:
            # Packing-only kernels round-trip through local buffers.
            for rank in range(NUM_RANKS):
                self.recv_buffers[rank][:] = self.send_buffers[rank]
        if self.DO_PACK:
            self._unpack()

    def run_base(self, policy) -> None:  # noqa: ANN001 - signature fixed by base
        self._run()

    def run_raja(self, policy) -> None:  # noqa: ANN001
        self._run()

    def checksum(self) -> float:
        total = 0.0
        for rank in range(NUM_RANKS):
            for var in self.vars[rank]:
                total += checksum_array(var)
            total += checksum_array(self.recv_buffers[rank])
        return total
