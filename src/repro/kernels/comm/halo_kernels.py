"""The five Comm HALO kernels (Table I).

All five share the functional exchange machinery of
:class:`~repro.kernels.comm._halo_base.HaloKernelBase` and differ in which
phases they time and how pack/unpack work is fused:

* HALO_PACKING — pack/unpack only, one launch per (neighbor, variable);
* HALO_PACKING_FUSED — the same packing through a RAJA workgroup, batching
  everything into two launches (the GPU-launch-overhead comparison);
* HALO_SENDRECV — the MPI transfer only;
* HALO_EXCHANGE — pack + MPI + unpack, unfused;
* HALO_EXCH_FUSED — pack + MPI + unpack with fused launches.

The paper treats these as outliers dominated by MPI time and excludes
them from the similarity analysis; on MI250X the *packing* kernel is
kernel-launch-overhead bound (Section V-C).
"""

from __future__ import annotations

from repro.suite.features import Feature
from repro.suite.registry import register_kernel
from repro.kernels.comm._halo_base import HaloKernelBase


@register_kernel
class CommHaloPacking(HaloKernelBase):
    NAME = "HALO_PACKING"
    DO_PACK = True
    DO_MPI = False
    FUSED = False
    INSTR_PER_ITER = 8.0


@register_kernel
class CommHaloPackingFused(HaloKernelBase):
    NAME = "HALO_PACKING_FUSED"
    DO_PACK = True
    DO_MPI = False
    FUSED = True
    FEATURES = frozenset({Feature.FORALL, Feature.WORKGROUP})
    INSTR_PER_ITER = 8.0


@register_kernel
class CommHaloSendrecv(HaloKernelBase):
    NAME = "HALO_SENDRECV"
    DO_PACK = False
    DO_MPI = True
    FUSED = False
    INSTR_PER_ITER = 2.0


@register_kernel
class CommHaloExchange(HaloKernelBase):
    NAME = "HALO_EXCHANGE"
    DO_PACK = True
    DO_MPI = True
    FUSED = False
    INSTR_PER_ITER = 8.0


@register_kernel
class CommHaloExchangeFused(HaloKernelBase):
    NAME = "HALO_EXCH_FUSED"
    DO_PACK = True
    DO_MPI = True
    FUSED = True
    FEATURES = frozenset({Feature.FORALL, Feature.WORKGROUP})
    INSTR_PER_ITER = 8.0
