"""Lcals_TRIDIAG_ELIM: Livermore Loop 5 — tridiagonal elimination (below
diagonal), in RAJAPerf's data-parallel formulation:

``x[i] = z[i] * (y[i] - x[i-1])`` reading the *previous* input vector, so
iterations are independent.
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim import forall
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import STREAMING, derive


@register_kernel
class LcalsTridiagElim(KernelBase):
    NAME = "TRIDIAG_ELIM"
    GROUP = Group.LCALS
    FEATURES = frozenset({Feature.FORALL})
    INSTR_PER_ITER = 7.0

    def setup(self) -> None:
        n = self.problem_size
        self.xout = np.zeros(n)
        self.xin = self.rng.random(n)
        self.y = self.rng.random(n)
        self.z = self.rng.random(n)

    def iterations(self) -> float:
        return float(self.problem_size - 1)

    def bytes_read(self) -> float:
        return 24.0 * self.iterations()

    def bytes_written(self) -> float:
        return 8.0 * self.iterations()

    def flops(self) -> float:
        return 2.0 * self.iterations()

    def traits(self) -> KernelTraits:
        return derive(STREAMING, streaming_eff=0.93, simd_eff=0.9)

    def run_base(self, policy: ExecPolicy) -> None:
        np.multiply(self.z[1:], self.y[1:] - self.xin[:-1], out=self.xout[1:])

    def run_raja(self, policy: ExecPolicy) -> None:
        xout, xin, y, z = self.xout, self.xin, self.y, self.z

        def body(i: np.ndarray) -> None:
            xout[i] = z[i] * (y[i] - xin[i - 1])

        forall(policy, (1, self.problem_size), body)

    def checksum(self) -> float:
        return checksum_array(self.xout)
