"""LCALS group: Livermore Loops in C++ (Table I)."""

from repro.kernels.lcals.diff_predict import LcalsDiffPredict
from repro.kernels.lcals.eos import LcalsEos
from repro.kernels.lcals.first_diff import LcalsFirstDiff
from repro.kernels.lcals.first_min import LcalsFirstMin
from repro.kernels.lcals.first_sum import LcalsFirstSum
from repro.kernels.lcals.gen_lin_recur import LcalsGenLinRecur
from repro.kernels.lcals.hydro_1d import LcalsHydro1d
from repro.kernels.lcals.hydro_2d import LcalsHydro2d
from repro.kernels.lcals.int_predict import LcalsIntPredict
from repro.kernels.lcals.planckian import LcalsPlanckian
from repro.kernels.lcals.tridiag_elim import LcalsTridiagElim

__all__ = [
    "LcalsDiffPredict",
    "LcalsEos",
    "LcalsFirstDiff",
    "LcalsFirstMin",
    "LcalsFirstSum",
    "LcalsGenLinRecur",
    "LcalsHydro1d",
    "LcalsHydro2d",
    "LcalsIntPredict",
    "LcalsPlanckian",
    "LcalsTridiagElim",
]
