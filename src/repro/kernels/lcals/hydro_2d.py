"""Lcals_HYDRO_2D: Livermore Loop 18 — 2-D explicit hydrodynamics.

Three stencil passes over five 2-D arrays; the heaviest LCALS streamer.
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim import kernel_2d
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature, Complexity
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import STREAMING, derive


@register_kernel
class LcalsHydro2d(KernelBase):
    NAME = "HYDRO_2D"
    GROUP = Group.LCALS
    COMPLEXITY = Complexity.N
    FEATURES = frozenset({Feature.KERNEL})
    INSTR_PER_ITER = 50.0

    S, T = 0.0041, 0.0037

    def __init__(self, problem_size: int | None = None, seed: int = 4793) -> None:
        super().__init__(problem_size, seed)
        edge = max(4, int(round(self.problem_size**0.5)))
        self.jn = self.kn = edge

    def iterations(self) -> float:
        return float((self.jn - 2) * (self.kn - 2))

    def setup(self) -> None:
        shape = (self.kn, self.jn)
        self.za = np.zeros(shape)
        self.zb = np.zeros(shape)
        self.zm = self.rng.random(shape)
        self.zp = self.rng.random(shape)
        self.zq = self.rng.random(shape)
        self.zr = self.rng.random(shape)
        self.zu = np.zeros(shape)
        self.zv = np.zeros(shape)
        self.zz = self.rng.random(shape)

    def bytes_read(self) -> float:
        return 7.0 * 8.0 * self.iterations()

    def bytes_written(self) -> float:
        return 4.0 * 8.0 * self.iterations()

    def flops(self) -> float:
        return 44.0 * self.iterations()

    def launches_per_rep(self) -> float:
        return 3.0

    def traits(self) -> KernelTraits:
        return derive(STREAMING, streaming_eff=0.85, simd_eff=0.8, cpu_compute_eff=0.45)

    def _pass1(self, k: object, j: object) -> None:
        za, zb = self.za, self.zb
        zp, zq, zr, zm = self.zp, self.zq, self.zr, self.zm
        za[k, j] = (zp[_p(k), _m(j)] + zq[_p(k), _m(j)] - zp[_m2(k), _m(j)] - zq[_m2(k), _m(j)]) * (
            zr[k, j] + zr[_m2(k), j]
        ) / (zm[_m2(k), j] + zm[_m2(k), _m(j)])
        zb[k, j] = (zp[_m2(k), _m(j)] + zq[_m2(k), _m(j)] - zp[_m2(k), j] - zq[_m2(k), j]) * (
            zr[k, j] + zr[k, _m(j)]
        ) / (zm[k, j] + zm[_m2(k), j])

    def _pass2(self, k: object, j: object) -> None:
        zu, zv = self.zu, self.zv
        za, zb, zz, zr = self.za, self.zb, self.zz, self.zr
        zu[k, j] = zu[k, j] + self.S * (
            za[k, j] * (zz[k, j] - zz[k, _p(j)])
            - za[k, _m(j)] * (zz[k, j] - zz[k, _m(j)])
            - zb[k, j] * (zz[k, j] - zz[_m2(k), j])
            + zb[_p(k), j] * (zz[k, j] - zz[_p(k), j])
        )
        zv[k, j] = zv[k, j] + self.S * (
            za[k, j] * (zr[k, j] - zr[k, _p(j)])
            - za[k, _m(j)] * (zr[k, j] - zr[k, _m(j)])
            - zb[k, j] * (zr[k, j] - zr[_m2(k), j])
            + zb[_p(k), j] * (zr[k, j] - zr[_p(k), j])
        )

    def _pass3(self, k: object, j: object) -> None:
        self.zr[k, j] = self.zr[k, j] + self.T * self.zu[k, j]
        self.zz[k, j] = self.zz[k, j] + self.T * self.zv[k, j]

    def run_base(self, policy: ExecPolicy) -> None:
        interior_k = slice(1, self.kn - 1)
        interior_j = slice(1, self.jn - 1)
        self._pass1(interior_k, interior_j)
        self._pass2(interior_k, interior_j)
        self._pass3(interior_k, interior_j)

    def run_raja(self, policy: ExecPolicy) -> None:
        segments = ((1, self.kn - 1), (1, self.jn - 1))
        kernel_2d(policy, segments, self._pass1)
        kernel_2d(policy, segments, self._pass2)
        kernel_2d(policy, segments, self._pass3)

    def checksum(self) -> float:
        return (
            checksum_array(self.zr.ravel())
            + checksum_array(self.zz.ravel())
            + checksum_array(self.zu.ravel())
            + checksum_array(self.zv.ravel())
        )


def _p(idx: object) -> object:
    """Index shifted +1 (works for slices and arrays)."""
    if isinstance(idx, slice):
        return slice(idx.start + 1, idx.stop + 1)
    return idx + 1


def _m(idx: object) -> object:
    """Index shifted -1."""
    if isinstance(idx, slice):
        return slice(idx.start - 1, idx.stop - 1)
    return idx - 1


def _m2(idx: object) -> object:
    """Alias of :func:`_m` kept for readability of the loop body."""
    return _m(idx)
