"""Lcals_EOS: Livermore Loop 7 — equation-of-state fragment.

``x[i] = u[i] + r*(z[i] + r*y[i]) + t*(u[i+3] + r*(u[i+2] + r*u[i+1]) +
t*(u[i+6] + q*(u[i+5] + q*u[i+4])))``
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim import forall
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import STREAMING, derive


@register_kernel
class LcalsEos(KernelBase):
    NAME = "EOS"
    GROUP = Group.LCALS
    FEATURES = frozenset({Feature.FORALL})
    INSTR_PER_ITER = 22.0

    Q, R, T = 0.5, 0.25, 0.125

    def setup(self) -> None:
        n = self.problem_size
        self.x = np.zeros(n)
        self.y = self.rng.random(n)
        self.z = self.rng.random(n)
        self.u = self.rng.random(n + 7)

    def bytes_read(self) -> float:
        # y, z, and the u window (~4 distinct cache lines' worth amortized).
        return 8.0 * 4.0 * self.problem_size

    def bytes_written(self) -> float:
        return 8.0 * self.problem_size

    def flops(self) -> float:
        return 16.0 * self.problem_size

    def traits(self) -> KernelTraits:
        return derive(STREAMING, streaming_eff=0.9, simd_eff=0.85, cpu_compute_eff=0.45)

    def _compute(self, i: object) -> None:
        x, y, z, u = self.x, self.y, self.z, self.u
        q, r, t = self.Q, self.R, self.T
        idx = np.asarray(i) if not isinstance(i, slice) else np.arange(self.problem_size)
        x[idx] = (
            u[idx]
            + r * (z[idx] + r * y[idx])
            + t
            * (
                u[idx + 3]
                + r * (u[idx + 2] + r * u[idx + 1])
                + t * (u[idx + 6] + q * (u[idx + 5] + q * u[idx + 4]))
            )
        )

    def run_base(self, policy: ExecPolicy) -> None:
        self._compute(slice(None))

    def run_raja(self, policy: ExecPolicy) -> None:
        compute = self._compute

        def body(i: np.ndarray) -> None:
            compute(i)

        forall(policy, self.problem_size, body)

    def checksum(self) -> float:
        return checksum_array(self.x)
