"""Lcals_HYDRO_1D: Livermore Loop 1 — hydrodynamics fragment.

``x[i] = q + y[i] * (r * z[i+10] + t * z[i+11])``
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim import forall
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import STREAMING, derive


@register_kernel
class LcalsHydro1d(KernelBase):
    NAME = "HYDRO_1D"
    GROUP = Group.LCALS
    FEATURES = frozenset({Feature.FORALL})
    HAS_KOKKOS = True
    INSTR_PER_ITER = 8.0

    Q, R, T = 0.5, 0.25, 0.125

    def setup(self) -> None:
        n = self.problem_size
        self.x = np.zeros(n)
        self.y = self.rng.random(n)
        self.z = self.rng.random(n + 12)

    def bytes_read(self) -> float:
        return 16.0 * self.problem_size  # y + z streamed

    def bytes_written(self) -> float:
        return 8.0 * self.problem_size

    def flops(self) -> float:
        return 5.0 * self.problem_size

    def traits(self) -> KernelTraits:
        return derive(STREAMING, streaming_eff=0.95, simd_eff=0.9)

    def run_base(self, policy: ExecPolicy) -> None:
        q, r, t = self.Q, self.R, self.T
        self.x[:] = q + self.y * (r * self.z[10:-2] + t * self.z[11:-1])

    def run_raja(self, policy: ExecPolicy) -> None:
        x, y, z = self.x, self.y, self.z
        q, r, t = self.Q, self.R, self.T

        def body(i: np.ndarray) -> None:
            x[i] = q + y[i] * (r * z[i + 10] + t * z[i + 11])

        forall(policy, self.problem_size, body)

    def checksum(self) -> float:
        return checksum_array(self.x)
