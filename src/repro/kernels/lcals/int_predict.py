"""Lcals_INT_PREDICT: Livermore Loop 2-family integrate predictors.

One output plane updated from ten prediction planes with a long FMA chain.
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim import forall, slice_capable
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import STREAMING, derive

PLANES = 13


@register_kernel
class LcalsIntPredict(KernelBase):
    NAME = "INT_PREDICT"
    GROUP = Group.LCALS
    FEATURES = frozenset({Feature.FORALL})
    INSTR_PER_ITER = 30.0

    DM22, DM23, DM24, DM25 = 0.2, 0.3, 0.4, 0.5
    DM26, DM27, DM28 = 0.6, 0.7, 0.8
    C0 = 1.1

    def setup(self) -> None:
        n = self.problem_size
        self.px = self.rng.random((PLANES, n))

    def bytes_read(self) -> float:
        return 8.0 * 8.0 * self.problem_size

    def bytes_written(self) -> float:
        return 8.0 * self.problem_size

    def flops(self) -> float:
        return 17.0 * self.problem_size

    def traits(self) -> KernelTraits:
        return derive(STREAMING, streaming_eff=0.88, simd_eff=0.85, cpu_compute_eff=0.45)

    def _compute(self, i: object) -> None:
        px = self.px
        px[0, i] = (
            self.DM28 * px[12, i]
            + self.DM27 * px[11, i]
            + self.DM26 * px[10, i]
            + self.DM25 * px[9, i]
            + self.DM24 * px[8, i]
            + self.DM23 * px[7, i]
            + self.DM22 * px[6, i]
            + self.C0 * (px[4, i] + px[5, i])
            + px[2, i]
        )

    def run_base(self, policy: ExecPolicy) -> None:
        self._compute(slice(None))

    def run_raja(self, policy: ExecPolicy) -> None:
        compute = self._compute

        @slice_capable(fuse=True)
        def body(i: np.ndarray) -> None:
            compute(i)

        forall(policy, self.problem_size, body)

    def checksum(self) -> float:
        return checksum_array(self.px[0])
