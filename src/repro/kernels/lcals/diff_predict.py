"""Lcals_DIFF_PREDICT: Livermore Loop 12-family difference predictors.

Chained differences over a 10-plane prediction array: heavy streaming
traffic with a short dependency chain per element.
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim import forall, slice_capable
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import STREAMING, derive

PLANES = 10


@register_kernel
class LcalsDiffPredict(KernelBase):
    NAME = "DIFF_PREDICT"
    GROUP = Group.LCALS
    FEATURES = frozenset({Feature.FORALL})
    INSTR_PER_ITER = 40.0

    def setup(self) -> None:
        n = self.problem_size
        self.px = self.rng.random((PLANES, n))
        self.cx = self.rng.random(n)

    def bytes_read(self) -> float:
        return 8.0 * (PLANES + 1) * self.problem_size

    def bytes_written(self) -> float:
        return 8.0 * PLANES * self.problem_size

    def flops(self) -> float:
        return float(2 * PLANES - 1) * self.problem_size

    def traits(self) -> KernelTraits:
        return derive(STREAMING, streaming_eff=0.9, simd_eff=0.85)

    def _compute(self, i: object) -> None:
        px, cx = self.px, self.cx
        ar = cx[i]
        br = ar - px[0][i]
        px[0][i] = ar
        cr = br - px[1][i]
        px[1][i] = br
        ar = cr - px[2][i]
        px[2][i] = cr
        br = ar - px[3][i]
        px[3][i] = ar
        cr = br - px[4][i]
        px[4][i] = br
        ar = cr - px[5][i]
        px[5][i] = cr
        br = ar - px[6][i]
        px[6][i] = ar
        cr = br - px[7][i]
        px[7][i] = br
        px[9][i] = cr - px[8][i]
        px[8][i] = cr

    def run_base(self, policy: ExecPolicy) -> None:
        self._compute(slice(None))

    def run_raja(self, policy: ExecPolicy) -> None:
        compute = self._compute

        @slice_capable(fuse=True)
        def body(i: np.ndarray) -> None:
            compute(i)

        forall(policy, self.problem_size, body)

    def checksum(self) -> float:
        return float(sum(checksum_array(self.px[k]) for k in range(PLANES)))
