"""Lcals_FIRST_MIN: Livermore Loop 24 — index of first minimum.

A min-with-location reduction. Section V-B notes its TMA profile splits
roughly half and half between retiring and frontend bound — the
conditional update defeats vectorization and stresses fetch — yet it
speeds up on the V100, which has parallelism to spare for it.
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim import ReduceMinLoc, forall
from repro.rajasim.policies import ExecPolicy
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import RETIRING, derive


@register_kernel
class LcalsFirstMin(KernelBase):
    NAME = "FIRST_MIN"
    GROUP = Group.LCALS
    FEATURES = frozenset({Feature.FORALL, Feature.REDUCTION})
    INSTR_PER_ITER = 7.0

    def setup(self) -> None:
        n = self.problem_size
        self.x = self.rng.random(n)
        # Plant a unique minimum away from the ends.
        self.x[n // 2] = -1.0
        self.min_val = 0.0
        self.min_loc = -1

    def bytes_read(self) -> float:
        return 8.0 * self.problem_size

    def bytes_written(self) -> float:
        return 0.0

    def flops(self) -> float:
        return 1.0 * self.problem_size

    def traits(self) -> KernelTraits:
        # Half retiring / half frontend (Section V-B).
        return derive(
            RETIRING,
            simd_eff=0.12,
            frontend_factor=0.85,
            cache_resident=0.9,
            branch_misp_per_iter=0.002,
        )

    def run_base(self, policy: ExecPolicy) -> None:
        loc = int(np.argmin(self.x))
        self.min_val = float(self.x[loc])
        self.min_loc = loc

    def run_raja(self, policy: ExecPolicy) -> None:
        x = self.x
        reducer = ReduceMinLoc(np.inf)

        def body(i: np.ndarray) -> None:
            reducer.combine(x[i], i)

        forall(policy, self.problem_size, body)
        self.min_val = float(reducer.get())
        self.min_loc = int(reducer.get_loc())

    def checksum(self) -> float:
        return self.min_val + float(self.min_loc) / self.problem_size
