"""Lcals_PLANCKIAN: Livermore Loop 22 — Planckian distribution.

``y[i] = u[i] / v[i]; w[i] = x[i] / (exp(y[i]) - 1)``

The transcendental gives it real compute alongside its streaming traffic,
landing it in the paper's mixed (cluster 0) group rather than the pure
bandwidth cluster.
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim import forall, slice_capable
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import BALANCED, derive


@register_kernel
class LcalsPlanckian(KernelBase):
    NAME = "PLANCKIAN"
    GROUP = Group.LCALS
    FEATURES = frozenset({Feature.FORALL})
    INSTR_PER_ITER = 28.0

    def setup(self) -> None:
        n = self.problem_size
        self.x = self.rng.random(n)
        self.u = self.rng.random(n)
        self.v = self.rng.random(n) + 0.5
        self.y = np.zeros(n)
        self.w = np.zeros(n)

    def bytes_read(self) -> float:
        return 24.0 * self.problem_size

    def bytes_written(self) -> float:
        return 16.0 * self.problem_size

    def flops(self) -> float:
        return 25.0 * self.problem_size  # exp counted as ~20 FLOPs

    def traits(self) -> KernelTraits:
        return derive(
            BALANCED,
            streaming_eff=0.8,
            simd_eff=0.6,
            cpu_compute_eff=0.12,
            cache_resident=0.2,
        )

    def run_base(self, policy: ExecPolicy) -> None:
        np.divide(self.u, self.v, out=self.y)
        np.divide(self.x, np.expm1(self.y), out=self.w)

    def run_raja(self, policy: ExecPolicy) -> None:
        x, u, v, y, w = self.x, self.u, self.v, self.y, self.w

        @slice_capable(fuse=True)
        def body(i: np.ndarray) -> None:
            y[i] = u[i] / v[i]
            w[i] = x[i] / np.expm1(y[i])

        forall(policy, self.problem_size, body)

    def checksum(self) -> float:
        return checksum_array(self.w) + checksum_array(self.y)
