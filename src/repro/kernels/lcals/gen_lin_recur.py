"""Lcals_GEN_LIN_RECUR: Livermore Loop 6 — general linear recurrence.

The RAJAPerf formulation runs two banded sweeps expressed as data-parallel
loops over the band; traffic dominates at scale.
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim import forall
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import STREAMING, derive


@register_kernel
class LcalsGenLinRecur(KernelBase):
    NAME = "GEN_LIN_RECUR"
    GROUP = Group.LCALS
    FEATURES = frozenset({Feature.FORALL})
    INSTR_PER_ITER = 14.0

    def setup(self) -> None:
        n = self.problem_size
        self.b5 = np.zeros(n)
        self.sa = self.rng.random(n)
        self.sb = self.rng.random(n)
        self.stb5 = self.rng.random(n)
        self.kb5i = 0

    def bytes_read(self) -> float:
        # Two sweeps, each reading sa/sb/stb5.
        return 2.0 * 24.0 * self.problem_size

    def bytes_written(self) -> float:
        return 2.0 * 16.0 * self.problem_size

    def flops(self) -> float:
        return 2.0 * 3.0 * self.problem_size

    def launches_per_rep(self) -> float:
        return 2.0

    def traits(self) -> KernelTraits:
        return derive(STREAMING, streaming_eff=0.88, simd_eff=0.8)

    def run_base(self, policy: ExecPolicy) -> None:
        n, kb5i = self.problem_size, self.kb5i
        b5, sa, sb, stb5 = self.b5, self.sa, self.sb, self.stb5
        k = np.arange(n)
        b5[k + kb5i] = sa[k] + stb5[k] * sb[k]
        stb5[k] = b5[k + kb5i] - stb5[k]
        i = np.arange(1, n + 1)
        k2 = n - i
        b5[k2 + kb5i] = sa[k2] + stb5[k2] * sb[k2]
        stb5[k2] = b5[k2 + kb5i] - stb5[k2]

    def run_raja(self, policy: ExecPolicy) -> None:
        n, kb5i = self.problem_size, self.kb5i
        b5, sa, sb, stb5 = self.b5, self.sa, self.sb, self.stb5

        def sweep1(k: np.ndarray) -> None:
            b5[k + kb5i] = sa[k] + stb5[k] * sb[k]
            stb5[k] = b5[k + kb5i] - stb5[k]

        forall(policy, n, sweep1)

        def sweep2(i: np.ndarray) -> None:
            k = n - (i + 1)
            b5[k + kb5i] = sa[k] + stb5[k] * sb[k]
            stb5[k] = b5[k + kb5i] - stb5[k]

        forall(policy, n, sweep2)

    def checksum(self) -> float:
        return checksum_array(self.b5) + checksum_array(self.stb5)
