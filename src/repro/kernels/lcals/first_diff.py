"""Lcals_FIRST_DIFF: Livermore Loop 11 — first difference.

``x[i] = y[i+1] - y[i]``
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim import forall
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import STREAMING, derive


@register_kernel
class LcalsFirstDiff(KernelBase):
    NAME = "FIRST_DIFF"
    GROUP = Group.LCALS
    FEATURES = frozenset({Feature.FORALL})
    INSTR_PER_ITER = 5.0

    def setup(self) -> None:
        n = self.problem_size
        self.x = np.zeros(n)
        self.y = self.rng.random(n + 1)

    def bytes_read(self) -> float:
        return 8.0 * self.problem_size  # y streamed once (i and i+1 share lines)

    def bytes_written(self) -> float:
        return 8.0 * self.problem_size

    def flops(self) -> float:
        return 1.0 * self.problem_size

    def traits(self) -> KernelTraits:
        return derive(STREAMING, streaming_eff=0.98, simd_eff=0.95)

    def run_base(self, policy: ExecPolicy) -> None:
        np.subtract(self.y[1:], self.y[:-1], out=self.x)

    def run_raja(self, policy: ExecPolicy) -> None:
        x, y = self.x, self.y

        def body(i: np.ndarray) -> None:
            x[i] = y[i + 1] - y[i]

        forall(policy, self.problem_size, body)

    def checksum(self) -> float:
        return checksum_array(self.x)
