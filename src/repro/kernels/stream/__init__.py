"""Stream group: the McCalpin STREAM kernels (ADD, COPY, DOT, MUL, TRIAD).

These are the pure memory-bandwidth probes; TRIAD is the paper's
bandwidth anchor (Table II) and its reference line in Fig. 9.
"""

from repro.kernels.stream.add import StreamAdd
from repro.kernels.stream.copy import StreamCopy
from repro.kernels.stream.dot import StreamDot
from repro.kernels.stream.mul import StreamMul
from repro.kernels.stream.triad import StreamTriad

__all__ = ["StreamAdd", "StreamCopy", "StreamDot", "StreamMul", "StreamTriad"]
