"""Stream_COPY: ``c[i] = a[i]``."""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim import forall, slice_capable
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import STREAMING, derive


@register_kernel
class StreamCopy(KernelBase):
    NAME = "COPY"
    GROUP = Group.STREAM
    FEATURES = frozenset({Feature.FORALL})
    HAS_KOKKOS = True
    INSTR_PER_ITER = 4.0

    def setup(self) -> None:
        n = self.problem_size
        self.a = self.rng.random(n)
        self.c = np.zeros(n)

    def bytes_read(self) -> float:
        return 8.0 * self.problem_size

    def bytes_written(self) -> float:
        return 8.0 * self.problem_size

    def flops(self) -> float:
        return 0.0

    def traits(self) -> KernelTraits:
        return derive(STREAMING, streaming_eff=1.0, simd_eff=0.95)

    def run_base(self, policy: ExecPolicy) -> None:
        np.copyto(self.c, self.a)

    def run_raja(self, policy: ExecPolicy) -> None:
        a, c = self.a, self.c

        @slice_capable(fuse=True)
        def body(i: np.ndarray) -> None:
            c[i] = a[i]

        forall(policy, self.problem_size, body)

    def checksum(self) -> float:
        return checksum_array(self.c)
