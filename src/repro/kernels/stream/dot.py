"""Stream_DOT: ``dot += a[i] * b[i]``.

The one Stream kernel the paper's clustering places outside the pure
memory-bound cluster: the reduction's combining work and lower SIMD
efficiency give it a visible retiring/core component (cluster 0).
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.traits import KernelTraits
from repro.rajasim import ReduceSum, forall, slice_capable
from repro.rajasim.policies import ExecPolicy
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel
from repro.suite.trait_presets import BALANCED, derive


@register_kernel
class StreamDot(KernelBase):
    NAME = "DOT"
    GROUP = Group.STREAM
    FEATURES = frozenset({Feature.FORALL, Feature.REDUCTION})
    HAS_KOKKOS = True
    INSTR_PER_ITER = 10.0

    def setup(self) -> None:
        n = self.problem_size
        self.a = self.rng.random(n)
        self.b = self.rng.random(n)
        self.dot = 0.0

    def bytes_read(self) -> float:
        return 16.0 * self.problem_size

    def bytes_written(self) -> float:
        return 0.0

    def flops(self) -> float:
        return 2.0 * self.problem_size

    def traits(self) -> KernelTraits:
        return derive(
            BALANCED,
            streaming_eff=0.85,
            simd_eff=0.45,
            cache_resident=0.15,
            frontend_factor=0.05,
        )

    def run_base(self, policy: ExecPolicy) -> None:
        self.dot = float(np.dot(self.a, self.b))

    def run_raja(self, policy: ExecPolicy) -> None:
        a, b = self.a, self.b
        reducer = ReduceSum(0.0)

        @slice_capable
        def body(i: np.ndarray) -> None:
            reducer.combine(a[i] * b[i])

        forall(policy, self.problem_size, body)
        self.dot = float(reducer.get())

    def checksum(self) -> float:
        return self.dot / self.problem_size
