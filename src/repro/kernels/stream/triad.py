"""Stream_TRIAD: ``a[i] = b[i] + q * c[i]``.

The suite's memory-bandwidth anchor: Table II's achieved bandwidth is
measured with this kernel, and Fig. 9 draws its value as the yellow
reference line. Its traits are shared with the calibration module so the
kernel and the model anchor agree by construction.
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.calibration import triad_traits
from repro.perfmodel.traits import KernelTraits
from repro.rajasim import forall, slice_capable
from repro.rajasim.policies import ExecPolicy
from repro.suite.checksum import checksum_array
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import register_kernel


@register_kernel
class StreamTriad(KernelBase):
    NAME = "TRIAD"
    GROUP = Group.STREAM
    FEATURES = frozenset({Feature.FORALL})
    HAS_KOKKOS = True
    INSTR_PER_ITER = 6.0

    Q = 3.0

    def setup(self) -> None:
        n = self.problem_size
        self.a = np.zeros(n)
        self.b = self.rng.random(n)
        self.c = self.rng.random(n)

    def bytes_read(self) -> float:
        return 16.0 * self.problem_size

    def bytes_written(self) -> float:
        return 8.0 * self.problem_size

    def flops(self) -> float:
        return 2.0 * self.problem_size

    def traits(self) -> KernelTraits:
        return triad_traits()

    def run_base(self, policy: ExecPolicy) -> None:
        np.multiply(self.c, self.Q, out=self.a)
        self.a += self.b

    def run_raja(self, policy: ExecPolicy) -> None:
        a, b, c, q = self.a, self.b, self.c, self.Q

        @slice_capable(fuse=True)
        def body(i: np.ndarray) -> None:
            a[i] = b[i] + q * c[i]

        forall(policy, self.problem_size, body)

    def checksum(self) -> float:
        return checksum_array(self.a)
