"""Run parameters, including the paper's Table III configuration.

``RunParams`` mirrors RAJAPerf's command-line surface: problem size (with
``32M``-style suffixes), repetitions, kernel/group/feature filters, variant
selection, and GPU block-size tunings. ``TABLE3`` records exactly the
per-machine configurations the paper ran.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machines.registry import MACHINES
from repro.suite.features import Feature
from repro.suite.groups import Group
from repro.util.units import parse_size


@dataclass(frozen=True)
class MachineRunConfig:
    """One row of Table III: how the suite is run on one machine."""

    machine: str
    variant: str
    mpi_ranks: int
    problem_size_per_node: int

    @property
    def problem_size_per_rank(self) -> int:
        return self.problem_size_per_node // self.mpi_ranks


#: Table III: 32M elements per node on every system.
PAPER_PROBLEM_SIZE = parse_size("32M")

TABLE3: dict[str, MachineRunConfig] = {
    "SPR-DDR": MachineRunConfig("SPR-DDR", "RAJA_Seq", 112, PAPER_PROBLEM_SIZE),
    "SPR-HBM": MachineRunConfig("SPR-HBM", "RAJA_Seq", 112, PAPER_PROBLEM_SIZE),
    "P9-V100": MachineRunConfig("P9-V100", "RAJA_CUDA", 4, PAPER_PROBLEM_SIZE),
    "EPYC-MI250X": MachineRunConfig("EPYC-MI250X", "RAJA_HIP", 8, PAPER_PROBLEM_SIZE),
}


@dataclass
class RunParams:
    """Suite-wide run configuration (RAJAPerf CLI equivalent)."""

    problem_size: int = PAPER_PROBLEM_SIZE
    reps: int = 1
    variants: tuple[str, ...] = ("Base_Seq", "RAJA_Seq")
    machines: tuple[str, ...] = tuple(MACHINES)
    groups: tuple[Group, ...] = ()
    kernels: tuple[str, ...] = ()
    features: tuple[Feature, ...] = ()
    gpu_block_sizes: tuple[int, ...] = (256,)
    execute: bool = False  # actually run the NumPy kernels (vs model-only)
    execution_size_cap: int = 200_000  # cap real execution sizes
    state_pool: bool = True  # reuse snapshot-restored kernel state across cells
    trials: int = 1  # repeated measurements (noise model applied when > 1)
    noise_sigma: float = 0.02  # run-to-run coefficient of variation
    write_csv: bool = False  # also emit RAJAPerf-style per-run CSV files
    pack: bool = False  # write profiles into a .calipack archive, not files
    output_dir: str = "."
    metadata: dict[str, object] = field(default_factory=dict)
    # --- fault tolerance (see docs/architecture.md) ---
    resume: bool = False  # skip cells the campaign manifest marks complete
    fail_fast: bool = False  # abort the sweep on the first error (old behavior)
    max_attempts: int = 3  # attempts per kernel (and per profile write)
    retry_base_delay: float = 0.05  # first backoff wait, seconds
    retry_max_delay: float = 2.0  # backoff cap, seconds
    retry_jitter: float = 0.5  # jitter fraction of each backoff wait
    retry_seed: int = 20240  # seeds the deterministic jitter stream
    kernel_deadline_s: float | None = None  # per-kernel watchdog deadline
    # --- supervised multi-process execution (see supervisor.py) ---
    workers: int = 1  # >1 fans cells out to a supervised worker pool
    heartbeat_timeout: float = 30.0  # seconds without a worker heartbeat = stale
    heartbeat_interval: float | None = None  # emit cadence (default timeout/5)
    # --- sharded scale-out execution (see coordinator.py) ---
    shards: int = 0  # >0 partitions cells across shard supervisors
    shard_lease_timeout: float = 30.0  # seconds without a lease refresh = stale
    # --- cost-model scheduling (see costmodel.py / schedule.py) ---
    schedule: str = "lpt"  # "lpt" orders/packs by estimated cost; "fifo" = seed order
    batch_cells: str | int = "auto"  # cells per dispatch message ("auto" or >= 1)
    shm: bool = True  # shared-memory result transport (queue fallback when off)
    cost_from: str | None = None  # manifest path supplying measured cell costs

    def __post_init__(self) -> None:
        self.problem_size = parse_size(self.problem_size)
        if self.reps <= 0:
            raise ValueError(f"reps must be > 0, got {self.reps}")
        unknown = [m for m in self.machines if m not in MACHINES]
        if unknown:
            raise ValueError(f"unknown machines {unknown}; have {list(MACHINES)}")
        bad_blocks = [b for b in self.gpu_block_sizes if b <= 0 or b & (b - 1)]
        if bad_blocks:
            raise ValueError(f"GPU block sizes must be powers of two: {bad_blocks}")
        if self.trials <= 0:
            raise ValueError(f"trials must be > 0, got {self.trials}")
        if self.noise_sigma < 0:
            raise ValueError(f"noise_sigma must be >= 0, got {self.noise_sigma}")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.retry_base_delay < 0 or self.retry_max_delay < 0:
            raise ValueError("retry delays must be >= 0")
        if self.retry_jitter < 0:
            raise ValueError(f"retry_jitter must be >= 0, got {self.retry_jitter}")
        if self.kernel_deadline_s is not None and self.kernel_deadline_s <= 0:
            raise ValueError(
                f"kernel_deadline_s must be > 0, got {self.kernel_deadline_s}"
            )
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.heartbeat_timeout <= 0:
            raise ValueError(
                f"heartbeat_timeout must be > 0, got {self.heartbeat_timeout}"
            )
        if self.heartbeat_interval is not None and self.heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat_interval must be > 0, got {self.heartbeat_interval}"
            )
        if self.fail_fast and self.workers > 1:
            raise ValueError(
                "fail_fast is incompatible with workers > 1: a supervised "
                "pool isolates failures by design"
            )
        if self.shards < 0:
            raise ValueError(f"shards must be >= 0, got {self.shards}")
        if self.shard_lease_timeout <= 0:
            raise ValueError(
                f"shard_lease_timeout must be > 0, got {self.shard_lease_timeout}"
            )
        if self.shards > 0 and not self.pack:
            raise ValueError(
                "sharded campaigns require pack=True: the merge tree "
                "combines per-shard .calipack archives"
            )
        if self.fail_fast and self.shards > 0:
            raise ValueError(
                "fail_fast is incompatible with shards > 0: a sharded "
                "campaign isolates failures by design"
            )
        from repro.suite.schedule import SCHEDULES

        if self.schedule not in SCHEDULES:
            raise ValueError(
                f"schedule must be one of {list(SCHEDULES)}, got {self.schedule!r}"
            )
        if self.batch_cells != "auto":
            try:
                self.batch_cells = int(self.batch_cells)
            except (TypeError, ValueError):
                raise ValueError(
                    f"batch_cells must be 'auto' or an integer >= 1, "
                    f"got {self.batch_cells!r}"
                ) from None
            if self.batch_cells < 1:
                raise ValueError(
                    f"batch_cells must be >= 1, got {self.batch_cells}"
                )

    def effective_heartbeat_interval(self) -> float:
        """How often workers beat (a fraction of the staleness deadline)."""
        if self.heartbeat_interval is not None:
            return self.heartbeat_interval
        return max(self.heartbeat_timeout / 5.0, 0.02)

    def retry_policy(self):
        """The executor's :class:`~repro.suite.retry.RetryPolicy`."""
        from repro.suite.retry import RetryPolicy

        return RetryPolicy(
            max_attempts=self.max_attempts,
            base_delay=self.retry_base_delay,
            max_delay=self.retry_max_delay,
            jitter=self.retry_jitter,
            seed=self.retry_seed,
        )

    def fingerprint(self) -> dict[str, object]:
        """Configuration identity recorded in the campaign manifest.

        Scheduling knobs (schedule/batch_cells/shm/cost_from), like the
        worker and shard counts, stay out: they change *how* the same
        cell set runs, never what it produces, so a resumed campaign or
        an adopted shard map must survive changing them.
        """
        return {
            "problem_size": self.problem_size,
            "reps": self.reps,
            "variants": list(self.variants),
            "machines": list(self.machines),
            "groups": [g.value for g in self.groups],
            "kernels": list(self.kernels),
            "features": [f.value for f in self.features],
            "gpu_block_sizes": list(self.gpu_block_sizes),
            "execute": self.execute,
            "trials": self.trials,
        }

    def selects(self, kernel_cls: type) -> bool:
        """Whether the filter settings select ``kernel_cls``."""
        if self.groups and kernel_cls.GROUP not in self.groups:
            return False
        if self.kernels:
            names = {k.lower() for k in self.kernels}
            if (
                kernel_cls.class_full_name().lower() not in names
                and kernel_cls.NAME.lower() not in names
            ):
                return False
        if self.features and not (set(self.features) & set(kernel_cls.FEATURES)):
            return False
        return True

    @property
    def execution_size(self) -> int:
        """Problem size for real NumPy execution (capped for wall-clock)."""
        return min(self.problem_size, self.execution_size_cap)
