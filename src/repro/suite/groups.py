"""The seven RAJAPerf kernel groups (Section II-A of the paper)."""

from __future__ import annotations

import enum


class Group(enum.Enum):
    """A group: kernels from one origin suite or computational pattern."""

    ALGORITHM = "Algorithm"
    APPS = "Apps"
    BASIC = "Basic"
    COMM = "Comm"
    LCALS = "Lcals"
    POLYBENCH = "Polybench"
    STREAM = "Stream"

    @property
    def description(self) -> str:
        return _DESCRIPTIONS[self]


_DESCRIPTIONS = {
    Group.ALGORITHM: (
        "Parallel constructs: atomics, scans, reductions, sorts, and memory "
        "operations like memcpy and memset."
    ),
    Group.APPS: (
        "Kernels derived from operations in LLNL multiphysics application codes."
    ),
    Group.BASIC: (
        "Small, simple kernels that often present optimization challenges "
        "for compilers."
    ),
    Group.COMM: (
        "Communication buffer packing/unpacking patterns from distributed "
        "memory applications using MPI."
    ),
    Group.LCALS: (
        "Livermore Compiler Analysis Loop Suite: Livermore Loops translated "
        "to C++ to study template/lambda optimization."
    ),
    Group.POLYBENCH: (
        "A subset of the Polybench suite used to study polyhedral compiler "
        "optimization."
    ),
    Group.STREAM: "Streaming kernels from the McCalpin STREAM benchmark.",
}
