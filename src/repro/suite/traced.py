"""Traced arrays: measure actual element traffic and FLOPs.

RAJAPerf's analytic metrics are *declared* formulas; this module provides
an instrumented array wrapper that *counts* element reads, writes, and
floating-point operations as a kernel executes, so tests can validate the
declared formulas against observed behaviour (the paper's metrics are
analytic too — this is our added validation layer).

``TracedArray`` wraps a NumPy array: indexing reads/writes are tallied
into a shared :class:`TraceCounters`, and arithmetic involving traced
operands counts elementwise FLOPs. Only the operations the kernels use
are instrumented; anything else falls through to NumPy untraced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class TraceCounters:
    """Shared tally of observed traffic."""

    elements_read: int = 0
    elements_written: int = 0
    flops: int = 0
    events: list[str] = field(default_factory=list)

    @property
    def bytes_read(self) -> int:
        return 8 * self.elements_read

    @property
    def bytes_written(self) -> int:
        return 8 * self.elements_written

    def reset(self) -> None:
        self.elements_read = 0
        self.elements_written = 0
        self.flops = 0
        self.events.clear()


def _count_of(index_result: np.ndarray | float) -> int:
    if isinstance(index_result, np.ndarray):
        return int(index_result.size)
    return 1


class TracedValue:
    """An intermediate value carrying the trace context through arithmetic."""

    __array_priority__ = 100  # win binops against plain ndarrays

    def __init__(self, data: np.ndarray | float, counters: TraceCounters) -> None:
        self.data = data
        self.counters = counters

    def _coerce(self, other: object) -> np.ndarray | float:
        if isinstance(other, (TracedValue, TracedArray)):
            return other.data
        return other  # type: ignore[return-value]

    def _binop(self, other: object, op: str) -> "TracedValue":
        rhs = self._coerce(other)
        result = getattr(np, op)(self.data, rhs)
        self.counters.flops += _count_of(result)
        return TracedValue(result, self.counters)

    def __add__(self, other: object) -> "TracedValue":
        return self._binop(other, "add")

    __radd__ = __add__

    def __sub__(self, other: object) -> "TracedValue":
        return self._binop(other, "subtract")

    def __rsub__(self, other: object) -> "TracedValue":
        rhs = self._coerce(other)
        result = np.subtract(rhs, self.data)
        self.counters.flops += _count_of(result)
        return TracedValue(result, self.counters)

    def __mul__(self, other: object) -> "TracedValue":
        return self._binop(other, "multiply")

    __rmul__ = __mul__

    def __truediv__(self, other: object) -> "TracedValue":
        return self._binop(other, "divide")

    def __rtruediv__(self, other: object) -> "TracedValue":
        rhs = self._coerce(other)
        result = np.divide(rhs, self.data)
        self.counters.flops += _count_of(result)
        return TracedValue(result, self.counters)

    def __neg__(self) -> "TracedValue":
        return TracedValue(np.negative(self.data), self.counters)

    def sum(self) -> "TracedValue":
        n = _count_of(self.data)
        self.counters.flops += max(0, n - 1)
        return TracedValue(np.sum(self.data), self.counters)

    def __float__(self) -> float:
        return float(self.data)

    def __repr__(self) -> str:
        return f"TracedValue({self.data!r})"


class TracedArray:
    """A NumPy array whose element reads/writes are counted."""

    __array_priority__ = 100

    def __init__(self, data: np.ndarray, counters: TraceCounters | None = None) -> None:
        self.data = np.asarray(data)
        self.counters = counters if counters is not None else TraceCounters()

    def __len__(self) -> int:
        return len(self.data)

    @property
    def size(self) -> int:
        return self.data.size

    def __getitem__(self, index: object) -> TracedValue:
        result = self.data[index]
        self.counters.elements_read += _count_of(result)
        return TracedValue(result, self.counters)

    def __setitem__(self, index: object, value: object) -> None:
        raw = value.data if isinstance(value, (TracedValue, TracedArray)) else value
        self.data[index] = raw
        written = self.data[index]
        self.counters.elements_written += _count_of(written)

    def plain(self) -> np.ndarray:
        """The underlying untraced array."""
        return self.data

    # Arithmetic on whole arrays (reads every element once).
    def _as_value(self) -> TracedValue:
        self.counters.elements_read += self.data.size
        return TracedValue(self.data, self.counters)

    def __add__(self, other: object) -> TracedValue:
        return self._as_value() + other

    def __mul__(self, other: object) -> TracedValue:
        return self._as_value() * other

    def __sub__(self, other: object) -> TracedValue:
        return self._as_value() - other

    def __repr__(self) -> str:
        return f"TracedArray(shape={self.data.shape})"
