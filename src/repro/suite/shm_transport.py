"""Shared-memory result transport for supervised campaigns.

A supervised worker's :class:`~repro.suite.worker.CellResult` carries
the cell's whole Caliper region tree, and the seed path pickled that
tree through a ``multiprocessing.Queue`` — one copy into the feeder
pipe, one copy out — for every cell. This module moves the bulk bytes
out of band: the worker serializes the profile to its sealed ``.cali``
byte form (:func:`~repro.caliper.cali.serialize_cali` — the exact bytes
a file write would produce), drops them into a slot of a fixed
``multiprocessing.shared_memory`` ring, and sends only the slot index
through the queue. The supervisor reads the slot, verifies the CRC in
the slot header, rebuilds the profile, and recycles the slot.

Lifecycle is deliberately one-sided to dodge a CPython footgun:
``SharedMemory`` registers with the ``resource_tracker`` on *attach* as
well as on create, so a worker that re-attached by name would fight the
supervisor over unlink at exit. Instead the ring is **created before
the workers fork and inherited** — workers never attach, never close,
never unlink; the supervisor owns the segment's whole life. That also
means the ring requires the ``fork`` start method: :func:`create_ring`
returns None anywhere else (and on any shm failure, e.g. a full
``/dev/shm``), and the caller falls back to the pickled-queue path.

Slot ownership is a free-list queue: workers ``get`` a free slot index
(with a short timeout — exhaustion degrades to the queue path, never
deadlocks), the supervisor ``put``\\ s it back after reading. A slot
held by a crashed worker is simply lost; the ring shrinks but the
campaign continues.

Slot layout::

    [u32 payload length][u32 CRC32][payload bytes ...]

A corrupt slot (impossible length, CRC mismatch) reads as None — the
result survives with its metadata, only the in-memory profile is lost.
"""

from __future__ import annotations

import queue as queue_mod
import struct
import zlib

#: per-slot header: payload length, CRC32 of the payload
HEADER = struct.Struct("<II")

DEFAULT_SLOT_COUNT = 64
DEFAULT_SLOT_SIZE = 256 * 1024

#: how long a worker waits for a free slot before falling back to the
#: pickled queue path (exhaustion must degrade, not deadlock)
SLOT_WAIT_S = 0.2


class ShmRing:
    """A fixed ring of shared-memory payload slots with a free list.

    Create in the supervisor *before* forking workers; pass the object
    itself through ``Process`` args (fork inherits the mapping — the
    ring must never be pickled or re-attached by name).
    """

    def __init__(
        self,
        ctx,
        slot_count: int = DEFAULT_SLOT_COUNT,
        slot_size: int = DEFAULT_SLOT_SIZE,
    ) -> None:
        from multiprocessing import shared_memory

        if slot_count < 1 or slot_size <= HEADER.size:
            raise ValueError("ShmRing needs >=1 slot and room for a header")
        self.slot_count = slot_count
        self.slot_size = slot_size
        self._shm = shared_memory.SharedMemory(
            create=True, size=slot_count * slot_size
        )
        self._free = ctx.Queue()
        for index in range(slot_count):
            self._free.put(index)
        self._closed = False

    @property
    def capacity(self) -> int:
        """Largest payload one slot holds."""
        return self.slot_size - HEADER.size

    # ------------------------------------------------------------- worker
    def try_write(self, payload: bytes, timeout: float = SLOT_WAIT_S) -> int | None:
        """Claim a slot and fill it; None when the payload is oversize or
        no slot frees up in time (caller falls back to the queue path)."""
        if len(payload) > self.capacity:
            return None
        try:
            slot = self._free.get(timeout=timeout)
        except (queue_mod.Empty, OSError, ValueError):
            return None
        offset = slot * self.slot_size
        buf = self._shm.buf
        HEADER.pack_into(buf, offset, len(payload), zlib.crc32(payload) & 0xFFFFFFFF)
        buf[offset + HEADER.size : offset + HEADER.size + len(payload)] = payload
        return slot

    # --------------------------------------------------------- supervisor
    def read(self, slot: int) -> bytes | None:
        """The slot's payload (CRC-verified), releasing the slot either way.

        None on damage — the caller keeps the result's metadata and
        loses only the in-memory profile.
        """
        try:
            if not 0 <= slot < self.slot_count:
                return None
            offset = slot * self.slot_size
            length, crc = HEADER.unpack_from(self._shm.buf, offset)
            if length > self.capacity:
                return None
            start = offset + HEADER.size
            payload = bytes(self._shm.buf[start : start + length])
            if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                return None
            return payload
        finally:
            self.release(slot)

    def release(self, slot: int) -> None:
        if not 0 <= slot < self.slot_count:
            return
        try:
            self._free.put(slot)
        except (OSError, ValueError):  # pragma: no cover - teardown race
            pass

    def close(self) -> None:
        """Supervisor-side teardown: drop the free list, unmap, unlink."""
        if self._closed:
            return
        self._closed = True
        try:
            self._free.cancel_join_thread()
            self._free.close()
        except (OSError, ValueError):  # pragma: no cover
            pass
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - a view still exported
            return
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already reclaimed
            pass


def create_ring(
    ctx,
    slot_count: int = DEFAULT_SLOT_COUNT,
    slot_size: int = DEFAULT_SLOT_SIZE,
) -> ShmRing | None:
    """A ring for this context, or None when shm transport cannot work.

    Requires the ``fork`` start method (inheritance is the only safe
    attach — see the module docstring) and a functioning shared-memory
    backend; any failure means "use the queue path", never an error.
    """
    try:
        if ctx.get_start_method() != "fork":
            return None
        return ShmRing(ctx, slot_count=slot_count, slot_size=slot_size)
    except Exception:  # noqa: BLE001 - transport is best-effort by design
        return None
