"""Trait presets for the four execution archetypes the paper's clustering
discovers (Section IV), plus the Comm archetype.

Individual kernels start from the preset matching their dominant bottleneck
and override specific fields. The presets are calibrated so that the
SPR-DDR TMA vectors of the full suite cluster into the paper's four
groups with the paper's per-cluster averages (Fig. 7):

========  ========  ======  ========  ======  ======
cluster   frontend  badspec retiring  core    memory
========  ========  ======  ========  ======  ======
0 (bal.)  0.045     0.038   0.240     0.149   0.528
1 (ret.)  0.146     0.005   0.717     0.102   0.030
2 (mem.)  0.010     0.000   0.056     0.052   0.881
3 (core)  0.012     0.004   0.412     0.536   0.037
========  ========  ======  ========  ======  ======
"""

from __future__ import annotations

from dataclasses import replace

from repro.perfmodel.traits import KernelTraits

#: Cluster 2 archetype: streaming, DRAM-bandwidth-bound (Stream, LCALS).
STREAMING = KernelTraits(
    streaming_eff=0.95,
    cpu_compute_eff=0.40,
    gpu_compute_eff=0.60,
    simd_eff=0.90,
    frontend_factor=0.03,
    cache_resident=0.0,
    gpu_cache_resident=0.0,
)

#: Cluster 0 archetype: memory bound but with real compute (many Apps).
BALANCED = KernelTraits(
    streaming_eff=0.60,
    cpu_compute_eff=0.15,
    gpu_compute_eff=0.60,
    simd_eff=0.50,
    frontend_factor=0.08,
    cache_resident=0.35,
    gpu_cache_resident=0.0,
)

#: Cluster 1 archetype: retiring/frontend bound, cache-resident working set.
RETIRING = KernelTraits(
    streaming_eff=0.80,
    cpu_compute_eff=0.30,
    gpu_compute_eff=0.60,
    simd_eff=0.25,
    frontend_factor=0.20,
    cache_resident=0.92,
    gpu_cache_resident=0.0,
)

#: Cluster 3 archetype: core (FP/dependency) bound, cache-resident.
CORE = KernelTraits(
    streaming_eff=0.80,
    cpu_compute_eff=0.06,
    gpu_compute_eff=0.60,
    simd_eff=0.60,
    frontend_factor=0.03,
    cache_resident=0.90,
    gpu_cache_resident=0.3,
)

#: Comm archetype: MPI-dominated halo patterns.
COMM = KernelTraits(
    streaming_eff=0.70,
    cpu_compute_eff=0.20,
    gpu_compute_eff=0.40,
    simd_eff=0.60,
    frontend_factor=0.06,
    cache_resident=0.2,
)


def derive(preset: KernelTraits, **overrides: object) -> KernelTraits:
    """A copy of ``preset`` with specific fields overridden."""
    return replace(preset, **overrides)
