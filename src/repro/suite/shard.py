"""The shard supervisor: one shared-nothing slice of a sharded campaign.

A sharded campaign (:mod:`repro.suite.coordinator`) partitions its cells
across N shard supervisors. Each shard owns ``shards/shard-K/`` under
the campaign output directory — a complete, self-contained campaign
directory with its own :class:`~repro.suite.manifest.CampaignLock`,
manifest, packed archive, and (when the shard runs a worker pool) its
own ``segments/worker-*.calipack``. Nothing is shared between shards,
so every crash-safety property PRs 1-4 established for one campaign
directory holds per shard unchanged; the coordinator's job reduces to
process supervision plus a final merge.

``shard_main`` is the shard process entry point. Each shard

* ignores SIGINT (campaign shutdown is the coordinator's decision);
* runs a :class:`ShardLease` thread that refreshes a lease file so the
  coordinator can tell "busy" from "wedged", and that watches for
  re-parenting — a shard whose coordinator died exits with
  :data:`SHARD_ORPHANED` rather than running headless forever;
* rebuilds its assigned cells from serialized specs and executes them
  through the ordinary :class:`~repro.suite.executor.SuiteExecutor`
  (serial loop, or a supervised pool when ``workers > 1``), appending
  profiles to the shard archive with member refs that already point at
  the campaign-level archive the coordinator will merge into;
* exits 0 when its run *completed* (even with failed cells — those are
  recorded in the shard manifest and surface in the campaign report),
  :data:`~repro.cli.exitcodes.CAMPAIGN_LOCKED` when the shard directory
  is still locked (a not-yet-reaped predecessor), and anything else on
  an abnormal death the coordinator must heal.
"""

from __future__ import annotations

import dataclasses
import json
import os
import signal
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.cli.exitcodes import CAMPAIGN_LOCKED, SHARD_ORPHANED, UNCLEAN_RUN
from repro.machines.registry import get_machine
from repro.suite.errors import CampaignLockedError
from repro.suite.run_params import RunParams
from repro.suite.variants import get_variant
from repro.util.fsio import tmp_sibling

#: subdirectory of the campaign output dir holding the shard dirs
SHARD_DIR = "shards"

#: the per-shard liveness lease, inside each shard directory
LEASE_NAME = "shard_lease.json"

#: how often a shard re-checks that its coordinator still exists
_ORPHAN_POLL_S = 0.2


def shard_dir_name(index: int) -> str:
    return f"shard-{index}"


def shard_path(output_dir: str | Path, index: int) -> Path:
    return Path(output_dir) / SHARD_DIR / shard_dir_name(index)


def parse_shard_index(name: str) -> int | None:
    """``shard-7`` -> 7; None for anything that is not a shard dir name."""
    if not name.startswith("shard-"):
        return None
    tail = name[len("shard-"):]
    return int(tail) if tail.isdigit() else None


# ----------------------------------------------------------- cell specs
#: a picklable cell: (machine, variant, block, trial, fname)
CellSpec = tuple[str, str, int, int, str]


def cell_spec(cell) -> CellSpec:
    """Serialize an executor ``_Cell`` for transport to a shard process."""
    return (
        cell.machine.shorthand,
        cell.variant.name,
        cell.block,
        cell.trial,
        cell.fname,
    )


def rebuild_cells(specs: list[CellSpec]) -> list:
    """Reconstitute executor cells from their serialized specs."""
    from repro.suite.executor import _Cell

    return [
        _Cell(
            machine=get_machine(machine),
            variant=get_variant(variant),
            block=block,
            trial=trial,
            fname=fname,
        )
        for machine, variant, block, trial, fname in specs
    ]


# ---------------------------------------------------------------- lease
def write_lease(shard_dir: Path, payload: dict) -> None:
    """Refresh the shard's lease (tmp + rename; liveness, not durability).

    The lease is an advisory heartbeat, so it skips the fsync protocol —
    losing one refresh to a power cut only makes the shard look a little
    staler, and the atomic rename keeps readers from ever seeing a torn
    lease.
    """
    target = shard_dir / LEASE_NAME
    tmp = tmp_sibling(target)
    try:
        tmp.write_text(json.dumps(payload))
        os.replace(tmp, target)
    except OSError:  # pragma: no cover - lease refresh is best-effort
        tmp.unlink(missing_ok=True)


def read_lease(shard_dir: Path) -> dict | None:
    try:
        payload = json.loads((shard_dir / LEASE_NAME).read_text())
    except (OSError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None


def lease_age(lease: dict | None, now: float | None = None) -> float | None:
    """Seconds since the lease was refreshed (None when unreadable).

    Prefers the lease's ``mono`` stamp against ``time.monotonic()``:
    CLOCK_MONOTONIC is shared by every process on the host, and unlike
    wall clock it cannot jump backwards (NTP step, manual reset) and
    make a wedged shard look freshly alive — or jump forwards and get a
    healthy shard killed. The wall-clock ``time`` stamp remains for
    display and as a fallback for leases written by older shards.
    """
    if lease is None:
        return None
    mono = lease.get("mono")
    if isinstance(mono, (int, float)) and now is None:
        return time.monotonic() - mono
    stamp = lease.get("time")
    if not isinstance(stamp, (int, float)):
        return None
    return (now if now is not None else time.time()) - stamp


class ShardLease(threading.Thread):
    """Daemon thread: refresh the lease file, watch for orphaning.

    The coordinator reads the lease's wall-clock stamp to distinguish a
    busy shard from a wedged one (no refresh within the lease timeout).
    The same loop polls ``os.getppid()``: if the coordinator died, this
    shard has no one to report to, to be healed by, or to be merged by —
    it exits immediately with :data:`SHARD_ORPHANED` and lets the
    *resumed* coordinator fsck and re-run whatever it was doing.
    """

    def __init__(
        self, shard_dir: Path, index: int, interval: float, coordinator_pid: int
    ) -> None:
        super().__init__(name=f"shard-lease-{index}", daemon=True)
        self.shard_dir = shard_dir
        self.index = index
        self.interval = max(interval, _ORPHAN_POLL_S)
        self.coordinator_pid = coordinator_pid
        self._stop = threading.Event()
        self._seq = 0

    def refresh(self) -> None:
        self._seq += 1
        write_lease(
            self.shard_dir,
            {
                "shard": self.index,
                "pid": os.getpid(),
                "seq": self._seq,
                # monotonic for liveness math, wall clock for humans
                "mono": time.monotonic(),
                "time": time.time(),
            },
        )

    def run(self) -> None:
        next_refresh = 0.0
        while not self._stop.is_set():
            now = time.monotonic()
            if now >= next_refresh:
                self.refresh()
                next_refresh = now + self.interval
            if os.getppid() != self.coordinator_pid:
                os._exit(SHARD_ORPHANED)  # our coordinator is gone
            self._stop.wait(_ORPHAN_POLL_S)

    def stop(self) -> None:
        self._stop.set()


# ----------------------------------------------------------- entry point
def shard_main(
    index: int,
    params: RunParams,
    specs: list[CellSpec],
    write_files: bool,
    resume: bool,
    coordinator_pid: int,
) -> None:
    """Shard process entry point (must stay importable for ``spawn``).

    ``params.output_dir`` is the *campaign* directory; the shard derives
    its own. The process never returns — it ``os._exit``\\ s so no
    inherited coordinator state (signal handlers, atexit hooks) runs.
    """
    from repro.suite.executor import SuiteExecutor

    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except ValueError:  # pragma: no cover - non-main thread (tests)
        pass

    shard_dir = shard_path(params.output_dir, index)
    shard_dir.mkdir(parents=True, exist_ok=True)
    # This process owns one shard: no recursive sharding, and the shard
    # directory is its campaign directory. Everything else — pack mode,
    # worker pool size, retry policy, execution settings — is inherited.
    sparams = dataclasses.replace(
        params,
        output_dir=str(shard_dir),
        shards=0,
        resume=resume,
    )
    lease = ShardLease(
        shard_dir,
        index,
        interval=max(params.shard_lease_timeout / 5.0, 0.02),
        coordinator_pid=coordinator_pid,
    )
    lease.start()

    executor = SuiteExecutor(sparams)
    if write_files and sparams.pack and sparams.workers == 1:
        from repro.caliper.calipack import ARCHIVE_NAME, ArchiveSink

        # Profiles land in the shard archive, but their recorded member
        # refs point at the campaign archive the coordinator merges into
        # (same trick as the supervised workers' segment refs).
        executor.profile_sink = ArchiveSink(
            shard_dir / ARCHIVE_NAME,
            ref_archive=Path(params.output_dir) / ARCHIVE_NAME,
        )

    try:
        result = executor._execute(rebuild_cells(specs), write_files)
    except CampaignLockedError:
        # A not-yet-reaped predecessor (or its orphan poll) still holds
        # the shard lock. Not a crash: the coordinator retries shortly
        # without charging the respawn budget.
        os._exit(CAMPAIGN_LOCKED)
    except BaseException:
        os._exit(UNCLEAN_RUN)  # abnormal completion: the coordinator heals
    finally:
        lease.stop()
    # Completion — clean or with recorded cell failures — is exit 0: the
    # shard had its chance, the manifest holds the verdicts.
    os._exit(0 if result is not None else UNCLEAN_RUN)


# ------------------------------------------------------------- progress
@dataclass
class ShardProgress:
    """A coordinator- or CLI-side snapshot of one shard's state."""

    index: int
    assigned: int
    ok: int = 0
    failed: int = 0
    lease_age: float | None = None
    lease_pid: int | None = None
    retired: bool = False

    @property
    def pending(self) -> int:
        return max(0, self.assigned - self.ok - self.failed)


def shard_progress(
    output_dir: str | Path, index: int, assigned_keys: list[str]
) -> ShardProgress:
    """Read one shard's manifest + lease into a :class:`ShardProgress`."""
    from repro.suite.manifest import MANIFEST_NAME

    shard_dir = shard_path(output_dir, index)
    progress = ShardProgress(index=index, assigned=len(assigned_keys))
    try:
        cells = json.loads(
            (shard_dir / MANIFEST_NAME).read_text()
        ).get("cells", {})
    except (OSError, ValueError):
        cells = {}
    assigned = set(assigned_keys)
    for key, entry in cells.items():
        if key not in assigned or not isinstance(entry, dict):
            continue
        if entry.get("status") == "ok":
            progress.ok += 1
        elif entry.get("status") == "failed":
            progress.failed += 1
    lease = read_lease(shard_dir)
    progress.lease_age = lease_age(lease)
    if lease is not None and isinstance(lease.get("pid"), int):
        progress.lease_pid = lease["pid"]
    return progress
