"""Shared Base_Seq reference-checksum sidecar.

Cross-variant verification needs the kernel's Base_Seq checksum at the
execution size. The executor memoizes it in-process, but a supervised
campaign runs many worker *processes*, and each one used to recompute
every reference from scratch — pure duplicated work that grows with the
pool size. This sidecar persists the references in the campaign
directory, keyed by ``(kernel, execution size)``: the first worker to
need a reference computes and publishes it, everyone else (including a
later ``--resume``) loads it.

Writes are read-merge-write through the durable tmp+replace protocol,
so concurrent publishers cannot tear the file; collisions are benign
because the values are deterministic (an injector-free Base_Seq run).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.chaos.points import crash_point
from repro.util.fsio import write_durable_text

SIDECAR_NAME = ".reference_checksums.json"

#: distinguishes "not stored" from a stored None (kernel without Base_Seq)
MISSING = object()


class ReferenceChecksumStore:
    """(kernel, size) -> Base_Seq checksum, persisted in the campaign dir."""

    def __init__(self, directory: str | Path) -> None:
        self.path = Path(directory) / SIDECAR_NAME

    @staticmethod
    def _key(kernel: str, size: int) -> str:
        return f"{kernel}@{size}"

    def _read(self) -> dict[str, float | None]:
        try:
            data = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return {}
        return data if isinstance(data, dict) else {}

    def get(self, kernel: str, size: int):
        """The stored checksum, or :data:`MISSING` when never published."""
        return self._read().get(self._key(kernel, size), MISSING)

    def put(self, kernel: str, size: int, value: float | None) -> None:
        """Publish one reference (merging concurrent publishers' entries)."""
        data = self._read()
        data[self._key(kernel, size)] = value
        crash_point("refchecksums.pre-publish", path=self.path)
        try:
            write_durable_text(
                self.path, json.dumps(data, sort_keys=True, indent=0)
            )
        except OSError:  # pragma: no cover - read-only campaign dir
            pass
