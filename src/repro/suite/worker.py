"""The supervised campaign worker: one process, one cell at a time.

``worker_main`` is the entry point the supervisor spawns. Each worker

* ignores SIGINT (campaign shutdown is the supervisor's decision — the
  terminal's SIGINT goes to the whole foreground process group, and a
  worker that died on Ctrl-C would defeat the graceful drain);
* runs a daemon :class:`~repro.suite.heartbeat.HeartbeatEmitter` so the
  supervisor can tell "busy" from "wedged";
* installs its own :class:`~repro.faults.FaultInjector` built from the
  supervisor's specs (budgets are per-process; worker-level faults
  match on the cell's attempt number so scenarios survive respawns);
* pulls :class:`CellTask` items off its private task queue, executes
  them through :meth:`SuiteExecutor.run_cell`, and reports a
  :class:`CellResult` on the shared result queue. ``None`` is the
  poison pill.

A ``WORKER_CRASH`` fault fires *before* the cell runs and calls
``os._exit`` — no result, no cleanup, no atexit: the closest a Python
process gets to a segfault. The supervisor must recover from exactly
this.
"""

from __future__ import annotations

import dataclasses
import os
import queue as queue_mod
import signal
import time
from dataclasses import dataclass, field

from repro.chaos.points import ChaosCrash
from repro.cli.exitcodes import WORKER_CRASH
from repro.faults import FaultInjector, FaultSite, FaultSpec
from repro.machines.registry import get_machine
from repro.suite.heartbeat import HeartbeatEmitter
from repro.suite.report import STATUS_FAILED, KernelRunRecord, cell_key
from repro.suite.run_params import RunParams
from repro.suite.variants import get_variant

#: Exit code of an injected worker crash (visible in the supervisor's log).
#: Canonically defined in :mod:`repro.cli.exitcodes`; re-exported here
#: because the supervisor and its tests historically import it from us.
WORKER_CRASH_EXITCODE = WORKER_CRASH

#: How often an idle worker re-checks that its supervisor still exists.
_ORPHAN_POLL_S = 1.0


@dataclass(frozen=True)
class CellTask:
    """A serializable cell assignment (machine/variant by name)."""

    machine: str
    variant: str
    block: int
    trial: int
    fname: str
    attempt: int = 1

    @property
    def tuning(self) -> str:
        return f"block_{self.block}" if self.block else "default"

    @property
    def key(self) -> str:
        return cell_key(self.machine, self.variant, self.tuning, self.trial)

    def next_attempt(self) -> "CellTask":
        return dataclasses.replace(self, attempt=self.attempt + 1)


@dataclass(frozen=True)
class CellBatch:
    """Several small cells in one dispatch message.

    The scheduler (:func:`repro.suite.schedule.plan_batch`) groups cells
    whose estimated cost is small so a sweep pays O(batches), not
    O(cells), queue round-trips. The worker still executes and reports
    cell by cell — one :class:`CellResult` each — so heartbeat, retry,
    and resume semantics are identical to single-cell dispatch.
    """

    tasks: tuple[CellTask, ...]


@dataclass
class CellResult:
    """What a worker sends back for one completed (or failed) cell."""

    worker_id: int
    key: str
    status: str  # "ok" | "failed"
    records: list[KernelRunRecord] = field(default_factory=list)
    file: str | None = None
    profile: object | None = None  # CaliProfile (picklable region tree)
    failed_kernels: list[str] = field(default_factory=list)
    elapsed_s: float | None = None  # measured cell wall time (cost model feed)
    shm_slot: int | None = None  # profile parked in the shm ring, not pickled


def _rebuild_cell(task: CellTask):
    """Reconstitute the executor's cell from the task's names."""
    from repro.suite.executor import _Cell

    return _Cell(
        machine=get_machine(task.machine),
        variant=get_variant(task.variant),
        block=task.block,
        trial=task.trial,
        fname=task.fname,
    )


def run_cell_task(executor, task: CellTask, write_files: bool) -> CellResult:
    """Execute one task through the shared cell primitive."""
    outcome = executor.run_cell(_rebuild_cell(task), write_files)
    return CellResult(
        worker_id=-1,  # stamped by the caller
        key=task.key,
        status=outcome.status,
        records=outcome.records,
        file=str(outcome.written) if outcome.written is not None else None,
        profile=outcome.profile,
        failed_kernels=outcome.failed_kernels,
        elapsed_s=outcome.elapsed_s,
    )


def _offload_profile(result: CellResult, shm_ring) -> None:
    """Park the result's profile bytes in the shm ring when possible.

    On success the pickled result crosses the queue without its region
    tree; the supervisor rebuilds it from the slot. Any failure (no
    ring, oversize payload, slot exhaustion) leaves the profile in the
    result — the queue path always works.
    """
    if shm_ring is None or result.profile is None:
        return
    from repro.caliper.cali import serialize_cali

    try:
        slot = shm_ring.try_write(serialize_cali(result.profile))
    except Exception:  # noqa: BLE001 - transport is best-effort
        slot = None
    if slot is not None:
        result.profile = None
        result.shm_slot = slot


def worker_main(
    worker_id: int,
    params: RunParams,
    task_queue,
    result_queue,
    heartbeat_queue,
    fault_specs: list[FaultSpec],
    write_files: bool,
    shm_ring=None,
) -> None:
    """Worker process entry point (must stay importable for ``spawn``)."""
    from repro.suite.executor import SuiteExecutor

    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except ValueError:  # pragma: no cover - non-main thread (tests)
        pass

    # This process runs exactly one cell at a time: no nested pools.
    params = dataclasses.replace(params, workers=1)

    injector: FaultInjector | None = None
    if fault_specs:
        injector = FaultInjector([dataclasses.replace(s) for s in fault_specs])
        injector.reset()  # fresh per-process budgets

    emitter = HeartbeatEmitter(
        worker_id, heartbeat_queue, params.effective_heartbeat_interval()
    )
    emitter.start()
    executor = SuiteExecutor(params, injector=injector)
    if write_files and params.pack:
        from pathlib import Path

        from repro.caliper.calipack import (
            ARCHIVE_NAME,
            ARCHIVE_SUFFIX,
            SEGMENT_DIR,
            ArchiveSink,
        )

        # Each worker appends to its own segment (no cross-process file
        # contention); refs point at the campaign archive the supervisor
        # merges the segments into on drain.
        executor.profile_sink = ArchiveSink(
            Path(params.output_dir)
            / SEGMENT_DIR
            / f"worker-{worker_id}{ARCHIVE_SUFFIX}",
            ref_archive=Path(params.output_dir) / ARCHIVE_NAME,
        )
    if write_files and params.execute:
        from repro.suite.refchecksums import ReferenceChecksumStore

        executor.refstore = ReferenceChecksumStore(params.output_dir)

    # If the supervisor dies abruptly (kill -9, a chaos os._exit) it can
    # never send poison pills, and a worker blocked on task_queue.get()
    # would idle forever. Poll with a timeout and exit when reparented.
    supervisor_pid = os.getppid()

    while True:
        try:
            item = task_queue.get(timeout=_ORPHAN_POLL_S)
        except queue_mod.Empty:
            if os.getppid() != supervisor_pid:
                break  # orphaned: our supervisor is gone
            continue
        if item is None:
            break
        tasks = item.tasks if isinstance(item, CellBatch) else (item,)
        for task in tasks:
            site = FaultSite(
                kernel="*", variant=task.variant, trial=task.trial,
                machine=task.machine,
            )
            if injector is not None:
                if injector.worker_crash(site, task.attempt) is not None:
                    os._exit(WORKER_CRASH_EXITCODE)  # the segfault equivalent
                stall = injector.stale_seconds(site, task.attempt)
                if stall:
                    emitter.suppress()
                    time.sleep(stall)  # wedged: the supervisor must kill us
            try:
                result = run_cell_task(executor, task, write_files)
            except ChaosCrash:  # a simulated crash must stay a crash
                raise
            except BaseException as exc:  # noqa: BLE001 - cell never dies silently
                result = CellResult(
                    worker_id=worker_id,
                    key=task.key,
                    status=STATUS_FAILED,
                    records=[
                        KernelRunRecord(
                            kernel="<worker>",
                            machine=task.machine,
                            variant=task.variant,
                            tuning=task.tuning,
                            trial=task.trial,
                            status=STATUS_FAILED,
                            attempts=task.attempt,
                            error=f"{type(exc).__name__}: {exc}",
                        )
                    ],
                    failed_kernels=["<worker>"],
                )
            result.worker_id = worker_id
            _offload_profile(result, shm_ring)
            result_queue.put(result)
    if executor.profile_sink is not None:
        executor.profile_sink.close()  # seal the segment's index
    emitter.stop()
