"""Kernel registry.

Kernel classes self-register via the :func:`register_kernel` decorator at
import time; :func:`load_all_kernels` imports every group subpackage so the
registry is complete. Lookups accept either the group-qualified name the
paper uses (``Stream_TRIAD``) or the bare kernel name when unambiguous.
"""

from __future__ import annotations

from repro.suite.groups import Group
from repro.suite.kernel_base import KernelBase

_REGISTRY: dict[str, type[KernelBase]] = {}
_LOADED = False


def register_kernel(cls: type[KernelBase]) -> type[KernelBase]:
    """Class decorator adding a kernel to the global registry."""
    if not issubclass(cls, KernelBase):
        raise TypeError(f"{cls!r} is not a KernelBase subclass")
    if not cls.NAME:
        raise ValueError(f"{cls!r} has no NAME")
    full = cls.class_full_name()
    existing = _REGISTRY.get(full)
    if existing is not None and existing is not cls:
        raise ValueError(f"duplicate kernel registration: {full}")
    _REGISTRY[full] = cls
    return cls


def load_all_kernels() -> None:
    """Import every kernel group subpackage (idempotent)."""
    global _LOADED
    if _LOADED:
        return
    # Imports happen for their registration side effects.
    from repro.kernels import algorithm, apps, basic, comm, lcals, polybench, stream  # noqa: F401

    _LOADED = True


def kernel_names() -> list[str]:
    """All group-qualified kernel names, sorted."""
    load_all_kernels()
    return sorted(_REGISTRY)


def get_kernel_class(name: str) -> type[KernelBase]:
    """Resolve a kernel class by full or bare name (case-insensitive)."""
    load_all_kernels()
    key = name.strip()
    for full, cls in _REGISTRY.items():
        if full.lower() == key.lower():
            return cls
    bare_matches = [
        cls for full, cls in _REGISTRY.items() if cls.NAME.lower() == key.lower()
    ]
    if len(bare_matches) == 1:
        return bare_matches[0]
    if len(bare_matches) > 1:
        raise KeyError(
            f"kernel name {name!r} is ambiguous: "
            f"{[c.class_full_name() for c in bare_matches]}"
        )
    raise KeyError(f"unknown kernel {name!r}")


def make_kernel(name: str, problem_size: int | None = None) -> KernelBase:
    """Instantiate a kernel by name."""
    return get_kernel_class(name)(problem_size=problem_size)


def all_kernel_classes() -> list[type[KernelBase]]:
    load_all_kernels()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def kernels_in_group(group: Group) -> list[type[KernelBase]]:
    load_all_kernels()
    return [cls for cls in all_kernel_classes() if cls.GROUP is group]


def similarity_kernel_classes() -> list[type[KernelBase]]:
    """Kernels admitted to the Section IV similarity analysis.

    The paper excludes kernels whose MPI decomposition gives incomparable
    work across machines: every non-O(n) kernel (sorts, matmuls, halo
    surfaces) plus three kernels with decomposition-dependent behaviour
    (HISTOGRAM's bin contention, EDGE3D's extreme-outlier profile, and
    INDEXLIST's serialized scan), matching Fig. 7's per-group counts.
    """
    explicit_exclusions = {
        "Algorithm_HISTOGRAM",
        "Apps_EDGE3D",
        "Basic_INDEXLIST",
    }
    out = []
    for cls in all_kernel_classes():
        if cls.GROUP is Group.COMM:
            continue
        if not cls.COMPLEXITY.is_linear:
            continue
        if cls.class_full_name() in explicit_exclusions:
            continue
        out.append(cls)
    return out
