"""Supervised multi-process campaign execution.

The serial executor made one *kernel* failure survivable; this module
makes one *process* failure survivable. A campaign's (machine, variant,
tuning, trial) cells fan out to a pool of ``multiprocessing`` workers
(:mod:`repro.suite.worker`), and a single supervisor loop owns every
piece of shared state — the manifest, the report, the retry budgets —
so workers stay crash-only: they either deliver a result or die, and
either way the campaign continues.

Supervision model (the worker lifecycle state machine):

::

    spawned -> idle -> busy(cell) -> idle -> ... -> drained(poison pill)
                 |         |
                 |         +-- process exit  -> DEAD  (requeue cell, respawn)
                 |         +-- missed beats  -> STALE (kill, requeue, respawn)
                 +-- process exit -> DEAD (respawn while work remains)

* **Dead worker**: the process exited (an injected ``WORKER_CRASH``
  does ``os._exit`` — the segfault equivalent). Detected via
  ``Process.is_alive``; its in-flight cell is requeued with the next
  attempt number under the campaign's :class:`RetryPolicy` (per-cell
  backoff, jitter salted by cell key), and a replacement worker is
  spawned. A cell that exhausts ``max_attempts`` is marked failed —
  the campaign never is.
* **Stale worker**: the process is alive but its heartbeats stopped
  (wedged I/O, a hung driver, an injected ``STALE_HEARTBEAT``).
  Detected by the :class:`HeartbeatMonitor` deadline; the worker is
  killed and handled exactly like a dead one.
* **Graceful shutdown**: SIGINT/SIGTERM flip a drain flag — no new
  cells are dispatched, in-flight cells finish and are recorded, the
  manifest is flushed, workers get poison pills, and the run returns
  with ``report.interrupted`` so ``--resume`` can finish the job.

Exactly one campaign may own an output directory: the supervisor holds
the manifest's :class:`CampaignLock` (PID lease; stale leases from dead
campaigns are taken over automatically).
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
import signal
import threading
import time
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path

from repro.chaos.points import crash_point
from repro.faults import FaultInjector, FaultSpec, active_injector
from repro.suite.heartbeat import HeartbeatMonitor
from repro.suite.session import CampaignSession
from repro.suite.report import (
    STATUS_FAILED,
    STATUS_RETRIED,
    STATUS_SKIPPED,
    KernelRunRecord,
    RunReport,
)
from repro.suite.run_params import RunParams
from repro.suite.worker import CellResult, CellTask, worker_main


def _mp_context():
    """Prefer fork (cheap, Linux default); fall back to spawn."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platform
        return multiprocessing.get_context("spawn")


@dataclass
class _WorkerHandle:
    """Supervisor-side view of one worker process."""

    worker_id: int
    process: multiprocessing.Process
    task_queue: object  # per-worker queue: exactly-once assignment tracking
    task: CellTask | None = None  # the in-flight cell, if any

    @property
    def busy(self) -> bool:
        return self.task is not None


class CampaignSupervisor:
    """Fan a campaign's cells out to a supervised worker pool.

    ``on_cell_complete`` is a test hook called (with the cell key) after
    each result is recorded — deterministic mid-campaign intervention
    points (e.g. raising SIGINT after the first completion) without
    sleeping against the race.
    """

    #: how long a drain waits for in-flight cells before terminating them
    DRAIN_GRACE_FACTOR = 2.0

    def __init__(
        self,
        params: RunParams,
        injector: FaultInjector | None = None,
        on_cell_complete: Callable[[str], None] | None = None,
    ) -> None:
        if params.workers < 2:
            raise ValueError("CampaignSupervisor requires params.workers >= 2")
        self.params = params
        self.injector = injector if injector is not None else active_injector()
        self.on_cell_complete = on_cell_complete
        self._shutdown = False
        self._ctx = _mp_context()
        self._next_worker_id = 0

    # ------------------------------------------------------------- signals
    def _install_signal_handlers(self):
        """Route SIGINT/SIGTERM to the drain flag (main thread only)."""
        if threading.current_thread() is not threading.main_thread():
            return []
        previous = []
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                previous.append((sig, signal.signal(sig, self._on_signal)))
            except (ValueError, OSError):  # pragma: no cover
                pass
        return previous

    def _on_signal(self, signum, frame) -> None:
        self._shutdown = True

    # -------------------------------------------------------------- workers
    def _spawn_worker(self, result_queue, heartbeat_queue, write_files: bool,
                      specs: list[FaultSpec], monitor: HeartbeatMonitor
                      ) -> _WorkerHandle:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        task_queue = self._ctx.Queue()
        process = self._ctx.Process(
            target=worker_main,
            args=(
                worker_id,
                self.params,
                task_queue,
                result_queue,
                heartbeat_queue,
                specs,
                write_files,
            ),
            name=f"campaign-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        monitor.register(worker_id)
        return _WorkerHandle(worker_id, process, task_queue)

    @staticmethod
    def _kill(handle: _WorkerHandle) -> None:
        process = handle.process
        if process.is_alive():
            process.terminate()
            process.join(timeout=2.0)
        if process.is_alive():  # pragma: no cover - SIGTERM ignored
            process.kill()
            process.join(timeout=2.0)

    # ------------------------------------------------------------------ run
    def run(self, cells, write_files: bool = False):
        """Execute ``cells`` on the pool; returns the executor's RunResult."""
        from repro.suite.executor import RunResult

        params = self.params
        report = RunReport()
        profiles: list = []
        paths: list[Path] = []
        session = CampaignSession(params, write_files).open()
        manifest = session.manifest
        try:
            pending: deque[CellTask] = deque()
            for cell in cells:
                if (
                    params.resume
                    and manifest is not None
                    and manifest.is_complete(cell.key)
                ):
                    report.mark_cell(cell.key, STATUS_SKIPPED)
                    continue
                pending.append(
                    CellTask(
                        machine=cell.machine.shorthand,
                        variant=cell.variant.name,
                        block=cell.block,
                        trial=cell.trial,
                        fname=cell.fname,
                    )
                )
            if pending:
                self._run_pool(
                    pending, report, profiles, paths, manifest, write_files
                )
                if manifest is not None and write_files:
                    manifest.save()
            session.finalize()
        finally:
            session.close()
        report.interrupted = self._shutdown
        return RunResult(profiles=profiles, cali_paths=paths, report=report)

    # ------------------------------------------------------------ the loop
    def _run_pool(self, pending, report, profiles, paths, manifest, write_files):
        params = self.params
        policy = params.retry_policy()
        specs = list(self.injector.specs) if self.injector is not None else []
        result_queue = self._ctx.Queue()
        heartbeat_queue = self._ctx.Queue()
        monitor = HeartbeatMonitor(params.heartbeat_timeout)
        #: cell key -> precomputed backoff waits (salted, deterministic)
        backoffs: dict[str, list[float]] = {}
        #: cell key -> earliest monotonic dispatch time (crash backoff)
        ready_at: dict[str, float] = {}
        workers: dict[int, _WorkerHandle] = {}
        drain_deadline: float | None = None

        def record_result(result: CellResult) -> None:
            for rec in result.records:
                report.add(rec)
            report.mark_cell(result.key, result.status)
            if result.profile is not None:
                profiles.append(result.profile)
            if result.file is not None:
                paths.append(Path(result.file))
            if manifest is not None and write_files:
                manifest.record(
                    result.key,
                    result.status,
                    file=result.file,
                    failed_kernels=result.failed_kernels,
                )
                manifest.save()
                crash_point("supervisor.post-record", path=manifest.path)
            if self.on_cell_complete is not None:
                self.on_cell_complete(result.key)

        def handle_worker_death(handle: _WorkerHandle, reason: str) -> None:
            """Requeue the dead/stale worker's cell under the retry policy."""
            monitor.forget(handle.worker_id)
            workers.pop(handle.worker_id, None)
            task = handle.task
            if task is None or self._shutdown:
                return  # idle death, or draining: --resume will finish it
            key = task.key
            if task.attempt >= policy.max_attempts:
                report.add(
                    KernelRunRecord(
                        kernel="<worker crash>",
                        machine=task.machine,
                        variant=task.variant,
                        tuning=task.tuning,
                        trial=task.trial,
                        status=STATUS_FAILED,
                        attempts=task.attempt,
                        error=reason,
                    )
                )
                report.mark_cell(key, STATUS_FAILED)
                if manifest is not None and write_files:
                    manifest.record(
                        key, STATUS_FAILED, failed_kernels=["<worker crash>"]
                    )
                    manifest.save()
                return
            report.add(
                KernelRunRecord(
                    kernel="<worker crash>",
                    machine=task.machine,
                    variant=task.variant,
                    tuning=task.tuning,
                    trial=task.trial,
                    status=STATUS_RETRIED,
                    attempts=task.attempt,
                    error=reason,
                )
            )
            waits = backoffs.setdefault(key, list(policy.delays(salt=key)))
            wait = waits[task.attempt - 1] if task.attempt - 1 < len(waits) else 0.0
            ready_at[key] = time.monotonic() + wait
            pending.append(task.next_attempt())

        previous_handlers = self._install_signal_handlers()
        try:
            for _ in range(min(params.workers, len(pending))):
                handle = self._spawn_worker(
                    result_queue, heartbeat_queue, write_files, specs, monitor
                )
                workers[handle.worker_id] = handle

            while pending or any(h.busy for h in workers.values()):
                now = time.monotonic()
                if self._shutdown:
                    pending.clear()
                    if drain_deadline is None:
                        drain_deadline = now + max(
                            self.DRAIN_GRACE_FACTOR * params.heartbeat_timeout, 5.0
                        )
                    if now > drain_deadline:
                        break  # in-flight cells forfeited; --resume reruns them
                    if not any(h.busy for h in workers.values()):
                        break

                # Dispatch: one cell per idle worker, respecting backoff.
                for handle in workers.values():
                    if handle.busy or not pending:
                        continue
                    task = self._pop_ready(pending, ready_at, now)
                    if task is None:
                        break
                    handle.task = task
                    monitor.beat(handle.worker_id)  # dispatch restarts the clock
                    handle.task_queue.put(task)

                # Heartbeats: drain and stamp with the supervisor's clock.
                while True:
                    try:
                        worker_id, _seq = heartbeat_queue.get_nowait()
                    except queue_mod.Empty:
                        break
                    monitor.beat(worker_id)

                # Results.
                try:
                    result = result_queue.get(timeout=0.05)
                except queue_mod.Empty:
                    result = None
                if result is not None:
                    handle = workers.get(result.worker_id)
                    if handle is not None:
                        handle.task = None
                    record_result(result)
                    continue  # drain results before liveness verdicts

                # Liveness: loud deaths first, then quiet (stale) ones.
                for handle in list(workers.values()):
                    if not handle.process.is_alive():
                        handle.process.join(timeout=0.5)
                        code = handle.process.exitcode
                        handle_worker_death(
                            handle, f"worker process died (exit code {code})"
                        )
                    elif handle.busy and monitor.is_stale(handle.worker_id):
                        self._kill(handle)
                        handle_worker_death(
                            handle,
                            f"worker missed heartbeat deadline "
                            f"({params.heartbeat_timeout:.3g}s)",
                        )
                # Respawn up to the pool size while work remains.
                while not self._shutdown and pending and len(workers) < min(
                    params.workers, len(pending) + sum(
                        1 for h in workers.values() if h.busy
                    )
                ):
                    handle = self._spawn_worker(
                        result_queue, heartbeat_queue, write_files, specs, monitor
                    )
                    workers[handle.worker_id] = handle
        finally:
            for sig, handler in previous_handlers:
                signal.signal(sig, handler)
            for handle in workers.values():
                if handle.process.is_alive():
                    try:
                        handle.task_queue.put(None)  # poison pill
                    except (OSError, ValueError):  # pragma: no cover
                        pass
            deadline = time.monotonic() + 2.0
            for handle in workers.values():
                handle.process.join(timeout=max(0.0, deadline - time.monotonic()))
                if handle.process.is_alive():
                    self._kill(handle)
            for q in (result_queue, heartbeat_queue):
                q.cancel_join_thread()
                q.close()

    @staticmethod
    def _pop_ready(pending, ready_at, now: float) -> CellTask | None:
        """The first pending task whose backoff wait has elapsed."""
        for _ in range(len(pending)):
            task = pending.popleft()
            if ready_at.get(task.key, 0.0) <= now:
                return task
            pending.append(task)  # still cooling down: rotate
        return None
