"""Supervised multi-process campaign execution.

The serial executor made one *kernel* failure survivable; this module
makes one *process* failure survivable. A campaign's (machine, variant,
tuning, trial) cells fan out to a pool of ``multiprocessing`` workers
(:mod:`repro.suite.worker`), and a single supervisor loop owns every
piece of shared state — the manifest, the report, the retry budgets —
so workers stay crash-only: they either deliver a result or die, and
either way the campaign continues.

Supervision model (the worker lifecycle state machine):

::

    spawned -> idle -> busy(cell) -> idle -> ... -> drained(poison pill)
                 |         |
                 |         +-- process exit  -> DEAD  (requeue cell, respawn)
                 |         +-- missed beats  -> STALE (kill, requeue, respawn)
                 +-- process exit -> DEAD (respawn while work remains)

* **Dead worker**: the process exited (an injected ``WORKER_CRASH``
  does ``os._exit`` — the segfault equivalent). Detected via
  ``Process.is_alive``; its in-flight cell is requeued with the next
  attempt number under the campaign's :class:`RetryPolicy` (per-cell
  backoff, jitter salted by cell key), and a replacement worker is
  spawned. A cell that exhausts ``max_attempts`` is marked failed —
  the campaign never is.
* **Stale worker**: the process is alive but its heartbeats stopped
  (wedged I/O, a hung driver, an injected ``STALE_HEARTBEAT``).
  Detected by the :class:`HeartbeatMonitor` deadline; the worker is
  killed and handled exactly like a dead one.
* **Graceful shutdown**: SIGINT/SIGTERM flip a drain flag — no new
  cells are dispatched, in-flight cells finish and are recorded, the
  manifest is flushed, workers get poison pills, and the run returns
  with ``report.interrupted`` so ``--resume`` can finish the job.

Exactly one campaign may own an output directory: the supervisor holds
the manifest's :class:`CampaignLock` (PID lease; stale leases from dead
campaigns are taken over automatically).

Scheduling (PR 10): pending cells are ordered longest-first by the
:class:`~repro.suite.costmodel.CellCostModel` estimate (``--schedule
lpt``; ``fifo`` preserves sweep order), small cells coalesce into
:class:`~repro.suite.worker.CellBatch` dispatch messages that shrink
toward single cells as the tail drains (``--batch-cells``), result
payloads ride a shared-memory ring instead of the pickled queue
(``--no-shm`` to disable), and the loop blocks on a single select-style
wait over the result/heartbeat queues and worker sentinels — it wakes
O(events), not O(elapsed/50ms). None of it changes what a campaign
produces: results are keyed by cell and the packed archive is
canonicalized, so outputs are byte-identical across every knob setting.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
import signal
import threading
import time
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path

from repro.chaos.points import crash_point
from repro.faults import FaultInjector, FaultSpec, active_injector
from repro.suite.costmodel import CellCostModel
from repro.suite.heartbeat import HeartbeatMonitor
from repro.suite.schedule import (
    SCHEDULE_LPT,
    ReadyHeap,
    order_lpt,
    plan_batch,
    resolve_batch_cap,
)
from repro.suite.session import CampaignSession
from repro.suite.shm_transport import create_ring
from repro.suite.report import (
    STATUS_FAILED,
    STATUS_RETRIED,
    STATUS_SKIPPED,
    KernelRunRecord,
    RunReport,
)
from repro.suite.run_params import RunParams
from repro.suite.worker import CellBatch, CellResult, CellTask, worker_main


def _mp_context():
    """Prefer fork (cheap, Linux default); fall back to spawn."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platform
        return multiprocessing.get_context("spawn")


@dataclass
class _WorkerHandle:
    """Supervisor-side view of one worker process."""

    worker_id: int
    process: multiprocessing.Process
    task_queue: object  # per-worker queue: exactly-once assignment tracking
    #: in-flight cells, dispatch order. Workers execute and report in
    #: order, so after a death tasks[0] is the one that was running.
    tasks: deque = field(default_factory=deque)

    @property
    def busy(self) -> bool:
        return bool(self.tasks)

    def finish(self, key: str) -> None:
        """Drop the in-flight task a result just settled."""
        for task in self.tasks:
            if task.key == key:
                self.tasks.remove(task)
                return


class CampaignSupervisor:
    """Fan a campaign's cells out to a supervised worker pool.

    ``on_cell_complete`` is a test hook called (with the cell key) after
    each result is recorded — deterministic mid-campaign intervention
    points (e.g. raising SIGINT after the first completion) without
    sleeping against the race.
    """

    #: how long a drain waits for in-flight cells before terminating them
    DRAIN_GRACE_FACTOR = 2.0

    #: longest the event wait sleeps with nothing to wake it (a worker's
    #: first heartbeat after a long cell, say); 0.05 while draining so a
    #: shutdown stays as responsive as the seed loop
    MAX_WAIT_S = 0.5
    DRAIN_WAIT_S = 0.05

    def __init__(
        self,
        params: RunParams,
        injector: FaultInjector | None = None,
        on_cell_complete: Callable[[str], None] | None = None,
    ) -> None:
        if params.workers < 2:
            raise ValueError("CampaignSupervisor requires params.workers >= 2")
        self.params = params
        self.injector = injector if injector is not None else active_injector()
        self.on_cell_complete = on_cell_complete
        self._shutdown = False
        self._ctx = _mp_context()
        self._next_worker_id = 0
        #: loop telemetry (asserted by tests: the loop is O(events), not
        #: O(elapsed / poll interval))
        self.loop_iterations = 0
        self.results_handled = 0

    # ------------------------------------------------------------- signals
    def _install_signal_handlers(self):
        """Route SIGINT/SIGTERM to the drain flag (main thread only)."""
        if threading.current_thread() is not threading.main_thread():
            return []
        previous = []
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                previous.append((sig, signal.signal(sig, self._on_signal)))
            except (ValueError, OSError):  # pragma: no cover
                pass
        return previous

    def _on_signal(self, signum, frame) -> None:
        self._shutdown = True

    # -------------------------------------------------------------- workers
    def _spawn_worker(self, result_queue, heartbeat_queue, write_files: bool,
                      specs: list[FaultSpec], monitor: HeartbeatMonitor,
                      shm_ring=None) -> _WorkerHandle:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        task_queue = self._ctx.Queue()
        process = self._ctx.Process(
            target=worker_main,
            args=(
                worker_id,
                self.params,
                task_queue,
                result_queue,
                heartbeat_queue,
                specs,
                write_files,
                # fork-inherited, never pickled/re-attached (see
                # shm_transport); None under spawn or --no-shm
                shm_ring,
            ),
            name=f"campaign-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        monitor.register(worker_id)
        return _WorkerHandle(worker_id, process, task_queue)

    @staticmethod
    def _kill(handle: _WorkerHandle) -> None:
        process = handle.process
        if process.is_alive():
            process.terminate()
            process.join(timeout=2.0)
        if process.is_alive():  # pragma: no cover - SIGTERM ignored
            process.kill()
            process.join(timeout=2.0)

    # ------------------------------------------------------------------ run
    def run(self, cells, write_files: bool = False):
        """Execute ``cells`` on the pool; returns the executor's RunResult."""
        from repro.suite.executor import RunResult

        params = self.params
        report = RunReport()
        profiles: list = []
        paths: list[Path] = []
        session = CampaignSession(params, write_files).open()
        manifest = session.manifest
        try:
            pending: list[CellTask] = []
            for cell in cells:
                if (
                    params.resume
                    and manifest is not None
                    and manifest.is_complete(cell.key)
                ):
                    report.mark_cell(cell.key, STATUS_SKIPPED)
                    continue
                pending.append(
                    CellTask(
                        machine=cell.machine.shorthand,
                        variant=cell.variant.name,
                        block=cell.block,
                        trial=cell.trial,
                        fname=cell.fname,
                    )
                )
            costs = CellCostModel.for_params(params)
            if params.schedule == SCHEDULE_LPT:
                # Longest first: the expensive cells start immediately
                # instead of landing on one worker after everyone else
                # drained, which is what strands a FIFO campaign's tail.
                pending = order_lpt(pending, costs.cost_of_task)
            if pending:
                self._run_pool(
                    pending, costs, report, profiles, paths, manifest,
                    write_files,
                )
                if manifest is not None and write_files:
                    manifest.save()
            session.finalize()
        finally:
            session.close()
        report.interrupted = self._shutdown
        return RunResult(profiles=profiles, cali_paths=paths, report=report)

    # ------------------------------------------------------------ the loop
    def _run_pool(self, pending, costs, report, profiles, paths, manifest,
                  write_files):
        params = self.params
        policy = params.retry_policy()
        specs = list(self.injector.specs) if self.injector is not None else []
        result_queue = self._ctx.Queue()
        heartbeat_queue = self._ctx.Queue()
        monitor = HeartbeatMonitor(params.heartbeat_timeout)
        # The shm ring must exist before any worker forks: workers use
        # the inherited mapping and never attach by name.
        shm_ring = create_ring(self._ctx) if params.shm else None
        batch_cap = resolve_batch_cap(params.batch_cells)
        #: cell key -> precomputed backoff waits (salted, deterministic)
        backoffs: dict[str, list[float]] = {}
        workers: dict[int, _WorkerHandle] = {}
        drain_deadline: float | None = None

        queue = ReadyHeap()
        remaining_cost = 0.0
        for task in pending:
            queue.push(task)
            remaining_cost += costs.cost_of_task(task)

        def resolve_transport(result: CellResult) -> None:
            """Rebuild a shm-parked profile (and recycle its slot)."""
            if result.shm_slot is None:
                return
            slot, result.shm_slot = result.shm_slot, None
            if shm_ring is None:  # pragma: no cover - worker had a ring, we lost it
                return
            payload = shm_ring.read(slot)
            if payload is None:
                return  # damaged slot: metadata survives, profile is lost
            from repro.caliper.cali import parse_cali_payload, profile_from_payload

            try:
                result.profile = profile_from_payload(
                    parse_cali_payload(payload, f"<shm slot {slot}>")
                )
            except ValueError:  # pragma: no cover - CRC passed, parse failed
                result.profile = None

        def record_result(result: CellResult) -> None:
            for rec in result.records:
                report.add(rec)
            report.mark_cell(result.key, result.status)
            if result.profile is not None:
                profiles.append(result.profile)
            if result.file is not None:
                paths.append(Path(result.file))
            if manifest is not None and write_files:
                manifest.record(
                    result.key,
                    result.status,
                    file=result.file,
                    failed_kernels=result.failed_kernels,
                    elapsed_s=result.elapsed_s,
                )
                manifest.save()
                crash_point("supervisor.post-record", path=manifest.path)
            if self.on_cell_complete is not None:
                self.on_cell_complete(result.key)

        def handle_worker_death(handle: _WorkerHandle, reason: str) -> None:
            """Requeue the dead/stale worker's cells under the retry policy.

            Only the in-progress cell (``tasks[0]`` — workers execute a
            batch in dispatch order) is charged an attempt; cells queued
            behind it never started and requeue verbatim.
            """
            nonlocal remaining_cost
            monitor.forget(handle.worker_id)
            workers.pop(handle.worker_id, None)
            tasks = list(handle.tasks)
            if not tasks or self._shutdown:
                return  # idle death, or draining: --resume will finish it
            task, unstarted = tasks[0], tasks[1:]
            for t in unstarted:
                queue.push(t)
                remaining_cost += costs.cost_of_task(t)
            key = task.key
            if task.attempt >= policy.max_attempts:
                report.add(
                    KernelRunRecord(
                        kernel="<worker crash>",
                        machine=task.machine,
                        variant=task.variant,
                        tuning=task.tuning,
                        trial=task.trial,
                        status=STATUS_FAILED,
                        attempts=task.attempt,
                        error=reason,
                    )
                )
                report.mark_cell(key, STATUS_FAILED)
                if manifest is not None and write_files:
                    manifest.record(
                        key, STATUS_FAILED, failed_kernels=["<worker crash>"]
                    )
                    manifest.save()
                return
            report.add(
                KernelRunRecord(
                    kernel="<worker crash>",
                    machine=task.machine,
                    variant=task.variant,
                    tuning=task.tuning,
                    trial=task.trial,
                    status=STATUS_RETRIED,
                    attempts=task.attempt,
                    error=reason,
                )
            )
            waits = backoffs.setdefault(key, list(policy.delays(salt=key)))
            wait = waits[task.attempt - 1] if task.attempt - 1 < len(waits) else 0.0
            queue.push(task.next_attempt(), ready_time=time.monotonic() + wait)
            remaining_cost += costs.cost_of_task(task)

        def wait_timeout(now: float) -> float:
            """How long the event wait may sleep: until the next thing
            the loop itself must initiate (a backoff expiry when a worker
            sits idle, a stale verdict, the drain deadline)."""
            timeout = self.DRAIN_WAIT_S if self._shutdown else self.MAX_WAIT_S
            if queue and any(not h.busy for h in workers.values()):
                next_ready = queue.next_ready_at()
                if next_ready is not None:
                    timeout = min(timeout, max(next_ready - now, 0.0))
            for handle in workers.values():
                if handle.busy:
                    seen = monitor.last_seen(handle.worker_id)
                    if seen is not None:
                        timeout = min(
                            timeout,
                            max(seen + params.heartbeat_timeout - now, 0.0),
                        )
            if drain_deadline is not None:
                timeout = min(timeout, max(drain_deadline - now, 0.0))
            return max(timeout, 0.01)

        previous_handlers = self._install_signal_handlers()
        try:
            for _ in range(min(params.workers, len(queue))):
                handle = self._spawn_worker(
                    result_queue, heartbeat_queue, write_files, specs, monitor,
                    shm_ring,
                )
                workers[handle.worker_id] = handle

            while queue or any(h.busy for h in workers.values()):
                self.loop_iterations += 1
                now = time.monotonic()
                if self._shutdown:
                    queue.drain()
                    remaining_cost = 0.0
                    if drain_deadline is None:
                        drain_deadline = now + max(
                            self.DRAIN_GRACE_FACTOR * params.heartbeat_timeout, 5.0
                        )
                    if now > drain_deadline:
                        break  # in-flight cells forfeited; --resume reruns them
                    if not any(h.busy for h in workers.values()):
                        break

                # Dispatch: a batch of ready cells per idle worker.
                for handle in workers.values():
                    if handle.busy or not queue:
                        continue
                    batch = plan_batch(
                        queue, now, costs.cost_of_task, remaining_cost,
                        params.workers, batch_cap,
                    )
                    if not batch:
                        break  # everything left is still backing off
                    remaining_cost -= sum(costs.cost_of_task(t) for t in batch)
                    handle.tasks.extend(batch)
                    monitor.beat(handle.worker_id)  # dispatch restarts the clock
                    handle.task_queue.put(
                        batch[0] if len(batch) == 1 else CellBatch(tuple(batch))
                    )

                # One blocking wait for anything that needs the loop:
                # a result, a heartbeat, a worker death (its sentinel),
                # or a deadline the supervisor must act on. O(events)
                # wakeups — an idle supervisor sleeps, it does not poll.
                self._wait_events(
                    result_queue, heartbeat_queue, workers, wait_timeout(now)
                )

                # Heartbeats: drain and stamp with the supervisor's clock.
                while True:
                    try:
                        worker_id, _seq = heartbeat_queue.get_nowait()
                    except queue_mod.Empty:
                        break
                    monitor.beat(worker_id)

                # Results: drain everything available, then re-dispatch
                # the freed workers before any liveness verdicts.
                got_result = False
                while True:
                    try:
                        result = result_queue.get_nowait()
                    except queue_mod.Empty:
                        break
                    got_result = True
                    self.results_handled += 1
                    resolve_transport(result)
                    handle = workers.get(result.worker_id)
                    if handle is not None:
                        handle.finish(result.key)
                    record_result(result)
                if got_result:
                    continue

                # Liveness: loud deaths first, then quiet (stale) ones.
                for handle in list(workers.values()):
                    if not handle.process.is_alive():
                        handle.process.join(timeout=0.5)
                        code = handle.process.exitcode
                        handle_worker_death(
                            handle, f"worker process died (exit code {code})"
                        )
                    elif handle.busy and monitor.is_stale(handle.worker_id):
                        self._kill(handle)
                        handle_worker_death(
                            handle,
                            f"worker missed heartbeat deadline "
                            f"({params.heartbeat_timeout:.3g}s)",
                        )
                # Respawn up to the pool size while work remains.
                while not self._shutdown and queue and len(workers) < min(
                    params.workers, len(queue) + sum(
                        1 for h in workers.values() if h.busy
                    )
                ):
                    handle = self._spawn_worker(
                        result_queue, heartbeat_queue, write_files, specs,
                        monitor, shm_ring,
                    )
                    workers[handle.worker_id] = handle
        finally:
            for sig, handler in previous_handlers:
                signal.signal(sig, handler)
            for handle in workers.values():
                if handle.process.is_alive():
                    try:
                        handle.task_queue.put(None)  # poison pill
                    except (OSError, ValueError):  # pragma: no cover
                        pass
            deadline = time.monotonic() + 2.0
            for handle in workers.values():
                handle.process.join(timeout=max(0.0, deadline - time.monotonic()))
                if handle.process.is_alive():
                    self._kill(handle)
            for q in (result_queue, heartbeat_queue):
                q.cancel_join_thread()
                q.close()
            if shm_ring is not None:
                shm_ring.close()

    @staticmethod
    def _wait_events(result_queue, heartbeat_queue, workers, timeout: float) -> None:
        """Block until a queue has data, a worker dies, or ``timeout``.

        ``multiprocessing.connection.wait`` selects over the queues'
        reader pipes and every worker's process sentinel, so results,
        heartbeats, and deaths all wake the loop immediately; with
        nothing to report the supervisor just sleeps out the timeout.
        Falls back to a bounded sleep if the pipe internals are missing
        (non-CPython queue implementations).
        """
        sentries = []
        for q in (result_queue, heartbeat_queue):
            reader = getattr(q, "_reader", None)
            if reader is not None:
                sentries.append(reader)
        for handle in workers.values():
            try:
                sentries.append(handle.process.sentinel)
            except ValueError:  # pragma: no cover - process already closed
                pass
        if not sentries:  # pragma: no cover - defensive fallback
            time.sleep(min(timeout, 0.05))
            return
        try:
            from multiprocessing.connection import wait

            wait(sentries, timeout)
        except (ImportError, OSError):  # pragma: no cover - raced close
            time.sleep(min(timeout, 0.05))
