"""The shard coordinator: self-healing scale-out campaigns.

A sharded campaign partitions its cells deterministically across N
shard supervisors (:mod:`repro.suite.shard`), each running an ordinary
campaign in its own shared-nothing directory. The coordinator owns the
campaign-level state and nothing else:

* the **shard map** (``shard_map.json``, fsio-atomic): which cell keys
  belong to which shard, which shards have been retired, and the
  configuration fingerprint — the durable record a resumed coordinator
  re-adopts so cells never migrate between shards across a crash;
* the **healing state machine** over shard processes::

      assigned -> running -> settled (exit 0)
                    |
                    +-- abnormal exit / stale lease
                    |        fsck shard dir, respawn with --resume
                    |        (bounded by the campaign RetryPolicy)
                    |        ... budget exhausted -> RETIRED
                    |              residue reassigned to survivors
                    +-- exit CAMPAIGN_LOCKED (predecessor not reaped)
                             short retry, not charged to the budget

  A retired shard's residue — its assigned cells not yet ``ok`` — moves
  to the surviving shards (the map is updated durably first), and a
  survivor that already settled is re-spawned with ``--resume`` to pick
  the new work up. Only when *every* shard has retired does residue
  become terminal: those cells are recorded ``failed`` with
  ``<shard unavailable>`` in the campaign manifest, and the campaign —
  like every other failure here — finishes unclean instead of dying;
* the **hierarchical merge**: on completion, per-shard archives fold
  through :func:`~repro.caliper.calipack.merge_shards`' merge tree into
  one canonical ``campaign.calipack`` that is byte-identical to what a
  single-supervisor run of the same cells produces, and the campaign
  manifest is composed from the shard manifests with member refs
  rewritten to the merged archive.

Crash points: ``shard.pre-map-save`` (partition computed, map not yet
durable), ``shard.post-shard-exit`` (a shard reaped, outcome not yet
acted on), and ``shard.mid-merge-level`` (inside the merge tree). Kill
the coordinator at any of them — or kill any shard anywhere — and
``fsck`` + ``run --resume`` converges to the full cell set (chaos
invariant I5).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import threading
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.caliper.calipack import ARCHIVE_NAME, member_ref, merge_shards, split_member_ref
from repro.chaos.points import crash_point
from repro.cli.exitcodes import CAMPAIGN_LOCKED
from repro.faults import FaultInjector, active_injector
from repro.suite.manifest import MANIFEST_NAME, CampaignLock, CampaignManifest
from repro.suite.report import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_SKIPPED,
    KernelRunRecord,
    RunReport,
)
from repro.suite.run_params import RunParams
from repro.suite.shard import (
    SHARD_DIR,
    cell_spec,
    lease_age,
    read_lease,
    shard_dir_name,
    shard_main,
    shard_path,
)
from repro.util.fsio import write_durable_text

MAP_NAME = "shard_map.json"
MAP_VERSION = 1

#: shard-map partition strategies
STRATEGY_ROUND_ROBIN = "round_robin"
STRATEGY_LPT = "lpt"

#: bounded retries when a shard exits CAMPAIGN_LOCKED (a predecessor's
#: orphan poll has not fired yet); not charged to the respawn budget
LOCK_RETRY_LIMIT = 50
LOCK_RETRY_DELAY_S = 0.2

#: coordinator supervision loop cadence
_POLL_S = 0.05


def _mp_context():
    """Prefer fork (cheap, Linux default); fall back to spawn."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platform
        return multiprocessing.get_context("spawn")


# -------------------------------------------------------------- shard map
@dataclass
class ShardMap:
    """The durable campaign-level partition record."""

    path: Path
    shards: int
    fingerprint: dict[str, Any] = field(default_factory=dict)
    #: shard dir name -> assigned cell keys (current truth, post-healing)
    assignment: dict[str, list[str]] = field(default_factory=dict)
    retired: list[int] = field(default_factory=list)
    #: how the partition was cut (informational; maps written before the
    #: cost-model scheduler carry no strategy and load as round_robin)
    strategy: str = STRATEGY_ROUND_ROBIN

    @classmethod
    def load(cls, output_dir: str | Path) -> "ShardMap | None":
        """The directory's shard map, or None (fresh, or unreadable).

        An unreadable map is backed up as ``shard_map.json.bak`` — same
        forensics-first policy as the campaign manifest. Losing the map
        is safe: a fresh partition re-runs at most the cells whose
        completions now sit in a different shard's manifest, and the
        last-wins merge deduplicates the archives.
        """
        path = Path(output_dir) / MAP_NAME
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
            shards = int(payload["shards"])
            assignment = {
                str(k): [str(key) for key in v]
                for k, v in dict(payload.get("assignment", {})).items()
            }
        except (OSError, ValueError, KeyError, TypeError) as exc:
            backup = path.with_suffix(path.suffix + ".bak")
            try:
                os.replace(path, backup)
                saved = f"; corrupt file backed up as {backup.name}"
            except OSError:
                saved = "; backup failed, corrupt file left in place"
            warnings.warn(
                f"unreadable shard map {path} ({exc}); "
                f"repartitioning{saved}",
                stacklevel=2,
            )
            return None
        return cls(
            path=path,
            shards=shards,
            fingerprint=dict(payload.get("fingerprint", {})),
            assignment=assignment,
            retired=[int(i) for i in payload.get("retired", [])],
            strategy=str(payload.get("strategy", STRATEGY_ROUND_ROBIN)),
        )

    def save(self) -> Path:
        """Durably persist (the ``shard.pre-map-save`` crash boundary)."""
        crash_point("shard.pre-map-save", path=self.path)
        payload = {
            "format": "rajaperf-shard-map",
            "version": MAP_VERSION,
            "shards": self.shards,
            "fingerprint": self.fingerprint,
            "assignment": self.assignment,
            "retired": sorted(self.retired),
            "strategy": self.strategy,
        }
        return write_durable_text(
            self.path, json.dumps(payload, indent=1, sort_keys=True)
        )

    def keys_for(self, index: int) -> list[str]:
        return list(self.assignment.get(shard_dir_name(index), []))


def partition_keys(keys: list[str], shards: int) -> dict[str, list[str]]:
    """Deterministic round-robin partition of cell keys across shards.

    Round-robin (rather than contiguous chunks) interleaves the sweep
    order, so machines and variants spread evenly — but it balances
    *counts*, not cost: a shard that draws the expensive tunings still
    finishes long after the others. :func:`partition_keys_lpt` balances
    by estimated cost and is the default; this remains the ``--schedule
    fifo`` path and the interpretation of strategy-less legacy maps.
    """
    assignment: dict[str, list[str]] = {
        shard_dir_name(k): [] for k in range(shards)
    }
    for i, key in enumerate(keys):
        assignment[shard_dir_name(i % shards)].append(key)
    return assignment


def partition_keys_lpt(
    keys: list[str], shards: int, cost_fn
) -> dict[str, list[str]]:
    """Greedy LPT bin-pack of cell keys over shard bins (by est. cost).

    Deterministic: a pure function of the key order and the cost
    function (:class:`~repro.suite.costmodel.CellCostModel` estimates or
    measured overrides). The merged campaign archive is unaffected by
    which shard runs which cell — the merge canonicalizes — so changing
    strategies only moves wall-clock, never bytes.
    """
    from repro.suite.schedule import lpt_partition_keys

    bins = lpt_partition_keys(keys, shards, cost_fn)
    return {shard_dir_name(i): bins[i] for i in range(shards)}


# ------------------------------------------------------------- supervision
@dataclass
class _ShardHandle:
    """Coordinator-side view of one shard's lifecycle."""

    index: int
    keys: list[str]
    process: multiprocessing.Process | None = None
    spawned_at: float = 0.0
    attempt: int = 1  # crash respawns charged against the retry budget
    lock_retries: int = 0
    ready_at: float = 0.0  # earliest monotonic (re)spawn time
    resume: bool = False  # next spawn resumes (respawn / reassignment)
    dirty: bool = False  # assignment grew while the process was running
    settled: bool = False  # exited 0 on its current assignment
    retired: bool = False

    @property
    def active(self) -> bool:
        return not (self.settled or self.retired)


class ShardCoordinator:
    """Partition, spawn, monitor, heal, merge — one sharded campaign."""

    def __init__(
        self, params: RunParams, injector: FaultInjector | None = None
    ) -> None:
        if params.shards < 1:
            raise ValueError("ShardCoordinator requires params.shards >= 1")
        self.params = params
        self.injector = injector if injector is not None else active_injector()
        self._ctx = _mp_context()
        self._shutdown = False

    # ------------------------------------------------------------- signals
    def _install_signal_handlers(self):
        if threading.current_thread() is not threading.main_thread():
            return []
        previous = []
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                previous.append((sig, signal.signal(sig, self._on_signal)))
            except (ValueError, OSError):  # pragma: no cover
                pass
        return previous

    def _on_signal(self, signum, frame) -> None:
        self._shutdown = True

    # ------------------------------------------------------------------ run
    def run(self, cells, write_files: bool = True):
        """Execute ``cells`` across the shards; returns a RunResult."""
        from repro.suite.executor import RunResult

        if not write_files:
            raise ValueError(
                "sharded campaigns require write_files=True: shards are "
                "shared-nothing directories merged on disk"
            )
        params = self.params
        report = RunReport()
        out_dir = Path(params.output_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        lock = CampaignLock.acquire(out_dir)
        handles: dict[int, _ShardHandle] = {}
        previous_handlers = self._install_signal_handlers()
        try:
            manifest = CampaignManifest.load_or_create(
                out_dir, params.fingerprint()
            )
            cells_by_key = {cell.key: cell for cell in cells}
            pending: list[str] = []
            for cell in cells:
                if params.resume and manifest.is_complete(cell.key):
                    report.mark_cell(cell.key, STATUS_SKIPPED)
                else:
                    pending.append(cell.key)

            shard_map = self._load_or_partition(out_dir, pending)
            for index in range(shard_map.shards):
                keys = [k for k in shard_map.keys_for(index) if k in cells_by_key]
                handle = _ShardHandle(index=index, keys=keys)
                if index in shard_map.retired:
                    handle.retired = True
                elif not keys:
                    handle.settled = True  # nothing assigned: born settled
                handles[index] = handle

            if any(h.active for h in handles.values()):
                self._supervise(handles, shard_map, cells_by_key, write_files)
            self._merge(out_dir, shard_map, handles)
            self._compose(
                manifest, report, cells, cells_by_key, pending, shard_map, handles
            )
        finally:
            for sig, handler in previous_handlers:
                signal.signal(sig, handler)
            for handle in handles.values():
                self._kill(handle)
            lock.release()
        report.interrupted = self._shutdown
        paths = [
            Path(entry["file"])
            for key, entry in manifest.cells.items()
            if key in cells_by_key and entry.get("file")
        ]
        return RunResult(profiles=[], cali_paths=paths, report=report)

    # ---------------------------------------------------------- partitioning
    def _load_or_partition(self, out_dir: Path, pending: list[str]) -> ShardMap:
        """Adopt the existing shard map, or cut a fresh partition.

        A resumed campaign must keep cells on the shards that already
        hold their completions, so an existing map with a matching
        configuration is adopted verbatim — whatever strategy cut it,
        including strategy-less maps from before the cost-model
        scheduler. Only keys the map has never seen (a sweep extended
        with more trials, say) are dealt out to the surviving shards:
        to the estimated-lightest bin under an LPT map, round-robin
        otherwise.
        """
        from repro.suite.costmodel import CellCostModel
        from repro.suite.schedule import SCHEDULE_LPT, order_lpt

        params = self.params
        existing = ShardMap.load(out_dir)
        if (
            existing is not None
            and existing.shards == params.shards
            and existing.fingerprint == params.fingerprint()
        ):
            known = {k for keys in existing.assignment.values() for k in keys}
            new = [k for k in pending if k not in known]
            if new:
                survivors = [
                    k for k in range(existing.shards) if k not in existing.retired
                ] or list(range(existing.shards))
                if existing.strategy == STRATEGY_LPT:
                    costs = CellCostModel.for_params(params)
                    loads = {
                        index: sum(
                            costs.cost_of_key(k)
                            for k in existing.keys_for(index)
                        )
                        for index in survivors
                    }
                    for key in order_lpt(new, costs.cost_of_key):
                        index = min(survivors, key=lambda i: (loads[i], i))
                        existing.assignment.setdefault(
                            shard_dir_name(index), []
                        ).append(key)
                        loads[index] += costs.cost_of_key(key)
                else:
                    for i, key in enumerate(new):
                        existing.assignment.setdefault(
                            shard_dir_name(survivors[i % len(survivors)]), []
                        ).append(key)
            existing.save()
            return existing
        if params.schedule == SCHEDULE_LPT:
            strategy = STRATEGY_LPT
            assignment = partition_keys_lpt(
                pending,
                params.shards,
                CellCostModel.for_params(params).cost_of_key,
            )
        else:
            strategy = STRATEGY_ROUND_ROBIN
            assignment = partition_keys(pending, params.shards)
        shard_map = ShardMap(
            path=out_dir / MAP_NAME,
            shards=params.shards,
            fingerprint=params.fingerprint(),
            assignment=assignment,
            strategy=strategy,
        )
        shard_map.save()
        return shard_map

    # ------------------------------------------------------------- lifecycle
    def _spawn(self, handle: _ShardHandle, cells_by_key, write_files: bool) -> None:
        params = self.params
        specs = [cell_spec(cells_by_key[k]) for k in handle.keys if k in cells_by_key]
        resume = handle.resume or params.resume
        handle.process = self._ctx.Process(
            target=shard_main,
            args=(handle.index, params, specs, write_files, resume, os.getpid()),
            name=f"campaign-shard-{handle.index}",
            # Not a daemon: a shard may spawn its own worker pool, and
            # daemonic processes cannot have children.
            daemon=False,
        )
        handle.process.start()
        handle.spawned_at = time.monotonic()
        handle.dirty = False

    @staticmethod
    def _kill(handle: _ShardHandle) -> None:
        process = handle.process
        if process is None:
            return
        if process.is_alive():
            process.terminate()
            process.join(timeout=2.0)
        if process.is_alive():  # pragma: no cover - SIGTERM ignored
            process.kill()
            process.join(timeout=2.0)

    def _supervise(self, handles, shard_map, cells_by_key, write_files) -> None:
        """The healing loop: reap, respawn, retire, reassign."""
        params = self.params
        policy = params.retry_policy()
        backoffs = {
            h.index: list(policy.delays(salt=f"shard-{h.index}"))
            for h in handles.values()
        }

        while not self._shutdown:
            now = time.monotonic()
            active = [h for h in handles.values() if h.active]
            if not active:
                return
            for handle in active:
                process = handle.process
                if process is None:
                    if now >= handle.ready_at:
                        self._spawn(handle, cells_by_key, write_files)
                    continue
                if not process.is_alive():
                    process.join(timeout=0.5)
                    code = process.exitcode
                    handle.process = None
                    # Reaped but not yet acted on: a coordinator killed
                    # here must re-derive the shard's fate on resume.
                    crash_point("shard.post-shard-exit", path=shard_map.path)
                    self._reap(handle, code, handles, shard_map, backoffs)
                elif self._stale(handle, now):
                    self._kill(handle)
                    handle.process = None
                    self._heal(
                        handle,
                        f"shard missed lease deadline "
                        f"({params.shard_lease_timeout:.3g}s)",
                        handles,
                        shard_map,
                        backoffs,
                    )
            time.sleep(_POLL_S)

    def _stale(self, handle: _ShardHandle, now: float) -> bool:
        """A live process whose lease stopped refreshing is wedged."""
        lease = read_lease(shard_path(self.params.output_dir, handle.index))
        age = lease_age(lease)
        if age is None:
            # No lease yet: measure from the spawn instead.
            age = now - handle.spawned_at
        return age > self.params.shard_lease_timeout

    def _reap(self, handle, code, handles, shard_map, backoffs) -> None:
        if code == 0:
            if handle.dirty:
                # Reassigned residue arrived while it ran: one more pass.
                handle.resume = True
                handle.ready_at = 0.0
            else:
                handle.settled = True
            return
        if code == CAMPAIGN_LOCKED:
            handle.lock_retries += 1
            if handle.lock_retries > LOCK_RETRY_LIMIT:
                self._retire(handle, handles, shard_map)
                return
            handle.resume = True
            handle.ready_at = time.monotonic() + LOCK_RETRY_DELAY_S
            return
        self._heal(
            handle,
            f"shard process died (exit code {code})",
            handles,
            shard_map,
            backoffs,
        )

    def _heal(self, handle, reason, handles, shard_map, backoffs) -> None:
        """fsck the shard, then respawn under the retry budget — or retire."""
        from repro.suite.fsck import fsck_directory

        shard_dir = shard_path(self.params.output_dir, handle.index)
        if shard_dir.is_dir():
            try:
                fsck_directory(shard_dir)
            except OSError:  # pragma: no cover - fsck must not kill healing
                pass
        policy = self.params.retry_policy()
        if handle.attempt >= policy.max_attempts:
            self._retire(handle, handles, shard_map)
            return
        waits = backoffs[handle.index]
        wait = (
            waits[handle.attempt - 1]
            if handle.attempt - 1 < len(waits)
            else 0.0
        )
        handle.attempt += 1
        handle.resume = True
        handle.ready_at = time.monotonic() + wait

    def _retire(self, handle, handles, shard_map) -> None:
        """Out of respawns: move the shard's residue to the survivors."""
        handle.retired = True
        shard_map.retired.append(handle.index)
        residue = self._residue(handle)
        survivors = [
            h for h in handles.values() if not h.retired
        ]
        if residue and survivors:
            for i, key in enumerate(residue):
                survivor = survivors[i % len(survivors)]
                survivor.keys.append(key)
                shard_map.assignment.setdefault(
                    shard_dir_name(survivor.index), []
                ).append(key)
                survivor.dirty = True
                if survivor.settled:
                    # Settled survivors take another resumed pass for
                    # the new work; their crash budget is untouched.
                    survivor.settled = False
                    survivor.resume = True
                    survivor.ready_at = 0.0
                    survivor.dirty = False
            retired_keys = shard_map.assignment.get(
                shard_dir_name(handle.index), []
            )
            shard_map.assignment[shard_dir_name(handle.index)] = [
                k for k in retired_keys if k not in set(residue)
            ]
        shard_map.save()

    def _residue(self, handle: _ShardHandle) -> list[str]:
        """The retired shard's assigned keys not completed in its manifest."""
        done = {
            key
            for key, entry in self._shard_cells(handle.index).items()
            if entry.get("status") == STATUS_OK
        }
        return [k for k in handle.keys if k not in done]

    def _shard_cells(self, index: int) -> dict[str, dict]:
        shard_dir = shard_path(self.params.output_dir, index)
        try:
            cells = json.loads(
                (shard_dir / MANIFEST_NAME).read_text()
            ).get("cells", {})
        except (OSError, ValueError):
            return {}
        return {
            k: v for k, v in cells.items() if isinstance(v, dict)
        }

    # ----------------------------------------------------------------- merge
    def _merge(self, out_dir: Path, shard_map: ShardMap, handles) -> None:
        """Fold the shard archives into the campaign archive (merge tree).

        Retired shards' archives go first so a survivor's re-run of
        reassigned residue wins the last-wins dedup; survivors follow in
        index order, keeping the fold deterministic.
        """
        ordered = sorted(
            handles.values(), key=lambda h: (not h.retired, h.index)
        )
        archives = [
            shard_path(out_dir, h.index) / ARCHIVE_NAME for h in ordered
        ]
        merge_shards(out_dir, archives)

    def _compose(
        self, manifest, report, cells, cells_by_key, pending, shard_map, handles
    ) -> None:
        """Rebuild the campaign manifest and report from the shard truth.

        Member refs recorded by the shards are rewritten to point at the
        merged campaign archive. On an interrupted run only completed
        cells are recorded — the rest stay pending for ``--resume``.
        Cells no shard could finish (every owner retired) are terminal
        failures: ``<shard unavailable>``.
        """
        root_archive = Path(self.params.output_dir) / ARCHIVE_NAME
        by_shard = {
            h.index: self._shard_cells(h.index) for h in handles.values()
        }
        # Current owner's verdict wins; retired predecessors fill gaps.
        owner: dict[str, list[int]] = {}
        for handle in sorted(
            handles.values(), key=lambda h: (h.retired, h.index)
        ):
            for key in handle.keys:
                owner.setdefault(key, []).append(handle.index)
        for key in pending:
            entry = None
            for index in owner.get(key, []):
                candidate = by_shard.get(index, {}).get(key)
                if candidate is not None:
                    entry = candidate
                    break
            if entry is None:
                if self._shutdown:
                    continue  # interrupted: leave for --resume
                report.add(
                    KernelRunRecord(
                        kernel="<shard unavailable>",
                        machine=cells_by_key[key].machine.shorthand,
                        variant=cells_by_key[key].variant.name,
                        tuning=cells_by_key[key].tuning,
                        trial=cells_by_key[key].trial,
                        status=STATUS_FAILED,
                        attempts=self.params.max_attempts,
                        error="every shard assigned this cell was retired",
                    )
                )
                report.mark_cell(key, STATUS_FAILED)
                manifest.record(
                    key, STATUS_FAILED, failed_kernels=["<shard unavailable>"]
                )
                continue
            status = entry.get("status", STATUS_FAILED)
            file = entry.get("file")
            if file:
                ref = split_member_ref(file)
                name = ref[1] if ref is not None else Path(file).name
                file = member_ref(root_archive, name)
            report.mark_cell(
                key, STATUS_OK if status == STATUS_OK else STATUS_FAILED
            )
            if status != STATUS_OK:
                for kernel in entry.get("failed_kernels", []) or ["<shard>"]:
                    report.add(
                        KernelRunRecord(
                            kernel=kernel,
                            machine=cells_by_key[key].machine.shorthand,
                            variant=cells_by_key[key].variant.name,
                            tuning=cells_by_key[key].tuning,
                            trial=cells_by_key[key].trial,
                            status=STATUS_FAILED,
                            error="recorded failed by shard "
                            f"{owner.get(key, ['?'])[0]}",
                        )
                    )
            elapsed = entry.get("elapsed_s")
            manifest.record(
                key,
                status,
                file=file,
                failed_kernels=list(entry.get("failed_kernels", [])),
                elapsed_s=(
                    float(elapsed)
                    if isinstance(elapsed, (int, float))
                    else None
                ),
            )
        manifest.save()


# ------------------------------------------------------------ shard status
@dataclass
class ShardStatusLine:
    """One shard's row in the status report."""

    index: int
    ok: int = 0
    assigned: int = 0
    failed: int = 0
    pending: int = 0
    state: str = ""
    #: estimated total cost (seconds) of this shard's assignment, from
    #: the cost model (measured manifest times win over analytics)
    est_cost: float | None = None
    #: non-empty when this shard makes the campaign look unhealthy
    reason: str = ""


@dataclass
class ShardStatusReport:
    """Machine-checkable status of a sharded campaign directory.

    ``degraded`` is the operator signal the CLI turns into exit code 4:
    some shard still owes cells but nothing live is working on them (its
    lease is missing, expired past the timeout, or held by a dead PID),
    or the shard map itself is inconsistent (duplicate cell ownership,
    entries referencing shards outside the partition). A *completed*
    campaign with dead leases is healthy — there is no pending work the
    dead shard is sitting on.
    """

    output_dir: Path
    map_present: bool = False
    shards: int = 0
    retired: list[int] = field(default_factory=list)
    lines: list[ShardStatusLine] = field(default_factory=list)
    map_reasons: list[str] = field(default_factory=list)
    archive_present: bool = False
    strategy: str = STRATEGY_ROUND_ROBIN

    @property
    def degraded(self) -> bool:
        return bool(self.map_reasons) or any(l.reason for l in self.lines)

    @property
    def balance_ratio(self) -> float | None:
        """max/min estimated shard cost over live shards (imbalance
        observability: 1.0 is perfect, large means stragglers). None
        when costs are unavailable or fewer than two shards are live."""
        costs = [
            line.est_cost
            for line in self.lines
            if line.index not in self.retired and line.est_cost is not None
        ]
        if len(costs) < 2:
            return None
        lightest = min(costs)
        if lightest <= 0:
            return float("inf") if max(costs) > 0 else 1.0
        return max(costs) / lightest

    @property
    def reasons(self) -> list[str]:
        return self.map_reasons + [
            f"shard-{l.index}: {l.reason}" for l in self.lines if l.reason
        ]

    def text(self) -> str:
        """The human-readable report (the old ``shard-status`` output,
        plus a trailing reason column on unhealthy rows)."""
        if not self.map_present:
            if (self.output_dir / SHARD_DIR).is_dir():
                return (
                    f"{self.output_dir}: shard directories present "
                    "but no shard map"
                )
            return f"{self.output_dir}: not a sharded campaign (no shard map)"
        out = [
            f"sharded campaign {self.output_dir}: {self.shards} shard(s), "
            f"{len(self.retired)} retired, {self.strategy} partition"
        ]
        for line in self.lines:
            cost = (
                f", cost~{line.est_cost:.3g}s"
                if line.est_cost is not None
                else ""
            )
            reason = f" -- {line.reason}" if line.reason else ""
            out.append(
                f"  shard-{line.index}: {line.ok}/{line.assigned} ok, "
                f"{line.failed} failed, {line.pending} pending{cost} "
                f"[{line.state}]{reason}"
            )
        ratio = self.balance_ratio
        if ratio is not None:
            out.append(f"  estimated cost balance (max/min): {ratio:.2f}")
        for reason in self.map_reasons:
            out.append(f"  shard map inconsistent: {reason}")
        out.append(
            f"  campaign archive: {ARCHIVE_NAME} "
            f"({'present' if self.archive_present else 'not merged yet'})"
        )
        return "\n".join(out)


def _campaign_cost_model(out_dir: Path):
    """Best-effort cost model for a campaign directory, or None.

    Rebuilds :class:`~repro.suite.run_params.RunParams` from the root
    manifest's fingerprint so analytic estimates match what the
    campaign actually ran, and overrides them with any measured
    ``elapsed_s`` the manifest already holds. Unreadable or pre-model
    manifests degrade to None — status reporting must never fail on
    cost estimation.
    """
    from repro.suite.costmodel import CellCostModel, load_measured_costs
    from repro.suite.features import Feature
    from repro.suite.groups import Group

    manifest_path = out_dir / MANIFEST_NAME
    measured = load_measured_costs(manifest_path)
    try:
        fingerprint = dict(
            json.loads(manifest_path.read_text()).get("fingerprint", {})
        )
        params = RunParams(
            problem_size=int(fingerprint["problem_size"]),
            reps=int(fingerprint.get("reps", 1)),
            variants=tuple(fingerprint.get("variants", [])),
            machines=tuple(fingerprint.get("machines", [])),
            groups=tuple(Group(g) for g in fingerprint.get("groups", [])),
            kernels=tuple(fingerprint.get("kernels", [])),
            features=tuple(Feature(f) for f in fingerprint.get("features", [])),
            gpu_block_sizes=tuple(
                int(b) for b in fingerprint.get("gpu_block_sizes", [256])
            ),
            execute=bool(fingerprint.get("execute", False)),
            trials=int(fingerprint.get("trials", 1)),
        )
    except Exception:  # noqa: BLE001 - missing/old manifest, bad fingerprint
        if measured:
            # No usable fingerprint, but real timings exist: estimate
            # from those alone (unknown cells fall back to the default).
            return CellCostModel(RunParams(), measured=measured)
        return None
    return CellCostModel(params, measured=measured)


def shard_status_report(
    output_dir: str | Path, lease_timeout: float = 30.0
) -> ShardStatusReport:
    """Audit a sharded campaign's progress, liveness, and map coherence."""
    from repro.suite.manifest import _pid_alive
    from repro.suite.shard import shard_progress

    out_dir = Path(output_dir)
    report = ShardStatusReport(output_dir=out_dir)
    shard_map = ShardMap.load(out_dir)
    if shard_map is None:
        return report
    report.map_present = True
    report.shards = shard_map.shards
    report.retired = sorted(shard_map.retired)
    report.archive_present = (out_dir / ARCHIVE_NAME).exists()
    report.strategy = shard_map.strategy
    costs = _campaign_cost_model(out_dir)

    # Map coherence, independent of per-shard liveness.
    known = {shard_dir_name(i) for i in range(shard_map.shards)}
    owners: dict[str, list[str]] = {}
    for name, keys in shard_map.assignment.items():
        if name not in known:
            report.map_reasons.append(
                f"assignment entry {name!r} is outside the "
                f"{shard_map.shards}-shard partition"
            )
        for key in keys:
            owners.setdefault(key, []).append(name)
    for key, names in sorted(owners.items()):
        live = [
            n for n in names
            if n in known
            and int(n.rsplit("-", 1)[1]) not in shard_map.retired
        ]
        if len(live) > 1:
            report.map_reasons.append(
                f"cell {key!r} assigned to {len(live)} live shards "
                f"({', '.join(sorted(live))})"
            )
    for index in shard_map.retired:
        if not 0 <= index < shard_map.shards:
            report.map_reasons.append(
                f"retired index {index} is outside the "
                f"{shard_map.shards}-shard partition"
            )

    for index in range(shard_map.shards):
        assigned_keys = shard_map.keys_for(index)
        progress = shard_progress(out_dir, index, assigned_keys)
        line = ShardStatusLine(
            index=index,
            ok=progress.ok,
            assigned=progress.assigned,
            failed=progress.failed,
            pending=progress.pending,
            est_cost=(
                sum(costs.cost_of_key(k) for k in assigned_keys)
                if costs is not None
                else None
            ),
        )
        lease = read_lease(shard_path(out_dir, index))
        age = lease_age(lease)
        holder = lease.get("pid") if lease is not None else None
        if index in shard_map.retired:
            line.state = "retired"
        elif holder is not None and age is not None:
            if age > lease_timeout:
                line.state = "lease expired"
            else:
                line.state = f"lease pid {holder} ({age:.1f}s ago)"
        else:
            line.state = "no lease"
        # Degradation: pending work nobody live is doing.
        if index not in shard_map.retired and line.pending > 0:
            if lease is None:
                line.reason = f"{line.pending} cell(s) pending, no lease"
            elif age is not None and age > lease_timeout:
                line.reason = (
                    f"{line.pending} cell(s) pending, lease expired "
                    f"({age:.1f}s > {lease_timeout:.3g}s)"
                )
            elif not _pid_alive(holder):
                line.reason = (
                    f"{line.pending} cell(s) pending, "
                    f"lease holder pid {holder} is dead"
                )
        report.lines.append(line)
    return report


def shard_status(output_dir: str | Path) -> str:
    """Human-readable status of a sharded campaign directory."""
    return shard_status_report(output_dir).text()
