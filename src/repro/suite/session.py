"""Shared campaign-session plumbing: lock, salvage, manifest, finalize.

Every campaign runner — the serial loop, the supervised pool, and each
shard supervisor of a sharded campaign — opens its output directory the
same way: acquire the :class:`CampaignLock`, salvage any packed
segments a crashed predecessor stranded, and load (or start) the
campaign manifest. And every runner that completes closes the same way:
fold remaining segments and rewrite the packed archive into its
canonical, name-sorted form, so the final ``campaign.calipack`` is a
pure function of its entry set — the property that makes serial,
supervised, and sharded runs of one campaign byte-identical.

:class:`CampaignSession` keeps that protocol in one place so the
runners cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.suite.manifest import CampaignLock, CampaignManifest
from repro.suite.run_params import RunParams


@dataclass
class CampaignSession:
    """One runner's lease on a campaign output directory.

    ``open()`` acquires the lock (raising
    :class:`~repro.suite.errors.CampaignLockedError` if another campaign
    owns the directory), salvages stranded segments, and loads the
    manifest; ``finalize()`` is called only on a normally-completed run;
    ``close()`` always runs and releases the lock.
    """

    params: RunParams
    write_files: bool
    lock: CampaignLock | None = None
    manifest: CampaignManifest | None = None

    def open(self) -> "CampaignSession":
        params = self.params
        if self.write_files:
            self.lock = CampaignLock.acquire(params.output_dir)
        try:
            if self.write_files and params.pack:
                from repro.caliper.calipack import merge_segments

                # Salvage segments stranded by a crashed run (footer-less
                # segments go through the recovery scan).
                merge_segments(params.output_dir)
            if self.write_files or params.resume:
                self.manifest = CampaignManifest.load_or_create(
                    params.output_dir, params.fingerprint()
                )
        except BaseException:
            self.close()
            raise
        return self

    def finalize(self) -> None:
        """Seal a completed run: fold segments, canonicalize the archive.

        Idempotent — re-finalizing an already-canonical archive rewrites
        it to the same bytes — so a crash between finalize and the
        caller's last manifest save just repeats this step on resume.
        """
        if not (self.write_files and self.params.pack):
            return
        from repro.caliper.calipack import (
            ARCHIVE_NAME,
            canonicalize_archive,
            merge_segments,
        )

        merge_segments(self.params.output_dir)
        canonicalize_archive(Path(self.params.output_dir) / ARCHIVE_NAME)

    def close(self) -> None:
        if self.lock is not None:
            self.lock.release()
            self.lock = None

    def __enter__(self) -> "CampaignSession":
        return self.open()

    def __exit__(self, *exc_info: object) -> None:
        self.close()
