"""Deterministic per-cell cost estimates for campaign scheduling.

A campaign cell — one (machine, variant, tuning, trial) suite run — is
far from uniform in wall-clock: a ``RAJA_CUDA`` cell at a small block
size pays one Python dispatch per simulated thread block, while a
``Base_Seq`` cell is a handful of vectorized NumPy calls. The scheduler
(:mod:`repro.suite.schedule`) needs a *relative* cost per cell to order
work longest-first and to pack shard bins evenly; absolute accuracy is
irrelevant as long as the ranking is right and the estimate is a pure
function of the run configuration.

:class:`CellCostModel` derives that estimate from the kernels' existing
analytic work annotations:

* the **modeled machine time** — :meth:`KernelBase.predict` folds the
  :class:`~repro.perfmodel.work.WorkProfile` (flops + bytes at the
  cell's problem size) through the machine model with the variant and
  tuning multipliers ``perfmodel`` already applies;
* when real execution is on, a **host execution term**: the analytic
  bytes+flops at the (capped) execution size over a nominal host
  throughput, plus a per-partition dispatch overhead — RAJA variants
  dispatch one Python call per partition of the policy's plan (a GPU
  tuning at block 64 is ~``n/64`` calls), Base variants are one
  vectorized call.

Costs are trial-independent (trials of one (machine, variant, tuning)
are the same work), cached per combination, and deterministic: no
clocks, no RNG draws, no filesystem state.

A prior campaign's manifest can override the analytics with *measured*
per-cell wall times (``elapsed_s``, recorded by the executor since this
module appeared): :func:`load_measured_costs` reads them and
:class:`CellCostModel` prefers a measured cost whenever the exact cell
key has one.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.suite.report import cell_key

#: nominal host streaming throughput for the execution term (bytes/s).
#: Only the *ratio* against the dispatch overhead matters: it decides
#: when chunked dispatch dominates vectorized work.
HOST_BYTES_PER_S = 3e9

#: per-partition Python dispatch overhead of a simulated launch (s).
DISPATCH_OVERHEAD_S = 12e-6

#: fallback when an estimate cannot be computed (unknown kernel set,
#: unparsable key): every cell weighs the same, degrading LPT to FIFO.
DEFAULT_CELL_COST_S = 1.0


def parse_cell_key(key: str) -> tuple[str, str, int, int] | None:
    """``"SPR-DDR|RAJA_CUDA|block_64|trial1"`` -> (machine, variant,
    block, trial), or None when the key is not in canonical form."""
    parts = key.split("|")
    if len(parts) != 4:
        return None
    machine, variant, tuning, trial_part = parts
    if tuning == "default":
        block = 0
    elif tuning.startswith("block_"):
        try:
            block = int(tuning[len("block_"):])
        except ValueError:
            return None
    else:
        return None
    if not trial_part.startswith("trial"):
        return None
    try:
        trial = int(trial_part[len("trial"):])
    except ValueError:
        return None
    return machine, variant, block, trial


def load_measured_costs(manifest_path: str | Path) -> dict[str, float]:
    """Measured per-cell wall times from a prior campaign's manifest.

    Returns ``{cell key: elapsed seconds}`` for every cell whose entry
    carries ``elapsed_s``; unreadable or old-format manifests yield an
    empty dict — the caller falls back to the analytic estimate.
    """
    try:
        payload = json.loads(Path(manifest_path).read_text())
    except (OSError, ValueError):
        return {}
    out: dict[str, float] = {}
    for key, entry in dict(payload.get("cells", {})).items():
        if not isinstance(entry, dict):
            continue
        elapsed = entry.get("elapsed_s")
        if isinstance(elapsed, (int, float)) and elapsed > 0:
            out[str(key)] = float(elapsed)
    return out


class CellCostModel:
    """Deterministic cost estimates for one campaign's cells.

    ``measured`` maps exact cell keys to observed wall times (seconds)
    and wins over the analytic estimate; everything else is computed
    from ``params`` alone.
    """

    def __init__(self, params, measured: dict[str, float] | None = None) -> None:
        self.params = params
        self.measured = dict(measured or {})
        #: (machine, variant, block) -> analytic cost (trial-independent)
        self._cache: dict[tuple[str, str, int], float] = {}

    @classmethod
    def for_params(cls, params) -> "CellCostModel":
        """The model ``params`` asks for: analytic, plus the measured
        override from ``params.cost_from`` when set."""
        measured = None
        cost_from = getattr(params, "cost_from", None)
        if cost_from:
            measured = load_measured_costs(cost_from)
        return cls(params, measured=measured)

    # ----------------------------------------------------------- estimates
    def cost(self, machine: str, variant: str, block: int) -> float:
        """Analytic cost (seconds) of one (machine, variant, tuning) cell."""
        cache_key = (machine, variant, block)
        hit = self._cache.get(cache_key)
        if hit is not None:
            return hit
        try:
            value = self._estimate(machine, variant, block)
        except Exception:  # noqa: BLE001 - scheduling must never kill a run
            value = DEFAULT_CELL_COST_S
        self._cache[cache_key] = value
        return value

    def cost_of_key(self, key: str) -> float:
        """Cost of the cell ``key`` names; measured override wins."""
        hit = self.measured.get(key)
        if hit is not None:
            return hit
        parsed = parse_cell_key(key)
        if parsed is None:
            return DEFAULT_CELL_COST_S
        machine, variant, block, _trial = parsed
        return self.cost(machine, variant, block)

    def cost_of_task(self, task) -> float:
        """Cost of a :class:`~repro.suite.worker.CellTask`."""
        hit = self.measured.get(task.key)
        if hit is not None:
            return hit
        return self.cost(task.machine, task.variant, task.block)

    def cost_of_cell(self, cell) -> float:
        """Cost of an executor ``_Cell``."""
        hit = self.measured.get(cell.key)
        if hit is not None:
            return hit
        return self.cost(cell.machine.shorthand, cell.variant.name, cell.block)

    # ------------------------------------------------------------ internals
    def _estimate(self, machine_name: str, variant_name: str, block: int) -> float:
        from repro.machines.registry import get_machine
        from repro.rajasim.forall import partition_plan
        from repro.suite.registry import all_kernel_classes
        from repro.suite.variants import VariantKind, get_variant

        params = self.params
        machine = get_machine(machine_name)
        variant = get_variant(variant_name)
        kernels = [
            cls
            for cls in all_kernel_classes()
            if params.selects(cls)
            and any(v.name == variant.name for v in cls.class_variants())
        ]
        if not kernels:
            return DEFAULT_CELL_COST_S

        total = 0.0
        exec_size = params.execution_size if params.execute else 0
        policy = variant.policy()
        if variant.is_gpu and block:
            policy = policy.with_block_size(block)
        for cls in kernels:
            kernel = cls(problem_size=params.problem_size)
            breakdown = kernel.predict(
                machine, variant, block_size=block or None
            )
            total += breakdown.total_seconds * params.reps
            if exec_size:
                exec_kernel = cls(problem_size=exec_size)
                work = exec_kernel.work_profile()
                total += (work.bytes_total + work.flops) / HOST_BYTES_PER_S
                # RAJA/Kokkos variants dispatch one Python call per
                # partition of the policy's plan; Base variants are a
                # single vectorized call.
                if variant.kind in (VariantKind.RAJA, VariantKind.KOKKOS):
                    parts = len(
                        partition_plan(policy, int(exec_kernel.iterations()) or 1)
                    )
                else:
                    parts = 1
                total += parts * work.launches * DISPATCH_OVERHEAD_S
        return max(total, 1e-12)
