"""Background scrubbing: continuous re-verification of CRC seals.

Damage that happens *after* a successful durable write — bit rot, a
misbehaving disk, an operator's stray edit — is only discovered when
something reads the bytes. For archives that may go unread for months
that is too late to page anyone. The scrubber closes the gap: a pass
walks a service root re-verifying every seal the durability stack
maintains and routes damage through the existing quarantine machinery
immediately:

* **job records** — seal-verified via the store's own loader, so a
  damaged record is backed up as ``.bak`` exactly as a foreground read
  would do;
* **tombstones** — same discipline (a damaged tombstone condemns
  nothing and must not linger looking like proof);
* **campaign archives** — every sealed ``.calipack`` entry of a
  *terminal* job (a running job's archive is legitimately in flux) is
  CRC-checked; any damage triggers a full
  :func:`~repro.suite.fsck.fsck_directory` pass on that campaign so
  the quarantine/rerun bookkeeping stays in one place;
* **ingest-cache entries** — whole-body seal check; a damaged ``.tic``
  is already a silent miss to readers, so the scrubber simply reclaims
  its bytes.

:class:`Scrubber` wraps a pass in a daemon thread with a cadence
(``serve --scrub-interval``); :func:`scrub_service_root` is the
synchronous single pass the thread (and tests, and operators via the
``gc`` machinery) call directly.
"""

from __future__ import annotations

import threading
import warnings
from dataclasses import dataclass, field
from pathlib import Path

from repro.service.jobstore import JobStore


@dataclass
class ScrubReport:
    """One scrub pass's findings."""

    root: Path
    records_checked: int = 0
    records_damaged: list[str] = field(default_factory=list)
    tombstones_checked: int = 0
    tombstones_damaged: list[str] = field(default_factory=list)
    archives_checked: int = 0
    entries_checked: int = 0
    entries_damaged: list[str] = field(default_factory=list)
    cache_entries_checked: int = 0
    cache_entries_dropped: list[str] = field(default_factory=list)
    fsck_campaigns: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not (
            self.records_damaged
            or self.tombstones_damaged
            or self.entries_damaged
            or self.cache_entries_dropped
        )

    def summary(self) -> str:
        out = [
            f"scrub {self.root}: {self.records_checked} record(s), "
            f"{self.tombstones_checked} tombstone(s), "
            f"{self.archives_checked} archive(s) "
            f"({self.entries_checked} entries), "
            f"{self.cache_entries_checked} cache entr(ies) verified"
        ]
        for job_id in self.records_damaged:
            out.append(f"  damaged job record: {job_id}")
        for job_id in self.tombstones_damaged:
            out.append(f"  damaged tombstone: {job_id}")
        for ref in self.entries_damaged:
            out.append(f"  damaged archive entry: {ref}")
        for path in self.cache_entries_dropped:
            out.append(f"  dropped damaged cache entry: {path}")
        for campaign in self.fsck_campaigns:
            out.append(f"  fsck pass run on: {campaign}")
        for note in self.notes:
            out.append(f"  note: {note}")
        if self.clean:
            out.append("  all seals verified")
        return "\n".join(out)


def _scrub_archive(report: ScrubReport, archive: Path) -> bool:
    """CRC-check every entry of one archive; True when damage found."""
    from repro.caliper.calipack import (
        CalipackError,
        load_entries,
        member_ref,
        verify_entry,
    )

    try:
        entries = load_entries(archive)
    except (CalipackError, OSError) as exc:
        report.notes.append(f"unreadable archive {archive}: {exc}")
        return True
    report.archives_checked += 1
    damaged = False
    for entry in entries:
        report.entries_checked += 1
        try:
            status, _detail = verify_entry(archive, entry)
        except OSError:
            status = "truncated"
        if status in ("truncated", "corrupt"):
            report.entries_damaged.append(member_ref(archive, entry.name))
            damaged = True
    return damaged


def _scrub_cache_dir(report: ScrubReport, cache_dir: Path) -> None:
    from repro.thicket.ingest_cache import CACHE_SUFFIX, verify_cache_file

    try:
        listing = sorted(cache_dir.glob("thicket-*" + CACHE_SUFFIX))
    except OSError:  # pragma: no cover - racing cleanup
        return
    for path in listing:
        report.cache_entries_checked += 1
        if verify_cache_file(path):
            continue
        try:
            path.unlink()
        except OSError:
            continue  # already reclaimed by a racing prune
        report.cache_entries_dropped.append(str(path))


def scrub_service_root(
    root: str | Path | JobStore, quarantine: bool = True
) -> ScrubReport:
    """One synchronous scrub pass over a service root.

    ``quarantine=False`` is report-only: damaged records/tombstones are
    detected by re-sealing the text directly (no ``.bak`` side effect)
    and no fsck pass is triggered.
    """
    from repro.caliper.calipack import ARCHIVE_NAME
    from repro.service.jobstore import (
        parse_record_text,
        parse_tombstone_text,
        JobError,
    )
    from repro.thicket.ingest_cache import CACHE_DIR_NAME

    store = root if isinstance(root, JobStore) else JobStore(root)
    report = ScrubReport(root=store.root)

    # --- job records ---------------------------------------------------
    terminal_unleased: list[str] = []
    for job_id in store.list_ids():
        report.records_checked += 1
        try:
            text = store.record_path(job_id).read_text()
        except OSError:
            continue  # deleted under us (GC finished): nothing to verify
        try:
            record = parse_record_text(text)
        except JobError:
            report.records_damaged.append(job_id)
            if quarantine:
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore")
                    store.load(job_id)  # backs the damage up as .bak
            continue
        if record.terminal and not store.lease_holder_alive(job_id):
            terminal_unleased.append(job_id)

    # --- tombstones ----------------------------------------------------
    for job_id in store.list_tombstone_ids():
        report.tombstones_checked += 1
        try:
            text = store.tombstone_path(job_id).read_text()
        except OSError:
            continue
        try:
            parse_tombstone_text(text)
        except JobError:
            report.tombstones_damaged.append(job_id)
            if quarantine:
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore")
                    store.read_tombstone(job_id)  # backs up as .bak

    # --- campaign archives + ingest caches (terminal jobs only) --------
    for job_id in terminal_unleased:
        campaign = store.campaign_dir(job_id)
        archive = campaign / ARCHIVE_NAME
        if archive.is_file():
            damaged = _scrub_archive(report, archive)
            if damaged and quarantine:
                from repro.suite.fsck import fsck_directory

                fsck_directory(campaign, quarantine=True, mark_rerun=True)
                report.fsck_campaigns.append(str(campaign))
        cache_dir = campaign / CACHE_DIR_NAME
        if cache_dir.is_dir():
            if quarantine:
                _scrub_cache_dir(report, cache_dir)
            else:
                from repro.thicket.ingest_cache import (
                    CACHE_SUFFIX,
                    verify_cache_file,
                )

                for path in sorted(
                    cache_dir.glob("thicket-*" + CACHE_SUFFIX)
                ):
                    report.cache_entries_checked += 1
                    if not verify_cache_file(path):
                        report.cache_entries_dropped.append(str(path))
    return report


class Scrubber:
    """The daemon's background scrub thread (cadence in seconds).

    A pass re-verifies every seal under the root; damage is quarantined
    through the same machinery a foreground read would use, so the
    thread is safe to run beside a live scheduler — the only campaigns
    it touches are terminal and unleased.
    """

    def __init__(
        self,
        root: str | Path,
        interval: float,
        on_report=None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"scrub interval must be > 0, got {interval}")
        self.root = Path(root)
        self.interval = interval
        self.on_report = on_report
        self.passes = 0
        self.last_report: ScrubReport | None = None
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-scrubber", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout)

    def scrub_once(self) -> ScrubReport:
        report = scrub_service_root(self.root)
        self.passes += 1
        self.last_report = report
        if self.on_report is not None:
            self.on_report(report)
        return report

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.scrub_once()
            except Exception as exc:  # pragma: no cover - defensive
                # A scrub failure must never take the daemon down; the
                # next pass retries from scratch.
                warnings.warn(f"scrub pass failed: {exc}", stacklevel=1)
