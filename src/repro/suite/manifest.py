"""Campaign checkpointing: the manifest that makes sweeps resumable.

A campaign writing ``.cali`` files also maintains
``campaign_manifest.json`` next to them, recording the status of every
(machine, variant, tuning, trial) cell as it completes. A crashed or
degraded campaign re-invoked with ``--resume`` skips the cells the
manifest marks ``ok`` and re-runs only failed or missing ones. The
manifest is rewritten crash-safely after every cell (tmp sibling +
fsync + ``os.replace`` + directory fsync), so a crash can lose at most
the in-flight cell — never the ledger.

Concurrent campaigns must not interleave writes to one ledger, so the
output directory carries an advisory :class:`CampaignLock`: a lockfile
holding a PID lease. A second campaign against a locked directory fails
loudly with :class:`~repro.suite.errors.CampaignLockedError`; a lease
whose holder PID is dead is taken over automatically (crashed campaigns
do not wedge the directory).
"""

from __future__ import annotations

import json
import os
import socket
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.chaos.points import crash_point
from repro.suite.errors import CampaignLockedError
from repro.util.fsio import write_durable_text

MANIFEST_NAME = "campaign_manifest.json"
MANIFEST_VERSION = 1
LOCK_NAME = "campaign_manifest.lock"


def _pid_alive(pid: Any) -> bool:
    """Whether ``pid`` names a live process we could signal."""
    if not isinstance(pid, int) or pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # alive, owned by someone else
        return True
    except OSError:  # pragma: no cover - exotic platforms
        return False
    return True


@dataclass
class CampaignLock:
    """Advisory PID-lease lock on a campaign output directory.

    ``acquire`` creates ``campaign_manifest.lock`` exclusively; if it
    already exists and its holder PID is alive, acquisition raises
    :class:`CampaignLockedError` with a diagnostic. A stale lease (dead
    holder, or a leak from this very process) is taken over in place.
    The lock is advisory: it guards cooperating campaign runners, not
    arbitrary writers.
    """

    path: Path
    acquired: bool = False

    @classmethod
    def acquire(cls, output_dir: str | Path) -> "CampaignLock":
        return cls.acquire_path(Path(output_dir) / LOCK_NAME)

    @classmethod
    def acquire_path(cls, path: str | Path) -> "CampaignLock":
        """Acquire an arbitrary PID-lease lock file (same protocol).

        The campaign service's per-job lease tokens are ordinary
        instances of this lock living under ``jobs/`` instead of inside
        a campaign directory; the O_EXCL claim and the exclusive
        stale-lease takeover work identically.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        lease = json.dumps(
            {
                "pid": os.getpid(),
                "host": socket.gethostname(),
                "acquired_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
            },
            indent=1,
        )
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            holder: dict[str, Any] = {}
            try:
                holder = json.loads(path.read_text())
            except (OSError, ValueError):
                pass  # unreadable lease: treat as stale
            holder_pid = holder.get("pid")
            if _pid_alive(holder_pid) and holder_pid != os.getpid():
                raise CampaignLockedError(
                    str(path), holder_pid, holder.get("acquired_at")
                ) from None
            # Stale lease: the holder is gone (or is us). Two contenders
            # can reach this branch for the same expired lease, so the
            # takeover itself must be exclusive: claim a takeover token
            # with O_EXCL first. Exactly one contender wins; the loser
            # fails with the same clean CampaignLockedError a live lease
            # produces. A token orphaned by a crash mid-takeover is
            # cleared once its claimant is dead, so it cannot wedge the
            # directory.
            token = path.with_name(path.name + ".takeover")
            try:
                tfd = os.open(token, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                claimant: Any = None
                try:
                    claimant = json.loads(token.read_text()).get("pid")
                except (OSError, ValueError):
                    pass
                if not _pid_alive(claimant):
                    token.unlink(missing_ok=True)
                raise CampaignLockedError(
                    str(path), claimant, holder.get("acquired_at")
                ) from None
            try:
                os.write(tfd, json.dumps({"pid": os.getpid()}).encode())
            finally:
                os.close(tfd)
            try:
                write_durable_text(path, lease)
            finally:
                token.unlink(missing_ok=True)
            return cls(path=path, acquired=True)
        try:
            os.write(fd, lease.encode())
        finally:
            os.close(fd)
        return cls(path=path, acquired=True)

    def release(self) -> None:
        if not self.acquired:
            return
        self.acquired = False
        try:
            self.path.unlink()
        except FileNotFoundError:  # pragma: no cover - external cleanup
            pass

    def __enter__(self) -> "CampaignLock":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()


@dataclass
class CampaignManifest:
    """Completed-cell ledger for one campaign output directory."""

    path: Path
    fingerprint: dict[str, Any] = field(default_factory=dict)
    #: cell key -> {"status": "ok"|"failed", "file": str|None,
    #:              "failed_kernels": [...]}
    cells: dict[str, dict[str, Any]] = field(default_factory=dict)

    # -------------------------------------------------------------- load
    @classmethod
    def load_or_create(
        cls, output_dir: str | Path, fingerprint: dict[str, Any]
    ) -> "CampaignManifest":
        """Load the directory's manifest, or start an empty one.

        An unreadable manifest is backed up as
        ``campaign_manifest.json.bak`` before a fresh one takes its place
        — forensic state is preserved, never silently destroyed. A
        fingerprint mismatch (the resumed campaign was configured
        differently) warns rather than fails: resuming with, say, more
        trials legitimately extends an existing manifest.
        """
        path = Path(output_dir) / MANIFEST_NAME
        if not path.exists():
            return cls(path=path, fingerprint=dict(fingerprint))
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            backup = path.with_suffix(path.suffix + ".bak")
            try:
                os.replace(path, backup)
                saved = f"; corrupt file backed up as {backup.name}"
            except OSError:
                saved = "; backup failed, corrupt file left in place"
            warnings.warn(
                f"unreadable campaign manifest {path} ({exc}); "
                f"starting fresh{saved}",
                stacklevel=2,
            )
            return cls(path=path, fingerprint=dict(fingerprint))
        recorded = payload.get("fingerprint", {})
        if recorded and recorded != fingerprint:
            changed = sorted(
                k
                for k in set(recorded) | set(fingerprint)
                if recorded.get(k) != fingerprint.get(k)
            )
            warnings.warn(
                f"campaign manifest {path} was recorded with a different "
                f"configuration (changed: {changed}); resuming anyway",
                stacklevel=2,
            )
        return cls(
            path=path,
            fingerprint=dict(fingerprint),
            cells=dict(payload.get("cells", {})),
        )

    # ------------------------------------------------------------ queries
    def is_complete(self, key: str) -> bool:
        """Whether ``--resume`` may skip this cell."""
        return self.cells.get(key, {}).get("status") == "ok"

    def record(
        self,
        key: str,
        status: str,
        file: str | None = None,
        failed_kernels: list[str] | None = None,
        elapsed_s: float | None = None,
    ) -> None:
        entry = {
            "status": status,
            "file": file,
            "failed_kernels": list(failed_kernels or []),
        }
        if elapsed_s is not None:
            # Measured wall time feeds the scheduler's cost model on a
            # later run (``--cost-from``); absent for model-only cells.
            entry["elapsed_s"] = elapsed_s
        self.cells[key] = entry

    def mark_for_rerun(self, key: str, reason: str) -> None:
        """Demote a cell so ``--resume`` re-runs it (fsck healing)."""
        entry = self.cells.setdefault(
            key, {"status": "failed", "file": None, "failed_kernels": []}
        )
        entry["status"] = "failed"
        entry["rerun_reason"] = reason

    # -------------------------------------------------------------- save
    def save(self) -> Path:
        """Crash-safely persist (fsynced tmp + ``os.replace`` + dir fsync)."""
        crash_point("manifest.pre-save", path=self.path)
        payload = {
            "format": "rajaperf-campaign-manifest",
            "version": MANIFEST_VERSION,
            "fingerprint": self.fingerprint,
            "cells": self.cells,
        }
        return write_durable_text(
            self.path, json.dumps(payload, indent=1, sort_keys=True)
        )
