"""Campaign checkpointing: the manifest that makes sweeps resumable.

A campaign writing ``.cali`` files also maintains
``campaign_manifest.json`` next to them, recording the status of every
(machine, variant, tuning, trial) cell as it completes. A crashed or
degraded campaign re-invoked with ``--resume`` skips the cells the
manifest marks ``ok`` and re-runs only failed or missing ones. The
manifest is rewritten atomically after every cell, so a crash can lose
at most the in-flight cell.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

MANIFEST_NAME = "campaign_manifest.json"
MANIFEST_VERSION = 1


@dataclass
class CampaignManifest:
    """Completed-cell ledger for one campaign output directory."""

    path: Path
    fingerprint: dict[str, Any] = field(default_factory=dict)
    #: cell key -> {"status": "ok"|"failed", "file": str|None,
    #:              "failed_kernels": [...]}
    cells: dict[str, dict[str, Any]] = field(default_factory=dict)

    # -------------------------------------------------------------- load
    @classmethod
    def load_or_create(
        cls, output_dir: str | Path, fingerprint: dict[str, Any]
    ) -> "CampaignManifest":
        """Load the directory's manifest, or start an empty one.

        A fingerprint mismatch (the resumed campaign was configured
        differently) warns rather than fails: resuming with, say, more
        trials legitimately extends an existing manifest.
        """
        path = Path(output_dir) / MANIFEST_NAME
        if not path.exists():
            return cls(path=path, fingerprint=dict(fingerprint))
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            warnings.warn(
                f"unreadable campaign manifest {path} ({exc}); starting fresh",
                stacklevel=2,
            )
            return cls(path=path, fingerprint=dict(fingerprint))
        recorded = payload.get("fingerprint", {})
        if recorded and recorded != fingerprint:
            changed = sorted(
                k
                for k in set(recorded) | set(fingerprint)
                if recorded.get(k) != fingerprint.get(k)
            )
            warnings.warn(
                f"campaign manifest {path} was recorded with a different "
                f"configuration (changed: {changed}); resuming anyway",
                stacklevel=2,
            )
        return cls(
            path=path,
            fingerprint=dict(fingerprint),
            cells=dict(payload.get("cells", {})),
        )

    # ------------------------------------------------------------ queries
    def is_complete(self, key: str) -> bool:
        """Whether ``--resume`` may skip this cell."""
        return self.cells.get(key, {}).get("status") == "ok"

    def record(
        self,
        key: str,
        status: str,
        file: str | None = None,
        failed_kernels: list[str] | None = None,
    ) -> None:
        self.cells[key] = {
            "status": status,
            "file": file,
            "failed_kernels": list(failed_kernels or []),
        }

    # -------------------------------------------------------------- save
    def save(self) -> Path:
        """Atomically persist (tmp sibling + ``os.replace``)."""
        payload = {
            "format": "rajaperf-campaign-manifest",
            "version": MANIFEST_VERSION,
            "fingerprint": self.fingerprint,
            "cells": self.cells,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(payload, indent=1, sort_keys=True))
        os.replace(tmp, self.path)
        return self.path
