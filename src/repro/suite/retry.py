"""Bounded retry with exponential backoff + deterministic jitter.

Transient faults (a wobbly filesystem, a one-off kernel exception, a
corrupted checksum) deserve a few more attempts before a cell is written
off; correlated retries across a campaign's many cells deserve jitter.
The jitter stream is seeded so a replayed campaign backs off identically
— determinism is what makes the fault-injection tests assertable.
"""

from __future__ import annotations

import random
from collections.abc import Iterator
from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """How many attempts a kernel/write gets and how long to wait between.

    ``delays()`` yields ``max_attempts - 1`` waits: ``base_delay``
    doubled per attempt (capped at ``max_delay``), plus a uniformly
    drawn jitter of up to ``jitter`` times the delay, from a stream
    seeded with ``seed``.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: int = 20240

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.multiplier < 1:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")

    def delays(self) -> Iterator[float]:
        rng = random.Random(self.seed)
        for attempt in range(self.max_attempts - 1):
            delay = min(self.base_delay * self.multiplier**attempt, self.max_delay)
            yield delay + (rng.uniform(0.0, self.jitter * delay) if self.jitter else 0.0)
