"""Bounded retry with exponential backoff + deterministic jitter.

Transient faults (a wobbly filesystem, a one-off kernel exception, a
corrupted checksum) deserve a few more attempts before a cell is written
off; correlated retries across a campaign's many cells deserve jitter.
The jitter stream is seeded so a replayed campaign backs off identically
— determinism is what makes the fault-injection tests assertable.

Each call site passes its own ``salt`` (the cell/kernel key) to
``delays``: the stream seed is derived from ``seed ^ crc32(salt)``, so
two cells failing at the same moment back off *differently* (no
thundering-herd retries against a shared filesystem) while a replayed
campaign still sees identical waits per site.
"""

from __future__ import annotations

import random
import zlib
from collections.abc import Iterator
from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """How many attempts a kernel/write gets and how long to wait between.

    ``delays(salt)`` yields ``max_attempts - 1`` waits: ``base_delay``
    doubled per attempt (capped at ``max_delay``), plus a uniformly
    drawn jitter of up to ``jitter`` times the delay, from a stream
    seeded with ``seed ^ crc32(salt)`` — per-site decorrelation,
    per-replay determinism.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: int = 20240

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.multiplier < 1:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")

    def stream_seed(self, salt: object = None) -> int:
        """The jitter-stream seed for one call site (``None`` = base seed)."""
        if salt is None:
            return self.seed
        return self.seed ^ (zlib.crc32(str(salt).encode("utf-8")) & 0xFFFFFFFF)

    def delays(self, salt: object = None) -> Iterator[float]:
        rng = random.Random(self.stream_seed(salt))
        for attempt in range(self.max_attempts - 1):
            delay = min(self.base_delay * self.multiplier**attempt, self.max_delay)
            yield delay + (rng.uniform(0.0, self.jitter * delay) if self.jitter else 0.0)
