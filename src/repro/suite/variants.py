"""Kernel variants: (implementation kind, programming-model backend).

RAJAPerf provides at least two variants per programming model: a *Base*
variant written directly in that model, and a *RAJA* variant written
against the portability layer. Some kernels also ship Kokkos variants
(maintained by the Kokkos team; like the paper, we enumerate but do not
analyze them).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.rajasim.policies import (
    Backend,
    ExecPolicy,
    POLICY_BY_BACKEND,
)


class VariantKind(enum.Enum):
    BASE = "Base"
    LAMBDA = "Lambda"
    RAJA = "RAJA"
    KOKKOS = "Kokkos"


@dataclass(frozen=True)
class Variant:
    """One (kind, backend) implementation of a kernel."""

    kind: VariantKind
    backend: Backend

    @property
    def name(self) -> str:
        """RAJAPerf-style variant name, e.g. ``RAJA_CUDA`` or ``Base_Seq``."""
        if self.kind is VariantKind.KOKKOS:
            return "Kokkos_Lambda"
        return f"{self.kind.value}_{self.backend.value}"

    @property
    def is_raja(self) -> bool:
        return self.kind is VariantKind.RAJA

    @property
    def is_gpu(self) -> bool:
        return self.backend.is_gpu

    def policy(self) -> ExecPolicy:
        """Default execution policy for this variant's backend."""
        return POLICY_BY_BACKEND[self.backend]

    def __str__(self) -> str:
        return self.name


def _make_variants() -> dict[str, Variant]:
    variants = {}
    for backend in Backend:
        if backend is Backend.SIMD:
            continue  # SIMD is a policy refinement, not a RAJAPerf variant
        for kind in (VariantKind.BASE, VariantKind.RAJA):
            v = Variant(kind, backend)
            variants[v.name] = v
    kokkos = Variant(VariantKind.KOKKOS, Backend.SEQUENTIAL)
    variants["Kokkos_Lambda"] = kokkos
    return variants


#: All defined variants, keyed by RAJAPerf-style name.
VARIANTS: dict[str, Variant] = _make_variants()

BASE_SEQ = VARIANTS["Base_Seq"]
RAJA_SEQ = VARIANTS["RAJA_Seq"]
BASE_OPENMP = VARIANTS["Base_OpenMP"]
RAJA_OPENMP = VARIANTS["RAJA_OpenMP"]
BASE_CUDA = VARIANTS["Base_CUDA"]
RAJA_CUDA = VARIANTS["RAJA_CUDA"]
BASE_HIP = VARIANTS["Base_HIP"]
RAJA_HIP = VARIANTS["RAJA_HIP"]
BASE_SYCL = VARIANTS["Base_SYCL"]
RAJA_SYCL = VARIANTS["RAJA_SYCL"]


def get_variant(name: str) -> Variant:
    """Look up a variant by RAJAPerf-style name (e.g. ``"RAJA_HIP"``)."""
    try:
        return VARIANTS[name]
    except KeyError:
        raise KeyError(f"unknown variant {name!r}; have {sorted(VARIANTS)}") from None


#: The standard full set of backends a portable kernel supports.
ALL_BACKENDS: tuple[Backend, ...] = (
    Backend.SEQUENTIAL,
    Backend.OPENMP,
    Backend.OPENMP_TARGET,
    Backend.CUDA,
    Backend.HIP,
    Backend.SYCL,
)


def variants_for_backends(
    backends: tuple[Backend, ...] = ALL_BACKENDS, kokkos: bool = False
) -> tuple[Variant, ...]:
    """Base+RAJA variant pair for each backend (Table I's 'BR' cells)."""
    out = []
    for backend in backends:
        out.append(Variant(VariantKind.BASE, backend))
        out.append(Variant(VariantKind.RAJA, backend))
    if kokkos:
        out.append(VARIANTS["Kokkos_Lambda"])
    return tuple(out)
