"""The suite executor: runs kernels and emits Caliper profiles.

Mirrors the paper's data-collection pipeline: one RAJAPerf run = one
(machine, variant, tuning) combination = one Caliper profile whose region
tree is ``group -> kernel`` and whose region metrics are

* the predicted node-level execution time from the performance model
  (the substitute for measured wall time on the paper's machines);
* the analytic metrics (bytes read/written, FLOPs, FLOPs/byte);
* on CPU machines, the PAPI-style top-down slot counters;
* on GPU machines, the NCU-style roofline counters;
* when real execution is enabled, the actual NumPy wall time and
  checksum at a capped problem size.

Adiak-style run metadata (variant, tuning, machine, problem size, ranks)
lands in the profile globals, which Thicket later surfaces as its
metadata table.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

from repro import adiak
from repro.caliper.annotation import CaliperSession
from repro.caliper.cali import write_cali
from repro.caliper.records import CaliProfile
from repro.cpusim.counters import slot_counters
from repro.gpusim.ncu import ncu_counters
from repro.machines.model import MachineKind, MachineModel
from repro.machines.registry import get_machine
from repro.perfmodel.cpu_time import CpuTimeModel
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import all_kernel_classes
from repro.suite.run_params import TABLE3, RunParams
from repro.suite.variants import Variant, get_variant


@dataclass
class RunResult:
    """Executor output: profiles plus any written .cali paths."""

    profiles: list[CaliProfile]
    cali_paths: list[Path]


def _variant_compatible(variant: Variant, machine: MachineModel) -> bool:
    """Whether a variant's backend runs on a machine kind.

    CPU machines run Seq/OpenMP variants; GPU machines run the offload
    backends (CUDA on V100, HIP on MI250X, plus OMPTarget/SYCL on either).
    """
    if machine.kind is MachineKind.CPU:
        return variant.backend.value in ("Seq", "OpenMP")
    allowed = {"OMPTarget", "SYCL"}
    if machine.architecture.startswith("NVIDIA"):
        allowed.add("CUDA")
    if machine.architecture.startswith("AMD"):
        allowed.add("HIP")
    return variant.backend.value in allowed


class SuiteExecutor:
    """Runs a configured sweep and produces one profile per run."""

    def __init__(self, params: RunParams) -> None:
        self.params = params

    def selected_kernels(self) -> list[type[KernelBase]]:
        return [cls for cls in all_kernel_classes() if self.params.selects(cls)]

    # ----------------------------------------------------------- execution
    def run(self, write_files: bool = False) -> RunResult:
        profiles: list[CaliProfile] = []
        paths: list[Path] = []
        for machine_name in self.params.machines:
            machine = get_machine(machine_name)
            for variant_name in self.params.variants:
                variant = get_variant(variant_name)
                if not _variant_compatible(variant, machine):
                    continue
                tunings = self.params.gpu_block_sizes if variant.is_gpu else (0,)
                for block in tunings:
                    for trial in range(self.params.trials):
                        profile = self._run_one(machine, variant, block, trial)
                        profiles.append(profile)
                        if write_files:
                            tuning = f"block_{block}" if block else "default"
                            trial_tag = (
                                f"_trial{trial}" if self.params.trials > 1 else ""
                            )
                            fname = (
                                f"rajaperf_{machine.shorthand}_{variant.name}"
                                f"_{tuning}{trial_tag}.cali"
                            )
                            paths.append(
                                write_cali(
                                    profile, Path(self.params.output_dir) / fname
                                )
                            )
                        self._maybe_write_csv(profile, machine, variant, block, trial)
        return RunResult(profiles=profiles, cali_paths=paths)

    def run_paper_configuration(self, write_files: bool = False) -> RunResult:
        """Run exactly Table III: the paper's per-machine variant choices."""
        profiles: list[CaliProfile] = []
        paths: list[Path] = []
        for config in TABLE3.values():
            machine = get_machine(config.machine)
            variant = get_variant(config.variant)
            for trial in range(self.params.trials):
                profile = self._run_one(
                    machine, variant, 256 if variant.is_gpu else 0, trial
                )
                profiles.append(profile)
                if write_files:
                    trial_tag = f"_trial{trial}" if self.params.trials > 1 else ""
                    fname = f"rajaperf_{machine.shorthand}_{variant.name}{trial_tag}.cali"
                    paths.append(
                        write_cali(profile, Path(self.params.output_dir) / fname)
                    )
        return RunResult(profiles=profiles, cali_paths=paths)

    def _maybe_write_csv(self, profile, machine, variant, block, trial) -> None:
        """RAJAPerf-style per-run CSV: one row per kernel, one column per
        metric ("Various text-based files can be generated for each run
        for processing with common plotting and other tools")."""
        if not self.params.write_csv:
            return
        from repro.dataframe import Frame, frame_to_csv

        records = []
        for node in profile.walk():
            if node.depth == 3:  # RAJAPerf / group / kernel
                rec = {"kernel": node.name}
                rec.update(node.metrics)
                records.append(rec)
        tuning = f"block_{block}" if block else "default"
        trial_tag = f"_trial{trial}" if self.params.trials > 1 else ""
        path = Path(self.params.output_dir) / (
            f"rajaperf_{machine.shorthand}_{variant.name}_{tuning}{trial_tag}.csv"
        )
        frame_to_csv(Frame.from_records(records), path)

    # --------------------------------------------------------- single run
    def _run_one(
        self, machine: MachineModel, variant: Variant, block: int, trial: int = 0
    ) -> CaliProfile:
        params = self.params
        session = CaliperSession(collect_time=False)

        adiak.init()
        adiak.value("variant", variant.name)
        adiak.value("tuning", f"block_{block}" if block else "default")
        adiak.value("trial", trial)
        adiak.value("machine", machine.shorthand)
        adiak.value("architecture", machine.architecture)
        adiak.value("problem_size", params.problem_size)
        adiak.value("reps", params.reps)
        adiak.value("mpi_ranks", machine.mpi.ranks_per_node)
        adiak.value("programming_model", variant.backend.value)
        for key, val in adiak.fini().items():
            session.set_global(key, val)

        with session.region("RAJAPerf"):
            for cls in self.selected_kernels():
                if not any(v.name == variant.name for v in cls(1).variants()):
                    continue
                kernel = cls(problem_size=params.problem_size)
                with session.region(cls.GROUP.value):
                    with session.region(kernel.full_name):
                        self._record_kernel(
                            session, kernel, machine, variant, block, trial
                        )
        return session.close()

    def _record_kernel(
        self,
        session: CaliperSession,
        kernel: KernelBase,
        machine: MachineModel,
        variant: Variant,
        block: int,
        trial: int = 0,
    ) -> None:
        from repro.perfmodel.noise import noisy_time

        params = self.params
        work = kernel.work_profile(reps=params.reps)
        traits = kernel.effective_traits()
        breakdown = kernel.predict(machine, variant, block_size=block or None)
        total = breakdown.total_seconds * params.reps
        if params.trials > 1:
            total = noisy_time(
                total, kernel.full_name, machine.shorthand, trial, params.noise_sigma
            )

        session.set_metric("Avg time/rank", total, accumulate=False)
        for name, value in work.per_iteration().items():
            session.set_metric(name, value, accumulate=False)
        session.set_metric("iterations", work.iterations, accumulate=False)
        session.set_metric("reps", float(params.reps), accumulate=False)

        if machine.kind is MachineKind.CPU:
            cpu_breakdown = CpuTimeModel(machine).predict(work, traits)
            for name, value in slot_counters(
                cpu_breakdown, machine, work.instructions
            ).items():
                session.set_metric(name, value, accumulate=False)
        else:
            # NCU profiles a single device: scale the node totals down to
            # one GPU's share (time is the same — ranks run concurrently).
            per_gpu = work.scaled(1.0 / machine.units_per_node)
            for name, value in ncu_counters(per_gpu, traits, machine, total).items():
                session.set_metric(name, value, accumulate=False)

        if params.execute:
            exec_kernel = type(kernel)(problem_size=params.execution_size)
            start = time.perf_counter()
            policy = variant.policy()
            if variant.is_gpu and block:
                policy = policy.with_block_size(block)
            checksum = exec_kernel.run_variant(variant, policy)
            session.set_metric(
                "wall time (executed)", time.perf_counter() - start, accumulate=False
            )
            session.set_metric("checksum", checksum, accumulate=False)
