"""The suite executor: runs kernels and emits Caliper profiles.

Mirrors the paper's data-collection pipeline: one RAJAPerf run = one
(machine, variant, tuning) combination = one Caliper profile whose region
tree is ``group -> kernel`` and whose region metrics are

* the predicted node-level execution time from the performance model
  (the substitute for measured wall time on the paper's machines);
* the analytic metrics (bytes read/written, FLOPs, FLOPs/byte);
* on CPU machines, the PAPI-style top-down slot counters;
* on GPU machines, the NCU-style roofline counters;
* when real execution is enabled, the actual NumPy wall time and
  checksum at a capped problem size.

Adiak-style run metadata (variant, tuning, machine, problem size, ranks)
lands in the profile globals, which Thicket later surfaces as its
metadata table.

The executor is a *campaign runner*: a multi-machine sweep takes hours
on the paper's systems, so one bad kernel must not lose the rest. Each
kernel runs inside an isolation boundary with bounded retry (exponential
backoff + seeded jitter) for transient faults, a per-kernel deadline
watchdog, and cross-variant checksum verification against the Base_Seq
reference when real execution is on. Outcomes land in a
:class:`~repro.suite.report.RunReport`; completed cells are checkpointed
to a campaign manifest so an interrupted sweep resumes where it stopped
(``RunParams.resume``). ``RunParams.fail_fast`` restores abort-on-first-
error. Faults are plantable via :mod:`repro.faults` for testing.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path

from repro import adiak
from repro.caliper.annotation import CaliperSession
from repro.caliper.cali import write_cali
from repro.chaos.points import crash_point
from repro.caliper.records import CaliProfile
from repro.cpusim.counters import slot_counters
from repro.faults import DeadlineClock, FaultInjector, FaultSite, active_injector
from repro.gpusim.ncu import ncu_counters
from repro.machines.model import MachineKind, MachineModel
from repro.machines.registry import get_machine
from repro.perfmodel.cpu_time import CpuTimeModel
from repro.suite.checksum import checksums_match
from repro.suite.errors import (
    ChecksumMismatchError,
    KernelExecutionError,
    ProfileWriteError,
    RETRYABLE_ERRORS,
    RunTimeoutError,
    SuiteError,
)
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import all_kernel_classes
from repro.suite.session import CampaignSession
from repro.suite.report import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_RETRIED,
    STATUS_SKIPPED,
    KernelRunRecord,
    RunReport,
    cell_key,
)
from repro.suite.run_params import TABLE3, RunParams
from repro.suite.state_pool import KernelStatePool
from repro.suite.variants import Variant, get_variant


@dataclass
class RunResult:
    """Executor output: profiles, written .cali paths, per-run outcomes."""

    profiles: list[CaliProfile]
    cali_paths: list[Path]
    report: RunReport = field(default_factory=RunReport)


@dataclass(frozen=True)
class _Cell:
    """One campaign cell: a (machine, variant, tuning, trial) run."""

    machine: MachineModel
    variant: Variant
    block: int
    trial: int
    fname: str

    @property
    def tuning(self) -> str:
        return f"block_{self.block}" if self.block else "default"

    @property
    def key(self) -> str:
        return cell_key(
            self.machine.shorthand, self.variant.name, self.tuning, self.trial
        )


@dataclass
class CellOutcome:
    """Everything one cell's execution produced (serial or worker path)."""

    cell_key: str
    profile: CaliProfile
    records: list[KernelRunRecord]
    written: Path | None = None
    write_error: str | None = None
    #: measured wall time of the whole cell (kernels + profile write) —
    #: recorded in the manifest to feed a later run's ``--cost-from``
    elapsed_s: float | None = None

    @property
    def failed(self) -> bool:
        return self.write_error is not None or any(
            r.status == STATUS_FAILED for r in self.records
        )

    @property
    def status(self) -> str:
        return STATUS_FAILED if self.failed else STATUS_OK

    @property
    def failed_kernels(self) -> list[str]:
        return [r.kernel for r in self.records if r.status == STATUS_FAILED]


def _variant_compatible(variant: Variant, machine: MachineModel) -> bool:
    """Whether a variant's backend runs on a machine kind.

    CPU machines run Seq/OpenMP variants; GPU machines run the offload
    backends (CUDA on V100, HIP on MI250X, plus OMPTarget/SYCL on either).
    """
    if machine.kind is MachineKind.CPU:
        return variant.backend.value in ("Seq", "OpenMP")
    allowed = {"OMPTarget", "SYCL"}
    if machine.architecture.startswith("NVIDIA"):
        allowed.add("CUDA")
    if machine.architecture.startswith("AMD"):
        allowed.add("HIP")
    return variant.backend.value in allowed


class SuiteExecutor:
    """Runs a configured sweep and produces one profile per run.

    ``injector`` overrides the process-wide active fault injector (tests
    usually install one via the :class:`FaultInjector` context manager
    instead); ``sleep_fn`` replaces the real backoff sleep so retry tests
    run instantly.
    """

    def __init__(
        self,
        params: RunParams,
        injector: FaultInjector | None = None,
        sleep_fn: Callable[[float], None] | None = None,
    ) -> None:
        self.params = params
        self.injector = injector
        self.sleep_fn = sleep_fn if sleep_fn is not None else time.sleep
        self._reference_checksums: dict[tuple[type[KernelBase], int], float | None] = {}
        #: one set-up instance per (class, size) reused across the whole
        #: campaign — variants, tunings, trials (None = --no-state-pool)
        self.state_pool = KernelStatePool() if params.state_pool else None
        #: when set, profiles stream into a .calipack instead of loose files
        self.profile_sink = None  # repro.caliper.calipack.ArchiveSink
        #: when set, Base_Seq references are shared across processes
        self.refstore = None  # repro.suite.refchecksums.ReferenceChecksumStore

    def selected_kernels(self) -> list[type[KernelBase]]:
        return [cls for cls in all_kernel_classes() if self.params.selects(cls)]

    def _active_injector(self) -> FaultInjector | None:
        return self.injector if self.injector is not None else active_injector()

    # ----------------------------------------------------- cell enumeration
    def build_cells(self) -> list[_Cell]:
        """The configured sweep's cells, in deterministic sweep order."""
        cells: list[_Cell] = []
        for machine_name in self.params.machines:
            machine = get_machine(machine_name)
            for variant_name in self.params.variants:
                variant = get_variant(variant_name)
                if not _variant_compatible(variant, machine):
                    continue
                tunings = self.params.gpu_block_sizes if variant.is_gpu else (0,)
                for block in tunings:
                    for trial in range(self.params.trials):
                        tuning = f"block_{block}" if block else "default"
                        trial_tag = (
                            f"_trial{trial}" if self.params.trials > 1 else ""
                        )
                        fname = (
                            f"rajaperf_{machine.shorthand}_{variant.name}"
                            f"_{tuning}{trial_tag}.cali"
                        )
                        cells.append(_Cell(machine, variant, block, trial, fname))
        return cells

    def build_paper_cells(self) -> list[_Cell]:
        """Exactly Table III: the paper's per-machine variant choices."""
        cells: list[_Cell] = []
        for config in TABLE3.values():
            machine = get_machine(config.machine)
            variant = get_variant(config.variant)
            block = 256 if variant.is_gpu else 0
            for trial in range(self.params.trials):
                trial_tag = f"_trial{trial}" if self.params.trials > 1 else ""
                fname = f"rajaperf_{machine.shorthand}_{variant.name}{trial_tag}.cali"
                cells.append(_Cell(machine, variant, block, trial, fname))
        return cells

    # ----------------------------------------------------------- execution
    def run(self, write_files: bool = False) -> RunResult:
        return self._execute(self.build_cells(), write_files)

    def run_paper_configuration(self, write_files: bool = False) -> RunResult:
        """Run exactly Table III: the paper's per-machine variant choices."""
        return self._execute(self.build_paper_cells(), write_files)

    def _execute(self, cells: list[_Cell], write_files: bool) -> RunResult:
        if self.params.shards > 0 and write_files:
            from repro.suite.coordinator import ShardCoordinator

            coordinator = ShardCoordinator(
                self.params, injector=self._active_injector()
            )
            return coordinator.run(cells, write_files)
        if self.params.workers > 1:
            from repro.suite.supervisor import CampaignSupervisor

            supervisor = CampaignSupervisor(
                self.params, injector=self._active_injector()
            )
            return supervisor.run(cells, write_files)
        return self._run_cells(cells, write_files)

    # -------------------------------------------------------- campaign loop
    def _run_cells(self, cells: list[_Cell], write_files: bool) -> RunResult:
        params = self.params
        report = RunReport()
        profiles: list[CaliProfile] = []
        paths: list[Path] = []
        session = CampaignSession(params, write_files).open()
        manifest = session.manifest
        try:
            if write_files and params.pack and self.profile_sink is None:
                from repro.caliper.calipack import ARCHIVE_NAME, ArchiveSink

                self.profile_sink = ArchiveSink(
                    Path(params.output_dir) / ARCHIVE_NAME
                )
            if write_files and params.execute:
                from repro.suite.refchecksums import ReferenceChecksumStore

                self.refstore = ReferenceChecksumStore(params.output_dir)
            for cell in cells:
                if (
                    params.resume
                    and manifest is not None
                    and manifest.is_complete(cell.key)
                ):
                    report.mark_cell(cell.key, STATUS_SKIPPED)
                    continue
                outcome = self.run_cell(cell, write_files)
                profiles.append(outcome.profile)
                if outcome.written is not None:
                    paths.append(outcome.written)
                for record in outcome.records:
                    report.add(record)
                report.mark_cell(cell.key, outcome.status)
                if manifest is not None and write_files:
                    manifest.record(
                        cell.key,
                        outcome.status,
                        file=(
                            str(outcome.written)
                            if outcome.written is not None
                            else None
                        ),
                        failed_kernels=outcome.failed_kernels,
                        elapsed_s=outcome.elapsed_s,
                    )
                    manifest.save()
                    crash_point("executor.post-cell", path=manifest.path)
            # The loop completed: seal the archive in canonical form so
            # every execution mode converges on the same bytes. The sink
            # must close first — finalize rewrites the file it holds open.
            if self.profile_sink is not None:
                self.profile_sink.close()
                self.profile_sink = None
            session.finalize()
        finally:
            if self.profile_sink is not None:
                self.profile_sink.close()
                self.profile_sink = None
            session.close()
        return RunResult(profiles=profiles, cali_paths=paths, report=report)

    # ----------------------------------------------------------- one cell
    def run_cell(self, cell: _Cell, write_files: bool) -> CellOutcome:
        """Run one cell end to end (kernels + profile write + CSV).

        The shared primitive behind both the serial campaign loop and
        the supervised worker: everything the cell produced comes back
        as a :class:`CellOutcome`; the caller owns report/manifest
        bookkeeping.
        """
        params = self.params
        cell_start = time.perf_counter()
        profile, records = self._run_one_cell(cell)
        written: Path | None = None
        write_error: str | None = None
        if write_files:
            target = Path(params.output_dir) / cell.fname
            try:
                written = self._write_profile(profile, target, cell)
            except ProfileWriteError as err:
                if params.fail_fast:
                    raise
                write_error = str(err)
                records.append(
                    KernelRunRecord(
                        kernel="<profile write>",
                        machine=cell.machine.shorthand,
                        variant=cell.variant.name,
                        tuning=cell.tuning,
                        trial=cell.trial,
                        status=STATUS_FAILED,
                        attempts=params.max_attempts,
                        error=write_error,
                    )
                )
        self._maybe_write_csv(
            profile, cell.machine, cell.variant, cell.block, cell.trial
        )
        return CellOutcome(
            cell_key=cell.key,
            profile=profile,
            records=records,
            written=written,
            write_error=write_error,
            elapsed_s=time.perf_counter() - cell_start,
        )

    def _write_profile(self, profile: CaliProfile, target: Path, cell: _Cell) -> Path:
        """Write one profile with the same bounded retry as kernels.

        Loose-file mode writes a sealed ``.cali``; packed mode appends
        the same sealed bytes to the campaign archive (returning the
        member ref as the recorded path).
        """
        policy = self.params.retry_policy()
        delays = policy.delays(salt=cell.key)
        attempt = 1
        while True:
            try:
                if self.profile_sink is not None:
                    injector = self._active_injector()
                    corrupt = (
                        injector is not None
                        and injector.footer_fault(cell.fname) is not None
                    )
                    return Path(
                        self.profile_sink.append(cell.fname, profile, corrupt)
                    )
                return write_cali(profile, target)
            except OSError as exc:
                if attempt >= policy.max_attempts:
                    raise ProfileWriteError(str(target), exc) from exc
                self.sleep_fn(next(delays))
                attempt += 1

    def _maybe_write_csv(self, profile, machine, variant, block, trial) -> None:
        """RAJAPerf-style per-run CSV: one row per kernel, one column per
        metric ("Various text-based files can be generated for each run
        for processing with common plotting and other tools")."""
        if not self.params.write_csv:
            return
        from repro.dataframe import Frame, frame_to_csv

        records = []
        for node in profile.walk():
            if node.depth == 3:  # RAJAPerf / group / kernel
                rec = {"kernel": node.name}
                rec.update(node.metrics)
                records.append(rec)
        tuning = f"block_{block}" if block else "default"
        trial_tag = f"_trial{trial}" if self.params.trials > 1 else ""
        path = Path(self.params.output_dir) / (
            f"rajaperf_{machine.shorthand}_{variant.name}_{tuning}{trial_tag}.csv"
        )
        frame_to_csv(Frame.from_records(records), path)

    # --------------------------------------------------------- single run
    def _run_one(
        self, machine: MachineModel, variant: Variant, block: int, trial: int = 0
    ) -> CaliProfile:
        """One (machine, variant, tuning, trial) profile (no file I/O)."""
        tuning = f"block_{block}" if block else "default"
        cell = _Cell(machine, variant, block, trial, fname=f"<{tuning}>")
        profile, _ = self._run_one_cell(cell)
        return profile

    def _run_one_cell(
        self, cell: _Cell
    ) -> tuple[CaliProfile, list[KernelRunRecord]]:
        params = self.params
        machine, variant, block, trial = (
            cell.machine,
            cell.variant,
            cell.block,
            cell.trial,
        )
        session = CaliperSession(collect_time=False)

        adiak.init()
        adiak.value("variant", variant.name)
        adiak.value("tuning", cell.tuning)
        adiak.value("trial", trial)
        adiak.value("machine", machine.shorthand)
        adiak.value("architecture", machine.architecture)
        adiak.value("problem_size", params.problem_size)
        adiak.value("reps", params.reps)
        adiak.value("mpi_ranks", machine.mpi.ranks_per_node)
        adiak.value("programming_model", variant.backend.value)
        for key, val in adiak.fini().items():
            session.set_global(key, val)

        cell_records: list[KernelRunRecord] = []
        with session.region("RAJAPerf"):
            for cls in self.selected_kernels():
                if not any(v.name == variant.name for v in cls.class_variants()):
                    continue
                record = KernelRunRecord(
                    kernel=cls.class_full_name(),
                    machine=machine.shorthand,
                    variant=variant.name,
                    tuning=cell.tuning,
                    trial=trial,
                )
                with session.region(cls.GROUP.value):
                    with session.region(cls.class_full_name()):
                        self._run_kernel_isolated(
                            session, cls, machine, variant, block, trial, record
                        )
                cell_records.append(record)
        return session.close(), cell_records

    def _run_kernel_isolated(
        self,
        session: CaliperSession,
        cls: type[KernelBase],
        machine: MachineModel,
        variant: Variant,
        block: int,
        trial: int,
        record: KernelRunRecord,
    ) -> None:
        """Run one kernel with retry; a permanent failure marks the record
        ``failed`` and the sweep moves on (unless ``fail_fast``)."""
        params = self.params
        policy = params.retry_policy()
        site = FaultSite(
            kernel=cls.class_full_name(),
            variant=variant.name,
            trial=trial,
            machine=machine.shorthand,
        )
        delays = policy.delays(
            salt=f"{site.machine}|{site.kernel}|{site.variant}|{site.trial}"
        )
        attempt = 1
        while True:
            try:
                self._attempt_kernel(
                    session, cls, machine, variant, block, trial, site, record
                )
            except RETRYABLE_ERRORS as err:
                if params.fail_fast:
                    raise
                if attempt >= policy.max_attempts:
                    record.status = STATUS_FAILED
                    record.attempts = attempt
                    record.error = str(err)
                    session.set_metric("failed", 1.0, accumulate=False)
                    return
                self.sleep_fn(next(delays))
                attempt += 1
            else:
                record.attempts = attempt
                record.status = STATUS_OK if attempt == 1 else STATUS_RETRIED
                return

    def _attempt_kernel(
        self,
        session: CaliperSession,
        cls: type[KernelBase],
        machine: MachineModel,
        variant: Variant,
        block: int,
        trial: int,
        site: FaultSite,
        record: KernelRunRecord,
    ) -> None:
        """One attempt: injector hooks + deadline watchdog around the
        actual model/execution work; raises the structured taxonomy."""
        params = self.params
        injector = self._active_injector()
        clock = DeadlineClock()
        start = clock.now()
        try:
            if injector is not None:
                injector.kernel_fault(site)  # may raise the planted fault
                hang = injector.hang_seconds(site)
                if hang:
                    clock.advance(hang)
            kernel = cls(problem_size=params.problem_size)
            self._record_kernel(
                session, kernel, machine, variant, block, trial, site, record
            )
        except SuiteError:
            raise
        except Exception as exc:
            raise KernelExecutionError(
                cls.class_full_name(), variant.name, trial, exc
            ) from exc
        if params.kernel_deadline_s is not None:
            elapsed = clock.now() - start
            if elapsed > params.kernel_deadline_s:
                raise RunTimeoutError(
                    cls.class_full_name(),
                    variant.name,
                    trial,
                    elapsed,
                    params.kernel_deadline_s,
                )

    def _record_kernel(
        self,
        session: CaliperSession,
        kernel: KernelBase,
        machine: MachineModel,
        variant: Variant,
        block: int,
        trial: int = 0,
        site: FaultSite | None = None,
        record: KernelRunRecord | None = None,
    ) -> None:
        from repro.perfmodel.noise import noisy_time

        params = self.params
        work = kernel.work_profile(reps=params.reps)
        traits = kernel.effective_traits()
        breakdown = kernel.predict(machine, variant, block_size=block or None)
        total = breakdown.total_seconds * params.reps
        if params.trials > 1:
            total = noisy_time(
                total, kernel.full_name, machine.shorthand, trial, params.noise_sigma
            )

        session.set_metric("Avg time/rank", total, accumulate=False)
        for name, value in work.per_iteration().items():
            session.set_metric(name, value, accumulate=False)
        session.set_metric("iterations", work.iterations, accumulate=False)
        session.set_metric("reps", float(params.reps), accumulate=False)

        if machine.kind is MachineKind.CPU:
            cpu_breakdown = CpuTimeModel(machine).predict(work, traits)
            for name, value in slot_counters(
                cpu_breakdown, machine, work.instructions
            ).items():
                session.set_metric(name, value, accumulate=False)
        else:
            # NCU profiles a single device: scale the node totals down to
            # one GPU's share (time is the same — ranks run concurrently).
            per_gpu = work.scaled(1.0 / machine.units_per_node)
            for name, value in ncu_counters(per_gpu, traits, machine, total).items():
                session.set_metric(name, value, accumulate=False)

        if params.execute:
            # Setup (allocation + RNG init — or a pooled snapshot restore)
            # is explicit and timed separately: "wall time (executed)"
            # must cover only the variant run, not state preparation.
            setup_start = time.perf_counter()
            exec_kernel = self._exec_kernel(type(kernel))
            session.set_metric(
                "setup time (executed)",
                time.perf_counter() - setup_start,
                accumulate=False,
            )
            policy = variant.policy()
            if variant.is_gpu and block:
                policy = policy.with_block_size(block)
            start = time.perf_counter()
            checksum = exec_kernel.run_variant_prepared(variant, policy)
            session.set_metric(
                "wall time (executed)", time.perf_counter() - start, accumulate=False
            )
            injector = self._active_injector()
            if injector is not None and site is not None:
                checksum = injector.corrupt_checksum(checksum, site)
            session.set_metric("checksum", checksum, accumulate=False)
            self._verify_checksum(session, kernel, variant, trial, checksum, record)

    def _exec_kernel(self, cls: type[KernelBase]) -> KernelBase:
        """A set-up instance of ``cls`` at the execution size, ready for
        ``run_variant_prepared`` — pooled (snapshot-restored) when the
        state pool is on, freshly allocated otherwise."""
        size = self.params.execution_size
        if self.state_pool is not None:
            return self.state_pool.acquire(cls, size)
        kernel = cls(problem_size=size)
        kernel.ensure_setup()
        return kernel

    # ------------------------------------------------- checksum verification
    def _verify_checksum(
        self,
        session: CaliperSession,
        kernel: KernelBase,
        variant: Variant,
        trial: int,
        checksum: float,
        record: KernelRunRecord | None,
    ) -> None:
        """Cross-variant verification: every executed variant must agree
        with the Base_Seq reference checksum (RAJAPerf's tripwire)."""
        reference = self._reference_checksum(type(kernel))
        if reference is None:
            return
        ok = checksums_match(reference, checksum)
        session.set_metric("checksum_ok", 1.0 if ok else 0.0, accumulate=False)
        if record is not None:
            record.checksum_ok = ok
        if not ok:
            raise ChecksumMismatchError(
                kernel.full_name, variant.name, trial, reference, checksum
            )

    def _reference_checksum(self, cls: type[KernelBase]) -> float | None:
        """The kernel's Base_Seq checksum at the execution size (cached).

        Computed by an internal, injector-free Base_Seq run so it stays
        trustworthy even when the campaign's own Base_Seq cell was
        corrupted. Kernels without a Base_Seq variant opt out (None).
        Memoized in-process; when a :class:`ReferenceChecksumStore`
        sidecar is attached (supervised campaigns), references are also
        shared across worker processes — the first worker to need one
        computes and publishes it, everyone else loads it.
        """
        size = self.params.execution_size
        key = (cls, size)
        if key in self._reference_checksums:
            return self._reference_checksums[key]
        name = cls.class_full_name()
        if self.refstore is not None:
            from repro.suite.refchecksums import MISSING

            stored = self.refstore.get(name, size)
            if stored is not MISSING:
                self._reference_checksums[key] = stored
                return stored
        base_seq = get_variant("Base_Seq")
        if not any(v.name == base_seq.name for v in cls.class_variants()):
            value = None
        else:
            value = self._exec_kernel(cls).run_variant_prepared(base_seq)
        self._reference_checksums[key] = value
        if self.refstore is not None:
            self.refstore.put(name, size, value)
        return value
