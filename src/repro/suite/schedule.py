"""Campaign scheduling primitives: LPT ordering, bin-packing, batching.

The seed scheduler was FIFO everywhere: the supervisor handed cells to
workers in registry sweep order, and the shard coordinator dealt cells
round-robin by *count*. Both strand the drain on stragglers — a
``RAJA_CUDA`` cell at block 64 can cost three orders of magnitude more
than a ``Base_Seq`` cell, so whichever worker draws it last holds the
whole campaign open. This module supplies the deterministic pieces the
execution layers compose:

* :func:`order_lpt` — longest-processing-time-first ordering (stable:
  equal costs keep their sweep order);
* :func:`lpt_partition_keys` — greedy LPT bin-pack of cell keys over
  shard bins (each key lands in the currently lightest bin);
* :class:`ReadyHeap` — the supervisor's pending set, keyed by ready
  time so backoff delays don't force an O(n) scan per dispatch;
* :func:`plan_batch` — groups small ready cells into one IPC message,
  shrinking toward single-cell dispatch as the tail drains.

Everything here is a pure function of its inputs (plus the monotonic
``now`` the caller passes in) — no clocks, no RNG — so a campaign's
schedule is reproducible and the merged archive bytes cannot depend on
scheduling decisions.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")

SCHEDULE_FIFO = "fifo"
SCHEDULE_LPT = "lpt"
#: accepted values for ``RunParams.schedule`` / ``--schedule``.
SCHEDULES = (SCHEDULE_LPT, SCHEDULE_FIFO)

#: batch size cap when ``batch_cells="auto"``.
AUTO_BATCH_CAP = 8

#: tail shrink factor: a batch never exceeds 1/(workers * this) of the
#: remaining estimated cost, so near the drain batches degrade to single
#: cells and the tail still load-balances across workers.
TAIL_OVERSUBSCRIBE = 4


def resolve_batch_cap(batch_cells: str | int) -> int:
    """Effective per-batch cell cap for a ``batch_cells`` knob value."""
    if batch_cells == "auto":
        return AUTO_BATCH_CAP
    cap = int(batch_cells)
    return max(1, cap)


def order_lpt(items: Sequence[T], cost_fn: Callable[[T], float]) -> list[T]:
    """``items`` longest-first; ties keep their original (sweep) order."""
    indexed = list(enumerate(items))
    indexed.sort(key=lambda pair: (-cost_fn(pair[1]), pair[0]))
    return [item for _idx, item in indexed]


def lpt_partition_keys(
    keys: Iterable[str],
    shards: int,
    cost_fn: Callable[[str], float],
) -> list[list[str]]:
    """Greedy LPT bin-pack of ``keys`` over ``shards`` bins.

    Keys are considered longest-first and each lands in the currently
    lightest bin (ties broken by lowest shard index), which bounds the
    heaviest bin at 4/3 of optimal. Deterministic: depends only on the
    key order and the cost function. Within each bin, keys are restored
    to their original sweep order so shard-local execution and resume
    bookkeeping look the same as a round-robin deal.
    """
    ordered = list(keys)
    if shards <= 0:
        raise ValueError("shards must be positive")
    rank = {key: idx for idx, key in enumerate(ordered)}
    bins: list[list[str]] = [[] for _ in range(shards)]
    # heap of (accumulated cost, shard index)
    heap: list[tuple[float, int]] = [(0.0, idx) for idx in range(shards)]
    heapq.heapify(heap)
    for key in order_lpt(ordered, cost_fn):
        load, idx = heapq.heappop(heap)
        bins[idx].append(key)
        heapq.heappush(heap, (load + max(cost_fn(key), 0.0), idx))
    for bucket in bins:
        bucket.sort(key=rank.__getitem__)
    return bins


class ReadyHeap:
    """Pending tasks keyed by ready time, FIFO among the ready.

    The seed supervisor kept pending tasks in a deque and rotated the
    whole thing O(n) per dispatch to find one whose backoff delay had
    elapsed. This heap pops in ``(ready_time, insertion order)`` order:
    tasks with no backoff (ready time 0) come out in exactly the order
    they were pushed, and a delayed retry surfaces only once its ready
    time has passed. ``peek_ready``/``pop`` are O(log n).
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, object]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, task, ready_time: float = 0.0) -> None:
        heapq.heappush(self._heap, (ready_time, self._seq, task))
        self._seq += 1

    def peek_ready(self, now: float):
        """The next dispatchable task, or None if none is ready yet.

        The heap root is the earliest-ready task; if even it is still
        backing off, nothing below it can be ready either.
        """
        if not self._heap:
            return None
        ready_time, _seq, task = self._heap[0]
        if ready_time > now:
            return None
        return task

    def pop(self):
        """Remove and return the earliest-ready task (caller checked
        readiness via :meth:`peek_ready`)."""
        _ready, _seq, task = heapq.heappop(self._heap)
        return task

    def next_ready_at(self) -> float | None:
        """Earliest ready time of any pending task, or None when empty."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def drain(self) -> list:
        """Remove and return all tasks in heap order (used at shutdown
        to report what never ran)."""
        out = []
        while self._heap:
            out.append(self.pop())
        return out


def plan_batch(
    queue: ReadyHeap,
    now: float,
    cost_of: Callable[[object], float],
    remaining_cost: float,
    workers: int,
    cap: int,
) -> list:
    """Pop the next dispatch unit: one task, or a batch of small ones.

    The first ready task always dispatches (progress guarantee). More
    ready tasks are appended while the batch stays under both the cell
    cap and a cost share of ``remaining / (workers * TAIL_OVERSUBSCRIBE)``
    — so early in a campaign small cells coalesce into one pickle
    round-trip, and near the drain the share shrinks until every cell
    ships alone and the tail load-balances. Retried tasks
    (``attempt > 1``) always ride solo: a crash mid-batch must not
    entangle unrelated cells in the retry bookkeeping.
    """
    first = queue.peek_ready(now)
    if first is None:
        return []
    queue.pop()
    if cap <= 1 or getattr(first, "attempt", 1) > 1:
        return [first]
    batch = [first]
    total = cost_of(first)
    share = max(remaining_cost, 0.0) / max(workers, 1) / TAIL_OVERSUBSCRIBE
    while len(batch) < cap:
        nxt = queue.peek_ready(now)
        if nxt is None or getattr(nxt, "attempt", 1) > 1:
            break
        nxt_cost = cost_of(nxt)
        if total + nxt_cost > share:
            break
        queue.pop()
        batch.append(nxt)
        total += nxt_cost
    return batch
