"""Kernel-state pooling: instantiate once, snapshot, certify, restore.

The campaign hot path executes every kernel once per (variant, tuning,
trial) cell. The seed engine paid a full ``cls(problem_size)`` +
``setup()`` — array allocation plus RNG initialization — per cell, which
for large problem sizes dwarfs the measured variant run itself.

:class:`KernelStatePool` keeps **one live instance** per
``(class, problem_size, seed)`` together with a snapshot of its
post-``setup()`` state. :meth:`acquire` restores the snapshot into the
live instance with in-place buffer copies (``np.copyto`` into the
existing arrays — no allocation, and crucially *aliasing-preserving*:
a :class:`~repro.rajasim.views.View` wrapping ``self.data`` still wraps
the restored buffer) and returns it ready to run via
``run_variant_prepared``.

Write-set certification
-----------------------

Most kernels only *overwrite* their output arrays — the prior contents
never feed back into the result (``a[:] = b + q*c``). Copying such
arrays back on every acquire is wasted bandwidth. At first acquire the
pool **certifies** the kernel's write-set empirically: it runs the
kernel twice (Base_Seq then RAJA_Seq, when available) and compares the
full instance state bit-for-bit between runs. Attributes that reach a
fixed point — identical after both runs — are provably insensitive to
reuse (had their prior content mattered, the first run, starting from
freshly set-up state, would have produced a different result than the
second) and are classified **stable**: never restored. Attributes that
keep changing (``y += a*x`` accumulators, recurrence arrays) are
**volatile**: snapshotted from post-``setup()`` state and restored on
every acquire. Attributes created during a run with run-dependent values
are deleted on acquire so each run recreates them. A certification that
cannot complete (unsupported variants, runtime errors) falls back to
restoring everything — correctness never depends on the optimization.

Snapshots are recursive over the instance ``__dict__``: ndarrays are
copied, scalars/strings kept, ``np.random.Generator`` state captured via
``bit_generator.state``, and lists/tuples/dicts/plain objects recursed
(bounded depth, cycle-guarded). A kernel whose state the pool cannot
prove restorable raises :class:`UnpoolableState` on first acquire and is
permanently marked unpoolable — callers fall back to fresh
instantiation, trading speed for unconditional correctness.

The pool is bounded by a byte budget (``$REPRO_STATE_POOL_BYTES``,
default 512 MiB) with LRU eviction over snapshot sizes.
"""

from __future__ import annotations

import copy
import os
from collections import OrderedDict

import numpy as np

from repro.suite.kernel_base import KernelBase

#: Attribute depth the snapshotter will recurse into nested objects.
_MAX_DEPTH = 4

_DEFAULT_BUDGET = 512 * 1024 * 1024

#: Scalar leaf types stored by value (immutable, no copy needed).
_SCALARS = (type(None), bool, int, float, complex, str, bytes)


class UnpoolableState(Exception):
    """The kernel holds state the pool cannot snapshot/restore safely."""


def _snapshot_value(value, depth: int, seen: set[int]):
    """Return a snapshot token for ``value`` or raise UnpoolableState."""
    if isinstance(value, np.ndarray):
        return ("nd", value.copy())
    if isinstance(value, _SCALARS) or isinstance(value, (np.generic,)):
        return ("val", value)
    if isinstance(value, np.random.Generator):
        return ("rng", copy.deepcopy(value.bit_generator.state))
    if depth >= _MAX_DEPTH:
        raise UnpoolableState(f"nesting too deep at {type(value).__name__}")
    if id(value) in seen:
        raise UnpoolableState(f"reference cycle through {type(value).__name__}")
    seen = seen | {id(value)}
    if isinstance(value, (list, tuple)):
        return (
            "seq",
            type(value),
            [_snapshot_value(item, depth + 1, seen) for item in value],
        )
    if isinstance(value, dict):
        return (
            "map",
            {k: _snapshot_value(v, depth + 1, seen) for k, v in value.items()},
        )
    inner = getattr(value, "__dict__", None)
    if inner is not None and not callable(value):
        return (
            "obj",
            {k: _snapshot_value(v, depth + 1, seen) for k, v in inner.items()},
        )
    raise UnpoolableState(f"cannot snapshot {type(value).__name__}")


def _restore_value(current, token):
    """Restore ``token`` into/over ``current``; return the restored value.

    Prefers in-place restoration (so aliases into the current object —
    Views over arrays, shared sub-objects — remain valid); falls back to
    returning a fresh copy when shapes/types diverged.
    """
    kind = token[0]
    if kind == "nd":
        saved = token[1]
        if (
            isinstance(current, np.ndarray)
            and current.shape == saved.shape
            and current.dtype == saved.dtype
            and current.flags.writeable
        ):
            np.copyto(current, saved)
            return current
        return saved.copy()
    if kind == "val":
        return token[1]
    if kind == "rng":
        state = copy.deepcopy(token[1])
        if isinstance(current, np.random.Generator):
            try:
                current.bit_generator.state = state
                return current
            except (TypeError, ValueError):
                pass
        bitgen_cls = getattr(np.random, state["bit_generator"])
        fresh = np.random.Generator(bitgen_cls())
        fresh.bit_generator.state = state
        return fresh
    if kind == "seq":
        _, seq_type, items = token
        if (
            isinstance(current, list)
            and seq_type is list
            and len(current) == len(items)
        ):
            for i, item_token in enumerate(items):
                current[i] = _restore_value(current[i], item_token)
            return current
        return seq_type(_restore_value(None, t) for t in items)
    if kind == "map":
        saved = token[1]
        if isinstance(current, dict):
            for stale in [k for k in current if k not in saved]:
                del current[stale]
            for k, t in saved.items():
                current[k] = _restore_value(current.get(k), t)
            return current
        return {k: _restore_value(None, t) for k, t in saved.items()}
    # kind == "obj"
    saved = token[1]
    if current is not None and hasattr(current, "__dict__"):
        _restore_value(current.__dict__, ("map", saved))
        return current
    raise UnpoolableState("object attribute vanished between runs")


def _value_matches(value, token) -> bool:
    """Bit-exact: does ``value`` equal the snapshotted ``token``?

    Conservative — any doubt (NaNs, type drift, unexpected shapes)
    reports False, which classifies the attribute volatile and keeps
    the per-acquire restore.
    """
    kind = token[0]
    if kind == "nd":
        saved = token[1]
        return (
            isinstance(value, np.ndarray)
            and value.shape == saved.shape
            and value.dtype == saved.dtype
            and bool(np.array_equal(value, saved))
        )
    if kind == "val":
        saved = token[1]
        if type(value) is not type(saved):
            return False
        try:
            return bool(value == saved)
        except Exception:
            return False
    if kind == "rng":
        return (
            isinstance(value, np.random.Generator)
            and value.bit_generator.state == token[1]
        )
    if kind == "seq":
        _, seq_type, items = token
        return (
            type(value) is seq_type
            and len(value) == len(items)
            and all(_value_matches(v, t) for v, t in zip(value, items))
        )
    if kind == "map":
        saved = token[1]
        return (
            isinstance(value, dict)
            and value.keys() == saved.keys()
            and all(_value_matches(value[k], t) for k, t in saved.items())
        )
    # kind == "obj"
    saved = token[1]
    inner = getattr(value, "__dict__", None)
    return (
        inner is not None
        and inner.keys() == saved.keys()
        and all(_value_matches(inner[k], t) for k, t in saved.items())
    )


def _token_nbytes(token) -> int:
    kind = token[0]
    if kind == "nd":
        return token[1].nbytes
    if kind in ("val", "rng"):
        return 64
    if kind == "seq":
        return sum(_token_nbytes(t) for t in token[2])
    if kind in ("map", "obj"):
        return sum(_token_nbytes(t) for t in token[1].values())
    return 0


class _PoolEntry:
    __slots__ = ("kernel", "volatile", "delete_names", "nbytes")

    def __init__(
        self, kernel: KernelBase, volatile: dict, delete_names: frozenset[str]
    ) -> None:
        self.kernel = kernel
        #: post-setup tokens for attrs that must be restored per acquire
        self.volatile = volatile
        #: run-created, run-dependent attrs removed on every acquire
        self.delete_names = delete_names
        self.nbytes = sum(_token_nbytes(t) for t in volatile.values())


class KernelStatePool:
    """One live instance + post-``setup()`` snapshot per
    ``(class, problem_size, seed)``, restored between runs."""

    def __init__(self, max_bytes: int | None = None) -> None:
        if max_bytes is None:
            max_bytes = int(
                os.environ.get("REPRO_STATE_POOL_BYTES", _DEFAULT_BUDGET)
            )
        self.max_bytes = max_bytes
        self._entries: OrderedDict[tuple, _PoolEntry] = OrderedDict()
        self._unpoolable: set[type] = set()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.fallbacks = 0

    # ------------------------------------------------------------- public
    def acquire(
        self,
        cls: type[KernelBase],
        problem_size: int | None = None,
        seed: int | None = None,
    ) -> KernelBase:
        """A set-up instance of ``cls``, state restored to post-``setup()``
        (stable attributes are left at their certified fixed point).

        The returned instance is the pool's live object: run it with
        ``run_variant_prepared`` and do not mutate it across a later
        ``acquire`` of the same key (the next acquire restores it).
        Unpoolable classes get a fresh, set-up instance every call.
        """
        if cls in self._unpoolable:
            self.fallbacks += 1
            return self._fresh(cls, problem_size, seed)
        key = (cls, problem_size, seed)
        entry = self._entries.get(key)
        if entry is not None:
            try:
                self._restore_entry(entry)
            except UnpoolableState:
                self._unpoolable.add(cls)
                self._drop(key)
                self.fallbacks += 1
                return self._fresh(cls, problem_size, seed)
            self._entries.move_to_end(key)
            self.hits += 1
            return entry.kernel
        self.misses += 1
        kernel = self._fresh(cls, problem_size, seed)
        try:
            entry = self._build_entry(kernel)
        except UnpoolableState:
            # Certification may have dirtied the instance — hand out a
            # clean one and stop pooling this class.
            self._unpoolable.add(cls)
            self.fallbacks += 1
            return self._fresh(cls, problem_size, seed)
        if entry.nbytes > self.max_bytes:
            # Snapshot alone busts the budget: run unpooled this time.
            return entry.kernel
        self._entries[key] = entry
        self._bytes += entry.nbytes
        while self._bytes > self.max_bytes and len(self._entries) > 1:
            _, evicted = self._entries.popitem(last=False)
            self._bytes -= evicted.nbytes
        return entry.kernel

    def clear(self) -> None:
        self._entries.clear()
        self._bytes = 0

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self._entries),
            "bytes": self._bytes,
            "hits": self.hits,
            "misses": self.misses,
            "fallbacks": self.fallbacks,
        }

    # ------------------------------------------------------------ helpers
    def _drop(self, key: tuple) -> None:
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._bytes -= entry.nbytes

    @staticmethod
    def _restore_entry(entry: _PoolEntry) -> None:
        state = entry.kernel.__dict__
        for name in entry.delete_names:
            state.pop(name, None)
        for name, token in entry.volatile.items():
            state[name] = _restore_value(state.get(name), token)

    def _build_entry(self, kernel: KernelBase) -> _PoolEntry:
        """Snapshot post-``setup()`` state and certify the write-set."""
        snapshot = {
            name: _snapshot_value(value, 0, set())
            for name, value in kernel.__dict__.items()
        }
        stable = self._certify_stable(kernel)
        volatile = {n: t for n, t in snapshot.items() if n not in stable}
        delete_names = frozenset(
            n
            for n in kernel.__dict__
            if n not in snapshot and n not in stable
        )
        entry = _PoolEntry(kernel, volatile, delete_names)
        # Leave the live instance at canonical state: stable attrs sit at
        # their fixed point, volatile ones return to post-setup values.
        self._restore_entry(entry)
        return entry

    @staticmethod
    def _certify_stable(kernel: KernelBase) -> frozenset[str]:
        """Names of attributes certified insensitive to kernel reruns.

        Runs the kernel twice through different engines (Base_Seq, then
        RAJA_Seq when available) and keeps the attributes whose state is
        bit-identical after both runs — a fixed point reached from fresh
        post-``setup()`` state, so their prior content cannot influence
        any later run. Any failure certifies nothing.
        """
        available = {v.name for v in kernel.variants()}
        order = [n for n in ("Base_Seq", "RAJA_Seq") if n in available]
        if not order:
            return frozenset()
        if len(order) == 1:
            order = order * 2
        from repro.suite.variants import get_variant

        try:
            kernel.run_variant_prepared(get_variant(order[0]))
            after_first = {
                name: _snapshot_value(value, 0, set())
                for name, value in kernel.__dict__.items()
            }
            kernel.run_variant_prepared(get_variant(order[1]))
        except UnpoolableState:
            raise
        except Exception:
            return frozenset()
        state = kernel.__dict__
        return frozenset(
            name
            for name, token in after_first.items()
            if name in state and _value_matches(state[name], token)
        )

    @staticmethod
    def _fresh(
        cls: type[KernelBase], problem_size: int | None, seed: int | None
    ) -> KernelBase:
        kwargs = {}
        if seed is not None:
            kwargs["seed"] = seed
        kernel = cls(problem_size=problem_size, **kwargs)
        kernel.ensure_setup()
        return kernel
