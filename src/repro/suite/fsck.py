"""``fsck`` for a campaign output directory.

A campaign that survives crashed workers and SIGINT still leaves one
question open: is what's *on disk* trustworthy? Every ``.cali`` profile
carries an integrity footer (:mod:`repro.caliper.cali`), so damage is
detectable after the fact; this module walks an output directory and
classifies every profile:

``ok``
    Sealed and verified (footer present, length and CRC32 match).
``unsealed``
    Valid pre-footer profile (readable; written before sealing existed).
``truncated``
    The write stopped early — a crash mid-``write_cali`` or a copy that
    lost its tail.
``corrupt``
    The length is right but the bytes are not (bit rot, concurrent
    writers, a bad copy).
``orphaned``
    A well-formed profile the campaign manifest does not know about —
    a leftover from a different sweep or a half-recorded cell; analysis
    over the directory would silently include data the manifest never
    vouched for.

Damaged and orphaned profiles are moved to a ``quarantine/`` subdirectory
(never deleted — forensics first), and damaged cells are demoted in the
manifest so ``--resume`` re-runs exactly them: ``fsck`` + ``run --resume``
heals a damaged campaign.

Packed campaigns are covered too: every entry of the campaign's
``.calipack`` archive(s) — including per-worker segments stranded by a
crash — is verified against the archive index (entry CRC32), then
against its own seal. Damaged or orphaned *entries* are extracted into
``quarantine/`` and the archive is rewritten without them, so the same
``fsck`` + ``run --resume`` healing loop applies.

Sharded campaigns (:mod:`repro.suite.coordinator`) recurse: each
``shards/shard-K/`` directory is itself a complete campaign directory
and gets its own sub-pass (skipped while a live shard holds its lock).
At the campaign level fsck additionally repairs the shard map — an
unreadable ``shard_map.json`` is backed up so the resumed coordinator
repartitions — quarantines shard directories the map does not know
(orphans from an older, wider partition), and sweeps the merge tree's
``.merge-scratch`` intermediates, which are pure derivatives of the
shard archives.

Campaign-service roots (:mod:`repro.service`) are audited too: every
``jobs/<id>.json`` record is seal-verified (damage backed up as
``.bak``), dead scheduler leases and stale takeover tokens swept, and
each job's ``campaigns/<id>/`` directory recursed into as an ordinary
campaign directory — so one ``fsck <root>`` audits the whole service.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass, field
from pathlib import Path

from repro.caliper import calipack
from repro.caliper.cali import (
    STATUS_CORRUPT,
    STATUS_OK,
    STATUS_TRUNCATED,
    STATUS_UNSEALED,
    verify_cali,
)
from repro.suite.manifest import (
    LOCK_NAME,
    MANIFEST_NAME,
    CampaignManifest,
    _pid_alive,
)
from repro.util.fsio import TMP_GLOB, durable_replace, tmp_sibling

#: where fsck moves damaged/orphaned profiles (inside the output dir)
QUARANTINE_DIR = "quarantine"

STATUS_ORPHANED = "orphaned"


@dataclass
class ProfileCheck:
    """One profile's verdict (a loose file or one archive entry)."""

    path: Path
    status: str  # ok | unsealed | truncated | corrupt | orphaned
    detail: str = ""
    cell: str | None = None  # manifest cell key, when the file is known
    archive: Path | None = None  # the .calipack holding this entry, if any
    entry: str | None = None  # the archive entry name, if any

    @property
    def damaged(self) -> bool:
        return self.status in (STATUS_TRUNCATED, STATUS_CORRUPT)

    @property
    def quarantinable(self) -> bool:
        return self.damaged or self.status == STATUS_ORPHANED


@dataclass
class FsckReport:
    """Everything one fsck pass found and did."""

    directory: Path
    checks: list[ProfileCheck] = field(default_factory=list)
    quarantined: list[Path] = field(default_factory=list)
    rerun_cells: list[str] = field(default_factory=list)
    removed_tmp: list[Path] = field(default_factory=list)
    manifest_found: bool = False
    #: sub-passes over ``shards/shard-K/`` campaign directories
    shard_reports: list["FsckReport"] = field(default_factory=list)
    #: campaign-level shard repairs (map backup, orphan dirs, scratch)
    notes: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not any(c.quarantinable for c in self.checks) and all(
            sub.clean for sub in self.shard_reports
        )

    def with_status(self, status: str) -> list[ProfileCheck]:
        return [c for c in self.checks if c.status == status]

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for check in self.checks:
            out[check.status] = out.get(check.status, 0) + 1
        return out

    def summary(self) -> str:
        counts = self.counts()
        order = (
            STATUS_OK,
            STATUS_UNSEALED,
            STATUS_TRUNCATED,
            STATUS_CORRUPT,
            STATUS_ORPHANED,
        )
        parts = [f"{counts[s]} {s}" for s in order if counts.get(s)]
        lines = [
            f"fsck {self.directory}: {len(self.checks)} profile(s): "
            + (", ".join(parts) if parts else "none found")
        ]
        for check in self.checks:
            if check.quarantinable:
                where = f" [{check.cell}]" if check.cell else ""
                detail = f": {check.detail}" if check.detail else ""
                lines.append(
                    f"  {check.status.upper()} {check.path.name}{where}{detail}"
                )
        if self.quarantined:
            lines.append(
                f"  {len(self.quarantined)} file(s) moved to "
                f"{self.directory / QUARANTINE_DIR}"
            )
        if self.removed_tmp:
            lines.append(
                f"  {len(self.removed_tmp)} orphaned tmp file(s) removed"
            )
        if self.rerun_cells:
            lines.append(
                f"  {len(self.rerun_cells)} cell(s) marked for re-run; "
                "heal with: run --resume --output-dir "
                f"{self.directory}"
            )
        if not self.manifest_found:
            lines.append(
                "  no campaign manifest: orphan detection and re-run "
                "marking skipped"
            )
        lines.extend(f"  {note}" for note in self.notes)
        for sub in self.shard_reports:
            lines.extend(
                "  " + line for line in sub.summary().splitlines()
            )
        return "\n".join(lines)


def _cell_by_file(manifest: CampaignManifest) -> dict[str, str]:
    """filename (or archive entry name) -> cell key, from the manifest."""
    out: dict[str, str] = {}
    for key, entry in manifest.cells.items():
        file = entry.get("file")
        if not file:
            continue
        ref = calipack.split_member_ref(file)
        out[ref[1] if ref is not None else Path(file).name] = key
    return out


def fsck_directory(
    output_dir: str | Path,
    quarantine: bool = True,
    mark_rerun: bool = True,
) -> FsckReport:
    """Verify every ``.cali`` profile in a campaign output directory.

    With ``quarantine`` (the default), damaged and orphaned profiles are
    moved to ``<output_dir>/quarantine/``; with ``mark_rerun``, damaged
    cells are demoted in the manifest so ``run --resume`` re-produces
    exactly them. Pass both as False for a read-only audit.
    """
    directory = Path(output_dir)
    report = FsckReport(directory=directory)
    manifest: CampaignManifest | None = None
    known: dict[str, str] = {}
    if (directory / MANIFEST_NAME).exists():
        # fsck audits whatever configuration the manifest records: adopt
        # its own fingerprint so loading (and saving) never warns about a
        # configuration change fsck did not make.
        try:
            recorded = json.loads(
                (directory / MANIFEST_NAME).read_text()
            ).get("fingerprint", {})
        except (OSError, ValueError):
            recorded = {}
        manifest = CampaignManifest.load_or_create(directory, recorded)
        known = _cell_by_file(manifest)
        report.manifest_found = True

    for path in sorted(directory.glob("*.cali")):
        status, detail = verify_cali(path)
        cell = known.get(path.name)
        if status in (STATUS_OK, STATUS_UNSEALED) and manifest is not None and cell is None:
            status, detail = (
                STATUS_ORPHANED,
                "not recorded in the campaign manifest",
            )
        report.checks.append(
            ProfileCheck(path=path, status=status, detail=detail, cell=cell)
        )

    archives = sorted(directory.glob("*" + calipack.ARCHIVE_SUFFIX))
    seg_dir = directory / calipack.SEGMENT_DIR
    if seg_dir.is_dir():
        archives += sorted(seg_dir.glob("*" + calipack.ARCHIVE_SUFFIX))
    for archive in archives:
        _check_archive(archive, manifest, known, report)

    bad = [c for c in report.checks if c.quarantinable]
    if quarantine and bad:
        qdir = directory / QUARANTINE_DIR
        qdir.mkdir(exist_ok=True)
        for check in bad:
            if check.archive is not None:
                continue  # archive entries are extracted per archive below
            target = qdir / check.path.name
            os.replace(check.path, target)
            report.quarantined.append(target)
        for archive in archives:
            entry_checks = [
                c for c in bad if c.archive == archive and c.entry is not None
            ]
            if entry_checks:
                _quarantine_archive_entries(archive, entry_checks, qdir, report)

    if quarantine:
        _sweep_orphan_tmps(directory, report)

    _fsck_shards(directory, quarantine, mark_rerun, report)
    _fsck_jobs(directory, quarantine, mark_rerun, report)

    return _finish(report, manifest, mark_rerun)


def _campaign_is_live(directory: Path) -> bool:
    """Whether a live campaign holds this directory's lock."""
    lock = directory / LOCK_NAME
    try:
        holder = json.loads(lock.read_text())
    except (OSError, ValueError):
        return False
    pid = holder.get("pid") if isinstance(holder, dict) else None
    return _pid_alive(pid) and pid != os.getpid()


def _sweep_orphan_tmps(directory: Path, report: FsckReport) -> None:
    """Delete tmp siblings orphaned by a crash mid-durable-write.

    A ``<name>.<pid>.<n>.tmp`` left behind is dead weight: its payload
    was never renamed into place, so nothing references it, and a tmp is
    re-derived fresh on every write — safe to remove. Compaction scratch
    siblings (``*.compact-scratch``) get the same treatment: an orphan
    scratch means the swap never happened, the original archive is still
    authoritative, and the next compaction rebuilds from it. Skipped
    entirely while a live campaign holds the directory lock, because
    that campaign's in-flight tmps are not orphans.
    """
    from repro.service.retention import COMPACT_SCRATCH_SUFFIX

    if _campaign_is_live(directory):
        return
    roots = [
        directory,
        directory / calipack.SEGMENT_DIR,
        directory / ".ingest_cache",
    ]
    for root in roots:
        if not root.is_dir():
            continue
        for tmp in sorted(root.glob(TMP_GLOB)) + sorted(
            root.glob("*" + COMPACT_SCRATCH_SUFFIX)
        ):
            try:
                tmp.unlink()
            except OSError:  # pragma: no cover - racing cleanup
                continue
            report.removed_tmp.append(tmp)


def _fsck_shards(
    directory: Path,
    quarantine: bool,
    mark_rerun: bool,
    report: FsckReport,
) -> None:
    """Audit and repair the sharded layer of a campaign directory.

    The shard map is loaded through :meth:`ShardMap.load`, which backs
    up an unreadable map (the resumed coordinator repartitions). Shard
    directories the map does not know — leftovers of an older, wider
    partition — are quarantined whole, because the merge would otherwise
    pick up archives no assignment vouches for. Every known shard
    directory is a complete campaign directory and gets a recursive
    sub-pass, except while a live shard supervisor holds its lock.
    """
    # Imported here: the coordinator imports fsck for shard healing.
    from repro.suite.coordinator import MAP_NAME, ShardMap
    from repro.suite.shard import SHARD_DIR, parse_shard_index

    shard_root = directory / SHARD_DIR
    map_path = directory / MAP_NAME
    if not shard_root.is_dir() and not map_path.exists():
        return

    had_map = map_path.exists()
    shard_map = ShardMap.load(directory)
    if had_map and shard_map is None:
        report.notes.append(
            "unreadable shard map backed up; the coordinator "
            "repartitions on resume"
        )

    if shard_root.is_dir():
        for shard_dir in sorted(shard_root.iterdir()):
            if not shard_dir.is_dir():
                continue
            index = parse_shard_index(shard_dir.name)
            orphan = index is None or (
                shard_map is not None and index >= shard_map.shards
            )
            if orphan:
                if quarantine:
                    qdir = directory / QUARANTINE_DIR
                    qdir.mkdir(exist_ok=True)
                    target = qdir / shard_dir.name
                    if target.exists():  # pragma: no cover - repeat fsck
                        shutil.rmtree(target)
                    os.replace(shard_dir, target)
                    report.quarantined.append(target)
                    report.notes.append(
                        f"orphan shard directory {shard_dir.name} "
                        "quarantined (not in the shard map)"
                    )
                else:
                    report.notes.append(
                        f"orphan shard directory {shard_dir.name} "
                        "is not in the shard map"
                    )
                continue
            if _campaign_is_live(shard_dir):
                report.notes.append(
                    f"shard {shard_dir.name} is live; sub-pass skipped"
                )
                continue
            report.shard_reports.append(
                fsck_directory(shard_dir, quarantine, mark_rerun)
            )

    if quarantine and not _campaign_is_live(directory):
        scratch = directory / ".merge-scratch"
        if scratch.is_dir():
            # Merge intermediates are pure derivatives of the shard
            # archives; the resumed merge rebuilds them from scratch.
            shutil.rmtree(scratch, ignore_errors=True)
            report.notes.append("stale merge scratch removed")
        token = directory / (LOCK_NAME + ".takeover")
        try:
            claimant = json.loads(token.read_text()).get("pid")
        except (OSError, ValueError):
            claimant = None
        if token.exists() and not _pid_alive(claimant):
            token.unlink(missing_ok=True)
            report.notes.append("stale lock-takeover token removed")


def _fsck_jobs(
    directory: Path,
    quarantine: bool,
    mark_rerun: bool,
    report: FsckReport,
) -> None:
    """Audit a campaign-service root: job records, leases, campaigns.

    Every ``jobs/<id>.json`` is seal-verified; a damaged record is
    backed up as ``.bak`` (forensics first — scheduler recovery or an
    idempotent resubmit reconstitutes the job). Lease files and takeover
    tokens whose holders are dead are swept, cancel markers orphaned by
    terminal jobs removed, and every job's campaign directory gets the
    same recursive sub-pass shard directories get — except while a live
    job runner holds its campaign lock. Campaign directories no job
    record accounts for are reported: they are exactly the "duplicated
    work" chaos invariant I6 forbids — *unless* a sealed tombstone
    condemns them, in which case the interrupted reclamation is finished
    (quarantine mode) or reported as pending; a damaged tombstone
    condemns nothing and is backed up as forensics.
    """
    from repro.service.jobstore import (
        CANCEL_SUFFIX,
        LEASE_SUFFIX,
        RECORD_SUFFIX,
        JobRecordDamaged,
        JobStore,
        TombstoneDamaged,
        parse_record_text,
        parse_tombstone_text,
    )

    store = JobStore(directory)
    if not store.jobs_dir.is_dir():
        return

    records = {}
    for path in sorted(store.jobs_dir.glob(f"*{RECORD_SUFFIX}")):
        if path.name.endswith(".bak"):
            continue
        job_id = path.name[: -len(RECORD_SUFFIX)]
        try:
            records[job_id] = parse_record_text(path.read_text())
        except (OSError, JobRecordDamaged) as exc:
            if quarantine:
                backup = path.with_suffix(path.suffix + ".bak")
                try:
                    os.replace(path, backup)
                    report.notes.append(
                        f"damaged job record {path.name} backed up as "
                        f"{backup.name} ({exc})"
                    )
                except OSError:  # pragma: no cover - racing writer
                    report.notes.append(
                        f"damaged job record {path.name} left in place "
                        f"(backup failed): {exc}"
                    )
            else:
                report.notes.append(f"damaged job record {path.name}: {exc}")

    # Tombstones: a sealed one is proof of an interrupted reclamation —
    # finish it (the destructive path re-runs retention's own reclaim,
    # which is idempotent). A damaged one condemns nothing.
    condemned: set[str] = set()
    for job_id in sorted(store.list_tombstone_ids()):
        try:
            text = store.tombstone_path(job_id).read_text()
        except OSError:  # pragma: no cover - racing reclaim
            continue
        try:
            parse_tombstone_text(text)
        except TombstoneDamaged as exc:
            if quarantine:
                import warnings as _warnings

                with _warnings.catch_warnings():
                    _warnings.simplefilter("ignore")
                    store.read_tombstone(job_id)  # backs up as .bak
                report.notes.append(
                    f"damaged tombstone for job {job_id} backed up "
                    f"(condemns nothing): {exc}"
                )
            else:
                report.notes.append(
                    f"damaged tombstone for job {job_id}: {exc}"
                )
            continue
        record = records.get(job_id)
        if record is not None and not record.terminal:
            report.notes.append(
                f"tombstone for non-terminal job {job_id} "
                f"(state {record.state}) refused"
                + ("; backed up" if quarantine else "")
            )
            if quarantine:
                path = store.tombstone_path(job_id)
                try:
                    os.replace(path, path.with_suffix(path.suffix + ".bak"))
                except OSError:  # pragma: no cover - racing writer
                    pass
            continue
        condemned.add(job_id)
        if quarantine:
            from repro.service.retention import reclaim

            reclaim(store, job_id)
            records.pop(job_id, None)
            report.notes.append(
                f"interrupted reclamation of job {job_id} completed "
                "(sealed tombstone)"
            )
        else:
            report.notes.append(
                f"job {job_id} is condemned by a sealed tombstone; "
                "reclamation incomplete (gc or fsck repair finishes it)"
            )

    leases = sorted(store.jobs_dir.glob(f"*{LEASE_SUFFIX}")) + sorted(
        store.jobs_dir.glob(f"*{LEASE_SUFFIX}.takeover")
    )
    for lease in leases:
        if lease.name.endswith(".takeover"):
            try:
                claimant = json.loads(lease.read_text()).get("pid")
            except (OSError, ValueError):
                claimant = None
            if not _pid_alive(claimant):
                if quarantine:
                    lease.unlink(missing_ok=True)
                report.notes.append(
                    f"stale lease-takeover token {lease.name} removed"
                    if quarantine
                    else f"stale lease-takeover token {lease.name}"
                )
            continue
        job_id = lease.name[: -len(LEASE_SUFFIX)]
        try:
            holder = json.loads(lease.read_text()).get("pid")
        except (OSError, ValueError):
            holder = None
        if _pid_alive(holder):
            continue
        if quarantine:
            lease.unlink(missing_ok=True)
        report.notes.append(
            f"job {job_id}: scheduler lease holder pid {holder} is dead"
            + ("; lease removed" if quarantine else "")
        )
        record = records.get(job_id)
        if record is not None and record.state == "RUNNING":
            report.notes.append(
                f"job {job_id} is RUNNING with no live scheduler; "
                "recovery will heal it"
            )

    for marker in sorted(store.jobs_dir.glob(f"*{CANCEL_SUFFIX}")):
        job_id = marker.name[: -len(CANCEL_SUFFIX)]
        record = records.get(job_id)
        if record is not None and record.terminal:
            if quarantine:
                marker.unlink(missing_ok=True)
            report.notes.append(
                f"cancel marker for terminal job {job_id}"
                + (" removed" if quarantine else "")
            )

    if store.campaigns_dir.is_dir():
        for campaign in sorted(store.campaigns_dir.iterdir()):
            if not campaign.is_dir():
                continue
            if campaign.name not in records:
                if campaign.name in condemned:
                    # Residue of a reclamation finished above, or one
                    # still pending in report-only mode — accounted for.
                    continue
                report.notes.append(
                    f"campaign directory {campaign.name} has no job "
                    "record (unaccounted work; quarantine manually "
                    "after forensics)"
                )
                continue
            if _campaign_is_live(campaign):
                report.notes.append(
                    f"job campaign {campaign.name} is live; "
                    "sub-pass skipped"
                )
                continue
            report.shard_reports.append(
                fsck_directory(campaign, quarantine, mark_rerun)
            )


def _check_archive(
    archive: Path,
    manifest: CampaignManifest | None,
    known: dict[str, str],
    report: FsckReport,
) -> None:
    """Verify every entry of one ``.calipack`` against index + seal."""
    try:
        entries = calipack.load_entries(archive)
    except (calipack.CalipackError, OSError) as exc:
        report.checks.append(
            ProfileCheck(
                path=archive,
                status=STATUS_CORRUPT,
                detail=f"unreadable archive: {exc}",
            )
        )
        return
    for entry in entries:
        status, detail = calipack.verify_entry(archive, entry)
        cell = known.get(entry.name)
        if (
            status in (STATUS_OK, STATUS_UNSEALED)
            and manifest is not None
            and cell is None
        ):
            status, detail = (
                STATUS_ORPHANED,
                "not recorded in the campaign manifest",
            )
        report.checks.append(
            ProfileCheck(
                path=Path(calipack.member_ref(archive, entry.name)),
                status=status,
                detail=detail,
                cell=cell,
                archive=archive,
                entry=entry.name,
            )
        )


def _quarantine_archive_entries(
    archive: Path,
    checks: list[ProfileCheck],
    qdir: Path,
    report: FsckReport,
) -> None:
    """Extract damaged/orphaned entries to quarantine, rewrite the archive.

    The damaged bytes land in ``quarantine/`` exactly as stored
    (forensics first); the archive is rebuilt without them in a tmp
    sibling and durably replaced, so a crash mid-fsck loses nothing.
    """
    drop = {c.entry for c in checks}
    entries = calipack.load_entries(archive)
    for entry in entries:
        if entry.name not in drop:
            continue
        target = qdir / entry.name
        target.write_bytes(
            calipack.read_entry_bytes(archive, entry, verify=False)
        )
        report.quarantined.append(target)
    tmp = tmp_sibling(archive)
    writer = calipack.CalipackWriter(tmp)
    try:
        for entry in entries:
            if entry.name in drop:
                continue
            writer.append_bytes(
                entry.name,
                calipack.read_entry_bytes(archive, entry, verify=False),
            )
    except BaseException:
        writer.abort()
        tmp.unlink(missing_ok=True)
        raise
    writer.close()
    durable_replace(tmp, archive)


def _finish(
    report: FsckReport,
    manifest: CampaignManifest | None,
    mark_rerun: bool,
) -> FsckReport:
    bad = [c for c in report.checks if c.quarantinable]
    if mark_rerun and manifest is not None:
        for check in bad:
            if check.cell is not None:
                manifest.mark_for_rerun(
                    check.cell, f"{check.status} profile quarantined by fsck"
                )
                report.rerun_cells.append(check.cell)
        if report.rerun_cells:
            manifest.save()

    return report
