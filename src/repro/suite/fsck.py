"""``fsck`` for a campaign output directory.

A campaign that survives crashed workers and SIGINT still leaves one
question open: is what's *on disk* trustworthy? Every ``.cali`` profile
carries an integrity footer (:mod:`repro.caliper.cali`), so damage is
detectable after the fact; this module walks an output directory and
classifies every profile:

``ok``
    Sealed and verified (footer present, length and CRC32 match).
``unsealed``
    Valid pre-footer profile (readable; written before sealing existed).
``truncated``
    The write stopped early — a crash mid-``write_cali`` or a copy that
    lost its tail.
``corrupt``
    The length is right but the bytes are not (bit rot, concurrent
    writers, a bad copy).
``orphaned``
    A well-formed profile the campaign manifest does not know about —
    a leftover from a different sweep or a half-recorded cell; analysis
    over the directory would silently include data the manifest never
    vouched for.

Damaged and orphaned profiles are moved to a ``quarantine/`` subdirectory
(never deleted — forensics first), and damaged cells are demoted in the
manifest so ``--resume`` re-runs exactly them: ``fsck`` + ``run --resume``
heals a damaged campaign.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.caliper.cali import (
    STATUS_CORRUPT,
    STATUS_OK,
    STATUS_TRUNCATED,
    STATUS_UNSEALED,
    verify_cali,
)
from repro.suite.manifest import MANIFEST_NAME, CampaignManifest

#: where fsck moves damaged/orphaned profiles (inside the output dir)
QUARANTINE_DIR = "quarantine"

STATUS_ORPHANED = "orphaned"


@dataclass
class ProfileCheck:
    """One profile's verdict."""

    path: Path
    status: str  # ok | unsealed | truncated | corrupt | orphaned
    detail: str = ""
    cell: str | None = None  # manifest cell key, when the file is known

    @property
    def damaged(self) -> bool:
        return self.status in (STATUS_TRUNCATED, STATUS_CORRUPT)

    @property
    def quarantinable(self) -> bool:
        return self.damaged or self.status == STATUS_ORPHANED


@dataclass
class FsckReport:
    """Everything one fsck pass found and did."""

    directory: Path
    checks: list[ProfileCheck] = field(default_factory=list)
    quarantined: list[Path] = field(default_factory=list)
    rerun_cells: list[str] = field(default_factory=list)
    manifest_found: bool = False

    @property
    def clean(self) -> bool:
        return not any(c.quarantinable for c in self.checks)

    def with_status(self, status: str) -> list[ProfileCheck]:
        return [c for c in self.checks if c.status == status]

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for check in self.checks:
            out[check.status] = out.get(check.status, 0) + 1
        return out

    def summary(self) -> str:
        counts = self.counts()
        order = (
            STATUS_OK,
            STATUS_UNSEALED,
            STATUS_TRUNCATED,
            STATUS_CORRUPT,
            STATUS_ORPHANED,
        )
        parts = [f"{counts[s]} {s}" for s in order if counts.get(s)]
        lines = [
            f"fsck {self.directory}: {len(self.checks)} profile(s): "
            + (", ".join(parts) if parts else "none found")
        ]
        for check in self.checks:
            if check.quarantinable:
                where = f" [{check.cell}]" if check.cell else ""
                detail = f": {check.detail}" if check.detail else ""
                lines.append(
                    f"  {check.status.upper()} {check.path.name}{where}{detail}"
                )
        if self.quarantined:
            lines.append(
                f"  {len(self.quarantined)} file(s) moved to "
                f"{self.directory / QUARANTINE_DIR}"
            )
        if self.rerun_cells:
            lines.append(
                f"  {len(self.rerun_cells)} cell(s) marked for re-run; "
                "heal with: run --resume --output-dir "
                f"{self.directory}"
            )
        if not self.manifest_found:
            lines.append(
                "  no campaign manifest: orphan detection and re-run "
                "marking skipped"
            )
        return "\n".join(lines)


def _cell_by_file(manifest: CampaignManifest) -> dict[str, str]:
    """filename -> cell key, from the manifest's recorded files."""
    out: dict[str, str] = {}
    for key, entry in manifest.cells.items():
        file = entry.get("file")
        if file:
            out[Path(file).name] = key
    return out


def fsck_directory(
    output_dir: str | Path,
    quarantine: bool = True,
    mark_rerun: bool = True,
) -> FsckReport:
    """Verify every ``.cali`` profile in a campaign output directory.

    With ``quarantine`` (the default), damaged and orphaned profiles are
    moved to ``<output_dir>/quarantine/``; with ``mark_rerun``, damaged
    cells are demoted in the manifest so ``run --resume`` re-produces
    exactly them. Pass both as False for a read-only audit.
    """
    directory = Path(output_dir)
    report = FsckReport(directory=directory)
    manifest: CampaignManifest | None = None
    known: dict[str, str] = {}
    if (directory / MANIFEST_NAME).exists():
        # fsck audits whatever configuration the manifest records: adopt
        # its own fingerprint so loading (and saving) never warns about a
        # configuration change fsck did not make.
        try:
            recorded = json.loads(
                (directory / MANIFEST_NAME).read_text()
            ).get("fingerprint", {})
        except (OSError, ValueError):
            recorded = {}
        manifest = CampaignManifest.load_or_create(directory, recorded)
        known = _cell_by_file(manifest)
        report.manifest_found = True

    for path in sorted(directory.glob("*.cali")):
        status, detail = verify_cali(path)
        cell = known.get(path.name)
        if status in (STATUS_OK, STATUS_UNSEALED) and manifest is not None and cell is None:
            status, detail = (
                STATUS_ORPHANED,
                "not recorded in the campaign manifest",
            )
        report.checks.append(
            ProfileCheck(path=path, status=status, detail=detail, cell=cell)
        )

    bad = [c for c in report.checks if c.quarantinable]
    if quarantine and bad:
        qdir = directory / QUARANTINE_DIR
        qdir.mkdir(exist_ok=True)
        for check in bad:
            target = qdir / check.path.name
            os.replace(check.path, target)
            report.quarantined.append(target)

    if mark_rerun and manifest is not None:
        for check in bad:
            if check.cell is not None:
                manifest.mark_for_rerun(
                    check.cell, f"{check.status} profile quarantined by fsck"
                )
                report.rerun_cells.append(check.cell)
        if report.rerun_cells:
            manifest.save()

    return report
