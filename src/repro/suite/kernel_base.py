"""The kernel base class.

Every RAJAPerf kernel in this reproduction derives from
:class:`KernelBase` and provides:

* **identity** — name, group, complexity, features, supported backends
  (Table I's row);
* **analytic metrics** — bytes read/written and FLOPs per repetition as
  functions of problem size (Section II-B), from which the
  :class:`~repro.perfmodel.WorkProfile` is assembled;
* **traits** — the efficiency vector consumed by the performance model;
* **implementations** — ``run_base`` (direct vectorized NumPy, standing in
  for the hand-written programming-model variant) and ``run_raja``
  (written against :mod:`repro.rajasim`); both must produce the same
  checksum, which :meth:`verify_variants` asserts exactly as RAJAPerf's
  checksum machinery does.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.machines.model import MachineModel
from repro.perfmodel.timing import TimeBreakdown, predict_time
from repro.perfmodel.traits import KernelTraits
from repro.perfmodel.work import WorkProfile
from repro.rajasim.policies import Backend, ExecPolicy
from repro.suite.checksum import checksums_match
from repro.suite.features import Complexity, Feature
from repro.suite.groups import Group
from repro.suite.variants import ALL_BACKENDS, Variant, VariantKind


class KernelBase:
    """Base class for all suite kernels. Subclasses set the class attributes
    and implement ``setup``/``run_base``/``run_raja``/``checksum``."""

    #: Kernel name without the group prefix, e.g. ``"TRIAD"``.
    NAME: str = ""
    GROUP: Group = Group.BASIC
    COMPLEXITY: Complexity = Complexity.N
    FEATURES: frozenset[Feature] = frozenset({Feature.FORALL})
    #: Backends with Base+RAJA implementations (Table I's checkmarks).
    BACKENDS: tuple[Backend, ...] = ALL_BACKENDS
    #: Whether a Kokkos variant exists (enumerated, not analyzed).
    HAS_KOKKOS: bool = False
    #: RAJAPerf-style default problem size; runs may override.
    DEFAULT_PROBLEM_SIZE: int = 1_000_000
    DEFAULT_REPS: int = 50
    #: Scalar instructions per iteration; ``None`` uses the WorkProfile
    #: heuristic (FLOPs + 2/word + 2 loop overhead).
    INSTR_PER_ITER: float | None = None

    def __init__(self, problem_size: int | str | None = None, seed: int = 4793) -> None:
        from repro.util.units import parse_size

        size = (
            self.DEFAULT_PROBLEM_SIZE
            if problem_size is None
            else parse_size(problem_size)
        )
        if size <= 0:
            raise ValueError(f"problem_size must be > 0, got {size}")
        self.problem_size = size
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self._is_setup = False

    # ------------------------------------------------------------ identity
    @property
    def full_name(self) -> str:
        """Group-qualified name as the paper prints it, e.g. ``Stream_TRIAD``."""
        return f"{self.GROUP.value}_{self.NAME}"

    @classmethod
    def class_full_name(cls) -> str:
        return f"{cls.GROUP.value}_{cls.NAME}"

    @classmethod
    def class_variants(cls) -> tuple[Variant, ...]:
        """All variants this kernel provides, without instantiating it.

        Variant availability is class-level data (``BACKENDS`` and
        ``HAS_KOKKOS``), so sweep drivers probing "does this kernel have
        variant X?" must not pay for a kernel allocation per probe. The
        result is cached per class.
        """
        cached = cls.__dict__.get("_VARIANTS_CACHE")
        if cached is not None:
            return cached
        out = []
        for backend in cls.BACKENDS:
            out.append(Variant(VariantKind.BASE, backend))
            out.append(Variant(VariantKind.RAJA, backend))
        if cls.HAS_KOKKOS:
            out.append(Variant(VariantKind.KOKKOS, Backend.SEQUENTIAL))
        cls._VARIANTS_CACHE = tuple(out)
        return cls._VARIANTS_CACHE

    def variants(self) -> tuple[Variant, ...]:
        """All variants this kernel provides."""
        return type(self).class_variants()

    def supports(self, variant: Variant) -> bool:
        return variant in self.variants()

    # ------------------------------------------------- analytic metrics
    def iterations(self) -> float:
        """Loop iterations per repetition (defaults to the problem size)."""
        return float(self.problem_size)

    def bytes_read(self) -> float:
        raise NotImplementedError

    def bytes_written(self) -> float:
        raise NotImplementedError

    def flops(self) -> float:
        raise NotImplementedError

    def atomics(self) -> float:
        """Atomic operations per repetition."""
        return 0.0

    def launches_per_rep(self) -> float:
        """Kernel launches (GPU grids / parallel regions) per repetition."""
        return 1.0

    def mpi_messages(self) -> float:
        return 0.0

    def mpi_bytes(self) -> float:
        return 0.0

    def traits(self) -> KernelTraits:
        """Hand-written efficiency characteristics for the performance model."""
        raise NotImplementedError

    def effective_traits(self) -> KernelTraits:
        """Traits with the calibration overlay applied.

        The overlay (:mod:`repro.perfmodel.calibrated`) holds per-kernel
        trait refinements fitted offline against the paper's published
        numbers (TMA cluster centers, Section V speedup facts); see
        ``tools/fit_traits.py``. Kernels without an overlay entry use
        their hand-written traits unchanged.
        """
        from dataclasses import replace

        from repro.perfmodel.calibrated import TRAIT_CALIBRATION

        base = self.traits()
        overlay = TRAIT_CALIBRATION.get(self.full_name)
        if not overlay:
            return base
        merged = dict(overlay)
        if "gpu_eff_overrides" in merged:
            combined = dict(base.gpu_eff_overrides)
            combined.update(merged["gpu_eff_overrides"])
            merged["gpu_eff_overrides"] = combined
        return replace(base, **merged)

    def work_profile(self, reps: int = 1) -> WorkProfile:
        """Node-level work totals for ``reps`` repetitions."""
        if reps <= 0:
            raise ValueError(f"reps must be > 0, got {reps}")
        iters = self.iterations()
        instructions = (
            self.INSTR_PER_ITER * iters if self.INSTR_PER_ITER is not None else 0.0
        )
        profile = WorkProfile(
            iterations=iters,
            bytes_read=float(self.bytes_read()),
            bytes_written=float(self.bytes_written()),
            flops=float(self.flops()),
            instructions=instructions,
            atomics=float(self.atomics()),
            launches=float(self.launches_per_rep()),
            mpi_messages=float(self.mpi_messages()),
            mpi_bytes=float(self.mpi_bytes()),
        )
        return profile.scaled(float(reps)) if reps != 1 else profile

    def analytic_metrics(self) -> dict[str, float]:
        """Fig. 1's per-iteration analytic metrics."""
        return self.work_profile().per_iteration()

    # ------------------------------------------------------- prediction
    def predict(
        self,
        machine: MachineModel,
        variant: Variant | None = None,
        block_size: int | None = None,
    ) -> TimeBreakdown:
        """Predicted node-level time for one repetition on ``machine``.

        ``block_size`` applies the GPU tuning's occupancy derate.
        """
        from repro.rajasim.policies import Backend as _Backend

        is_raja = variant.is_raja if variant is not None else True
        omp_regions = (
            self.launches_per_rep()
            if variant is not None and variant.backend is _Backend.OPENMP
            else 0.0
        )
        return predict_time(
            self.work_profile(),
            self.effective_traits(),
            machine,
            is_raja=is_raja,
            block_size=block_size,
            omp_regions=omp_regions,
        )

    # -------------------------------------------------------- execution
    def setup(self) -> None:
        """Allocate and initialize the kernel's data (idempotent entry)."""
        raise NotImplementedError

    def ensure_setup(self) -> None:
        if not self._is_setup:
            self.rng = np.random.default_rng(self.seed)
            self.setup()
            self._is_setup = True

    def reset(self) -> None:
        """Force re-initialization before the next run."""
        self._is_setup = False

    def run_base(self, policy: ExecPolicy) -> None:
        """The Base variant: direct vectorized implementation."""
        raise NotImplementedError

    def run_raja(self, policy: ExecPolicy) -> None:
        """The RAJA variant: written against :mod:`repro.rajasim`."""
        raise NotImplementedError

    def checksum(self) -> float:
        """Position-weighted checksum over the kernel's outputs."""
        raise NotImplementedError

    def run_variant_prepared(
        self, variant: Variant, policy: ExecPolicy | None = None
    ) -> float:
        """Run one repetition of ``variant`` against *already prepared*
        state, return its checksum.

        The caller owns setup: either :meth:`ensure_setup` ran on this
        instance, or a :class:`~repro.suite.state_pool.KernelStatePool`
        restored a post-``setup()`` snapshot into it. This is the timed
        hot path — it performs no allocation or RNG work of its own.
        """
        if not self.supports(variant):
            raise ValueError(f"{self.full_name} has no variant {variant.name}")
        if not self._is_setup:
            raise RuntimeError(
                f"{self.full_name}: run_variant_prepared() before setup — "
                "call ensure_setup() or acquire via KernelStatePool"
            )
        policy = policy if policy is not None else variant.policy()
        if variant.kind in (VariantKind.RAJA, VariantKind.KOKKOS):
            self.run_raja(policy)
        else:
            self.run_base(policy)
        return self.checksum()

    def run_variant(self, variant: Variant, policy: ExecPolicy | None = None) -> float:
        """Reset, run one repetition of ``variant``, return its checksum."""
        if not self.supports(variant):
            raise ValueError(f"{self.full_name} has no variant {variant.name}")
        self.reset()
        self.ensure_setup()
        return self.run_variant_prepared(variant, policy)

    def verify_variants(self, variants: Sequence[Variant] | None = None) -> dict[str, float]:
        """Run the given (default: all) variants; assert checksum agreement.

        Returns the per-variant checksums. Raises ``AssertionError`` on the
        first mismatch, mirroring RAJAPerf's checksum reports.
        """
        to_run = list(variants) if variants is not None else list(self.variants())
        results: dict[str, float] = {}
        reference: float | None = None
        ref_name = ""
        for variant in to_run:
            value = self.run_variant(variant)
            results[variant.name] = value
            if reference is None:
                reference, ref_name = value, variant.name
            elif not checksums_match(reference, value):
                raise AssertionError(
                    f"{self.full_name}: checksum mismatch {ref_name}="
                    f"{reference!r} vs {variant.name}={value!r}"
                )
        return results

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.full_name} n={self.problem_size}>"
