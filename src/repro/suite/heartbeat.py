"""Worker liveness: heartbeat emission and staleness detection.

A supervised campaign worker can die two ways: *loudly* (the process
exits — a segfault equivalent) or *quietly* (the process is alive but
wedged — a driver hang, an NFS stall). Process exit is visible to the
supervisor directly; quiet death is only visible through missed
heartbeats. Each worker runs a daemon :class:`HeartbeatEmitter` thread
that puts ``(worker_id, seq)`` beats on a shared queue on a fixed
cadence; the supervisor's :class:`HeartbeatMonitor` stamps arrivals with
its *own* clock (worker clocks are never trusted) and reports workers
whose last beat is older than the deadline.

The emitter beats even while the worker's main thread is busy in a
kernel, so a long cell is not mistaken for a hang — only a genuinely
wedged or suspended process (or one whose ``STALE_HEARTBEAT`` fault
suppressed the emitter) goes stale.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable


class HeartbeatEmitter:
    """Daemon thread that beats ``(worker_id, seq)`` onto ``queue``.

    ``suppress()`` stops beats without stopping the thread — the hook
    the ``STALE_HEARTBEAT`` fault uses to simulate a wedged worker.
    """

    def __init__(self, worker_id: int, queue, interval: float) -> None:
        if interval <= 0:
            raise ValueError(f"heartbeat interval must be > 0, got {interval}")
        self.worker_id = worker_id
        self.queue = queue
        self.interval = interval
        self._stop = threading.Event()
        self._suppressed = threading.Event()
        self._seq = 0
        self._thread = threading.Thread(
            target=self._run, name=f"heartbeat-{worker_id}", daemon=True
        )

    def start(self) -> None:
        self._beat()  # immediate first beat: announce liveness at startup
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self._beat()

    def _beat(self) -> None:
        if self._suppressed.is_set():
            return
        self._seq += 1
        try:
            self.queue.put((self.worker_id, self._seq))
        except (OSError, ValueError):  # queue closed during shutdown
            self._stop.set()

    def suppress(self) -> None:
        """Stop emitting (the worker now *looks* wedged to the supervisor)."""
        self._suppressed.set()

    def stop(self) -> None:
        self._stop.set()


class HeartbeatMonitor:
    """Supervisor-side staleness tracker.

    Arrival times come from the monitor's own ``clock`` — a worker's
    notion of time never enters the deadline arithmetic, so clock skew
    or a worker lying about timestamps cannot mask a hang.
    """

    def __init__(
        self, timeout: float, clock: Callable[[], float] = time.monotonic
    ) -> None:
        if timeout <= 0:
            raise ValueError(f"heartbeat timeout must be > 0, got {timeout}")
        self.timeout = timeout
        self.clock = clock
        self._last_seen: dict[int, float] = {}

    def register(self, worker_id: int) -> None:
        """Start tracking a worker; registration counts as a beat."""
        self._last_seen[worker_id] = self.clock()

    def beat(self, worker_id: int) -> None:
        self._last_seen[worker_id] = self.clock()

    def forget(self, worker_id: int) -> None:
        self._last_seen.pop(worker_id, None)

    def last_seen(self, worker_id: int) -> float | None:
        return self._last_seen.get(worker_id)

    def is_stale(self, worker_id: int) -> bool:
        last = self._last_seen.get(worker_id)
        if last is None:
            return False
        return (self.clock() - last) > self.timeout

    def stale_workers(self) -> list[int]:
        now = self.clock()
        return [
            wid
            for wid, last in self._last_seen.items()
            if (now - last) > self.timeout
        ]
