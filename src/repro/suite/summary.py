"""Programmatic suite summaries (Table I as data, not text).

``suite_inventory`` returns the kernel inventory as a
:class:`~repro.dataframe.Frame` for users who want to slice it; the text
Table I (`repro.reporting.tables.table1`) renders the same information.
"""

from __future__ import annotations

from repro.dataframe import Frame
from repro.suite.registry import all_kernel_classes
from repro.suite.run_params import PAPER_PROBLEM_SIZE


def suite_inventory(problem_size: int = PAPER_PROBLEM_SIZE) -> Frame:
    """One row per kernel: identity, variant counts, analytic metrics."""
    records = []
    for cls in all_kernel_classes():
        kernel = cls(problem_size=problem_size)
        metrics = kernel.analytic_metrics()
        records.append(
            {
                "kernel": kernel.full_name,
                "name": cls.NAME,
                "group": cls.GROUP.value,
                "complexity": cls.COMPLEXITY.value,
                "features": ",".join(sorted(f.value for f in cls.FEATURES)),
                "num_variants": len(kernel.variants()),
                "has_kokkos": int(cls.HAS_KOKKOS),
                "bytes_read_per_iter": metrics["bytes_read"],
                "bytes_written_per_iter": metrics["bytes_written"],
                "flops_per_iter": metrics["flops"],
                "flops_per_byte": metrics["flops_per_byte"],
            }
        )
    return Frame.from_records(records)


def group_summary(problem_size: int = PAPER_PROBLEM_SIZE) -> Frame:
    """Per-group rollup: kernel counts and mean arithmetic intensity."""
    inventory = suite_inventory(problem_size)
    return inventory.groupby("group").agg(
        {
            "kernel": "count",
            "flops_per_byte": "mean",
            "num_variants": "mean",
        }
    )
