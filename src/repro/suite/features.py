"""Kernel feature annotations and computational-complexity classes.

Table I annotates each kernel with the RAJA features it exercises (sorts,
scans, reductions, atomics, views) and its computational complexity
relative to problem size. Complexity drives the Section IV exclusion rule:
kernels whose work does not scale linearly with the per-process problem
size are excluded from the similarity analysis because the MPI
decomposition gives them incomparable work across machines.
"""

from __future__ import annotations

import enum
import math


class Feature(enum.Enum):
    """RAJA features a kernel exercises (Table I columns)."""

    FORALL = "Forall"
    KERNEL = "Kernel"  # nested-loop RAJA::kernel dispatch
    SORT = "Sorts"
    SCAN = "Scans"
    REDUCTION = "Reducts"
    ATOMIC = "Atomics"
    VIEW = "Views"
    WORKGROUP = "Workgroup"  # fused work items (Comm *_FUSED kernels)
    LAUNCH = "Launch"  # RAJA::launch team/thread model


class Complexity(enum.Enum):
    """Operation count as a function of stored problem size n (Table I)."""

    N = "n"
    N_LOG_N = "n lg n"
    N_3_2 = "n^(3/2)"  # e.g. matrix multiply relative to matrix storage
    N_2_3 = "n^(2/3)"  # surface work, e.g. halo exchange

    def operations(self, n: float) -> float:
        """Evaluate the complexity function at problem size ``n``."""
        if n < 0:
            raise ValueError(f"negative problem size: {n}")
        if self is Complexity.N:
            return n
        if self is Complexity.N_LOG_N:
            return n * math.log2(n) if n > 1 else n
        if self is Complexity.N_3_2:
            return n**1.5
        return n ** (2.0 / 3.0)

    @property
    def is_linear(self) -> bool:
        """True when the kernel's work scales linearly with problem size —
        the admission criterion of the Section IV similarity analysis."""
        return self is Complexity.N
