"""The executor's structured error taxonomy.

One failed kernel must not kill an hours-long sweep, so every failure
mode the campaign runner handles is a distinct exception carrying the
run site (kernel, variant, trial). All inherit :class:`SuiteError`; the
executor treats every taxonomy member as potentially transient and
retries it with backoff before declaring the kernel failed.
"""

from __future__ import annotations


class SuiteError(RuntimeError):
    """Base class for structured campaign-runner failures."""


class KernelExecutionError(SuiteError):
    """A kernel raised during model evaluation or real execution."""

    def __init__(self, kernel: str, variant: str, trial: int, cause: BaseException):
        super().__init__(
            f"{kernel}/{variant}/trial{trial}: "
            f"{type(cause).__name__}: {cause}"
        )
        self.kernel = kernel
        self.variant = variant
        self.trial = trial
        self.cause = cause


class ChecksumMismatchError(SuiteError):
    """An executed variant's checksum disagrees with the Base_Seq reference."""

    def __init__(
        self, kernel: str, variant: str, trial: int, expected: float, actual: float
    ):
        super().__init__(
            f"{kernel}/{variant}/trial{trial}: checksum mismatch "
            f"(Base_Seq reference {expected!r}, got {actual!r})"
        )
        self.kernel = kernel
        self.variant = variant
        self.trial = trial
        self.expected = expected
        self.actual = actual


class RunTimeoutError(SuiteError):
    """A kernel exceeded its per-kernel deadline (the watchdog tripped)."""

    def __init__(
        self, kernel: str, variant: str, trial: int, elapsed: float, deadline: float
    ):
        super().__init__(
            f"{kernel}/{variant}/trial{trial}: exceeded deadline "
            f"({elapsed:.3f}s > {deadline:.3f}s)"
        )
        self.kernel = kernel
        self.variant = variant
        self.trial = trial
        self.elapsed = elapsed
        self.deadline = deadline


class ProfileWriteError(SuiteError):
    """Writing a ``.cali`` profile (or the manifest) to disk failed."""

    def __init__(self, path: str, cause: BaseException):
        super().__init__(f"cannot write {path}: {cause}")
        self.path = str(path)
        self.cause = cause


class CampaignLockedError(SuiteError):
    """Another live campaign holds the output directory's manifest lock."""

    def __init__(self, lock_path: str, holder_pid: int | None, since: str | None):
        holder = f"pid {holder_pid}" if holder_pid else "an unknown process"
        when = f" since {since}" if since else ""
        super().__init__(
            f"campaign output directory is locked by {holder}{when} "
            f"({lock_path}); two campaigns must not share a manifest — "
            f"wait for it to finish, use a different --output-dir, or "
            f"delete the lock file if you are sure the holder is gone"
        )
        self.lock_path = str(lock_path)
        self.holder_pid = holder_pid
        self.since = since


class WorkerCrashError(SuiteError):
    """A supervised campaign worker died (crash or stale heartbeat)."""

    def __init__(self, cell: str, attempt: int, reason: str):
        super().__init__(
            f"worker running cell {cell} died on attempt {attempt}: {reason}"
        )
        self.cell = cell
        self.attempt = attempt
        self.reason = reason


#: Every taxonomy member the retry loop considers possibly-transient.
RETRYABLE_ERRORS: tuple[type[SuiteError], ...] = (
    KernelExecutionError,
    ChecksumMismatchError,
    RunTimeoutError,
    ProfileWriteError,
)
