"""RAJAPerf-style checksums.

Every kernel variant must compute the same answer; RAJAPerf verifies this
with a position-weighted checksum over the kernel's output arrays. The
weighting catches permutation errors a plain sum would miss.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

#: Relative tolerance for cross-variant checksum agreement. Variants
#: reassociate floating-point reductions, so exact equality is too strict.
CHECKSUM_RTOL = 1e-10

#: Read-only weight vectors by length. Checksums run once per executed
#: cell over the same few array lengths, so the ``arange`` allocation is
#: pure hot-path overhead; the cached vector produces bit-identical dots.
_WEIGHT_CACHE: OrderedDict[int, np.ndarray] = OrderedDict()
_WEIGHT_CACHE_MAX = 32


def _weights(size: int) -> np.ndarray:
    cached = _WEIGHT_CACHE.get(size)
    if cached is not None:
        _WEIGHT_CACHE.move_to_end(size)
        return cached
    weights = np.arange(1, size + 1, dtype=np.float64)
    weights.flags.writeable = False
    _WEIGHT_CACHE[size] = weights
    while len(_WEIGHT_CACHE) > _WEIGHT_CACHE_MAX:
        _WEIGHT_CACHE.popitem(last=False)
    return weights


def checksum_array(data: np.ndarray, scale: float | None = None) -> float:
    """Position-weighted checksum: ``sum((i+1) * data[i]) * scale``.

    ``scale`` defaults to ``1/len(data)`` to keep magnitudes comparable
    across problem sizes (RAJAPerf's convention).
    """
    arr = np.asarray(data, dtype=np.float64).ravel()
    if arr.size == 0:
        return 0.0
    if scale is None:
        scale = 1.0 / arr.size
    return float(np.dot(_weights(arr.size), arr) * scale)


def checksums_match(a: float, b: float, rtol: float = CHECKSUM_RTOL) -> bool:
    """True when two variant checksums agree within tolerance."""
    if a == b:
        return True
    denom = max(abs(a), abs(b), 1e-300)
    return abs(a - b) / denom <= rtol
