"""RAJAPerf-style checksums.

Every kernel variant must compute the same answer; RAJAPerf verifies this
with a position-weighted checksum over the kernel's output arrays. The
weighting catches permutation errors a plain sum would miss.
"""

from __future__ import annotations

import numpy as np

#: Relative tolerance for cross-variant checksum agreement. Variants
#: reassociate floating-point reductions, so exact equality is too strict.
CHECKSUM_RTOL = 1e-10


def checksum_array(data: np.ndarray, scale: float | None = None) -> float:
    """Position-weighted checksum: ``sum((i+1) * data[i]) * scale``.

    ``scale`` defaults to ``1/len(data)`` to keep magnitudes comparable
    across problem sizes (RAJAPerf's convention).
    """
    arr = np.asarray(data, dtype=np.float64).ravel()
    if arr.size == 0:
        return 0.0
    if scale is None:
        scale = 1.0 / arr.size
    weights = np.arange(1, arr.size + 1, dtype=np.float64)
    return float(np.dot(weights, arr) * scale)


def checksums_match(a: float, b: float, rtol: float = CHECKSUM_RTOL) -> bool:
    """True when two variant checksums agree within tolerance."""
    if a == b:
        return True
    denom = max(abs(a), abs(b), 1e-300)
    return abs(a - b) / denom <= rtol
