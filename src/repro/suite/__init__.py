"""The RAJAPerf-style kernel suite core.

Public surface: kernel identity enums (:class:`Group`, :class:`Feature`,
:class:`Complexity`), the :class:`Variant` model, :class:`KernelBase`, the
registry, run parameters (including the paper's Table III configuration),
and the :class:`SuiteExecutor` that turns a configured sweep into Caliper
profiles.
"""

from repro.suite.groups import Group
from repro.suite.features import Complexity, Feature
from repro.suite.variants import (
    VARIANTS,
    Variant,
    VariantKind,
    get_variant,
    variants_for_backends,
)
from repro.suite.checksum import CHECKSUM_RTOL, checksum_array, checksums_match
from repro.suite.kernel_base import KernelBase
from repro.suite.registry import (
    all_kernel_classes,
    get_kernel_class,
    kernel_names,
    kernels_in_group,
    load_all_kernels,
    make_kernel,
    register_kernel,
    similarity_kernel_classes,
)
from repro.suite.run_params import (
    PAPER_PROBLEM_SIZE,
    TABLE3,
    MachineRunConfig,
    RunParams,
)
from repro.suite.errors import (
    CampaignLockedError,
    ChecksumMismatchError,
    KernelExecutionError,
    ProfileWriteError,
    RETRYABLE_ERRORS,
    RunTimeoutError,
    SuiteError,
    WorkerCrashError,
)
from repro.suite.retry import RetryPolicy
from repro.suite.report import KernelRunRecord, RunReport, cell_key
from repro.suite.manifest import LOCK_NAME, MANIFEST_NAME, CampaignLock, CampaignManifest
from repro.suite.executor import CellOutcome, RunResult, SuiteExecutor
from repro.suite.fsck import FsckReport, ProfileCheck, fsck_directory
from repro.suite.heartbeat import HeartbeatEmitter, HeartbeatMonitor
from repro.suite.costmodel import CellCostModel, load_measured_costs
from repro.suite.schedule import (
    SCHEDULE_FIFO,
    SCHEDULE_LPT,
    SCHEDULES,
    ReadyHeap,
    lpt_partition_keys,
    order_lpt,
    plan_batch,
)
from repro.suite.shm_transport import ShmRing, create_ring
from repro.suite.supervisor import CampaignSupervisor
from repro.suite.worker import (
    WORKER_CRASH_EXITCODE,
    CellBatch,
    CellResult,
    CellTask,
)
from repro.suite.summary import group_summary, suite_inventory

__all__ = [
    "Group",
    "Feature",
    "Complexity",
    "Variant",
    "VariantKind",
    "VARIANTS",
    "get_variant",
    "variants_for_backends",
    "checksum_array",
    "checksums_match",
    "CHECKSUM_RTOL",
    "KernelBase",
    "register_kernel",
    "kernel_names",
    "get_kernel_class",
    "make_kernel",
    "all_kernel_classes",
    "kernels_in_group",
    "load_all_kernels",
    "similarity_kernel_classes",
    "RunParams",
    "MachineRunConfig",
    "TABLE3",
    "PAPER_PROBLEM_SIZE",
    "RunResult",
    "SuiteExecutor",
    "suite_inventory",
    "group_summary",
    "SuiteError",
    "KernelExecutionError",
    "ChecksumMismatchError",
    "RunTimeoutError",
    "ProfileWriteError",
    "RETRYABLE_ERRORS",
    "RetryPolicy",
    "RunReport",
    "KernelRunRecord",
    "cell_key",
    "CampaignManifest",
    "CampaignLock",
    "CampaignLockedError",
    "CampaignSupervisor",
    "CellOutcome",
    "CellResult",
    "CellTask",
    "FsckReport",
    "fsck_directory",
    "HeartbeatEmitter",
    "HeartbeatMonitor",
    "ProfileCheck",
    "LOCK_NAME",
    "MANIFEST_NAME",
    "WORKER_CRASH_EXITCODE",
    "WorkerCrashError",
    "CellCostModel",
    "load_measured_costs",
    "SCHEDULE_FIFO",
    "SCHEDULE_LPT",
    "SCHEDULES",
    "ReadyHeap",
    "order_lpt",
    "lpt_partition_keys",
    "plan_batch",
    "CellBatch",
    "ShmRing",
    "create_ring",
]
