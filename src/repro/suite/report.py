"""Per-run status reporting for a campaign sweep.

The executor records one :class:`KernelRunRecord` per (kernel, cell)
with its outcome — ``ok`` on the first attempt, ``retried`` when a
transient fault was absorbed, ``failed`` when attempts ran out — plus a
per-cell status map (``skipped`` marks cells a resumed campaign did not
re-run). The report rides on :class:`~repro.suite.executor.RunResult` so
callers can tell a clean sweep from a degraded one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

STATUS_OK = "ok"
STATUS_RETRIED = "retried"
STATUS_FAILED = "failed"
STATUS_SKIPPED = "skipped"

ALL_STATUSES = (STATUS_OK, STATUS_RETRIED, STATUS_FAILED, STATUS_SKIPPED)


@dataclass
class KernelRunRecord:
    """Outcome of one kernel inside one campaign cell."""

    kernel: str
    machine: str
    variant: str
    tuning: str
    trial: int
    status: str = STATUS_OK
    attempts: int = 1
    error: str | None = None
    checksum_ok: bool | None = None

    @property
    def cell(self) -> str:
        return cell_key(self.machine, self.variant, self.tuning, self.trial)


def cell_key(machine: str, variant: str, tuning: str, trial: int) -> str:
    """Canonical manifest/report key for one campaign cell."""
    return f"{machine}|{variant}|{tuning}|trial{trial}"


@dataclass
class RunReport:
    """All per-kernel outcomes of one executor invocation."""

    records: list[KernelRunRecord] = field(default_factory=list)
    #: cell key -> ok | failed | skipped
    cells: dict[str, str] = field(default_factory=dict)
    #: a SIGINT/SIGTERM drained the campaign before every cell ran
    interrupted: bool = False

    def add(self, record: KernelRunRecord) -> None:
        self.records.append(record)

    def mark_cell(self, key: str, status: str) -> None:
        if status not in ALL_STATUSES:
            raise ValueError(f"unknown cell status {status!r}")
        self.cells[key] = status

    # ------------------------------------------------------------ queries
    def counts(self) -> dict[str, int]:
        """Per-kernel status -> count (statuses with zero hits omitted)."""
        out: dict[str, int] = {}
        for record in self.records:
            out[record.status] = out.get(record.status, 0) + 1
        return out

    def cell_counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for status in self.cells.values():
            out[status] = out.get(status, 0) + 1
        return out

    def with_status(self, status: str) -> list[KernelRunRecord]:
        return [r for r in self.records if r.status == status]

    @property
    def retried(self) -> list[KernelRunRecord]:
        return self.with_status(STATUS_RETRIED)

    @property
    def failed(self) -> list[KernelRunRecord]:
        return self.with_status(STATUS_FAILED)

    def checksum_mismatches(self) -> list[KernelRunRecord]:
        return [r for r in self.records if r.checksum_ok is False]

    def failed_cells(self) -> list[str]:
        return [key for key, status in self.cells.items() if status == STATUS_FAILED]

    @property
    def clean(self) -> bool:
        """True when nothing failed (retries and skips are tolerated)."""
        return not self.failed and not self.failed_cells()

    def summary(self) -> str:
        """One-paragraph human summary for CLI output."""
        counts = self.counts()
        parts = [f"{counts.get(s, 0)} {s}" for s in ALL_STATUSES if counts.get(s)]
        lines = [
            f"{len(self.records)} kernel runs across {len(self.cells)} cells: "
            + (", ".join(parts) if parts else "nothing ran")
        ]
        for record in self.failed:
            lines.append(
                f"  FAILED {record.kernel} [{record.cell}] "
                f"after {record.attempts} attempt(s): {record.error}"
            )
        for record in self.checksum_mismatches():
            if record.status != STATUS_FAILED:
                lines.append(
                    f"  CHECKSUM MISMATCH {record.kernel} [{record.cell}]"
                )
        skipped = self.cell_counts().get(STATUS_SKIPPED, 0)
        if skipped:
            lines.append(f"  {skipped} cell(s) skipped (already complete in manifest)")
        if self.interrupted:
            lines.append(
                "  campaign interrupted: in-flight cells drained, manifest "
                "flushed; re-invoke with --resume to finish"
            )
        return "\n".join(lines)
