"""CPU pipeline-slot counter simulator.

Real runs collect PAPI counters and derive the Top-Down (TMA) categories;
here the time model produces the category *times* and this package
re-encodes them as raw pipeline-slot counters with PAPI-style names. The
analysis layer (:mod:`repro.analysis.topdown`) then recovers the TMA
fractions from the raw counters exactly as it would from hardware, so the
analysis code never sees model internals.
"""

from repro.cpusim.counters import (
    PAPI_COUNTER_NAMES,
    slot_counters,
    counters_to_slots,
)

__all__ = ["PAPI_COUNTER_NAMES", "slot_counters", "counters_to_slots"]
