"""Pipeline-slot counters in the TMA formulation.

Intel's TMA distributes issue slots (cycles x machine width) across four
top-level categories; the level-2 split divides Backend Bound into Core
and Memory Bound. The counter names follow the ``perf``/PAPI convention
used on Sapphire Rapids.
"""

from __future__ import annotations

from repro.machines.model import MachineKind, MachineModel
from repro.perfmodel.cpu_time import CpuTimeBreakdown

#: The raw counter set written into Caliper profiles for CPU runs.
PAPI_COUNTER_NAMES: tuple[str, ...] = (
    "perf::slots",
    "perf::topdown-retiring",
    "perf::topdown-fe-bound",
    "perf::topdown-bad-spec",
    "perf::topdown-be-bound",
    "perf::topdown-be-bound:core",
    "perf::topdown-be-bound:memory",
    "perf::cycles",
    "perf::instructions",
)


def slot_counters(
    breakdown: CpuTimeBreakdown,
    machine: MachineModel,
    instructions: float,
) -> dict[str, float]:
    """Encode a time breakdown as raw pipeline-slot counters.

    Slots are cycles times the pipeline width; each category receives
    slots proportional to its share of execution time, which is exactly
    the semantics TMA's counter formulas assume.
    """
    if machine.kind is not MachineKind.CPU or machine.cpu is None:
        raise ValueError(f"{machine.shorthand} is not a CPU machine")
    cpu = machine.cpu
    total_time = breakdown.total
    if total_time <= 0:
        raise ValueError("cannot encode a zero-time breakdown")
    cycles = total_time * cpu.frequency_ghz * 1e9 * cpu.cores_per_node
    slots = cycles * cpu.issue_width
    share = lambda t: slots * t / total_time  # noqa: E731 - local shorthand
    core = share(breakdown.core_stall)
    memory = share(breakdown.memory_stall + breakdown.mpi)
    return {
        "perf::slots": slots,
        "perf::topdown-retiring": share(breakdown.retiring),
        "perf::topdown-fe-bound": share(breakdown.frontend),
        "perf::topdown-bad-spec": share(breakdown.bad_speculation),
        "perf::topdown-be-bound": core + memory,
        "perf::topdown-be-bound:core": core,
        "perf::topdown-be-bound:memory": memory,
        "perf::cycles": cycles,
        "perf::instructions": instructions,
    }


def counters_to_slots(counters: dict[str, float]) -> float:
    """Total slots from a raw counter dict (validates presence)."""
    try:
        return counters["perf::slots"]
    except KeyError:
        raise KeyError("counter dict lacks 'perf::slots'") from None
