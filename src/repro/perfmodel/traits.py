"""Kernel trait vectors: execution-efficiency characteristics.

Traits capture *how* a kernel executes, complementing the WorkProfile's
*how much*. They are dimensionless efficiency/intensity coefficients:

``streaming_eff``
    Achievable fraction of Stream-TRIAD bandwidth for this kernel's access
    pattern (1.0 = perfectly streaming; strided/indirect patterns lower).
``cpu_compute_eff``
    Achievable fraction of the node's *theoretical peak* FLOP rate on CPUs.
    The dense-matmul kernel carries Table II's measured fraction (0.18 on
    SPR-DDR) as its trait value.
``gpu_compute_eff``
    Achievable fraction of the machine's derated GPU FLOP rate
    (``peak x GpuSpec.flop_derate``). May exceed 1.0 for kernels whose FP
    mix beats the typical case (the paper's Apps_EDGE3D reaches 84 TFLOPS
    on MI250X where dense matmul reaches 13.3).
``simd_eff``
    Fraction of the CPU SIMD width the compiler exploits (drives the
    retirement rate; LCALS kernels exist precisely to probe this).
``branch_misp_per_iter``
    Expected branch mispredictions per iteration (drives Bad Speculation).
``frontend_factor``
    Fraction of retirement time additionally stalled on instruction fetch
    (large lambdas/inlining failures/deep loop nests raise it).
``cache_resident`` / ``gpu_cache_resident``
    Fraction of declared byte traffic served from cache rather than DRAM
    at the paper's per-rank problem sizes.
``gpu_serial_fraction``
    Fraction of the work that serializes on a GPU (loop-carried
    dependencies, e.g. Polybench_ADI's sweeps).
``gpu_eff_overrides`` / ``cpu_eff_overrides``
    Optional per-machine-shorthand overrides of the compute efficiencies
    (used e.g. by MAT_MAT_SHARED, which carries Table II's measured
    fraction for each machine).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class KernelTraits:
    streaming_eff: float = 1.0
    cpu_compute_eff: float = 0.35
    gpu_compute_eff: float = 0.6
    simd_eff: float = 0.8
    branch_misp_per_iter: float = 0.0
    frontend_factor: float = 0.05
    cache_resident: float = 0.0
    gpu_cache_resident: float = 0.0
    gpu_serial_fraction: float = 0.0
    gpu_eff_overrides: dict[str, float] = field(default_factory=dict)
    cpu_eff_overrides: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name, lo, hi in [
            ("streaming_eff", 1e-6, 1.0),
            ("simd_eff", 0.0, 1.0),
            ("cache_resident", 0.0, 1.0),
            ("gpu_cache_resident", 0.0, 1.0),
            ("gpu_serial_fraction", 0.0, 1.0),
        ]:
            value = getattr(self, name)
            if not lo <= value <= hi:
                raise ValueError(f"{name} must be in [{lo}, {hi}], got {value}")
        for name in ("cpu_compute_eff", "gpu_compute_eff"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be > 0")
        if self.branch_misp_per_iter < 0:
            raise ValueError("branch_misp_per_iter must be >= 0")
        if self.frontend_factor < 0:
            raise ValueError("frontend_factor must be >= 0")

    def gpu_eff_for(self, machine_shorthand: str) -> float:
        """The GPU compute efficiency, honoring per-machine overrides."""
        return self.gpu_eff_overrides.get(machine_shorthand, self.gpu_compute_eff)

    def cpu_eff_for(self, machine_shorthand: str) -> float:
        """The CPU compute efficiency, honoring per-machine overrides."""
        return self.cpu_eff_overrides.get(machine_shorthand, self.cpu_compute_eff)
