"""CPU execution-time model with TMA-aligned components.

The model is a node-level bottleneck account: retirement time (how long
the pipeline needs just to issue/retire the instruction stream), plus
stall components for memory, core (FP-unit/dependency), frontend, and
bad speculation, plus MPI time for communication kernels. Out-of-order
execution partially hides retirement under stalls, captured by an overlap
coefficient. The component decomposition *is* the top-level TMA split of
Fig. 2 — the simulator later re-encodes it as raw PAPI-style counters and
the analysis recovers the fractions, keeping the analysis code honest.

Calibration anchors (asserted in tests):

* Stream TRIAD (``streaming_eff = 1``) runs at the machine's achieved
  bandwidth from Table II;
* Basic MAT_MAT_SHARED (whose ``cpu_compute_eff`` carries Table II's
  measured fraction of peak per machine) runs at the machine's achieved
  FLOP rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machines.model import MachineKind, MachineModel
from repro.perfmodel.traits import KernelTraits
from repro.perfmodel.work import WorkProfile

# Fraction of retirement time that out-of-order execution hides under
# memory/core stalls.
OOO_OVERLAP = 0.7
# Base retired instructions per cycle for scalar code (per core).
IPC_BASE = 2.0
# Effective bandwidth multiplier for cache-resident traffic relative to the
# machine's DRAM bandwidth.
CACHE_BW_FACTOR = 8.0
# Atomic RMW throughput per core (ops/s). Under the paper's MPI-per-core
# CPU configuration atomics are rank-local (uncontended, cache-resident);
# kernels model heavier contention by declaring a larger atomic count.
ATOMIC_RATE_PER_CORE = 2.5e9
# OpenMP per-launch synchronization overhead (seconds per parallel region).
OMP_SYNC_OVERHEAD = 2.0e-6


@dataclass(frozen=True)
class CpuTimeBreakdown:
    """Execution-time components (seconds); the TMA split falls out of it."""

    retiring: float
    frontend: float
    bad_speculation: float
    core_stall: float
    memory_stall: float
    mpi: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.retiring
            + self.frontend
            + self.bad_speculation
            + self.core_stall
            + self.memory_stall
            + self.mpi
        )

    def tma(self) -> dict[str, float]:
        """Top-level TMA fractions. MPI time surfaces as memory-bound
        (stalled on data movement), matching how the paper's Comm kernels
        read in Figs. 3/4."""
        total = self.total
        if total <= 0:
            raise ValueError("cannot compute TMA fractions of a zero-time run")
        return {
            "retiring": self.retiring / total,
            "frontend_bound": self.frontend / total,
            "bad_speculation": self.bad_speculation / total,
            "core_bound": self.core_stall / total,
            "memory_bound": (self.memory_stall + self.mpi) / total,
        }


class CpuTimeModel:
    """Predicts node-level CPU execution time for one kernel pass."""

    def __init__(self, machine: MachineModel) -> None:
        if machine.kind is not MachineKind.CPU or machine.cpu is None:
            raise ValueError(f"{machine.shorthand} is not a CPU machine")
        self.machine = machine
        self.cpu = machine.cpu

    # ------------------------------------------------------------- rates
    def memory_rate(self, traits: KernelTraits) -> float:
        """Achievable DRAM bandwidth (B/s) for this kernel's pattern."""
        return self.machine.achieved_bytes_per_sec * traits.streaming_eff

    def flop_rate(self, traits: KernelTraits) -> float:
        """Achievable FP rate (FLOP/s) as a fraction of theoretical peak.

        ``cpu_compute_eff`` is relative to the node's theoretical peak; the
        dense-matmul kernel carries the machine's Table II fraction (18%
        on SPR-DDR) as its trait. Peak scales with the SKU's clock relative
        to the 2.0 GHz nominal part, which is how the HBM SKU's slightly
        lower clock shows up for core-bound kernels.
        """
        clock_scale = self.cpu.frequency_ghz / 2.0
        eff = traits.cpu_eff_for(self.machine.shorthand)
        return self.machine.peak_flops_per_sec * clock_scale * eff

    def instruction_rate(self, traits: KernelTraits) -> float:
        """Node-level instruction retirement rate (instr/s).

        SIMD-friendly code retires a vector's worth of element operations
        per instruction slot, so ``simd_eff`` interpolates between scalar
        and full-width throughput.
        """
        cpu = self.cpu
        lanes = 1.0 + traits.simd_eff * (cpu.simd_width_doubles - 1)
        return cpu.cores_per_node * cpu.frequency_ghz * 1e9 * IPC_BASE * lanes

    # ------------------------------------------------------------ timing
    def predict(
        self,
        work: WorkProfile,
        traits: KernelTraits,
        omp_regions: float = 0.0,
    ) -> CpuTimeBreakdown:
        machine = self.machine
        cpu = self.cpu

        t_ret = work.instructions / self.instruction_rate(traits)

        dram_bytes = work.bytes_total * (1.0 - traits.cache_resident)
        cache_bytes = work.bytes_total * traits.cache_resident
        t_mem_raw = dram_bytes / self.memory_rate(traits) + cache_bytes / (
            machine.achieved_bytes_per_sec * CACHE_BW_FACTOR
        )

        t_flop_raw = work.flops / self.flop_rate(traits) if work.flops else 0.0
        t_atomic = work.atomics / (cpu.cores_per_node * ATOMIC_RATE_PER_CORE)

        hidden = OOO_OVERLAP * t_ret
        t_mem_stall = max(0.0, t_mem_raw - hidden)
        t_core_stall = max(0.0, t_flop_raw - hidden) + t_atomic

        t_front = traits.frontend_factor * t_ret
        t_badspec = (
            work.iterations
            * traits.branch_misp_per_iter
            * cpu.branch_mispredict_penalty_cycles
            / (cpu.cores_per_node * cpu.frequency_ghz * 1e9)
        )

        t_mpi = self._mpi_time(work) + omp_regions * OMP_SYNC_OVERHEAD

        return CpuTimeBreakdown(
            retiring=t_ret,
            frontend=t_front,
            bad_speculation=t_badspec,
            core_stall=t_core_stall,
            memory_stall=t_mem_stall,
            mpi=t_mpi,
        )

    def _mpi_time(self, work: WorkProfile) -> float:
        if work.mpi_messages == 0 and work.mpi_bytes == 0:
            return 0.0
        mpi = self.machine.mpi
        return (
            work.mpi_messages * mpi.latency_us * 1e-6
            + work.mpi_bytes / (mpi.bandwidth_gb_per_sec * 1e9)
        )
