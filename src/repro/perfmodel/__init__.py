"""First-order analytic performance model.

The paper measures real hardware; this package substitutes a calibrated
analytic model. Each kernel contributes a :class:`WorkProfile` (its
platform-independent analytic metrics: iterations, bytes read/written,
FLOPs, instruction estimate, atomics, launches, MPI traffic) and a
:class:`KernelTraits` vector (execution-efficiency characteristics:
streaming quality, SIMD friendliness, compute efficiency relative to the
dense-matmul anchor, GPU serialization, cache residency). The CPU and GPU
time models combine these with a :class:`~repro.machines.MachineModel`
to produce an execution-time breakdown whose components map one-to-one
onto the paper's analyses:

* CPU breakdown components = the five top-level TMA categories
  (retiring / frontend / bad-speculation / core-bound / memory-bound);
* GPU breakdown components feed the instruction-roofline counters.

The model is anchored to Table II: Stream TRIAD defines the achievable
bandwidth (``streaming_eff = 1``) and Basic MAT_MAT_SHARED carries each
machine's measured fraction-of-peak FLOP rate; calibration tests assert
the model reproduces those anchors within a few percent.
"""

from repro.perfmodel.work import WorkProfile
from repro.perfmodel.traits import KernelTraits
from repro.perfmodel.cpu_time import CpuTimeBreakdown, CpuTimeModel
from repro.perfmodel.gpu_time import GpuTimeBreakdown, GpuTimeModel
from repro.perfmodel.timing import TimeBreakdown, predict_time
from repro.perfmodel.calibration import calibration_report, calibration_errors

__all__ = [
    "WorkProfile",
    "KernelTraits",
    "CpuTimeModel",
    "CpuTimeBreakdown",
    "GpuTimeModel",
    "GpuTimeBreakdown",
    "TimeBreakdown",
    "predict_time",
    "calibration_report",
    "calibration_errors",
]
