"""GPU execution-time model.

A node-level roofline-with-overheads account: parallel time is the max of
the memory-traffic time, the FP time (anchored to the machine's achieved
MAT_MAT_SHARED rate), and the instruction-issue time (anchored to the
machine's sustained thread-instruction rate). On top of that:

* serialization — the fraction of work that cannot parallelize on a GPU
  (loop-carried dependences like Polybench_ADI's sweeps) runs at a single
  stream's scalar rate;
* launch overhead — per kernel launch; this is what makes the fused vs
  non-fused HALO packing variants differ and what the paper calls
  "kernel launch overhead bound";
* atomics — serialized RMW throughput, the reason Basic_PI_ATOMIC never
  speeds up on either GPU;
* MPI time for the Comm group.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machines.model import MachineKind, MachineModel
from repro.perfmodel.traits import KernelTraits
from repro.perfmodel.work import WorkProfile

# Scalar rate (instr/s) of a single serialized GPU execution stream.
GPU_SERIAL_RATE = 2.0e9


@dataclass(frozen=True)
class GpuTimeBreakdown:
    """GPU time components (seconds)."""

    memory: float
    compute: float
    instruction: float
    serial: float
    launch: float
    atomic: float
    mpi: float = 0.0

    @property
    def parallel(self) -> float:
        """The rooflined parallel phase: max of the three streams."""
        return max(self.memory, self.compute, self.instruction)

    @property
    def total(self) -> float:
        return self.parallel + self.serial + self.launch + self.atomic + self.mpi

    @property
    def bound(self) -> str:
        """Which resource bounds the parallel phase."""
        best = max(
            ("memory", self.memory),
            ("compute", self.compute),
            ("instruction", self.instruction),
            key=lambda kv: kv[1],
        )
        return best[0]


class GpuTimeModel:
    """Predicts node-level GPU execution time for one kernel pass."""

    def __init__(self, machine: MachineModel) -> None:
        if machine.kind is not MachineKind.GPU or machine.gpu is None:
            raise ValueError(f"{machine.shorthand} is not a GPU machine")
        self.machine = machine
        self.gpu = machine.gpu

    # ------------------------------------------------------------- rates
    def memory_rate(self, traits: KernelTraits) -> float:
        return self.machine.achieved_bytes_per_sec * traits.streaming_eff

    def flop_rate(self, traits: KernelTraits) -> float:
        """Achievable FP rate: peak x machine derate x kernel efficiency.

        ``flop_derate`` is the machine-level fraction of peak a well-tuned
        vector kernel sustains (low on MI250X per Table II); the kernel's
        ``gpu_compute_eff`` is relative to that and may exceed 1.0 for
        kernels whose FP mix beats the typical case (Apps_EDGE3D).
        """
        return (
            self.machine.peak_flops_per_sec
            * self.gpu.flop_derate
            * traits.gpu_eff_for(self.machine.shorthand)
        )

    def instruction_rate(self) -> float:
        return self.gpu.sustained_tips_node * 1e12

    def occupancy_factor(self, block_size: int | None) -> float:
        """Throughput derate for a thread-block tuning.

        RAJAPerf's GPU 'tunings' sweep block sizes; very small blocks leave
        warp-scheduler slots idle (low occupancy), very large blocks limit
        the blocks-in-flight needed to hide latency. The default 256 is the
        sweet spot; the derate is mild, matching the suite's observation
        that most kernels are within ~20% across tunings.
        """
        if block_size is None:
            return 1.0
        if block_size <= 0:
            raise ValueError(f"block_size must be > 0, got {block_size}")
        device = float(self.gpu.warp_size * 8)  # blocks below 8 warps under-fill
        if block_size < device:
            # Occupancy loss grows slower than linearly (latency is still
            # partially hidden by other blocks in flight).
            return max(0.55, (block_size / device) ** 0.5)
        if block_size > 512:
            return 0.9
        return 1.0

    # ------------------------------------------------------------ timing
    def predict(
        self,
        work: WorkProfile,
        traits: KernelTraits,
        block_size: int | None = None,
    ) -> GpuTimeBreakdown:
        gpu = self.gpu
        occupancy = self.occupancy_factor(block_size)

        dram_bytes = work.bytes_total * (1.0 - traits.gpu_cache_resident)
        t_mem = dram_bytes / (self.memory_rate(traits) * occupancy)
        t_flop = (
            work.flops / (self.flop_rate(traits) * occupancy) if work.flops else 0.0
        )
        t_instr = work.instructions / (self.instruction_rate() * occupancy)

        t_serial = (
            traits.gpu_serial_fraction * work.instructions / GPU_SERIAL_RATE
        )
        t_launch = work.launches * gpu.kernel_launch_overhead_us * 1e-6
        t_atomic = work.atomics / (
            gpu.atomic_throughput_gops * 1e9 * self.machine.units_per_node
        )
        t_mpi = self._mpi_time(work)

        return GpuTimeBreakdown(
            memory=t_mem,
            compute=t_flop,
            instruction=t_instr,
            serial=t_serial,
            launch=t_launch,
            atomic=t_atomic,
            mpi=t_mpi,
        )

    def _mpi_time(self, work: WorkProfile) -> float:
        if work.mpi_messages == 0 and work.mpi_bytes == 0:
            return 0.0
        mpi = self.machine.mpi
        return (
            work.mpi_messages * mpi.latency_us * 1e-6
            + work.mpi_bytes / (mpi.bandwidth_gb_per_sec * 1e9)
        )
