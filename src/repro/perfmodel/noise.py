"""Deterministic measurement-noise model for multi-trial runs.

Real RAJAPerf runs repeat kernels and report min/avg/max times; run-to-run
variation is what makes Thicket's aggregated statistics meaningful. The
analytic model is deterministic, so multi-trial sweeps apply a small
multiplicative lognormal jitter, seeded per (kernel, machine, trial) so
results are reproducible run-to-run.
"""

from __future__ import annotations

import hashlib

import numpy as np

#: Default run-to-run coefficient of variation (~2%, typical of a quiet
#: HPC node; noisy shared systems are far worse).
DEFAULT_SIGMA = 0.02


def noise_factor(kernel: str, machine: str, trial: int, sigma: float = DEFAULT_SIGMA) -> float:
    """Multiplicative jitter for one measurement, deterministic in its key.

    Lognormal with median 1: ``exp(sigma * z)`` where ``z`` is a standard
    normal drawn from a hash-seeded generator.
    """
    if sigma < 0:
        raise ValueError(f"sigma must be >= 0, got {sigma}")
    if sigma == 0:
        return 1.0
    key = f"{kernel}|{machine}|{trial}".encode()
    seed = int.from_bytes(hashlib.sha256(key).digest()[:8], "little")
    z = np.random.default_rng(seed).standard_normal()
    return float(np.exp(sigma * z))


def noisy_time(
    seconds: float,
    kernel: str,
    machine: str,
    trial: int,
    sigma: float = DEFAULT_SIGMA,
) -> float:
    """A jittered copy of a predicted time."""
    if seconds <= 0:
        raise ValueError(f"seconds must be > 0, got {seconds}")
    return seconds * noise_factor(kernel, machine, trial, sigma)
