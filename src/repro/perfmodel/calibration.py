"""Calibration of the analytic model against Table II's anchors.

The model is anchored so that Stream TRIAD reproduces each machine's
achieved memory bandwidth and Basic MAT_MAT_SHARED reproduces its achieved
FLOP rate. These functions *measure the residual*: they push synthetic
TRIAD/MAT_MAT work profiles through the full timing model (which adds
retirement, frontend, launch, and overlap effects on top of the raw
roofline terms) and report the achieved-rate error versus the anchors.
Tests assert the residual stays within a few percent.

The anchor traits defined here are also the traits the real TRIAD and
MAT_MAT_SHARED kernels carry, so kernel-space results and the calibration
agree by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machines.model import MachineModel
from repro.machines.registry import list_machines
from repro.perfmodel.timing import predict_time
from repro.perfmodel.traits import KernelTraits
from repro.perfmodel.work import WorkProfile

# Calibration problem size: 10x the paper's 32M node size so per-launch
# overhead amortizes, isolating the steady-state rates the Table II
# percentages describe.
_ANCHOR_N = 320_000_000


def triad_work(n: int = _ANCHOR_N) -> WorkProfile:
    """Stream TRIAD: a[i] = b[i] + q*c[i] — 16 B read, 8 B written, 2 FLOPs."""
    return WorkProfile(
        iterations=n,
        bytes_read=16.0 * n,
        bytes_written=8.0 * n,
        flops=2.0 * n,
        instructions=6.0 * n,
    )


def triad_traits() -> KernelTraits:
    """TRIAD defines ``streaming_eff = 1``: the bandwidth anchor."""
    return KernelTraits(
        streaming_eff=1.0,
        cpu_compute_eff=0.5,
        gpu_compute_eff=0.6,
        simd_eff=0.95,
        frontend_factor=0.02,
    )


def matmat_work(n: int = _ANCHOR_N) -> WorkProfile:
    """Basic MAT_MAT_SHARED at problem size n (n = N_mat^2 matrix elements).

    FLOPs = 2 * N^3 = 2 * n^{3/2}. The blocked algorithm keeps tiles in
    shared memory / cache, so DRAM traffic is ~the three matrices once, and
    FMA-dense code retires far fewer instructions than FLOPs.
    """
    n_mat = int(round(n**0.5))
    flops = 2.0 * float(n_mat) ** 3
    return WorkProfile(
        iterations=n,
        bytes_read=2.0 * 8.0 * n,
        bytes_written=8.0 * n,
        flops=flops,
        instructions=0.3 * flops,
    )


def matmat_traits() -> KernelTraits:
    """MAT_MAT_SHARED carries Table II's measured fraction per machine.

    CPU efficiencies are relative to theoretical peak scaled by the SKU
    clock (SPR-HBM runs at 1.9 GHz vs the 2.0 GHz nominal); GPU
    efficiencies are relative to ``peak x flop_derate``.
    """
    return KernelTraits(
        streaming_eff=0.8,
        cpu_compute_eff=0.18,
        gpu_compute_eff=0.5,
        cpu_eff_overrides={"SPR-DDR": 0.18, "SPR-HBM": 0.155 / (1.9 / 2.0)},
        gpu_eff_overrides={"P9-V100": 0.224 / 0.5, "EPYC-MI250X": 0.07 / 0.088},
        simd_eff=1.0,
        cache_resident=0.9,
        gpu_cache_resident=0.5,
        frontend_factor=0.02,
    )


@dataclass(frozen=True)
class CalibrationPoint:
    machine: str
    metric: str  # "bandwidth" or "flops"
    expected: float  # anchor rate from Table II (units/s)
    modeled: float
    relative_error: float


def _achieved_rate(
    work: WorkProfile,
    traits: KernelTraits,
    machine: MachineModel,
    numerator: float,
) -> float:
    # Base variant, matching how the paper measured the anchors.
    breakdown = predict_time(work, traits, machine, is_raja=False)
    return numerator / breakdown.total_seconds


def calibration_errors(machines: list[MachineModel] | None = None) -> list[CalibrationPoint]:
    """Model-vs-anchor residuals for TRIAD bandwidth and MAT_MAT FLOPs."""
    points: list[CalibrationPoint] = []
    for machine in machines if machines is not None else list_machines():
        tw, tt = triad_work(), triad_traits()
        modeled_bw = _achieved_rate(tw, tt, machine, tw.bytes_total)
        expected_bw = machine.achieved_bytes_per_sec
        points.append(
            CalibrationPoint(
                machine=machine.shorthand,
                metric="bandwidth",
                expected=expected_bw,
                modeled=modeled_bw,
                relative_error=abs(modeled_bw - expected_bw) / expected_bw,
            )
        )
        mw, mt = matmat_work(), matmat_traits()
        modeled_fl = _achieved_rate(mw, mt, machine, mw.flops)
        expected_fl = machine.achieved_flops_per_sec
        points.append(
            CalibrationPoint(
                machine=machine.shorthand,
                metric="flops",
                expected=expected_fl,
                modeled=modeled_fl,
                relative_error=abs(modeled_fl - expected_fl) / expected_fl,
            )
        )
    return points


def calibration_report() -> str:
    """Human-readable calibration table (used by the Table II bench)."""
    from repro.util.tables import TextTable

    table = TextTable(
        ["Machine", "Metric", "Anchor (T/s)", "Model (T/s)", "Rel. error"],
        title="Performance-model calibration vs Table II anchors",
    )
    for point in calibration_errors():
        table.add_row(
            point.machine,
            point.metric,
            point.expected / 1e12,
            point.modeled / 1e12,
            f"{point.relative_error * 100:.2f}%",
        )
    return table.render()
