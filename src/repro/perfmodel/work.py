"""The :class:`WorkProfile`: one run's platform-independent work totals.

These are RAJAPerf's *analytic metrics* (Section II-B of the paper): bytes
read, bytes written, and FLOPs, extended with the totals the simulators
need (iteration count, instruction estimate, atomic operations, kernel
launches, MPI traffic). All values are node-level totals for one pass over
the kernel at a given problem size.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.util.validation import check_positive


@dataclass(frozen=True)
class WorkProfile:
    """Node-level work totals for one repetition of a kernel."""

    iterations: float
    bytes_read: float
    bytes_written: float
    flops: float
    instructions: float = 0.0
    atomics: float = 0.0
    launches: float = 1.0
    mpi_messages: float = 0.0
    mpi_bytes: float = 0.0

    def __post_init__(self) -> None:
        check_positive("iterations", self.iterations, allow_zero=True)
        check_positive("bytes_read", self.bytes_read, allow_zero=True)
        check_positive("bytes_written", self.bytes_written, allow_zero=True)
        check_positive("flops", self.flops, allow_zero=True)
        check_positive("instructions", self.instructions, allow_zero=True)
        check_positive("atomics", self.atomics, allow_zero=True)
        check_positive("launches", self.launches, allow_zero=True)
        check_positive("mpi_messages", self.mpi_messages, allow_zero=True)
        check_positive("mpi_bytes", self.mpi_bytes, allow_zero=True)
        if self.instructions == 0.0 and self.iterations > 0:
            # Fallback instruction estimate: a scalar iteration retires its
            # FLOPs plus ~2 ops (address generation + loop control) per
            # memory word touched.
            words = (self.bytes_read + self.bytes_written) / 8.0
            object.__setattr__(
                self, "instructions", self.flops + 2.0 * words + 2.0 * self.iterations
            )

    @property
    def bytes_total(self) -> float:
        return self.bytes_read + self.bytes_written

    @property
    def flops_per_byte(self) -> float:
        """Arithmetic intensity — the derived metric of Fig. 1."""
        total = self.bytes_total
        return self.flops / total if total > 0 else 0.0

    def scaled(self, factor: float) -> "WorkProfile":
        """Scale all extensive quantities (e.g. for multiple repetitions)."""
        check_positive("factor", factor, allow_zero=True)
        return replace(
            self,
            iterations=self.iterations * factor,
            bytes_read=self.bytes_read * factor,
            bytes_written=self.bytes_written * factor,
            flops=self.flops * factor,
            instructions=self.instructions * factor,
            atomics=self.atomics * factor,
            launches=self.launches * factor,
            mpi_messages=self.mpi_messages * factor,
            mpi_bytes=self.mpi_bytes * factor,
        )

    def per_iteration(self) -> dict[str, float]:
        """Fig. 1's view: analytic metrics normalized by problem size."""
        denom = self.iterations if self.iterations > 0 else 1.0
        return {
            "bytes_read": self.bytes_read / denom,
            "bytes_written": self.bytes_written / denom,
            "flops": self.flops / denom,
            "flops_per_byte": self.flops_per_byte,
        }
