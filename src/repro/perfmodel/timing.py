"""Unified timing facade over the CPU and GPU models.

``predict_time`` hides the machine-kind dispatch and the Base-vs-RAJA
abstraction overhead, returning a :class:`TimeBreakdown` that carries the
total, the per-component dict, and (for CPU machines) the TMA fractions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machines.model import MachineKind, MachineModel
from repro.perfmodel.cpu_time import CpuTimeBreakdown, CpuTimeModel
from repro.perfmodel.gpu_time import GpuTimeBreakdown, GpuTimeModel
from repro.perfmodel.traits import KernelTraits
from repro.perfmodel.work import WorkProfile

# Multiplicative abstraction overhead of a RAJA variant over its Base
# counterpart. RAJA's lambdas/templates mostly compile away; a small
# residual remains, larger on GPU backends where the launch path is
# wrapped. The ablation bench sweeps these.
RAJA_OVERHEAD_CPU = 1.02
RAJA_OVERHEAD_GPU = 1.05


@dataclass(frozen=True)
class TimeBreakdown:
    """Machine-agnostic timing result."""

    machine: str
    total_seconds: float
    components: dict[str, float] = field(default_factory=dict)
    tma: dict[str, float] | None = None
    gpu_bound: str | None = None

    def __post_init__(self) -> None:
        if self.total_seconds <= 0:
            raise ValueError(f"non-positive predicted time: {self.total_seconds}")


def _raja_factor(machine: MachineModel, is_raja: bool) -> float:
    if not is_raja:
        return 1.0
    return RAJA_OVERHEAD_GPU if machine.kind is MachineKind.GPU else RAJA_OVERHEAD_CPU


def predict_time(
    work: WorkProfile,
    traits: KernelTraits,
    machine: MachineModel,
    is_raja: bool = True,
    block_size: int | None = None,
    omp_regions: float = 0.0,
) -> TimeBreakdown:
    """Predict node-level execution time of one kernel pass on ``machine``.

    ``block_size`` applies the GPU tuning's occupancy derate (ignored on
    CPU machines); ``omp_regions`` charges OpenMP fork/join overhead per
    parallel region (used for the OpenMP variants).
    """
    factor = _raja_factor(machine, is_raja)
    if machine.kind is MachineKind.CPU:
        bd: CpuTimeBreakdown = CpuTimeModel(machine).predict(
            work, traits, omp_regions=omp_regions
        )
        components = {
            "retiring": bd.retiring * factor,
            "frontend": bd.frontend * factor,
            "bad_speculation": bd.bad_speculation * factor,
            "core_stall": bd.core_stall * factor,
            "memory_stall": bd.memory_stall * factor,
            "mpi": bd.mpi,
        }
        total = sum(components.values())
        return TimeBreakdown(
            machine=machine.shorthand,
            total_seconds=total if total > 0 else 1e-12,
            components=components,
            tma=bd.tma(),
        )
    gbd: GpuTimeBreakdown = GpuTimeModel(machine).predict(
        work, traits, block_size=block_size
    )
    components = {
        "memory": gbd.memory * factor,
        "compute": gbd.compute * factor,
        "instruction": gbd.instruction * factor,
        "serial": gbd.serial * factor,
        "launch": gbd.launch,
        "atomic": gbd.atomic * factor,
        "mpi": gbd.mpi,
    }
    # GPU total: the parallel phase is the max of the three streams, the
    # overhead terms add on top.
    parallel = max(components["memory"], components["compute"], components["instruction"])
    total = (
        parallel
        + components["serial"]
        + components["launch"]
        + components["atomic"]
        + components["mpi"]
    )
    return TimeBreakdown(
        machine=machine.shorthand,
        total_seconds=total if total > 0 else 1e-12,
        components=components,
        tma=None,
        gpu_bound=gbd.bound,
    )
