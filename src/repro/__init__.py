"""repro: a reproduction of "RAJA Performance Suite: Performance
Portability Analysis with Caliper and Thicket" (SC 2024).

The package provides, in pure Python:

* the RAJAPerf-style kernel suite (76 kernels, 7 groups, Base/RAJA
  variants over a RAJA-like portability layer) — :mod:`repro.suite`,
  :mod:`repro.kernels`, :mod:`repro.rajasim`;
* Caliper/Adiak-style profiling (:mod:`repro.caliper`, :mod:`repro.adiak`)
  and a pandas-free Thicket (:mod:`repro.thicket`);
* calibrated analytic models of the paper's four machines and their
  CPU/GPU counter simulators (:mod:`repro.machines`, :mod:`repro.perfmodel`,
  :mod:`repro.cpusim`, :mod:`repro.gpusim`, :mod:`repro.mpisim`);
* the paper's analyses — TMA, instruction roofline, Ward clustering,
  cross-architecture speedups (:mod:`repro.analysis`) — and drivers that
  regenerate every table and figure (:mod:`repro.reporting`).

Quickstart::

    from repro import make_kernel, get_machine

    triad = make_kernel("Stream_TRIAD", problem_size="32M")
    print(triad.analytic_metrics())          # Fig. 1 metrics
    print(triad.predict(get_machine("SPR-DDR")).tma)  # TMA fractions

    from repro.analysis import run_similarity_analysis
    result = run_similarity_analysis()       # Section IV end to end
"""

from repro._version import __version__
from repro.machines import get_machine, list_machines
from repro.suite import (
    Complexity,
    Feature,
    Group,
    KernelBase,
    RunParams,
    SuiteExecutor,
    Variant,
    all_kernel_classes,
    get_variant,
    kernel_names,
)
from repro.thicket import Thicket


def make_kernel(name: str, problem_size: object = None) -> KernelBase:
    """Instantiate a kernel by name; ``problem_size`` accepts ``"32M"``."""
    from repro.suite.registry import make_kernel as _make
    from repro.util.units import parse_size

    size = parse_size(problem_size) if problem_size is not None else None
    return _make(name, problem_size=size)


__all__ = [
    "__version__",
    "make_kernel",
    "get_machine",
    "list_machines",
    "Group",
    "Feature",
    "Complexity",
    "Variant",
    "get_variant",
    "KernelBase",
    "kernel_names",
    "all_kernel_classes",
    "RunParams",
    "SuiteExecutor",
    "Thicket",
]
