"""Machine models for the four systems of Table II.

Each :class:`MachineModel` carries the theoretical peaks and *achieved*
rates the paper reports (Basic MAT_MAT_SHARED for FLOPS, Stream TRIAD for
memory bandwidth), plus microarchitectural parameters consumed by the CPU
and GPU simulators. Substitution note: the paper measured real hardware;
we encode those published numbers as calibration anchors for the analytic
performance model.
"""

from repro.machines.model import CpuSpec, GpuSpec, MachineKind, MachineModel, MpiSpec
from repro.machines.registry import (
    EPYC_MI250X,
    MACHINES,
    P9_V100,
    SPR_DDR,
    SPR_HBM,
    get_machine,
    list_machines,
)

__all__ = [
    "MachineModel",
    "MachineKind",
    "CpuSpec",
    "GpuSpec",
    "MpiSpec",
    "SPR_DDR",
    "SPR_HBM",
    "P9_V100",
    "EPYC_MI250X",
    "MACHINES",
    "get_machine",
    "list_machines",
]
