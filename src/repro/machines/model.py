"""Machine-model dataclasses.

A :class:`MachineModel` describes one row of the paper's Table II: the
compute units on a node, theoretical peak FLOPS and memory bandwidth, and
the achieved rates measured with Basic MAT_MAT_SHARED and Stream TRIAD.
CPU machines additionally carry a :class:`CpuSpec` (pipeline parameters
for the TMA counter simulator); GPU machines carry a :class:`GpuSpec`
(warp/transaction parameters for the instruction-roofline simulator).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.util.validation import check_positive


class MachineKind(enum.Enum):
    CPU = "cpu"
    GPU = "gpu"


@dataclass(frozen=True)
class CpuSpec:
    """Out-of-order CPU pipeline parameters for the TMA slot model."""

    cores_per_node: int
    issue_width: int = 6  # pipeline slots per cycle (Golden Cove: 6-wide)
    frequency_ghz: float = 2.0
    branch_mispredict_penalty_cycles: float = 17.0
    l1_latency_cycles: float = 5.0
    llc_latency_cycles: float = 33.0
    dram_latency_ns: float = 110.0
    simd_width_doubles: int = 8  # AVX-512

    def __post_init__(self) -> None:
        check_positive("cores_per_node", self.cores_per_node)
        check_positive("issue_width", self.issue_width)
        check_positive("frequency_ghz", self.frequency_ghz)


@dataclass(frozen=True)
class GpuSpec:
    """GPU parameters for the instruction-roofline counter simulator.

    Roofline ceilings follow Ding & Williams' instruction-roofline
    formulation: a peak warp instruction rate (warp GIPS) and per-level
    transaction bandwidths in giga-transactions/s (GTXN/s), with 32-byte
    sectors per transaction.
    """

    sm_count: int
    warp_size: int = 32
    peak_warp_gips: float = 489.6
    l1_gtxn_per_sec: float = 437.5
    l2_gtxn_per_sec: float = 93.6
    dram_gtxn_per_sec: float = 25.9
    sector_bytes: int = 32
    kernel_launch_overhead_us: float = 5.0
    atomic_throughput_gops: float = 6.0
    # Sustained node-level thread-instruction throughput (tera-instr/s) for
    # typical (non-peak) kernels; calibrated so instruction-throughput-bound
    # kernels see the paper's GPU-vs-CPU gains (~4.5x V100, ~7x MI250X).
    sustained_tips_node: float = 14.0
    # Fraction of theoretical peak FLOPS a well-written vector kernel can
    # sustain (kernel gpu_compute_eff is expressed relative to this). The
    # MI250X's low value reflects the paper's Table II, where even dense
    # matmul reaches only 7% of its 191.5 TFLOPS node peak.
    flop_derate: float = 0.5

    def __post_init__(self) -> None:
        check_positive("sm_count", self.sm_count)
        check_positive("peak_warp_gips", self.peak_warp_gips)


@dataclass(frozen=True)
class MpiSpec:
    """Inter-process communication parameters for the MPI simulator."""

    latency_us: float = 1.5
    bandwidth_gb_per_sec: float = 22.0
    ranks_per_node: int = 1


@dataclass(frozen=True)
class MachineModel:
    """One system of Table II, with calibration anchors.

    ``achieved_*`` values come from the paper's measurements; we derive
    them from the published percent-of-expected to avoid the table's
    display rounding.
    """

    shorthand: str
    system_name: str
    architecture: str
    kind: MachineKind
    units_per_node: int
    unit_description: str
    peak_tflops_unit: float
    peak_tflops_node: float
    peak_membw_tb_unit: float
    peak_membw_tb_node: float
    matmat_pct_of_peak: float  # Basic MAT_MAT_SHARED, % of node peak FLOPS
    triad_pct_of_peak: float  # Stream TRIAD, % of node peak bandwidth
    default_variant: str = "RAJA_Seq"
    cpu: CpuSpec | None = None
    gpu: GpuSpec | None = None
    mpi: MpiSpec = field(default_factory=MpiSpec)

    def __post_init__(self) -> None:
        check_positive("units_per_node", self.units_per_node)
        check_positive("peak_tflops_node", self.peak_tflops_node)
        check_positive("peak_membw_tb_node", self.peak_membw_tb_node)
        if self.kind is MachineKind.CPU and self.cpu is None:
            raise ValueError(f"{self.shorthand}: CPU machine needs a CpuSpec")
        if self.kind is MachineKind.GPU and self.gpu is None:
            raise ValueError(f"{self.shorthand}: GPU machine needs a GpuSpec")
        if not 0 < self.matmat_pct_of_peak <= 100:
            raise ValueError("matmat_pct_of_peak must be in (0, 100]")
        if not 0 < self.triad_pct_of_peak <= 100:
            raise ValueError("triad_pct_of_peak must be in (0, 100]")

    # -------------------------------------------------- calibration anchors
    @property
    def achieved_tflops_node(self) -> float:
        """Achieved node FLOPS (TFLOPS) per Basic MAT_MAT_SHARED."""
        return self.peak_tflops_node * self.matmat_pct_of_peak / 100.0

    @property
    def achieved_membw_tb_node(self) -> float:
        """Achieved node memory bandwidth (TB/s) per Stream TRIAD."""
        return self.peak_membw_tb_node * self.triad_pct_of_peak / 100.0

    @property
    def peak_flops_per_sec(self) -> float:
        return self.peak_tflops_node * 1e12

    @property
    def peak_bytes_per_sec(self) -> float:
        return self.peak_membw_tb_node * 1e12

    @property
    def achieved_flops_per_sec(self) -> float:
        return self.achieved_tflops_node * 1e12

    @property
    def achieved_bytes_per_sec(self) -> float:
        return self.achieved_membw_tb_node * 1e12

    @property
    def machine_balance_flops_per_byte(self) -> float:
        """Peak FLOPS / peak bandwidth: the roofline ridge point."""
        return self.peak_flops_per_sec / self.peak_bytes_per_sec

    @property
    def is_gpu(self) -> bool:
        return self.kind is MachineKind.GPU

    def __str__(self) -> str:
        return (
            f"{self.shorthand} ({self.system_name}, {self.architecture}): "
            f"{self.peak_tflops_node:.1f} TFLOPS, "
            f"{self.peak_membw_tb_node:.1f} TB/s per node"
        )
