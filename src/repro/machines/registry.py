"""The four experimental systems of Table II.

Numbers are transcribed from the paper:

======  ============= ===================== ========= ===== ===== ======= =====
Short   System        Architecture          Units     TF/u  TF/n  MAT%    TRIAD%
======  ============= ===================== ========= ===== ===== ======= =====
SPR-DDR Poodle (DDR)  Intel Sapphire Rapids 2 sockets  2.3   4.7  18.0    77.7
SPR-HBM Poodle (HBM)  Intel Sapphire Rapids 2 sockets  2.3   4.7  15.5    33.7
P9-V100 Sierra        NVIDIA V100           4 GPUs     7.8  31.2  22.4    92.6
EPYC-…  Tioga         AMD MI250X            8 GCDs    24.0 191.5   7.0    79.5
======  ============= ===================== ========= ===== ===== ======= =====

Memory bandwidth (TB/s): SPR-DDR 0.3/0.6, SPR-HBM 1.6/3.3, P9-V100 0.9/3.6,
EPYC-MI250X 1.6/12.8 (unit/node). GPU roofline ceilings for the V100 follow
Ding & Williams' instruction-roofline parameters; MI250X ceilings are
scaled from its bandwidth and issue rate.
"""

from __future__ import annotations

from repro.machines.model import CpuSpec, GpuSpec, MachineKind, MachineModel, MpiSpec

SPR_DDR = MachineModel(
    shorthand="SPR-DDR",
    system_name="Poodle (DDR)",
    architecture="Intel Sapphire Rapids",
    kind=MachineKind.CPU,
    units_per_node=2,
    unit_description="socket",
    peak_tflops_unit=2.3,
    peak_tflops_node=4.7,
    peak_membw_tb_unit=0.3,
    peak_membw_tb_node=0.6,
    matmat_pct_of_peak=18.0,
    triad_pct_of_peak=77.7,
    default_variant="RAJA_Seq",
    cpu=CpuSpec(cores_per_node=112, frequency_ghz=2.0),
    mpi=MpiSpec(latency_us=0.6, bandwidth_gb_per_sec=40.0, ranks_per_node=112),
)

SPR_HBM = MachineModel(
    shorthand="SPR-HBM",
    system_name="Poodle (HBM)",
    architecture="Intel Sapphire Rapids",
    kind=MachineKind.CPU,
    units_per_node=2,
    unit_description="socket",
    peak_tflops_unit=2.3,
    peak_tflops_node=4.7,
    peak_membw_tb_unit=1.6,
    peak_membw_tb_node=3.3,
    matmat_pct_of_peak=15.5,
    triad_pct_of_peak=33.7,
    default_variant="RAJA_Seq",
    # The HBM-equipped Xeon Max SKU clocks slightly lower, which is why the
    # paper's retiring-bound cluster shows a ~0.96x "speedup" on SPR-HBM.
    cpu=CpuSpec(cores_per_node=112, frequency_ghz=1.9),
    mpi=MpiSpec(latency_us=0.6, bandwidth_gb_per_sec=40.0, ranks_per_node=112),
)

P9_V100 = MachineModel(
    shorthand="P9-V100",
    system_name="Sierra",
    architecture="NVIDIA V100",
    kind=MachineKind.GPU,
    units_per_node=4,
    unit_description="GPU",
    peak_tflops_unit=7.8,
    peak_tflops_node=31.2,
    peak_membw_tb_unit=0.9,
    peak_membw_tb_node=3.6,
    matmat_pct_of_peak=22.4,
    triad_pct_of_peak=92.6,
    default_variant="RAJA_CUDA",
    gpu=GpuSpec(
        sm_count=80,
        peak_warp_gips=489.6,
        l1_gtxn_per_sec=437.5,
        l2_gtxn_per_sec=93.6,
        dram_gtxn_per_sec=25.9,
        kernel_launch_overhead_us=2.0,
        sustained_tips_node=14.0,
        flop_derate=0.5,
    ),
    mpi=MpiSpec(latency_us=1.5, bandwidth_gb_per_sec=25.0, ranks_per_node=4),
)

EPYC_MI250X = MachineModel(
    shorthand="EPYC-MI250X",
    system_name="Tioga",
    architecture="AMD MI250X",
    kind=MachineKind.GPU,
    units_per_node=8,
    unit_description="GCD",
    peak_tflops_unit=24.0,
    peak_tflops_node=191.5,
    peak_membw_tb_unit=1.6,
    peak_membw_tb_node=12.8,
    matmat_pct_of_peak=7.0,
    triad_pct_of_peak=79.5,
    default_variant="RAJA_HIP",
    gpu=GpuSpec(
        sm_count=110,  # CUs per GCD
        warp_size=64,  # AMD wavefront
        peak_warp_gips=780.0,
        l1_gtxn_per_sec=560.0,
        l2_gtxn_per_sec=130.0,
        dram_gtxn_per_sec=50.0,
        kernel_launch_overhead_us=2.5,
        sustained_tips_node=21.5,
        flop_derate=0.088,
    ),
    mpi=MpiSpec(latency_us=1.8, bandwidth_gb_per_sec=36.0, ranks_per_node=8),
)

MACHINES: dict[str, MachineModel] = {
    m.shorthand: m for m in (SPR_DDR, SPR_HBM, P9_V100, EPYC_MI250X)
}


def get_machine(shorthand: str) -> MachineModel:
    """Look up a machine by its Table II shorthand (case-insensitive)."""
    key = shorthand.strip()
    for name, machine in MACHINES.items():
        if name.lower() == key.lower():
            return machine
    raise KeyError(f"unknown machine {shorthand!r}; have {list(MACHINES)}")


def list_machines() -> list[MachineModel]:
    """All modeled machines in Table II order."""
    return list(MACHINES.values())
