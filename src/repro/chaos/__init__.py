"""Deterministic crash-consistency chaos testing.

:mod:`repro.chaos.points` defines the named crash points woven into
every durable-write path of the pipeline (profile writes, archive
appends and seals, manifest checkpoints, reference-checksum publishes,
ingest-cache stores) plus the :class:`ChaosSchedule` that arms them.
:mod:`repro.chaos.runner` drives the full run -> fsck -> resume ->
analyze loop against every point and machine-checks the recovery
invariants; :mod:`repro.chaos.invariants` holds the checks themselves.
"""

from repro.chaos.points import (
    CHAOS_KILL_EXITCODE,
    REGISTERED_POINTS,
    ChaosCrash,
    ChaosSchedule,
    arm,
    armed_schedule,
    crash_point,
    disarm,
    point_names,
)
__all__ = [
    "CHAOS_KILL_EXITCODE",
    "REGISTERED_POINTS",
    "ChaosCrash",
    "ChaosReport",
    "ChaosRunner",
    "ChaosSchedule",
    "TrialVerdict",
    "arm",
    "armed_schedule",
    "crash_point",
    "disarm",
    "point_names",
]

_RUNNER_EXPORTS = ("ChaosReport", "ChaosRunner", "TrialVerdict")


def __getattr__(name: str):
    # The runner pulls in the executor, which (through fsio) pulls in
    # this package — importing it lazily keeps the crash-point hooks
    # importable from anywhere without a cycle.
    if name in _RUNNER_EXPORTS:
        from repro.chaos import runner

        return getattr(runner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
